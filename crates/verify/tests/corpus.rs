//! Corpus gate: every pattern of all seven synthetic suites, compiled with
//! each suite's DSE-chosen knobs and mapped with the default mapper, must
//! verify with an empty report — no errors, no warnings, no infos.

use rap_compiler::{Compiler, CompilerConfig};
use rap_mapper::{map_workload, MapperConfig};
use rap_verify::verify;
use rap_workloads::Suite;

#[test]
fn all_seven_suites_verify_clean() {
    for suite in Suite::all() {
        let compiler = Compiler::new(CompilerConfig {
            bv_depth: suite.chosen_bv_depth(),
            ..CompilerConfig::default()
        });
        let config = MapperConfig {
            bin_size: suite.chosen_bin_size(),
            ..MapperConfig::default()
        };
        let patterns = rap_workloads::generate_patterns(suite, 100, 42);
        let compiled: Vec<_> = patterns
            .iter()
            .map(|p| {
                compiler
                    .compile_str(p)
                    .unwrap_or_else(|e| panic!("{suite}: {p:?}: {e}"))
            })
            .collect();
        let mapping = map_workload(&compiled, &config);
        let report = verify(&compiled, &mapping, &config.arch);
        assert!(report.is_empty(), "{suite} is not clean:\n{report}");
    }
}
