//! Negative coverage: every documented rule code fires on a purposely
//! corrupted mapping, and random single-field mutations of valid plans
//! always trip the expected rule.

use proptest::prelude::*;
use rap_arch::config::ArchConfig;
use rap_compiler::{Compiled, Compiler, CompilerConfig};
use rap_mapper::{map_workload, ArrayKind, MapperConfig, Mapping};
use rap_verify::{verify, Rule, Severity};

fn compile(patterns: &[&str]) -> Vec<Compiled> {
    let compiler = Compiler::new(CompilerConfig::default());
    patterns
        .iter()
        .map(|p| compiler.compile_str(p).expect("compiles"))
        .collect()
}

fn setup(patterns: &[&str]) -> (Vec<Compiled>, Mapping, ArchConfig) {
    let compiled = compile(patterns);
    let config = MapperConfig::default();
    let mapping = map_workload(&compiled, &config);
    let report = verify(&compiled, &mapping, &config.arch);
    assert!(report.is_empty(), "baseline must be clean: {report}");
    (compiled, mapping, config.arch)
}

fn placements_mut(mapping: &mut Mapping, idx: usize) -> &mut Vec<rap_mapper::Placement> {
    match &mut mapping.arrays[idx].kind {
        ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } => placements,
        ArrayKind::Lnfa { .. } => panic!("array {idx} is LNFA"),
    }
}

#[test]
fn v001_bv_depth_zero_is_an_error() {
    let (compiled, mut mapping, arch) = setup(&["x{100}y"]);
    for a in &mut mapping.arrays {
        if let ArrayKind::Nbva { depth, .. } = &mut a.kind {
            *depth = 0;
        }
    }
    let report = verify(&compiled, &mapping, &arch);
    assert!(!report.is_legal());
    assert!(!report.by_rule(Rule::BvDepth).is_empty(), "{report}");
}

#[test]
fn v002_bv_width_overflow_is_an_error() {
    let (mut compiled, mapping, arch) = setup(&["x{100}y"]);
    for c in &mut compiled {
        if let Compiled::Nbva(img) = c {
            let alloc = img.bv_allocs.iter_mut().flatten().next().expect("has a BV");
            alloc.width_bits = 10 * arch.max_bv_bits();
        }
    }
    let report = verify(&compiled, &mapping, &arch);
    assert!(!report.is_legal());
    assert!(!report.by_rule(Rule::BvWidth).is_empty(), "{report}");
}

#[test]
fn v003_read_action_mix_in_one_tile() {
    // b{10,48} compiles to one r(10) BV state and one rAll BV state; the
    // packer keeps them apart when needed, so force every state into tile 0.
    let (compiled, mut mapping, arch) = setup(&["ab{10,48}c"]);
    for idx in 0..mapping.arrays.len() {
        if mapping.arrays[idx].mode() == rap_compiler::Mode::Nbva {
            for p in placements_mut(&mut mapping, idx) {
                p.state_tile.fill(0);
                p.cross_tile_edges = 0;
            }
        }
    }
    let report = verify(&compiled, &mapping, &arch);
    assert!(!report.by_rule(Rule::ReadActionMix).is_empty(), "{report}");
}

#[test]
fn v004_state_tile_out_of_range() {
    let (compiled, mut mapping, arch) = setup(&["a.*b"]);
    placements_mut(&mut mapping, 0)[0].state_tile[0] = 99;
    let report = verify(&compiled, &mapping, &arch);
    assert!(!report.is_legal());
    assert!(!report.by_rule(Rule::PlacementRange).is_empty(), "{report}");
}

#[test]
fn v005_inflated_columns_used() {
    let (compiled, mut mapping, arch) = setup(&["a.*b"]);
    mapping.arrays[0].columns_used += 1000;
    let report = verify(&compiled, &mapping, &arch);
    assert!(!report.is_legal());
    assert!(
        !report.by_rule(Rule::ColumnOvercommit).is_empty(),
        "{report}"
    );
}

#[test]
fn v006_cross_tile_edge_miscount() {
    let (compiled, mut mapping, arch) = setup(&["a.*b"]);
    placements_mut(&mut mapping, 0)[0].cross_tile_edges += 7;
    let report = verify(&compiled, &mapping, &arch);
    assert!(!report.is_legal());
    assert!(!report.by_rule(Rule::GlobalPorts).is_empty(), "{report}");
}

#[test]
fn v007_oversized_bin() {
    let (compiled, mut mapping, arch) = setup(&["hello world"]);
    for a in &mut mapping.arrays {
        if let ArrayKind::Lnfa { bins } = &mut a.kind {
            bins[0].size = 2 * arch.max_bin_size;
        }
    }
    let report = verify(&compiled, &mapping, &arch);
    assert!(!report.is_legal());
    assert!(!report.by_rule(Rule::BinShape).is_empty(), "{report}");
}

#[test]
fn v008_duplicated_pattern() {
    let (compiled, mut mapping, arch) = setup(&["a.*b"]);
    let dup = mapping.arrays[0].clone();
    mapping.arrays.push(dup);
    let report = verify(&compiled, &mapping, &arch);
    assert!(!report.is_legal());
    assert!(
        !report.by_rule(Rule::PatternCoverage).is_empty(),
        "{report}"
    );
}

#[test]
fn v009_member_length_mismatch() {
    let (compiled, mut mapping, arch) = setup(&["hello world"]);
    for a in &mut mapping.arrays {
        if let ArrayKind::Lnfa { bins } = &mut a.kind {
            bins[0].members[0].len += 1;
        }
    }
    let report = verify(&compiled, &mapping, &arch);
    assert!(!report.is_legal());
    assert!(!report.by_rule(Rule::CcEncoding).is_empty(), "{report}");
}

#[test]
fn v010_tile_overflow() {
    let (compiled, mut mapping, arch) = setup(&["a.*b"]);
    mapping.arrays[0].tiles_used = arch.tiles_per_array + 5;
    let report = verify(&compiled, &mapping, &arch);
    assert!(!report.is_legal());
    assert!(!report.by_rule(Rule::ArrayOverflow).is_empty(), "{report}");
}

#[test]
fn v011_arch_mismatch_warns() {
    let (compiled, mapping, mut arch) = setup(&["a.*b"]);
    arch.cam_rows *= 2;
    let report = verify(&compiled, &mapping, &arch);
    let hits = report.by_rule(Rule::ConfigMismatch);
    assert!(!hits.is_empty(), "{report}");
    assert!(hits.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn v012_low_utilization_info() {
    let (compiled, mut mapping, arch) = setup(&["a.*b"]);
    // Claim the whole array while occupying a handful of columns: legal,
    // but flagged as wasteful.
    mapping.arrays[0].tiles_used = arch.tiles_per_array;
    let report = verify(&compiled, &mapping, &arch);
    assert!(report.is_legal(), "{report}");
    let hits = report.by_rule(Rule::LowUtilization);
    assert!(!hits.is_empty(), "{report}");
    assert!(hits.iter().all(|d| d.severity == Severity::Info));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random single-field corruption of a clean mapping always trips the
    /// rule documented for that corruption.
    #[test]
    fn mutations_trip_the_documented_rule(
        mutation in 0usize..4,
        magnitude in 1u32..1000,
    ) {
        let (compiled, mut mapping, arch) =
            setup(&["a.*b", "x{100}y", "hello world"]);
        let expected = match mutation {
            0 => {
                // Bump a state_tile entry out of the allocated range.
                let tiles = mapping.arrays[0].tiles_used;
                placements_mut(&mut mapping, 0)[0].state_tile[0] = tiles + magnitude;
                Rule::PlacementRange
            }
            1 => {
                mapping.arrays[0].columns_used += u64::from(magnitude);
                Rule::ColumnOvercommit
            }
            2 => {
                let dup = mapping.arrays[magnitude as usize % mapping.arrays.len()].clone();
                mapping.arrays.push(dup);
                Rule::PatternCoverage
            }
            _ => {
                let mut bumped = false;
                for a in &mut mapping.arrays {
                    if let ArrayKind::Lnfa { bins } = &mut a.kind {
                        bins[0].size = arch.max_bin_size + magnitude;
                        bumped = true;
                    }
                }
                prop_assert!(bumped, "workload always has an LNFA array");
                Rule::BinShape
            }
        };
        let report = verify(&compiled, &mapping, &arch);
        prop_assert!(!report.is_legal(), "mutation {} must be illegal", mutation);
        prop_assert!(
            !report.by_rule(expected).is_empty(),
            "expected {} in:\n{}",
            expected.code(),
            report
        );
    }
}
