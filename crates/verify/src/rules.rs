//! The rule implementations: each function walks one aspect of the plan
//! and records findings in the [`Report`].

use crate::diag::{Location, Report, Rule, Severity};
use rap_arch::config::ArchConfig;
use rap_arch::encoding::single_code;
use rap_automata::nbva::ReadAction;
use rap_compiler::{Compiled, CompiledNbva, CompiledNfa, MatchPath};
use rap_mapper::binning::Bin;
use rap_mapper::plan::{ArrayKind, ArrayPlan, Mapping, Placement};
use std::collections::HashSet;

/// The BV depths the paper sweeps (Fig. 10(a)); other values execute but
/// are outside the validated design space.
const SWEPT_BV_DEPTHS: [u32; 4] = [4, 8, 16, 32];

/// Arrays occupying less than this fraction of their allocated columns
/// while spanning several tiles draw a utilization info.
const LOW_UTILIZATION: f64 = 0.02;

/// Shared context for all rule passes.
pub(crate) struct Checker<'a> {
    pub compiled: &'a [Compiled],
    pub mapping: &'a Mapping,
    pub arch: &'a ArchConfig,
    pub report: Report,
}

impl Checker<'_> {
    /// Runs every rule pass and returns the collected report.
    pub(crate) fn run(mut self) -> Report {
        self.check_config();
        self.check_coverage();
        for (idx, array) in self.mapping.arrays.iter().enumerate() {
            self.check_array_shape(idx, array);
            match &array.kind {
                ArrayKind::Nfa { placements } => {
                    self.check_state_arrays(idx, array, placements, None)
                }
                ArrayKind::Nbva { depth, placements } => {
                    self.check_state_arrays(idx, array, placements, Some(*depth))
                }
                ArrayKind::Lnfa { bins } => self.check_lnfa_array(idx, array, bins),
            }
        }
        self.report
    }

    fn error(&mut self, rule: Rule, loc: Location, msg: String) {
        self.report.push(rule, Severity::Error, loc, msg);
    }

    fn warn(&mut self, rule: Rule, loc: Location, msg: String) {
        self.report.push(rule, Severity::Warning, loc, msg);
    }

    fn info(&mut self, rule: Rule, loc: Location, msg: String) {
        self.report.push(rule, Severity::Info, loc, msg);
    }

    /// V011: the plan must have been produced for the architecture it is
    /// verified against.
    fn check_config(&mut self) {
        let cfg = &self.mapping.config;
        if cfg.arch != *self.arch {
            self.warn(
                Rule::ConfigMismatch,
                Location::default(),
                "mapping was produced for a different ArchConfig than the one \
                 verified against"
                    .into(),
            );
        }
        if cfg.bin_size > self.arch.max_bin_size {
            self.warn(
                Rule::ConfigMismatch,
                Location::default(),
                format!(
                    "configured bin size {} exceeds max_bin_size {} (the mapper \
                     clamps it)",
                    cfg.bin_size, self.arch.max_bin_size
                ),
            );
        }
    }

    /// V008 (+V004 for out-of-range indices): every pattern placed exactly
    /// once, in an array of its mode; every LNFA unit exactly once.
    fn check_coverage(&mut self) {
        let n = self.compiled.len();
        let mut seen = vec![0u32; n];
        // (pattern, unit) placements for LNFA images.
        let mut unit_seen: Vec<Vec<u32>> = self
            .compiled
            .iter()
            .map(|c| match c {
                Compiled::Lnfa(img) => vec![0u32; img.units.len()],
                _ => Vec::new(),
            })
            .collect();

        for (idx, array) in self.mapping.arrays.iter().enumerate() {
            match &array.kind {
                ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } => {
                    for p in placements {
                        let loc = Location::array(idx).pattern(p.pattern);
                        if p.pattern >= n {
                            self.error(
                                Rule::PlacementRange,
                                loc,
                                format!(
                                    "placement names pattern {} but the workload has \
                                     only {n}",
                                    p.pattern
                                ),
                            );
                            continue;
                        }
                        seen[p.pattern] += 1;
                        let mode = self.compiled[p.pattern].mode();
                        if mode != array.mode() {
                            self.error(
                                Rule::PatternCoverage,
                                loc,
                                format!(
                                    "pattern compiled for {mode} placed in a {} array",
                                    array.mode()
                                ),
                            );
                        }
                    }
                }
                ArrayKind::Lnfa { bins } => {
                    for (b, bin) in bins.iter().enumerate() {
                        for m in &bin.members {
                            let loc = Location::array(idx).bin(b).pattern(m.pattern);
                            if m.pattern >= n {
                                self.error(
                                    Rule::PlacementRange,
                                    loc,
                                    format!(
                                        "bin member names pattern {} but the workload \
                                         has only {n}",
                                        m.pattern
                                    ),
                                );
                                continue;
                            }
                            let Compiled::Lnfa(img) = &self.compiled[m.pattern] else {
                                self.error(
                                    Rule::PatternCoverage,
                                    loc,
                                    format!(
                                        "pattern compiled for {} placed in a LNFA array",
                                        self.compiled[m.pattern].mode()
                                    ),
                                );
                                continue;
                            };
                            if m.unit >= img.units.len() {
                                self.error(
                                    Rule::PlacementRange,
                                    loc,
                                    format!(
                                        "bin member names unit {} but the image has \
                                         only {}",
                                        m.unit,
                                        img.units.len()
                                    ),
                                );
                                continue;
                            }
                            unit_seen[m.pattern][m.unit] += 1;
                        }
                    }
                }
            }
        }

        for (pattern, c) in self.compiled.iter().enumerate() {
            let loc = Location::default().pattern(pattern);
            match c {
                Compiled::Lnfa(_) => {
                    let units = &unit_seen[pattern];
                    if units.iter().all(|&k| k == 0) {
                        self.error(
                            Rule::PatternCoverage,
                            loc,
                            "pattern is not placed in any array".into(),
                        );
                    } else if let Some(unit) = units.iter().position(|&k| k != 1) {
                        self.error(
                            Rule::PatternCoverage,
                            loc,
                            format!(
                                "chain unit {unit} placed {} times (expected once)",
                                units[unit]
                            ),
                        );
                    }
                }
                _ => match seen[pattern] {
                    1 => {}
                    0 => self.error(
                        Rule::PatternCoverage,
                        loc,
                        "pattern is not placed in any array".into(),
                    ),
                    k => self.error(
                        Rule::PatternCoverage,
                        loc,
                        format!("pattern placed {k} times (expected once)"),
                    ),
                },
            }
        }
    }

    /// V010 + V012: per-array geometry and utilization advisories.
    fn check_array_shape(&mut self, idx: usize, array: &ArrayPlan) {
        let loc = Location::array(idx);
        if array.tiles_used > self.arch.tiles_per_array {
            self.error(
                Rule::ArrayOverflow,
                loc,
                format!(
                    "array claims {} tiles but the architecture has {} per array",
                    array.tiles_used, self.arch.tiles_per_array
                ),
            );
        }
        let capacity = u64::from(array.tiles_used) * u64::from(self.arch.tile_columns);
        if capacity > 0
            && array.tiles_used > 1
            && (array.columns_used as f64) < LOW_UTILIZATION * capacity as f64
        {
            self.info(
                Rule::LowUtilization,
                loc,
                format!(
                    "array occupies {} of {capacity} allocated columns",
                    array.columns_used
                ),
            );
        }
    }

    /// The NFA/NBVA array passes: V001/V002/V003 (NBVA only), V004, V005,
    /// V006.
    fn check_state_arrays(
        &mut self,
        idx: usize,
        array: &ArrayPlan,
        placements: &[Placement],
        depth: Option<u32>,
    ) {
        if let Some(depth) = depth {
            self.check_bv_depth(idx, placements, depth);
        }

        let tiles = self.arch.tiles_per_array as usize;
        let mut tile_columns = vec![0u64; tiles];
        // A global port carries one state's activation signal, however many
        // consumers it fans out to: count distinct signals leaving (out) and
        // entering (in) each tile, keyed by (pattern, source state).
        let mut tile_out: Vec<HashSet<(usize, u32)>> = vec![HashSet::new(); tiles];
        let mut tile_in: Vec<HashSet<(usize, u32)>> = vec![HashSet::new(); tiles];
        let mut tile_actions: Vec<Option<ReadAction>> = vec![None; tiles];

        for p in placements {
            if p.pattern >= self.compiled.len() {
                continue; // reported by check_coverage
            }
            let loc = Location::array(idx).pattern(p.pattern);
            let image = &self.compiled[p.pattern];
            let (states, edges) = match image {
                Compiled::Nfa(img) => (img.nfa.len(), nfa_edges(img)),
                Compiled::Nbva(img) => (img.nbva.len(), nbva_edges(img)),
                Compiled::Lnfa(_) => continue, // mode mismatch already reported
            };
            if p.state_tile.len() != states {
                self.error(
                    Rule::PlacementRange,
                    loc,
                    format!(
                        "placement maps {} states but the automaton has {states}",
                        p.state_tile.len()
                    ),
                );
                continue;
            }
            let mut in_range = true;
            for (state, &tile) in p.state_tile.iter().enumerate() {
                if tile >= array.tiles_used || tile >= self.arch.tiles_per_array {
                    self.error(
                        Rule::PlacementRange,
                        loc.tile(tile),
                        format!(
                            "state {state} placed in tile {tile} outside the \
                             array's {} allocated tiles",
                            array.tiles_used
                        ),
                    );
                    in_range = false;
                }
            }
            if !in_range {
                continue;
            }

            // Column accounting + NBVA per-state checks.
            match image {
                Compiled::Nfa(img) => {
                    for (state, &cols) in img.state_columns.iter().enumerate() {
                        tile_columns[p.state_tile[state] as usize] += u64::from(cols.max(1));
                    }
                }
                Compiled::Nbva(img) => {
                    self.check_nbva_states(idx, array, p, img, &mut tile_columns);
                    for (state, alloc) in img.bv_allocs.iter().enumerate() {
                        let Some(alloc) = alloc else { continue };
                        let tile = p.state_tile[state] as usize;
                        // V003: no r with rAll in one tile.
                        match (normalize(alloc.read), tile_actions[tile]) {
                            (a, None) => tile_actions[tile] = Some(a),
                            (a, Some(b)) if a == b => {}
                            (_, Some(_)) => self.error(
                                Rule::ReadActionMix,
                                loc.tile(tile as u32),
                                "tile hosts both r and rAll bit-vector read \
                                 actions"
                                    .to_string(),
                            ),
                        }
                    }
                }
                Compiled::Lnfa(_) => unreachable!("filtered above"),
            }

            // V006: recomputed cross-tile edge count and port demand.
            let mut crossing = 0u32;
            for &(from, to) in &edges {
                let (ft, tt) = (p.state_tile[from as usize], p.state_tile[to as usize]);
                if ft != tt {
                    crossing += 1;
                    tile_out[ft as usize].insert((p.pattern, from));
                    tile_in[tt as usize].insert((p.pattern, from));
                }
            }
            if crossing != p.cross_tile_edges {
                self.error(
                    Rule::GlobalPorts,
                    loc,
                    format!(
                        "placement records {} cross-tile edges but the automaton \
                         wiring has {crossing}",
                        p.cross_tile_edges
                    ),
                );
            }
        }

        for (tile, &cols) in tile_columns.iter().enumerate() {
            if cols > u64::from(self.arch.tile_columns) {
                self.error(
                    Rule::ColumnOvercommit,
                    Location::array(idx).tile(tile as u32),
                    format!(
                        "tile holds {cols} columns of state storage but has only {}",
                        self.arch.tile_columns
                    ),
                );
            }
        }
        let total: u64 = tile_columns.iter().sum();
        if total != array.columns_used && !placements.is_empty() {
            self.error(
                Rule::ColumnOvercommit,
                Location::array(idx),
                format!(
                    "array records columns_used = {} but its placements occupy \
                     {total}",
                    array.columns_used
                ),
            );
        }
        // Input and output taps are separate port banks; each side gets the
        // full per-tile budget.
        for (tile, (out, inp)) in tile_out.iter().zip(&tile_in).enumerate() {
            for (dir, ports) in [("output", out.len() as u64), ("input", inp.len() as u64)] {
                if ports > u64::from(self.arch.global_ports_per_tile) {
                    self.warn(
                        Rule::GlobalPorts,
                        Location::array(idx).tile(tile as u32),
                        format!(
                            "tile needs {ports} global-switch {dir} ports but has {}",
                            self.arch.global_ports_per_tile
                        ),
                    );
                }
            }
        }
    }

    /// V001: depth legality and uniformity for one NBVA array.
    fn check_bv_depth(&mut self, idx: usize, placements: &[Placement], depth: u32) {
        let loc = Location::array(idx);
        if depth == 0 || depth > self.arch.cam_rows {
            self.error(
                Rule::BvDepth,
                loc,
                format!(
                    "BV depth {depth} outside the CAM's 1..={} rows",
                    self.arch.cam_rows
                ),
            );
        } else if !SWEPT_BV_DEPTHS.contains(&depth) {
            self.warn(
                Rule::BvDepth,
                loc,
                format!("BV depth {depth} outside the validated set {SWEPT_BV_DEPTHS:?}"),
            );
        }
        for p in placements {
            let Some(Compiled::Nbva(img)) = self.compiled.get(p.pattern) else {
                continue;
            };
            if img.depth != depth {
                self.error(
                    Rule::BvDepth,
                    loc.pattern(p.pattern),
                    format!(
                        "image compiled at BV depth {} placed in a depth-{depth} \
                         array",
                        img.depth
                    ),
                );
            }
        }
    }

    /// V002 + V005 accounting for one NBVA placement.
    fn check_nbva_states(
        &mut self,
        idx: usize,
        _array: &ArrayPlan,
        p: &Placement,
        img: &CompiledNbva,
        tile_columns: &mut [u64],
    ) {
        let loc = Location::array(idx).pattern(p.pattern);
        let bvm = self.mapping.config.bvm;
        for (state, (&cols, alloc)) in img
            .state_columns
            .iter()
            .zip(img.bv_allocs.iter())
            .enumerate()
        {
            let block = match (alloc, bvm) {
                // BVAP-style machines keep the vector in BVM slots; the CAM
                // block shrinks to the CC codes + initial vector.
                (Some(a), Some(_)) => cols.saturating_sub(a.columns).max(1),
                _ => cols.max(1),
            };
            tile_columns[p.state_tile[state] as usize] += u64::from(block);
            if block > self.arch.tile_columns {
                self.error(
                    Rule::BvWidth,
                    loc.tile(p.state_tile[state]),
                    format!(
                        "state {state} needs {block} columns in one tile (> {}); \
                         bit vectors cannot span tiles",
                        self.arch.tile_columns
                    ),
                );
            }
            let Some(alloc) = alloc else { continue };
            if alloc.width_bits == 0 || alloc.width_bits > self.arch.max_bv_bits() {
                self.error(
                    Rule::BvWidth,
                    loc,
                    format!(
                        "state {state} allocates a {}-bit vector (legal range 1..={})",
                        alloc.width_bits,
                        self.arch.max_bv_bits()
                    ),
                );
            }
            if alloc.depth > 0 && alloc.columns != alloc.width_bits.div_ceil(alloc.depth) {
                self.error(
                    Rule::BvWidth,
                    loc,
                    format!(
                        "state {state} records {} BV columns; {} bits at depth {} \
                         require {}",
                        alloc.columns,
                        alloc.width_bits,
                        alloc.depth,
                        alloc.width_bits.div_ceil(alloc.depth)
                    ),
                );
            }
        }
    }

    /// The LNFA array passes: V004/V005/V007/V009.
    fn check_lnfa_array(&mut self, idx: usize, array: &ArrayPlan, bins: &[Bin]) {
        // Per-resource tile occupancy: CAM-path bins and switch-path bins
        // overlay the same tiles (§3.2), so overlap is only illegal within
        // one resource.
        let mut spans: [Vec<(u32, u32, usize)>; 2] = [Vec::new(), Vec::new()];
        let mut columns_total = 0u64;

        for (b, bin) in bins.iter().enumerate() {
            let loc = Location::array(idx).bin(b);
            columns_total += bin.columns_used();
            self.check_bin_shape(idx, b, bin);
            if array.tiles_used <= self.arch.tiles_per_array
                && bin.first_tile + bin.tiles > array.tiles_used
            {
                self.error(
                    Rule::BinShape,
                    loc,
                    format!(
                        "bin spans tiles {}..{} outside the array's {} allocated \
                         tiles",
                        bin.first_tile,
                        bin.first_tile + bin.tiles,
                        array.tiles_used
                    ),
                );
            }
            let resource = match bin.members.first().map(|m| m.path) {
                Some(MatchPath::LocalSwitch) => 1,
                _ => 0,
            };
            spans[resource].push((bin.first_tile, bin.first_tile + bin.tiles, b));
            self.check_bin_members(idx, b, bin);
        }

        for resource in &mut spans {
            resource.sort_unstable();
            for pair in resource.windows(2) {
                let (&(_, end, first), &(start, _, second)) = (&pair[0], &pair[1]);
                if start < end {
                    self.error(
                        Rule::ColumnOvercommit,
                        Location::array(idx).bin(second),
                        format!(
                            "bins {first} and {second} overlap on the same tile \
                             memory"
                        ),
                    );
                }
            }
        }

        if columns_total != array.columns_used && !bins.is_empty() {
            self.error(
                Rule::ColumnOvercommit,
                Location::array(idx),
                format!(
                    "array records columns_used = {} but its bins occupy \
                     {columns_total}",
                    array.columns_used
                ),
            );
        }
    }

    /// V007 geometry for one bin.
    fn check_bin_shape(&mut self, idx: usize, b: usize, bin: &Bin) {
        let loc = Location::array(idx).bin(b);
        if bin.size == 0 || bin.size > self.arch.max_bin_size {
            self.error(
                Rule::BinShape,
                loc,
                format!(
                    "bin size {} outside the architecture's 1..={}",
                    bin.size, self.arch.max_bin_size
                ),
            );
            return;
        }
        if bin.members.len() as u32 > bin.size {
            self.error(
                Rule::BinShape,
                loc,
                format!(
                    "bin holds {} chains but has {} regions",
                    bin.members.len(),
                    bin.size
                ),
            );
        }
        if 2 * bin.size > self.arch.ring_width_bits {
            self.error(
                Rule::BinShape,
                loc,
                format!(
                    "bin size {} needs {} ring bits (2 per lane) but the ring is \
                     {} wide",
                    bin.size,
                    2 * bin.size,
                    self.arch.ring_width_bits
                ),
            );
        }
        if bin.region_columns != self.arch.tile_columns / bin.size {
            self.error(
                Rule::BinShape,
                loc,
                format!(
                    "bin records {}-column regions; {} regions of a {}-column tile \
                     give {}",
                    bin.region_columns,
                    bin.size,
                    self.arch.tile_columns,
                    self.arch.tile_columns / bin.size
                ),
            );
            return;
        }
        if bin.region_columns == 0 {
            return; // reported above via size > tile_columns geometry
        }
        let needed = bin
            .members
            .iter()
            .map(|m| m.columns().div_ceil(bin.region_columns))
            .max()
            .unwrap_or(0);
        if bin.tiles < needed {
            self.error(
                Rule::BinShape,
                loc,
                format!(
                    "bin claims {} tiles but its longest chain needs {needed}",
                    bin.tiles
                ),
            );
        }
        if bin.first_tile + bin.tiles > self.arch.tiles_per_array {
            self.error(
                Rule::BinShape,
                loc,
                format!(
                    "bin spans tiles {}..{} beyond the array's {}",
                    bin.first_tile,
                    bin.first_tile + bin.tiles,
                    self.arch.tiles_per_array
                ),
            );
        }
    }

    /// V009: member geometry against the compiled chain units.
    fn check_bin_members(&mut self, idx: usize, b: usize, bin: &Bin) {
        for m in &bin.members {
            let loc = Location::array(idx).bin(b).pattern(m.pattern);
            let Some(Compiled::Lnfa(img)) = self.compiled.get(m.pattern) else {
                continue; // reported by check_coverage
            };
            let Some(unit) = img.units.get(m.unit) else {
                continue; // reported by check_coverage
            };
            if m.len as usize != unit.lnfa.len() {
                self.error(
                    Rule::CcEncoding,
                    loc,
                    format!(
                        "bin member records a {}-state chain but unit {} has {}",
                        m.len,
                        m.unit,
                        unit.lnfa.len()
                    ),
                );
            }
            let expected_cols = match m.path {
                MatchPath::Cam => 1,
                MatchPath::LocalSwitch => 2,
            };
            if m.cols_per_state != expected_cols {
                self.error(
                    Rule::CcEncoding,
                    loc,
                    format!(
                        "{:?}-path chain records {} columns per state (expected \
                         {expected_cols})",
                        m.path, m.cols_per_state
                    ),
                );
            }
            // The one-hot local-switch fallback is always legal; the CAM
            // path requires every class to fit a single CC code.
            if m.path == MatchPath::Cam {
                let all_single = unit
                    .lnfa
                    .classes()
                    .iter()
                    .all(|cc| single_code(cc).is_some());
                if !all_single {
                    self.error(
                        Rule::CcEncoding,
                        loc,
                        "CAM-path chain contains a character class with no single \
                         CC code (needs the one-hot local-switch path)"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// Collapses exact read widths: only the r-vs-rAll family matters for the
/// tile-sharing rule.
fn normalize(read: ReadAction) -> ReadAction {
    match read {
        ReadAction::Exact(_) => ReadAction::Exact(0),
        ReadAction::All => ReadAction::All,
    }
}

fn nfa_edges(img: &CompiledNfa) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for (p, s) in img.nfa.states().iter().enumerate() {
        for &q in &s.succ {
            edges.push((p as u32, q));
        }
    }
    edges
}

fn nbva_edges(img: &CompiledNbva) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for (p, s) in img.nbva.states().iter().enumerate() {
        for &q in &s.succ {
            edges.push((p as u32, q));
        }
    }
    edges
}
