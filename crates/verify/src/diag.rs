//! The verifier's rule codes, plus re-exports of the shared diagnostic
//! machinery from `rap-diag` — both lint families (`rap lint`,
//! `rap analyze`) emit one report shape and one JSON schema.

use std::fmt;

pub use rap_diag::{Location, RuleCode, Severity};

/// One mapping-legality finding.
pub type Diagnostic = rap_diag::Diagnostic<Rule>;
/// The verifier's output: every finding, in check order.
pub type Report = rap_diag::Report<Rule>;

/// The legality rules the verifier checks. Each rule has a stable code
/// (`V001`…) used in reports, test assertions, and the CLI's JSON output —
/// codes are append-only and never renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// `V001-bv-depth`: every NBVA array's BV depth must be valid for the
    /// CAM (1..=cam_rows), match the depth of every image placed in it,
    /// and (warning) come from the paper's swept set {4, 8, 16, 32}.
    BvDepth,
    /// `V002-bv-width`: a bit vector must fit the tile: width ≤
    /// `max_bv_bits()`, columns = ⌈width/depth⌉, and the state's block
    /// (CC codes + initial-vector column + BV columns) ≤ `tile_columns` —
    /// BVs never span tiles (§3.1).
    BvWidth,
    /// `V003-read-action-mix`: a tile may not host both `r` (exact) and
    /// `rAll` bit-vector read actions (§4.1, Example 4.3).
    ReadActionMix,
    /// `V004-placement-range`: placement indices must be in range —
    /// pattern < workload size, unit < chain count, state↦tile vector
    /// length = automaton size, tile < allocated tiles.
    PlacementRange,
    /// `V005-column-overcommit`: per-tile column occupancy must not exceed
    /// `tile_columns`, and the plan's `columns_used` bookkeeping must match
    /// the recomputed totals.
    ColumnOvercommit,
    /// `V006-global-ports`: `cross_tile_edges` must equal the recomputed
    /// count, and (warning) per-tile global-switch port demand should stay
    /// within `global_ports_per_tile`.
    GlobalPorts,
    /// `V007-bin-shape`: an LNFA bin must respect `max_bin_size`, region
    /// geometry (`region_columns = tile_columns / size`), ring width
    /// (2 bits per member lane), its computed tile span, and the array
    /// boundary; same-resource bins may not overlap tiles.
    BinShape,
    /// `V008-pattern-coverage`: every compiled pattern must be placed
    /// exactly once, in an array of its own mode (every LNFA unit exactly
    /// once).
    PatternCoverage,
    /// `V009-cc-encoding`: a CAM-path chain requires every character class
    /// to have a single CC code; member geometry (columns per state, chain
    /// length) must match the compiled unit. One-hot fallback is always
    /// legal.
    CcEncoding,
    /// `V010-array-overflow`: `tiles_used` ≤ `tiles_per_array`.
    ArrayOverflow,
    /// `V011-config-mismatch`: (warning) the mapping was produced for a
    /// different `ArchConfig` than the one being verified against, or its
    /// bin-size knob exceeds `max_bin_size`.
    ConfigMismatch,
    /// `V012-low-utilization`: (info) an array occupies under 2% of its
    /// allocated columns while spanning several tiles.
    LowUtilization,
}

impl Rule {
    /// The stable diagnostic code, e.g. `"V001-bv-depth"`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::BvDepth => "V001-bv-depth",
            Rule::BvWidth => "V002-bv-width",
            Rule::ReadActionMix => "V003-read-action-mix",
            Rule::PlacementRange => "V004-placement-range",
            Rule::ColumnOvercommit => "V005-column-overcommit",
            Rule::GlobalPorts => "V006-global-ports",
            Rule::BinShape => "V007-bin-shape",
            Rule::PatternCoverage => "V008-pattern-coverage",
            Rule::CcEncoding => "V009-cc-encoding",
            Rule::ArrayOverflow => "V010-array-overflow",
            Rule::ConfigMismatch => "V011-config-mismatch",
            Rule::LowUtilization => "V012-low-utilization",
        }
    }

    /// All rules, in code order (drives the documentation table and the
    /// CLI's rule listing).
    pub fn all() -> &'static [Rule] {
        &[
            Rule::BvDepth,
            Rule::BvWidth,
            Rule::ReadActionMix,
            Rule::PlacementRange,
            Rule::ColumnOvercommit,
            Rule::GlobalPorts,
            Rule::BinShape,
            Rule::PatternCoverage,
            Rule::CcEncoding,
            Rule::ArrayOverflow,
            Rule::ConfigMismatch,
            Rule::LowUtilization,
        ]
    }
}

impl RuleCode for Rule {
    fn code(&self) -> &'static str {
        Rule::code(*self)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(Rule::code(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<&str> = Rule::all().iter().map(|r| r.code()).collect();
        assert_eq!(codes.len(), 12);
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "duplicate rule codes");
        assert!(codes
            .iter()
            .enumerate()
            .all(|(i, c)| { c.starts_with(&format!("V{:03}-", i + 1)) }));
    }

    #[test]
    fn location_display_forms() {
        assert_eq!(Location::default().to_string(), "mapping");
        assert_eq!(
            Location::array(2).pattern(7).tile(3).to_string(),
            "array 2, pattern 7, tile 3"
        );
        assert_eq!(Location::array(0).bin(4).to_string(), "array 0, bin 4");
    }

    #[test]
    fn report_legality() {
        let mut r = Report::default();
        assert!(r.is_legal() && r.is_empty());
        r.push(
            Rule::BvDepth,
            Severity::Warning,
            Location::default(),
            "w".into(),
        );
        assert!(r.is_legal() && !r.is_empty());
        r.push(
            Rule::BvWidth,
            Severity::Error,
            Location::array(0),
            "e".into(),
        );
        assert!(!r.is_legal());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.by_rule(Rule::BvWidth).len(), 1);
        assert_eq!(r.len(), 2);
    }
}
