//! Static legality verifier for compiled RAP automata and mapping plans.
//!
//! The compiler and mapper enforce the hardware invariants of §3–§4 with
//! scattered `assert!`s that abort the process. This crate re-checks every
//! invariant *statically* — walking a [`Compiled`] workload, its
//! [`Mapping`], and the target [`ArchConfig`] — and emits structured
//! [`Diagnostic`]s instead of panicking, so tooling (the `rap lint` CLI
//! subcommand, the bench harness, the simulator's plan gate) can report
//! all violations at once and point at the offending array / tile /
//! pattern.
//!
//! # Rules
//!
//! | Code | Severity | Invariant |
//! |------|----------|-----------|
//! | `V001-bv-depth` | error/warning | NBVA depth valid for the CAM, uniform per array, in the swept set {4, 8, 16, 32} |
//! | `V002-bv-width` | error | BV width ≤ `max_bv_bits()`, columns = ⌈width/depth⌉, BV blocks never span tiles |
//! | `V003-read-action-mix` | error | no tile hosts both `r` and `rAll` read actions (§4.1) |
//! | `V004-placement-range` | error | pattern/unit/tile indices in range, state↦tile vector sized to the automaton |
//! | `V005-column-overcommit` | error | per-tile columns ≤ `tile_columns`; `columns_used` bookkeeping consistent; same-resource bins disjoint |
//! | `V006-global-ports` | error/warning | recorded cross-tile edge counts match the wiring; per-tile port demand within budget |
//! | `V007-bin-shape` | error | bin size ≤ `max_bin_size`, region geometry and ring width respected, span within the array |
//! | `V008-pattern-coverage` | error | every pattern (and every LNFA chain unit) placed exactly once, mode-matched |
//! | `V009-cc-encoding` | error | CAM-path chains single-code only; member geometry matches the compiled unit |
//! | `V010-array-overflow` | error | `tiles_used` ≤ `tiles_per_array` |
//! | `V011-config-mismatch` | warning | mapping produced for a different `ArchConfig` / oversized bin knob |
//! | `V012-low-utilization` | info | multi-tile array under 2% column occupancy |
//!
//! # Example
//!
//! ```
//! use rap_compiler::{Compiler, CompilerConfig};
//! use rap_mapper::{map_workload, MapperConfig};
//!
//! let compiler = Compiler::new(CompilerConfig::default());
//! let compiled = vec![compiler.compile_str("ab{20}c")?, compiler.compile_str("xyz")?];
//! let mapping = map_workload(&compiled, &MapperConfig::default());
//! let report = rap_verify::verify(&compiled, &mapping, &MapperConfig::default().arch);
//! assert!(report.is_empty(), "{report}");
//!
//! // Corrupt the plan: point a state at a tile that was never allocated.
//! let mut broken = mapping.clone();
//! if let rap_mapper::ArrayKind::Nfa { placements } | rap_mapper::ArrayKind::Nbva { placements, .. } =
//!     &mut broken.arrays[0].kind
//! {
//!     placements[0].state_tile[0] = 99;
//! }
//! let report = rap_verify::verify(&compiled, &broken, &MapperConfig::default().arch);
//! assert!(!report.is_legal());
//! # Ok::<(), rap_compiler::CompileError>(())
//! ```

mod diag;
mod rules;

pub use diag::{Diagnostic, Location, Report, Rule, Severity};

use rap_arch::config::ArchConfig;
use rap_compiler::Compiled;
use rap_mapper::Mapping;

/// Statically verifies a mapping plan against the compiled workload and
/// the architecture, returning every finding.
///
/// An empty report means the plan is provably legal under the checked
/// rules; [`Report::is_legal`] ignores warnings/infos and answers "may the
/// hardware execute this".
pub fn verify(compiled: &[Compiled], mapping: &Mapping, arch: &ArchConfig) -> Report {
    rules::Checker {
        compiled,
        mapping,
        arch,
        report: Report::default(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_compiler::{Compiler, CompilerConfig};
    use rap_mapper::{map_workload, ArrayKind, MapperConfig};

    fn compile(patterns: &[&str]) -> Vec<Compiled> {
        let compiler = Compiler::new(CompilerConfig::default());
        patterns
            .iter()
            .map(|p| compiler.compile_str(p).expect("compiles"))
            .collect()
    }

    fn setup(patterns: &[&str]) -> (Vec<Compiled>, Mapping, ArchConfig) {
        let compiled = compile(patterns);
        let config = MapperConfig::default();
        let mapping = map_workload(&compiled, &config);
        (compiled, mapping, config.arch)
    }

    #[test]
    fn mixed_mode_workload_verifies_clean() {
        // One pattern per mode plus a multi-chain LNFA union.
        let (compiled, mapping, arch) = setup(&["abc", "x{100}y", "a.*b", "p(q|r)s"]);
        let report = verify(&compiled, &mapping, &arch);
        assert!(report.is_empty(), "{report}");
    }

    #[test]
    fn missing_pattern_is_reported() {
        let (compiled, mut mapping, arch) = setup(&["abc", "a.*b"]);
        mapping
            .arrays
            .retain(|a| a.mode() != rap_compiler::Mode::Nfa);
        let report = verify(&compiled, &mapping, &arch);
        assert!(!report.is_legal());
        assert_eq!(report.by_rule(Rule::PatternCoverage).len(), 1);
    }

    #[test]
    fn duplicated_placement_is_reported() {
        let (compiled, mut mapping, arch) = setup(&["a.*b"]);
        let dup = mapping.arrays[0].clone();
        mapping.arrays.push(dup);
        let report = verify(&compiled, &mapping, &arch);
        assert!(report
            .by_rule(Rule::PatternCoverage)
            .iter()
            .any(|d| d.message.contains("2 times")));
    }

    #[test]
    fn arch_mismatch_is_a_warning_not_an_error() {
        let (compiled, mapping, mut arch) = setup(&["abc"]);
        arch.tile_wire_mm = 9.9;
        let report = verify(&compiled, &mapping, &arch);
        assert!(report.is_legal());
        assert_eq!(report.by_rule(Rule::ConfigMismatch).len(), 1);
    }

    #[test]
    fn depth_mismatch_between_image_and_array() {
        let (compiled, mut mapping, arch) = setup(&["x{100}y"]);
        for a in &mut mapping.arrays {
            if let ArrayKind::Nbva { depth, .. } = &mut a.kind {
                *depth = 16; // images were compiled at the default depth 8
            }
        }
        let report = verify(&compiled, &mapping, &arch);
        assert!(!report.is_legal());
        assert!(!report.by_rule(Rule::BvDepth).is_empty());
    }

    #[test]
    fn unswept_depth_is_only_a_warning() {
        let compiler = Compiler::new(CompilerConfig {
            bv_depth: 10,
            ..CompilerConfig::default()
        });
        let compiled = vec![compiler.compile_str("x{100}y").expect("compiles")];
        let config = MapperConfig::default();
        let mapping = map_workload(&compiled, &config);
        let report = verify(&compiled, &mapping, &config.arch);
        assert!(report.is_legal(), "{report}");
        assert_eq!(report.by_rule(Rule::BvDepth).len(), 1);
        assert_eq!(report.by_rule(Rule::BvDepth)[0].severity, Severity::Warning);
    }

    #[test]
    fn report_display_lists_findings() {
        let (compiled, mut mapping, arch) = setup(&["abc"]);
        mapping.arrays.clear();
        let report = verify(&compiled, &mapping, &arch);
        let shown = report.to_string();
        assert!(shown.contains("V008-pattern-coverage"), "{shown}");
    }
}
