//! Property-based tests for the regex front-end.

use proptest::prelude::*;
use rap_regex::rewrite::{split_bounded, to_sequences, unfold_all, unfold_below_threshold};
use rap_regex::{parse, CharClass, Regex};

/// Strategy producing small random regex ASTs over the alphabet {a, b, c}.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::literal_byte(b'a')),
        Just(Regex::literal_byte(b'b')),
        Just(Regex::literal_byte(b'c')),
        Just(Regex::Class(CharClass::from_bytes([b'a', b'b']))),
        Just(Regex::Class(CharClass::dot())),
        Just(Regex::Empty),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.clone().prop_map(Regex::opt),
            (inner, 0u32..4, 1u32..8)
                .prop_map(|(r, lo, extra)| { Regex::repeat(r, lo, Some(lo + extra)) }),
        ]
    })
}

proptest! {
    /// Displaying an AST and re-parsing it yields the same AST.
    #[test]
    fn display_parse_roundtrip(re in arb_regex()) {
        let shown = re.to_string();
        if !shown.is_empty() {
            let reparsed = parse(&shown)
                .unwrap_or_else(|e| panic!("display form {shown:?} failed to parse: {e}"));
            prop_assert_eq!(re, reparsed, "display form: {}", shown);
        }
    }

    /// Unfolding removes every bounded repetition and preserves the
    /// unfolded state count.
    #[test]
    fn unfold_all_is_repetition_free(re in arb_regex()) {
        let unfolded = unfold_all(&re);
        prop_assert!(!unfolded.has_bounded_repetition());
        prop_assert_eq!(unfolded.unfolded_size(), re.unfolded_size());
    }

    /// Threshold unfolding never *keeps* a repetition at or below the
    /// threshold, with a complex body, or without an upper bound.
    #[test]
    fn threshold_unfolding_invariant(re in arb_regex(), t in 0u32..8) {
        let rewritten = unfold_below_threshold(&re, t);
        for rep in rap_regex::analysis::bounded_repetitions(&rewritten) {
            prop_assert!(rep.single_class, "kept repetition must be single-class");
            let n = rep.max.expect("kept repetition must be bounded");
            prop_assert!(n > t, "kept repetition bound {n} must exceed threshold {t}");
        }
    }

    /// The split rewriting leaves only `r{m}` and `r{0,n}` shapes.
    #[test]
    fn split_bounded_invariant(re in arb_regex()) {
        let rewritten = split_bounded(&re);
        for rep in rap_regex::analysis::bounded_repetitions(&rewritten) {
            if let Some(n) = rep.max {
                prop_assert!(
                    rep.min == n || rep.min == 0,
                    "rep {{{},{}}} survived the split",
                    rep.min,
                    n
                );
            }
        }
    }

    /// Splitting preserves the total unfolded size.
    #[test]
    fn split_bounded_preserves_size(re in arb_regex()) {
        prop_assert_eq!(split_bounded(&re).unfolded_size(), re.unfolded_size());
    }

    /// Sequence expansion (when it succeeds) yields only sequences whose
    /// total length respects the budget, and the pattern's nullability
    /// matches the presence of an empty sequence.
    #[test]
    fn sequences_respect_budget_and_nullability(re in arb_regex()) {
        let budget = 512u64;
        if let Some(seqs) = to_sequences(&re, budget) {
            let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();
            prop_assert!(total <= budget);
            let has_empty = seqs.iter().any(Vec::is_empty);
            // An empty-sequence alternative appears iff the regex is
            // nullable... unless the nullable branch also produced a
            // non-empty duplicate that got deduplicated; nullability can
            // only be under-approximated in one direction:
            if has_empty {
                prop_assert!(re.nullable());
            }
        }
    }
}
