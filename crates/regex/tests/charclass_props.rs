//! Property tests for the character-class algebra and its concrete
//! syntax.

use proptest::prelude::*;
use rap_regex::{parse, CharClass, Regex};

fn arb_class() -> impl Strategy<Value = CharClass> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..32).prop_map(CharClass::from_bytes),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| CharClass::range(a.min(b), a.max(b))),
        Just(CharClass::any()),
        Just(CharClass::dot()),
        Just(CharClass::word()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Complement is an involution and partitions the alphabet.
    #[test]
    fn complement_involution(cc in arb_class()) {
        prop_assert_eq!(cc.complement().complement(), cc);
        prop_assert_eq!(cc.len() + cc.complement().len(), 256);
        prop_assert_eq!(cc.intersection(&cc.complement()), CharClass::empty());
        prop_assert_eq!(cc.union(&cc.complement()), CharClass::any());
    }

    /// De Morgan over the bitmap operations.
    #[test]
    fn de_morgan(a in arb_class(), b in arb_class()) {
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersection(&b.complement())
        );
        prop_assert_eq!(
            a.intersection(&b).complement(),
            a.complement().union(&b.complement())
        );
    }

    /// Union and intersection agree with per-byte semantics.
    #[test]
    fn pointwise_semantics(a in arb_class(), b in arb_class(), byte in any::<u8>()) {
        prop_assert_eq!(a.union(&b).contains(byte), a.contains(byte) || b.contains(byte));
        prop_assert_eq!(
            a.intersection(&b).contains(byte),
            a.contains(byte) && b.contains(byte)
        );
        prop_assert_eq!(a.complement().contains(byte), !a.contains(byte));
    }

    /// Iteration is ascending, duplicate-free, and matches membership.
    #[test]
    fn iteration_is_canonical(cc in arb_class()) {
        let members: Vec<u8> = cc.iter().collect();
        prop_assert!(members.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(members.len() as u32, cc.len());
        for &b in &members {
            prop_assert!(cc.contains(b));
        }
    }

    /// The Display form of a non-empty class parses back (as a regex) into
    /// exactly the same class.
    #[test]
    fn display_parse_roundtrip(cc in arb_class()) {
        prop_assume!(!cc.is_empty());
        let shown = cc.to_string();
        // `\p{any}` is a display nicety, not parser syntax.
        prop_assume!(shown != "\\p{any}");
        let re = parse(&shown)
            .unwrap_or_else(|e| panic!("class display {shown:?} failed to parse: {e}"));
        prop_assert_eq!(re, Regex::Class(cc), "display {}", shown);
    }
}
