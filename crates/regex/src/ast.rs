//! Abstract syntax of the regex subset used by the RAP compiler.
//!
//! The grammar follows §2.1 of the paper:
//!
//! ```text
//! r ::= ε | σ | (r|r) | r·r | r* | r{m,n}
//! ```
//!
//! extended with the usual conveniences `r?` (≡ `r{0,1}`) and `r+`
//! (≡ `r·r*`), both of which are kept as first-class constructors so that
//! the compiler's rewriters can reason about them without eagerly expanding.

use crate::charclass::CharClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A regular expression over the byte alphabet.
///
/// `Concat` and `Alt` are n-ary to keep rewriting simple and trees shallow;
/// the [smart constructors](Regex::concat) flatten nested applications and
/// apply the obvious unit/absorption laws.
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regex {
    /// ε — matches the empty string.
    #[default]
    Empty,
    /// σ — matches any single byte in the class.
    Class(CharClass),
    /// r₁ · r₂ · … — matches the concatenation of its parts (≥ 2 parts).
    Concat(Vec<Regex>),
    /// r₁ | r₂ | … — matches the union of its parts (≥ 2 parts).
    Alt(Vec<Regex>),
    /// r* — Kleene star.
    Star(Box<Regex>),
    /// r+ — one or more repetitions.
    Plus(Box<Regex>),
    /// r? — zero or one occurrence.
    Opt(Box<Regex>),
    /// r{min,max} — bounded repetition; `max = None` encodes `r{min,}`.
    Repeat {
        /// The repeated subexpression.
        inner: Box<Regex>,
        /// Lower bound m.
        min: u32,
        /// Upper bound n (`None` = unbounded, i.e. `r{m,}`).
        max: Option<u32>,
    },
}

impl Regex {
    /// Smart constructor for concatenation: flattens nested `Concat`s,
    /// drops ε units, and propagates the empty class (which matches
    /// nothing, so the whole concatenation matches nothing).
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat
            .iter()
            .any(|p| matches!(p, Regex::Class(c) if c.is_empty()))
        {
            return Regex::Class(CharClass::empty());
        }
        match flat.len() {
            0 => Regex::Empty,
            1 => flat.pop().expect("len checked"),
            _ => Regex::Concat(flat),
        }
    }

    /// Smart constructor for union: flattens nested `Alt`s and deduplicates
    /// syntactically identical branches.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut flat: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Alt(inner) => {
                    for q in inner {
                        if !flat.contains(&q) {
                            flat.push(q);
                        }
                    }
                }
                other => {
                    if !flat.contains(&other) {
                        flat.push(other);
                    }
                }
            }
        }
        match flat.len() {
            0 => Regex::Class(CharClass::empty()),
            1 => flat.pop().expect("len checked"),
            _ => Regex::Alt(flat),
        }
    }

    /// `r*`, simplifying `ε* = ε` and `(r*)* = r*`.
    pub fn star(inner: Regex) -> Regex {
        match inner {
            Regex::Empty => Regex::Empty,
            s @ Regex::Star(_) => s,
            Regex::Class(c) if c.is_empty() => Regex::Empty,
            other => Regex::Star(Box::new(other)),
        }
    }

    /// `r+`, simplifying `ε+ = ε`.
    pub fn plus(inner: Regex) -> Regex {
        match inner {
            Regex::Empty => Regex::Empty,
            s @ Regex::Star(_) => s,
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// `r?`, simplifying `ε? = ε` and `(r*)? = r*`.
    pub fn opt(inner: Regex) -> Regex {
        match inner {
            Regex::Empty => Regex::Empty,
            s @ Regex::Star(_) => s,
            o @ Regex::Opt(_) => o,
            other => Regex::Opt(Box::new(other)),
        }
    }

    /// `r{min,max}`, normalizing the degenerate bounds:
    /// `r{0,0} = ε`, `r{1,1} = r`, `r{0,1} = r?`, `r{0,} = r*`, `r{1,} = r+`.
    pub fn repeat(inner: Regex, min: u32, max: Option<u32>) -> Regex {
        if let Some(n) = max {
            assert!(min <= n, "bounded repetition with min {min} > max {n}");
        }
        match (min, max) {
            (0, Some(0)) => Regex::Empty,
            (1, Some(1)) => inner,
            (0, Some(1)) => Regex::opt(inner),
            (0, None) => Regex::star(inner),
            (1, None) => Regex::plus(inner),
            _ => Regex::Repeat {
                inner: Box::new(inner),
                min,
                max,
            },
        }
    }

    /// A single-byte literal.
    pub fn literal_byte(b: u8) -> Regex {
        Regex::Class(CharClass::single(b))
    }

    /// A literal string (concatenation of single-byte classes).
    pub fn literal(s: &str) -> Regex {
        Regex::concat(s.bytes().map(Regex::literal_byte).collect())
    }

    /// Whether the language of `self` contains the empty string.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Class(_) => false,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
            Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Plus(inner) => inner.nullable(),
            Regex::Repeat { inner, min, .. } => *min == 0 || inner.nullable(),
        }
    }

    /// Number of character-class leaves (the Glushkov position count *before*
    /// unfolding bounded repetitions).
    pub fn leaf_count(&self) -> usize {
        match self {
            Regex::Empty => 0,
            Regex::Class(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => parts.iter().map(Regex::leaf_count).sum(),
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => inner.leaf_count(),
            Regex::Repeat { inner, .. } => inner.leaf_count(),
        }
    }

    /// Number of Glushkov positions *after* fully unfolding every bounded
    /// repetition — i.e. the number of STEs a basic NFA needs (§2.2).
    ///
    /// `r{m,}` unfolds to `r…r·r*` (m copies, or one if m = 0).
    pub fn unfolded_size(&self) -> u64 {
        match self {
            Regex::Empty => 0,
            Regex::Class(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                parts.iter().map(Regex::unfolded_size).sum()
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => inner.unfolded_size(),
            Regex::Repeat { inner, min, max } => {
                // r{m,n} unfolds to n copies; r{m,} unfolds to m copies
                // followed by r* (one more position).
                let copies = match max {
                    Some(n) => u64::from(*n),
                    None => u64::from(*min) + 1,
                };
                copies * inner.unfolded_size()
            }
        }
    }

    /// Whether any bounded repetition `r{m,n}` (with explicit bounds, not the
    /// normalized `*`/`+`/`?` forms) occurs in the expression.
    pub fn has_bounded_repetition(&self) -> bool {
        match self {
            Regex::Empty | Regex::Class(_) => false,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                parts.iter().any(Regex::has_bounded_repetition)
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => {
                inner.has_bounded_repetition()
            }
            Regex::Repeat { .. } => true,
        }
    }

    /// Whether the expression contains an unbounded loop (`*`, `+`, `{m,}`).
    pub fn has_unbounded_loop(&self) -> bool {
        match self {
            Regex::Empty | Regex::Class(_) => false,
            Regex::Concat(parts) | Regex::Alt(parts) => parts.iter().any(Regex::has_unbounded_loop),
            Regex::Star(_) | Regex::Plus(_) => true,
            Regex::Opt(inner) => inner.has_unbounded_loop(),
            Regex::Repeat { inner, max, .. } => max.is_none() || inner.has_unbounded_loop(),
        }
    }
}

impl From<CharClass> for Regex {
    fn from(cc: CharClass) -> Self {
        Regex::Class(cc)
    }
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Regex({self})")
    }
}

impl fmt::Display for Regex {
    /// Renders the expression back into PCRE-ish concrete syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn group(r: &Regex, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match r {
                Regex::Class(_) => write!(f, "{r}"),
                _ => write!(f, "(?:{r})"),
            }
        }
        match self {
            Regex::Empty => Ok(()),
            Regex::Class(cc) => write!(f, "{cc}"),
            Regex::Concat(parts) => {
                for p in parts {
                    if matches!(p, Regex::Alt(_)) {
                        write!(f, "(?:{p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Regex::Alt(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Regex::Star(inner) => {
                group(inner, f)?;
                write!(f, "*")
            }
            Regex::Plus(inner) => {
                group(inner, f)?;
                write!(f, "+")
            }
            Regex::Opt(inner) => {
                group(inner, f)?;
                write!(f, "?")
            }
            Regex::Repeat { inner, min, max } => {
                group(inner, f)?;
                match max {
                    Some(n) if *n == *min => write!(f, "{{{min}}}"),
                    Some(n) => write!(f, "{{{min},{n}}}"),
                    None => write!(f, "{{{min},}}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_flattens_and_drops_epsilon() {
        let r = Regex::concat(vec![
            Regex::literal("ab"),
            Regex::Empty,
            Regex::concat(vec![Regex::literal_byte(b'c'), Regex::literal_byte(b'd')]),
        ]);
        assert_eq!(r, Regex::literal("abcd"));
    }

    #[test]
    fn concat_absorbs_empty_class() {
        let r = Regex::concat(vec![Regex::literal("a"), Regex::Class(CharClass::empty())]);
        assert_eq!(r, Regex::Class(CharClass::empty()));
    }

    #[test]
    fn alt_flattens_and_dedups() {
        let r = Regex::alt(vec![
            Regex::literal("a"),
            Regex::alt(vec![Regex::literal("b"), Regex::literal("a")]),
        ]);
        match &r {
            Regex::Alt(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected Alt, got {other:?}"),
        }
    }

    #[test]
    fn repeat_normalization() {
        let a = Regex::literal_byte(b'a');
        assert_eq!(Regex::repeat(a.clone(), 0, Some(0)), Regex::Empty);
        assert_eq!(Regex::repeat(a.clone(), 1, Some(1)), a.clone());
        assert!(matches!(
            Regex::repeat(a.clone(), 0, Some(1)),
            Regex::Opt(_)
        ));
        assert!(matches!(Regex::repeat(a.clone(), 0, None), Regex::Star(_)));
        assert!(matches!(Regex::repeat(a.clone(), 1, None), Regex::Plus(_)));
        assert!(matches!(Regex::repeat(a, 2, Some(5)), Regex::Repeat { .. }));
    }

    #[test]
    #[should_panic(expected = "min")]
    fn repeat_rejects_min_above_max() {
        let _ = Regex::repeat(Regex::literal_byte(b'a'), 5, Some(2));
    }

    #[test]
    fn nullable_cases() {
        assert!(Regex::Empty.nullable());
        assert!(!Regex::literal("a").nullable());
        assert!(Regex::star(Regex::literal("a")).nullable());
        assert!(Regex::opt(Regex::literal("a")).nullable());
        assert!(!Regex::plus(Regex::literal("a")).nullable());
        assert!(Regex::repeat(Regex::literal("ab"), 0, Some(3)).nullable());
        assert!(!Regex::repeat(Regex::literal("ab"), 2, Some(3)).nullable());
    }

    #[test]
    fn unfolded_size_counts_expansion() {
        // a{7} -> 7 STEs; (ab){3} -> 6 STEs; a{2,} -> 3 STEs (a a a*).
        assert_eq!(
            Regex::repeat(Regex::literal("a"), 7, Some(7)).unfolded_size(),
            7
        );
        assert_eq!(
            Regex::repeat(Regex::literal("ab"), 3, Some(3)).unfolded_size(),
            6
        );
        assert_eq!(
            Regex::repeat(Regex::literal("a"), 2, None).unfolded_size(),
            3
        );
    }

    #[test]
    fn display_roundtrip_examples() {
        assert_eq!(Regex::literal("abc").to_string(), "abc");
        let r = Regex::repeat(Regex::literal_byte(b'a'), 2, Some(5));
        assert_eq!(r.to_string(), "a{2,5}");
        let alt = Regex::alt(vec![Regex::literal("ab"), Regex::literal("cd")]);
        assert_eq!(alt.to_string(), "ab|cd");
        let grouped = Regex::concat(vec![Regex::literal("x"), alt]);
        assert_eq!(grouped.to_string(), "x(?:ab|cd)");
    }

    #[test]
    fn bounded_repetition_detection() {
        assert!(!Regex::literal("abc").has_bounded_repetition());
        assert!(Regex::repeat(Regex::literal("a"), 2, Some(4)).has_bounded_repetition());
        assert!(!Regex::star(Regex::literal("a")).has_bounded_repetition());
    }

    #[test]
    fn unbounded_loop_detection() {
        assert!(Regex::star(Regex::literal("a")).has_unbounded_loop());
        assert!(Regex::repeat(Regex::literal("a"), 2, None).has_unbounded_loop());
        assert!(!Regex::repeat(Regex::literal("a"), 2, Some(4)).has_unbounded_loop());
    }
}
