//! Source-to-source rewriters used by the RAP compiler (§4 of the paper).
//!
//! * [`unfold_all`] — removes every bounded repetition, producing the
//!   repetition-free expression a basic NFA (and the CA/CAMA baselines)
//!   executes.
//! * [`unfold_below_threshold`] — the *unfolding rewriting* of §4.1: unfolds
//!   a bounded repetition whenever its upper bound is at or below the
//!   unfolding threshold (and always unfolds repetitions whose body is not a
//!   single character class, since only single-CC repetitions map to
//!   bit-vector STEs).
//! * [`split_bounded`] — the *bounded repetition rewriting* of §4.1:
//!   `r{m,n} → r{m}·r{0,n-m}` so that `r{m}` maps to the `r(m)` read action
//!   and `r{0,n-m}` maps to `rAll`.
//! * [`to_sequences`] — the LNFA rewriting of §4.2: distributes union over
//!   concatenation and unfolds small repetitions to express the pattern as a
//!   finite union of character-class strings, giving up when the expansion
//!   exceeds a state budget.

use crate::ast::Regex;
use crate::charclass::CharClass;

/// Fully unfolds every bounded repetition.
///
/// `r{m,n}` becomes `r…r (r?)…(r?)` (m mandatory copies, n−m optional ones)
/// and `r{m,}` becomes `r…r r*` (m copies followed by a star, or `r*` when
/// m = 0).
///
/// # Example
///
/// ```
/// use rap_regex::{parse, rewrite::unfold_all};
/// let r = unfold_all(&parse("a{2,4}")?);
/// assert_eq!(r.to_string(), "aaa?a?");
/// # Ok::<(), rap_regex::ParseError>(())
/// ```
pub fn unfold_all(regex: &Regex) -> Regex {
    map_repeats(regex, &|inner, min, max| Some(unfold_one(inner, min, max)))
}

/// Unfolds a single `r{min,max}` into repetition-free syntax. `inner` must
/// already be repetition-free.
fn unfold_one(inner: &Regex, min: u32, max: Option<u32>) -> Regex {
    let mut parts: Vec<Regex> = Vec::new();
    for _ in 0..min {
        parts.push(inner.clone());
    }
    match max {
        Some(n) => {
            for _ in min..n {
                parts.push(Regex::opt(inner.clone()));
            }
        }
        None => parts.push(Regex::star(inner.clone())),
    }
    Regex::concat(parts)
}

/// The unfolding rewriting of §4.1.
///
/// A bounded repetition `r{m,n}` is unfolded when
///
/// * its upper bound `n` is at or below `threshold`, or
/// * its body `r` is not a single character class (bit-vector STEs track
///   repetitions of one CC only), or
/// * it has no upper bound (`r{m,}` becomes `r…r r*`, as in the paper's
///   Example 4.1 where `f{2,}` becomes `fff*`).
///
/// Surviving repetitions are exactly those the NBVA mode will map onto
/// bit vectors.
pub fn unfold_below_threshold(regex: &Regex, threshold: u32) -> Regex {
    map_repeats(regex, &|inner, min, max| match max {
        None => Some(unfold_one(inner, min, None)),
        Some(n) => {
            if n <= threshold || !matches!(inner, Regex::Class(_)) {
                Some(unfold_one(inner, min, Some(n)))
            } else {
                None
            }
        }
    })
}

/// The bounded repetition rewriting of §4.1: rewrites every surviving
/// `r{m,n}` with `0 < m < n` into `r{m}·r{0,n-m}` so each factor maps to a
/// single hardware read action (`r(m)` and `rAll` respectively).
///
/// `r{m,m}` and `r{0,n}` are left untouched — they already map directly.
pub fn split_bounded(regex: &Regex) -> Regex {
    map_repeats(regex, &|inner, min, max| {
        let n = max?;
        if min > 0 && n > min {
            let head = Regex::repeat(inner.clone(), min, Some(min));
            let tail = Regex::repeat(inner.clone(), 0, Some(n - min));
            Some(Regex::concat(vec![head, tail]))
        } else {
            None
        }
    })
}

/// A `Repeat`-node rewriter: `(body, min, max) -> Some(replacement)`, or
/// `None` to keep the repetition.
type RepeatFn<'a> = &'a dyn Fn(&Regex, u32, Option<u32>) -> Option<Regex>;

/// Bottom-up transformation of `Repeat` nodes. The callback receives the
/// (already rewritten) body and the bounds, and returns the replacement or
/// `None` to keep the repetition.
fn map_repeats(regex: &Regex, f: RepeatFn<'_>) -> Regex {
    match regex {
        Regex::Empty => Regex::Empty,
        Regex::Class(cc) => Regex::Class(*cc),
        Regex::Concat(parts) => Regex::concat(parts.iter().map(|p| map_repeats(p, f)).collect()),
        Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| map_repeats(p, f)).collect()),
        Regex::Star(inner) => Regex::star(map_repeats(inner, f)),
        Regex::Plus(inner) => Regex::plus(map_repeats(inner, f)),
        Regex::Opt(inner) => Regex::opt(map_repeats(inner, f)),
        Regex::Repeat { inner, min, max } => {
            let body = map_repeats(inner, f);
            match f(&body, *min, *max) {
                Some(replacement) => replacement,
                None => Regex::repeat(body, *min, *max),
            }
        }
    }
}

/// Result of the LNFA rewriting: the pattern expressed as a finite union of
/// character-class strings, each executable by one linear automaton.
pub type Sequences = Vec<Vec<CharClass>>;

/// The LNFA rewriting of §4.2: distributes union over concatenation and
/// unfolds bounded repetitions to express `regex` as a union of CC strings.
///
/// Returns `None` when the pattern contains an unbounded loop, or when the
/// expansion would exceed `state_budget` total states (the compiler calls
/// this with 2× the Glushkov size of the original pattern, per Fig. 9).
///
/// # Example
///
/// ```
/// use rap_regex::{parse, rewrite::to_sequences};
/// // The paper's Example 4.4: a(b{1,2}|c)e → abe | abbe | ace.
/// let seqs = to_sequences(&parse("a(b{1,2}|c)e")?, 64).expect("expands");
/// assert_eq!(seqs.len(), 3);
/// let lens: Vec<usize> = seqs.iter().map(Vec::len).collect();
/// assert_eq!(lens, vec![3, 4, 3]);
/// # Ok::<(), rap_regex::ParseError>(())
/// ```
pub fn to_sequences(regex: &Regex, state_budget: u64) -> Option<Sequences> {
    let seqs = expand(regex, state_budget)?;
    // Deduplicate identical alternatives produced by the distribution.
    let mut out: Sequences = Vec::with_capacity(seqs.len());
    for s in seqs {
        if !out.contains(&s) {
            out.push(s);
        }
    }
    Some(out)
}

/// Total states of a sequence set.
fn seq_states(seqs: &Sequences) -> u64 {
    seqs.iter().map(|s| s.len() as u64).sum()
}

/// Cross product of two sequence sets, aborting as soon as the *output's*
/// total state count exceeds the budget (which also bounds the work, since
/// the output grows monotonically as it is built).
fn cross(lhs: &Sequences, rhs: &Sequences, budget: u64) -> Option<Sequences> {
    let mut out: Sequences = Vec::new();
    let mut total: u64 = 0;
    for a in lhs {
        for b in rhs {
            total += (a.len() + b.len()) as u64;
            if total > budget {
                return None;
            }
            let mut s = a.clone();
            s.extend_from_slice(b);
            out.push(s);
        }
    }
    Some(out)
}

/// Recursive expansion; every node's *output* is checked against the
/// budget, so the returned set always satisfies `Σ lengths ≤ budget` and
/// pathological patterns fail fast.
fn expand(regex: &Regex, budget: u64) -> Option<Sequences> {
    match regex {
        Regex::Empty => Some(vec![vec![]]),
        Regex::Class(cc) => {
            if cc.is_empty() {
                return Some(vec![]); // matches nothing: zero alternatives
            }
            (budget >= 1).then(|| vec![vec![*cc]])
        }
        Regex::Concat(parts) => {
            let mut acc: Sequences = vec![vec![]];
            for part in parts {
                let rhs = expand(part, budget)?;
                acc = cross(&acc, &rhs, budget)?;
                if acc.is_empty() {
                    return Some(acc); // concatenation with ∅
                }
            }
            Some(acc)
        }
        Regex::Alt(parts) => {
            let mut acc: Sequences = Vec::new();
            let mut total = 0u64;
            for part in parts {
                let sub = expand(part, budget)?;
                total += seq_states(&sub);
                if total > budget {
                    return None;
                }
                acc.extend(sub);
            }
            Some(acc)
        }
        Regex::Opt(inner) => {
            let mut acc = vec![vec![]];
            acc.extend(expand(inner, budget)?);
            Some(acc)
        }
        Regex::Star(_) | Regex::Plus(_) => None,
        Regex::Repeat { inner, min, max } => {
            let n = (*max)?;
            // Expand r{m,n} as the union of r^k for k in m..=n.
            let base = expand(inner, budget)?;
            let mut acc: Sequences = Vec::new();
            let mut total = 0u64;
            for k in *min..=n {
                // r^k = cross product of k copies.
                let mut partial: Sequences = vec![vec![]];
                for _ in 0..k {
                    partial = cross(&partial, &base, budget)?;
                }
                total += seq_states(&partial);
                if total > budget {
                    return None;
                }
                acc.extend(partial);
            }
            Some(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn p(s: &str) -> Regex {
        parse(s).expect("test pattern parses")
    }

    #[test]
    fn unfold_exact() {
        assert_eq!(unfold_all(&p("a{3}")), p("aaa"));
        assert_eq!(unfold_all(&p("(ab){2}")), p("abab"));
    }

    #[test]
    fn unfold_range() {
        assert_eq!(unfold_all(&p("a{1,3}")), p("aa?a?"));
        assert_eq!(unfold_all(&p("a{0,2}")), p("a?a?"));
    }

    #[test]
    fn unfold_unbounded() {
        assert_eq!(unfold_all(&p("a{2,}")), p("aaa*"));
        assert_eq!(unfold_all(&p("a{0,}")), p("a*"));
    }

    #[test]
    fn unfold_is_repetition_free() {
        for s in ["a{3}b{2,7}", "(ab){2,}c", "x(y{2}|z{1,3})w"] {
            assert!(!unfold_all(&p(s)).has_bounded_repetition(), "{s}");
        }
    }

    #[test]
    fn unfold_preserves_unfolded_size() {
        for s in ["a{7}", "a{2,5}", "(ab){3}", "a{2,}b"] {
            let r = p(s);
            assert_eq!(r.unfolded_size(), unfold_all(&r).unfolded_size(), "{s}");
        }
    }

    #[test]
    fn threshold_unfolding_matches_paper_example_4_1() {
        // ab(cd){2}e{1,3}f{2,}g{5} with threshold 4 → abcdcdee?e?fff*g{5}.
        let r = p("ab(cd){2}e{1,3}f{2,}g{5}");
        let rewritten = unfold_below_threshold(&r, 4);
        assert_eq!(rewritten, p("abcdcdee?e?fff*g{5}"));
    }

    #[test]
    fn threshold_keeps_large_cc_repetitions_only() {
        // A complex body is unfolded even above the threshold.
        let r = p("(ab){6}c{6}");
        let rewritten = unfold_below_threshold(&r, 4);
        assert_eq!(rewritten, p("ababababababc{6}"));
    }

    #[test]
    fn split_bounded_matches_paper_example_4_2() {
        // b{10,48} → b{10}b{0,38}.
        let r = p("ab{10,48}c");
        assert_eq!(split_bounded(&r), p("ab{10}b{0,38}c"));
        // r{m} and r{0,n} are untouched.
        assert_eq!(split_bounded(&p("d{34}")), p("d{34}"));
        assert_eq!(split_bounded(&p("c{0,16}")), p("c{0,16}"));
    }

    #[test]
    fn sequences_simple_literal() {
        let seqs = to_sequences(&p("abc"), 16).expect("literal expands");
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].len(), 3);
    }

    #[test]
    fn sequences_distribute_union() {
        let seqs = to_sequences(&p("a(b|c)d"), 16).expect("expands");
        assert_eq!(seqs.len(), 2);
        assert!(seqs.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn sequences_optional() {
        // ab?c → ac | abc.
        let seqs = to_sequences(&p("ab?c"), 16).expect("expands");
        assert_eq!(seqs.len(), 2);
        let mut lens: Vec<usize> = seqs.iter().map(Vec::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 3]);
    }

    #[test]
    fn sequences_reject_unbounded() {
        assert!(to_sequences(&p("ab*c"), 1_000).is_none());
        assert!(to_sequences(&p("a+"), 1_000).is_none());
        assert!(to_sequences(&p("a{2,}"), 1_000).is_none());
    }

    #[test]
    fn sequences_respect_budget() {
        // (a|b){8} has 256 alternatives of length 8 = 2048 states.
        assert!(to_sequences(&p("(a|b){8}"), 100).is_none());
        assert!(to_sequences(&p("(a|b){8}"), 10_000).is_some());
    }

    #[test]
    fn sequences_empty_class_matches_nothing() {
        let r = Regex::Concat(vec![Regex::literal("a"), Regex::Class(CharClass::empty())]);
        let seqs = to_sequences(&r, 16).expect("expansion succeeds");
        assert!(seqs.is_empty());
    }

    #[test]
    fn sequences_dedup() {
        // (a|a)b collapses at construction; force duplicates via repetition.
        let seqs = to_sequences(&p("(aa|a{2})b"), 64).expect("expands");
        assert_eq!(seqs.len(), 1);
    }

    #[test]
    fn epsilon_expands_to_one_empty_sequence() {
        let seqs = to_sequences(&Regex::Empty, 4).expect("epsilon expands");
        assert_eq!(seqs, vec![Vec::<CharClass>::new()]);
    }
}
