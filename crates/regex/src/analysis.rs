//! Structural analyses the compiler's decision graph (Fig. 9) relies on.

use crate::ast::Regex;
use crate::charclass::CharClass;
use serde::{Deserialize, Serialize};

/// A bounded repetition occurrence found in a pattern.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepetitionInfo {
    /// Lower bound m of `r{m,n}`.
    pub min: u32,
    /// Upper bound n (`None` for `r{m,}`).
    pub max: Option<u32>,
    /// Whether the body is a single character class (the only shape a
    /// bit-vector STE can track).
    pub single_class: bool,
    /// Number of Glushkov positions of the body.
    pub body_size: usize,
}

impl RepetitionInfo {
    /// The bit-vector width this repetition needs in NBVA mode: n for
    /// `r{m,n}` (after the `r{m}·r{0,n-m}` split the two factors need m and
    /// n−m bits, which still sums to n).
    pub fn bv_width(&self) -> Option<u32> {
        self.max
    }
}

/// Collects every bounded repetition in the pattern, outermost first.
pub fn bounded_repetitions(regex: &Regex) -> Vec<RepetitionInfo> {
    let mut out = Vec::new();
    collect_reps(regex, &mut out);
    out
}

fn collect_reps(regex: &Regex, out: &mut Vec<RepetitionInfo>) {
    match regex {
        Regex::Empty | Regex::Class(_) => {}
        Regex::Concat(parts) | Regex::Alt(parts) => {
            for p in parts {
                collect_reps(p, out);
            }
        }
        Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => collect_reps(inner, out),
        Regex::Repeat { inner, min, max } => {
            out.push(RepetitionInfo {
                min: *min,
                max: *max,
                single_class: matches!(**inner, Regex::Class(_)),
                body_size: inner.leaf_count(),
            });
            collect_reps(inner, out);
        }
    }
}

/// The largest finite repetition bound in the pattern, if any.
pub fn max_bound(regex: &Regex) -> Option<u32> {
    bounded_repetitions(regex)
        .iter()
        .filter_map(|r| r.max)
        .max()
}

/// Whether the pattern is a plain chain of character classes — i.e. it is
/// *already* an LNFA without any rewriting (`a[bc].d` but not `a(b|c)d`).
pub fn is_class_chain(regex: &Regex) -> bool {
    match regex {
        Regex::Empty => true,
        Regex::Class(_) => true,
        Regex::Concat(parts) => parts.iter().all(|p| matches!(p, Regex::Class(_))),
        _ => false,
    }
}

/// Summary statistics of a pattern, used by the workload reports.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternStats {
    /// Glushkov positions before unfolding.
    pub leaves: usize,
    /// Glushkov positions after fully unfolding bounded repetitions (basic
    /// NFA STE count).
    pub unfolded: u64,
    /// Number of bounded repetitions.
    pub repetitions: usize,
    /// Largest finite bound.
    pub max_bound: Option<u32>,
    /// Whether the pattern has `*`/`+`/`{m,}`.
    pub unbounded: bool,
    /// Whether the pattern is already a chain of classes.
    pub class_chain: bool,
}

/// Computes [`PatternStats`] for a pattern.
pub fn stats(regex: &Regex) -> PatternStats {
    PatternStats {
        leaves: regex.leaf_count(),
        unfolded: regex.unfolded_size(),
        repetitions: bounded_repetitions(regex).len(),
        max_bound: max_bound(regex),
        unbounded: regex.has_unbounded_loop(),
        class_chain: is_class_chain(regex),
    }
}

/// The distinct character classes appearing in a pattern (used to estimate
/// CAM column sharing).
pub fn distinct_classes(regex: &Regex) -> Vec<CharClass> {
    let mut out: Vec<CharClass> = Vec::new();
    fn walk(regex: &Regex, out: &mut Vec<CharClass>) {
        match regex {
            Regex::Empty => {}
            Regex::Class(cc) => {
                if !out.contains(cc) {
                    out.push(*cc);
                }
            }
            Regex::Concat(parts) | Regex::Alt(parts) => {
                for p in parts {
                    walk(p, out);
                }
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => walk(inner, out),
            Regex::Repeat { inner, .. } => walk(inner, out),
        }
    }
    walk(regex, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn p(s: &str) -> Regex {
        parse(s).expect("test pattern parses")
    }

    #[test]
    fn collects_repetitions() {
        let reps = bounded_repetitions(&p("a{3}(bc){2,5}d{7,}"));
        assert_eq!(reps.len(), 3);
        assert_eq!(
            (reps[0].min, reps[0].max, reps[0].single_class),
            (3, Some(3), true)
        );
        assert_eq!(
            (reps[1].min, reps[1].max, reps[1].single_class),
            (2, Some(5), false)
        );
        assert_eq!((reps[2].min, reps[2].max), (7, None));
        assert_eq!(reps[1].body_size, 2);
    }

    #[test]
    fn nested_repetitions_found() {
        let reps = bounded_repetitions(&p("(a{3}b){2}"));
        assert_eq!(reps.len(), 2);
        // Outermost first.
        assert_eq!(reps[0].min, 2);
        assert_eq!(reps[1].min, 3);
    }

    #[test]
    fn max_bound_across_pattern() {
        assert_eq!(max_bound(&p("a{3}b{128}c{5,}")), Some(128));
        assert_eq!(max_bound(&p("abc")), None);
    }

    #[test]
    fn class_chain_detection() {
        assert!(is_class_chain(&p("a[bc].d")));
        assert!(is_class_chain(&p("x")));
        assert!(!is_class_chain(&p("a(b|c)d")));
        assert!(!is_class_chain(&p("ab?c")));
        assert!(!is_class_chain(&p("ab*")));
    }

    #[test]
    fn stats_summary() {
        let s = stats(&p("ab{10,48}c"));
        assert_eq!(s.leaves, 3);
        assert_eq!(s.unfolded, 50);
        assert_eq!(s.repetitions, 1);
        assert_eq!(s.max_bound, Some(48));
        assert!(!s.unbounded);
        assert!(!s.class_chain);
    }

    #[test]
    fn distinct_classes_dedup() {
        let ccs = distinct_classes(&p("aba[bc]"));
        assert_eq!(ccs.len(), 3); // a, b, [bc]
    }

    #[test]
    fn bv_width_is_upper_bound() {
        let reps = bounded_repetitions(&p("a{10,48}"));
        assert_eq!(reps[0].bv_width(), Some(48));
    }
}
