//! 256-way byte predicates ("character classes").
//!
//! A [`CharClass`] is the σ ⊆ Σ of the paper: a set of input symbols drawn
//! from the byte alphabet Σ = {0, …, 255}. It is stored as a 256-bit bitmap
//! (four `u64` words), so membership tests, unions, intersections and
//! complements are all constant-time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of byte symbols, i.e. a predicate over the 256-symbol alphabet.
///
/// # Example
///
/// ```
/// use rap_regex::CharClass;
///
/// let digits = CharClass::range(b'0', b'9');
/// assert!(digits.contains(b'7'));
/// assert!(!digits.contains(b'a'));
/// assert_eq!(digits.len(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CharClass {
    words: [u64; 4],
}

impl CharClass {
    /// The empty predicate (matches no symbol).
    pub const fn empty() -> Self {
        CharClass { words: [0; 4] }
    }

    /// The full predicate Σ (PCRE `.` with DOTALL; matches every byte).
    pub const fn any() -> Self {
        CharClass {
            words: [u64::MAX; 4],
        }
    }

    /// The PCRE `.` without DOTALL: every byte except `\n`.
    pub fn dot() -> Self {
        let mut cc = Self::any();
        cc.remove(b'\n');
        cc
    }

    /// A predicate matching exactly one byte.
    pub fn single(byte: u8) -> Self {
        let mut cc = Self::empty();
        cc.insert(byte);
        cc
    }

    /// A predicate matching the inclusive byte range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: u8, hi: u8) -> Self {
        assert!(lo <= hi, "invalid byte range {lo}..={hi}");
        let mut cc = Self::empty();
        for b in lo..=hi {
            cc.insert(b);
        }
        cc
    }

    /// Builds a predicate from an iterator of member bytes.
    pub fn from_bytes<I: IntoIterator<Item = u8>>(bytes: I) -> Self {
        let mut cc = Self::empty();
        for b in bytes {
            cc.insert(b);
        }
        cc
    }

    /// PCRE `\d`.
    pub fn digit() -> Self {
        Self::range(b'0', b'9')
    }

    /// PCRE `\w` (ASCII word characters).
    pub fn word() -> Self {
        let mut cc = Self::range(b'a', b'z');
        cc = cc.union(&Self::range(b'A', b'Z'));
        cc = cc.union(&Self::range(b'0', b'9'));
        cc.insert(b'_');
        cc
    }

    /// PCRE `\s` (ASCII whitespace).
    pub fn space() -> Self {
        Self::from_bytes([b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c])
    }

    /// Adds a byte to the set.
    pub fn insert(&mut self, byte: u8) {
        self.words[(byte >> 6) as usize] |= 1u64 << (byte & 63);
    }

    /// Removes a byte from the set.
    pub fn remove(&mut self, byte: u8) {
        self.words[(byte >> 6) as usize] &= !(1u64 << (byte & 63));
    }

    /// Tests membership of a byte.
    #[inline]
    pub fn contains(&self, byte: u8) -> bool {
        self.words[(byte >> 6) as usize] & (1u64 << (byte & 63)) != 0
    }

    /// Number of member bytes.
    pub fn len(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words == [0; 4]
    }

    /// Whether the set is the full alphabet.
    pub fn is_any(&self) -> bool {
        self.words == [u64::MAX; 4]
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
        CharClass { words }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
        CharClass { words }
    }

    /// Set complement with respect to the byte alphabet.
    #[must_use]
    pub fn complement(&self) -> Self {
        let mut words = self.words;
        for w in words.iter_mut() {
            *w = !*w;
        }
        CharClass { words }
    }

    /// Iterates over the member bytes in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            cc: self,
            next: 0,
            done: false,
        }
    }

    /// The raw 4×`u64` bitmap, least-significant symbol first.
    pub fn as_words(&self) -> &[u64; 4] {
        &self.words
    }

    /// Picks an arbitrary member byte, if non-empty (used by workload
    /// generators to synthesize matching inputs).
    pub fn first_member(&self) -> Option<u8> {
        self.iter().next()
    }
}

impl Default for CharClass {
    fn default() -> Self {
        Self::empty()
    }
}

/// Iterator over the member bytes of a [`CharClass`].
pub struct Iter<'a> {
    cc: &'a CharClass,
    next: u16,
    done: bool,
}

impl Iterator for Iter<'_> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.done {
            return None;
        }
        while self.next < 256 {
            let b = self.next as u8;
            self.next += 1;
            if self.cc.contains(b) {
                return Some(b);
            }
        }
        self.done = true;
        None
    }
}

impl FromIterator<u8> for CharClass {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from_bytes(iter)
    }
}

impl Extend<u8> for CharClass {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl fmt::Debug for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CharClass({self})")
    }
}

impl fmt::Display for CharClass {
    /// Renders the class in PCRE-ish syntax (`a`, `[a-z]`, `.`, `[]`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            return write!(f, "\\p{{any}}");
        }
        if *self == CharClass::dot() {
            return write!(f, ".");
        }
        if self.is_empty() {
            return write!(f, "[]");
        }
        let bytes: Vec<u8> = self.iter().collect();
        if bytes.len() == 1 {
            return write!(f, "{}", escape_byte(bytes[0]));
        }
        // Group consecutive runs into ranges.
        write!(f, "[")?;
        let mut i = 0;
        while i < bytes.len() {
            // Widen to u16: a run ending at byte 255 must not overflow.
            let start = u16::from(bytes[i]);
            let mut end = start;
            while i + 1 < bytes.len() && u16::from(bytes[i + 1]) == end + 1 {
                i += 1;
                end = u16::from(bytes[i]);
            }
            let (lo, hi) = (start as u8, end as u8);
            if end > start + 1 {
                write!(f, "{}-{}", escape_byte(lo), escape_byte(hi))?;
            } else if end == start + 1 {
                write!(f, "{}{}", escape_byte(lo), escape_byte(hi))?;
            } else {
                write!(f, "{}", escape_byte(lo))?;
            }
            i += 1;
        }
        write!(f, "]")
    }
}

fn escape_byte(b: u8) -> String {
    match b {
        b'\\' | b'[' | b']' | b'(' | b')' | b'{' | b'}' | b'*' | b'+' | b'?' | b'|' | b'.'
        | b'^' | b'$' | b'-' => {
            format!("\\{}", b as char)
        }
        b'\n' => "\\n".to_string(),
        b'\r' => "\\r".to_string(),
        b'\t' => "\\t".to_string(),
        0x20..=0x7e => (b as char).to_string(),
        _ => format!("\\x{b:02x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_any() {
        assert_eq!(CharClass::empty().len(), 0);
        assert!(CharClass::empty().is_empty());
        assert_eq!(CharClass::any().len(), 256);
        assert!(CharClass::any().is_any());
    }

    #[test]
    fn single_membership() {
        let cc = CharClass::single(b'x');
        assert!(cc.contains(b'x'));
        assert!(!cc.contains(b'y'));
        assert_eq!(cc.len(), 1);
        assert_eq!(cc.first_member(), Some(b'x'));
    }

    #[test]
    fn range_members() {
        let cc = CharClass::range(b'a', b'f');
        for b in b'a'..=b'f' {
            assert!(cc.contains(b));
        }
        assert!(!cc.contains(b'g'));
        assert_eq!(cc.len(), 6);
    }

    #[test]
    #[should_panic(expected = "invalid byte range")]
    fn range_rejects_inverted_bounds() {
        let _ = CharClass::range(b'z', b'a');
    }

    #[test]
    fn boolean_algebra() {
        let d = CharClass::digit();
        let w = CharClass::word();
        assert_eq!(d.intersection(&w), d);
        assert_eq!(d.union(&w), w);
        assert_eq!(d.complement().complement(), d);
        assert_eq!(d.intersection(&d.complement()), CharClass::empty());
        assert_eq!(d.union(&d.complement()), CharClass::any());
    }

    #[test]
    fn dot_excludes_newline() {
        let dot = CharClass::dot();
        assert!(!dot.contains(b'\n'));
        assert!(dot.contains(b'a'));
        assert_eq!(dot.len(), 255);
    }

    #[test]
    fn iter_ascending() {
        let cc = CharClass::from_bytes([b'z', b'a', b'm']);
        let v: Vec<u8> = cc.iter().collect();
        assert_eq!(v, vec![b'a', b'm', b'z']);
    }

    #[test]
    fn boundary_bytes() {
        let mut cc = CharClass::empty();
        cc.insert(0);
        cc.insert(63);
        cc.insert(64);
        cc.insert(127);
        cc.insert(128);
        cc.insert(255);
        for b in [0u8, 63, 64, 127, 128, 255] {
            assert!(cc.contains(b), "byte {b}");
        }
        assert_eq!(cc.len(), 6);
        cc.remove(255);
        assert!(!cc.contains(255));
    }

    #[test]
    fn display_roundtrips_through_parser_categories() {
        assert_eq!(CharClass::single(b'a').to_string(), "a");
        assert_eq!(CharClass::range(b'0', b'9').to_string(), "[0-9]");
        assert_eq!(CharClass::dot().to_string(), ".");
    }

    #[test]
    fn collect_and_extend() {
        let cc: CharClass = [b'a', b'b'].into_iter().collect();
        assert_eq!(cc.len(), 2);
        let mut cc2 = cc;
        cc2.extend([b'c']);
        assert_eq!(cc2.len(), 3);
    }

    #[test]
    fn predefined_classes() {
        assert_eq!(CharClass::digit().len(), 10);
        assert_eq!(CharClass::word().len(), 63);
        assert_eq!(CharClass::space().len(), 6);
        assert!(CharClass::word().contains(b'_'));
    }
}
