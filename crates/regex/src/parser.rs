//! Parser for the PCRE-style concrete syntax used by the paper's benchmarks.
//!
//! Supported constructs: literal bytes, escapes (`\d \D \w \W \s \S \t \n \r
//! \f \v \0 \xHH` and escaped metacharacters), `.`, character classes with
//! ranges and negation (`[a-z]`, `[^\\\\]`), groups `(...)` / `(?:...)`,
//! alternation `|`, and the quantifiers `*`, `+`, `?`, `{m}`, `{m,}`,
//! `{m,n}`. The anchors `^` and `$` are accepted at the pattern edges by
//! [`parse_pattern`] and recorded as flags — in-memory automata processors
//! implement unanchored matching by keeping initial states always available,
//! so anchoring is a property of the whole pattern, not of the automaton
//! structure.

use crate::ast::Regex;
use crate::charclass::CharClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed pattern: the regex body plus edge-anchoring flags.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    /// The pattern body.
    pub regex: Regex,
    /// `true` iff the pattern began with `^` (match only at stream start).
    pub anchored_start: bool,
    /// `true` iff the pattern ended with `$` (match only at stream end).
    pub anchored_end: bool,
}

/// Error produced when a pattern fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the pattern where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses an unanchored pattern, rejecting `^`/`$`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed syntax or on anchors; use
/// [`parse_pattern`] when anchors must be accepted.
///
/// # Example
///
/// ```
/// use rap_regex::parse;
/// let re = parse(r"a[bc]{2,4}d")?;
/// assert_eq!(re.to_string(), "a[bc]{2,4}d");
/// # Ok::<(), rap_regex::ParseError>(())
/// ```
pub fn parse(pattern: &str) -> Result<Regex, ParseError> {
    let p = parse_pattern(pattern)?;
    if p.anchored_start || p.anchored_end {
        return Err(ParseError {
            offset: 0,
            message: "anchors are only supported via parse_pattern".to_string(),
        });
    }
    Ok(p.regex)
}

/// Parses a pattern, accepting `^` at the start and `$` at the end.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed syntax or on anchors occurring
/// anywhere other than the pattern edges.
pub fn parse_pattern(pattern: &str) -> Result<Pattern, ParseError> {
    let mut bytes = pattern.as_bytes();
    let mut base = 0usize;
    let anchored_start = bytes.first() == Some(&b'^');
    if anchored_start {
        bytes = &bytes[1..];
        base = 1;
    }
    let anchored_end = bytes.last() == Some(&b'$') && !ends_with_escape(bytes);
    if anchored_end {
        bytes = &bytes[..bytes.len() - 1];
    }
    let mut p = Parser {
        input: bytes,
        pos: 0,
        base,
    };
    let regex = p.parse_alt()?;
    if p.pos != p.input.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(Pattern {
        regex,
        anchored_start,
        anchored_end,
    })
}

/// True when the final byte is an escaped literal (`\$`), in which case the
/// trailing `$` is not an anchor.
fn ends_with_escape(bytes: &[u8]) -> bool {
    let mut backslashes = 0;
    for &b in bytes[..bytes.len().saturating_sub(1)].iter().rev() {
        if b == b'\\' {
            backslashes += 1;
        } else {
            break;
        }
    }
    backslashes % 2 == 1
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    base: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.base + self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, expected: u8) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alt ::= concat ('|' concat)*
    fn parse_alt(&mut self) -> Result<Regex, ParseError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat(b'|') {
            branches.push(self.parse_concat()?);
        }
        Ok(Regex::alt(branches))
    }

    /// concat ::= repeated*
    fn parse_concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.parse_repeated()?);
        }
        Ok(Regex::concat(parts))
    }

    /// repeated ::= atom quantifier*
    fn parse_repeated(&mut self) -> Result<Regex, ParseError> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    atom = Regex::star(atom);
                }
                Some(b'+') => {
                    self.pos += 1;
                    atom = Regex::plus(atom);
                }
                Some(b'?') => {
                    self.pos += 1;
                    atom = Regex::opt(atom);
                }
                Some(b'{') => {
                    // `{` only opens a quantifier when it looks like one;
                    // otherwise it is a literal brace (PCRE behaviour).
                    if let Some((min, max, end)) = self.try_parse_bounds()? {
                        self.pos = end;
                        if let Some(n) = max {
                            if min > n {
                                return Err(self.error("bounded repetition has min > max"));
                            }
                        }
                        atom = Regex::repeat(atom, min, max);
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    /// Attempts to read `{m}`, `{m,}` or `{m,n}` starting at the current
    /// `{`. Returns the bounds and the position just past the closing `}`
    /// without consuming on failure.
    fn try_parse_bounds(&self) -> Result<Option<(u32, Option<u32>, usize)>, ParseError> {
        let mut i = self.pos + 1; // skip '{'
        let start = i;
        while i < self.input.len() && self.input[i].is_ascii_digit() {
            i += 1;
        }
        if i == start {
            return Ok(None); // no digits: literal '{'
        }
        let min: u32 = std::str::from_utf8(&self.input[start..i])
            .expect("digits are ascii")
            .parse()
            .map_err(|_| self.error("repetition bound too large"))?;
        match self.input.get(i) {
            Some(b'}') => Ok(Some((min, Some(min), i + 1))),
            Some(b',') => {
                i += 1;
                let start2 = i;
                while i < self.input.len() && self.input[i].is_ascii_digit() {
                    i += 1;
                }
                let max = if i == start2 {
                    None
                } else {
                    Some(
                        std::str::from_utf8(&self.input[start2..i])
                            .expect("digits are ascii")
                            .parse()
                            .map_err(|_| self.error("repetition bound too large"))?,
                    )
                };
                if self.input.get(i) == Some(&b'}') {
                    Ok(Some((min, max, i + 1)))
                } else {
                    Ok(None)
                }
            }
            _ => Ok(None),
        }
    }

    /// atom ::= '(' alt ')' | '.' | class | escape | literal
    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                // Swallow group modifiers `?:`, `?i:` etc. (treated as
                // non-capturing; inline flags are not interpreted).
                if self.peek() == Some(b'?') {
                    self.pos += 1;
                    while let Some(b) = self.peek() {
                        if b == b':' {
                            self.pos += 1;
                            break;
                        }
                        if b.is_ascii_alphabetic() || b == b'-' {
                            self.pos += 1;
                        } else {
                            return Err(self.error("unsupported group modifier"));
                        }
                    }
                }
                let inner = self.parse_alt()?;
                if !self.eat(b')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            Some(b')') => Err(self.error("unmatched ')'")),
            Some(b'.') => {
                self.pos += 1;
                Ok(Regex::Class(CharClass::dot()))
            }
            Some(b'[') => {
                self.pos += 1;
                let cc = self.parse_class()?;
                Ok(Regex::Class(cc))
            }
            Some(b'\\') => {
                self.pos += 1;
                let cc = self.parse_escape()?;
                Ok(Regex::Class(cc))
            }
            Some(b'*' | b'+' | b'?') => Err(self.error("quantifier with no atom")),
            Some(b'^' | b'$') => Err(self.error("anchors only supported at pattern edges")),
            Some(b) => {
                self.pos += 1;
                Ok(Regex::literal_byte(b))
            }
            None => Err(self.error("unexpected end of pattern")),
        }
    }

    /// Parses the body of a bracketed class; the opening `[` has been
    /// consumed.
    fn parse_class(&mut self) -> Result<CharClass, ParseError> {
        let negated = self.eat(b'^');
        let mut cc = CharClass::empty();
        let mut first = true;
        loop {
            let b = self
                .bump()
                .ok_or_else(|| self.error("unclosed character class"))?;
            if b == b']' && !first {
                break;
            }
            first = false;
            let lo = if b == b'\\' {
                let sub = self.parse_escape()?;
                // Multi-byte escapes (\d, \w, ...) cannot open a range.
                if sub.len() != 1 {
                    cc = cc.union(&sub);
                    continue;
                }
                sub.first_member().expect("len checked")
            } else {
                b
            };
            // Range?
            if self.peek() == Some(b'-') && self.input.get(self.pos + 1).is_some_and(|&n| n != b']')
            {
                self.pos += 1; // consume '-'
                let hb = self
                    .bump()
                    .ok_or_else(|| self.error("unclosed character class"))?;
                let hi = if hb == b'\\' {
                    let sub = self.parse_escape()?;
                    if sub.len() != 1 {
                        return Err(self.error("character range with class escape"));
                    }
                    sub.first_member().expect("len checked")
                } else {
                    hb
                };
                if lo > hi {
                    return Err(self.error("character range out of order"));
                }
                cc = cc.union(&CharClass::range(lo, hi));
            } else {
                cc.insert(lo);
            }
        }
        Ok(if negated { cc.complement() } else { cc })
    }

    /// Parses an escape; the backslash has been consumed.
    fn parse_escape(&mut self) -> Result<CharClass, ParseError> {
        let b = self
            .bump()
            .ok_or_else(|| self.error("dangling backslash"))?;
        Ok(match b {
            b'd' => CharClass::digit(),
            b'D' => CharClass::digit().complement(),
            b'w' => CharClass::word(),
            b'W' => CharClass::word().complement(),
            b's' => CharClass::space(),
            b'S' => CharClass::space().complement(),
            b'n' => CharClass::single(b'\n'),
            b'r' => CharClass::single(b'\r'),
            b't' => CharClass::single(b'\t'),
            b'f' => CharClass::single(0x0c),
            b'v' => CharClass::single(0x0b),
            b'0' => CharClass::single(0),
            b'a' => CharClass::single(0x07),
            b'e' => CharClass::single(0x1b),
            b'x' => {
                let h1 = self
                    .bump()
                    .ok_or_else(|| self.error("truncated \\x escape"))?;
                let h2 = self
                    .bump()
                    .ok_or_else(|| self.error("truncated \\x escape"))?;
                let hex = |c: u8| -> Result<u8, ParseError> {
                    (c as char)
                        .to_digit(16)
                        .map(|d| d as u8)
                        .ok_or_else(|| self.error("invalid hex digit in \\x escape"))
                };
                CharClass::single(hex(h1)? * 16 + hex(h2)?)
            }
            // Escaped metacharacters and any other punctuation become
            // literals, matching PCRE's lenient behaviour.
            _ if !b.is_ascii_alphanumeric() => CharClass::single(b),
            _ => return Err(self.error("unsupported escape")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Regex {
        parse(s).unwrap_or_else(|e| panic!("{s:?} failed to parse: {e}"))
    }

    #[test]
    fn literals() {
        assert_eq!(p("abc"), Regex::literal("abc"));
        assert_eq!(p("a"), Regex::literal_byte(b'a'));
    }

    #[test]
    fn dot_and_classes() {
        assert_eq!(p("."), Regex::Class(CharClass::dot()));
        assert_eq!(
            p("[abc]"),
            Regex::Class(CharClass::from_bytes([b'a', b'b', b'c']))
        );
        assert_eq!(p("[a-c]"), Regex::Class(CharClass::range(b'a', b'c')));
        assert_eq!(
            p("[^a]"),
            Regex::Class(CharClass::single(b'a').complement())
        );
    }

    #[test]
    fn class_edge_cases() {
        // ']' first in class is a literal.
        assert_eq!(p("[]a]"), Regex::Class(CharClass::from_bytes([b']', b'a'])));
        // trailing '-' is a literal.
        assert_eq!(p("[a-]"), Regex::Class(CharClass::from_bytes([b'a', b'-'])));
        // escape inside class.
        assert_eq!(p(r"[\]]"), Regex::Class(CharClass::single(b']')));
        // \d inside class unions.
        let expect = CharClass::digit().union(&CharClass::single(b'x'));
        assert_eq!(p(r"[x\d]"), Regex::Class(expect));
    }

    #[test]
    fn escapes() {
        assert_eq!(p(r"\d"), Regex::Class(CharClass::digit()));
        assert_eq!(p(r"\w"), Regex::Class(CharClass::word()));
        assert_eq!(p(r"\."), Regex::literal_byte(b'.'));
        assert_eq!(p(r"\\"), Regex::literal_byte(b'\\'));
        assert_eq!(p(r"\x41"), Regex::literal_byte(b'A'));
        assert_eq!(p(r"\n"), Regex::literal_byte(b'\n'));
    }

    #[test]
    fn quantifiers() {
        assert!(matches!(p("a*"), Regex::Star(_)));
        assert!(matches!(p("a+"), Regex::Plus(_)));
        assert!(matches!(p("a?"), Regex::Opt(_)));
        assert_eq!(
            p("a{2,5}"),
            Regex::repeat(Regex::literal_byte(b'a'), 2, Some(5))
        );
        assert_eq!(
            p("a{3}"),
            Regex::repeat(Regex::literal_byte(b'a'), 3, Some(3))
        );
        assert_eq!(
            p("a{3,}"),
            Regex::repeat(Regex::literal_byte(b'a'), 3, None)
        );
    }

    #[test]
    fn literal_brace_not_quantifier() {
        // PCRE treats `{x` as literal when it is not a valid bound.
        assert_eq!(p("a{x}"), Regex::literal("a{x}"));
        assert_eq!(p("a{}"), Regex::literal("a{}"));
        assert_eq!(p("a{2,x}"), Regex::literal("a{2,x}"));
    }

    #[test]
    fn groups_and_alternation() {
        assert_eq!(p("(ab)"), Regex::literal("ab"));
        assert_eq!(p("(?:ab)"), Regex::literal("ab"));
        let r = p("a(b|c)d");
        assert_eq!(r.to_string(), "a(?:b|c)d");
        // The paper's running example.
        let r = p("a(.a){3}b");
        assert_eq!(r.unfolded_size(), 8);
    }

    #[test]
    fn anchors() {
        let pat = parse_pattern("^abc$").expect("anchored pattern");
        assert!(pat.anchored_start);
        assert!(pat.anchored_end);
        assert_eq!(pat.regex, Regex::literal("abc"));
        // Escaped dollar is a literal, not an anchor.
        let pat = parse_pattern(r"ab\$").expect("escaped dollar");
        assert!(!pat.anchored_end);
        assert_eq!(pat.regex, Regex::literal("ab$"));
        assert!(parse("^abc").is_err());
        assert!(parse("a^b").is_err());
    }

    #[test]
    fn paper_examples_parse() {
        for s in [
            r"a([bc]|b.*d)",
            r"a.*bc{5}",
            r"a[bc].d?",
            r"a(.a){3}b",
            r"b(a{7}|c{5})b",
            r"ab(cd){2}e{1,3}f{2,}g{5}",
            r"ab{10,48}cd{34}ef{128}",
            r"a{1024}bc{0,16}",
            r"a(b{1,2}|c)e",
            r"AppPath=[C-Z]:\\\\[^\\\\]{1,64}\\.exe",
            r"Jeste.{1,8}firm.{1,8}",
        ] {
            let r = parse(s).unwrap_or_else(|e| panic!("{s:?}: {e}"));
            // Round-trip: the display form must parse to the same AST.
            let r2 =
                parse(&r.to_string()).unwrap_or_else(|e| panic!("roundtrip {s:?} -> {r}: {e}"));
            assert_eq!(r, r2, "roundtrip mismatch for {s:?}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse("(ab").is_err());
        assert!(parse("ab)").is_err());
        assert!(parse("[ab").is_err());
        assert!(parse("*a").is_err());
        assert!(parse(r"\").is_err());
        assert!(parse(r"\xZZ").is_err());
        assert!(parse("a{5,2}").is_err());
        assert!(parse("[z-a]").is_err());
    }

    #[test]
    fn error_display_mentions_offset() {
        let e = parse("(ab").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("offset"), "{msg}");
    }
}
