//! Regex front-end for the RAP (Reconfigurable Automata Processor) reproduction.
//!
//! This crate implements the textual layer of the RAP software stack:
//!
//! * [`CharClass`] — 256-way byte-predicate bitmaps (the σ ⊆ Σ of the paper),
//! * [`Regex`] — the abstract syntax tree of the PCRE subset used by the
//!   paper's benchmarks (`ε`, character classes, concatenation, union, `*`,
//!   `+`, `?`, and bounded repetition `r{m,n}`),
//! * [`parse`] — a parser for the PCRE-style concrete syntax,
//! * [`rewrite`] — the source-to-source rewriters used by the RAP compiler
//!   (§4 of the paper): bounded-repetition unfolding, the
//!   `r{m,n} → r{m} r{0,n-m}` split, and distribution of union over
//!   concatenation for LNFA conversion,
//! * [`analysis`] — structural analyses (Glushkov size estimation, bounded
//!   repetition inventory, linearizability).
//!
//! # Example
//!
//! ```
//! use rap_regex::{parse, analysis};
//!
//! let re = parse(r"ab{10,48}c")?;
//! let reps = analysis::bounded_repetitions(&re);
//! assert_eq!(reps.len(), 1);
//! assert_eq!((reps[0].min, reps[0].max), (10, Some(48)));
//! # Ok::<(), rap_regex::ParseError>(())
//! ```

pub mod analysis;
pub mod ast;
pub mod charclass;
pub mod parser;
pub mod rewrite;

pub use ast::Regex;
pub use charclass::CharClass;
pub use parser::{parse, parse_pattern, ParseError, Pattern};
