//! Static analyzer over compiled RAP automata images.
//!
//! `rap-analyze` runs fixed-point dataflow (forward reachability from the
//! initial states, backward liveness from the accepting states) over all
//! three compiled IRs — Glushkov NFA, NBVA, and LNFA chains — plus
//! IR-specific range and ambiguity passes, and reports findings through
//! the shared [`rap_diag`] machinery (one JSON schema with `rap lint`).
//!
//! The diagnostic families:
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `A001-unreachable-state` | warning | no input activates the state |
//! | `A002-dead-state` | warning | activates, but no match depends on it |
//! | `A003-dead-transition` | info | edges that never carry live activation |
//! | `A004-empty-class` | warning | unsatisfiable character class |
//! | `A005-dead-bv-column` | warning | BV columns above the read point |
//! | `A006-counter-overflow` | error | `r(m)` outside `1..=width` |
//! | `A007-counter-saturation` | error | BV allocation smaller than vector |
//! | `A008-ambiguous-overlap` | info | overlapping successor classes |
//! | `A009-compile-error` | error | pattern failed to compile |
//! | `A010-rewrite-unsound` | error | compiled image diverges from reference |
//! | `A011-redundant-state` | info | prune mode would shrink the image |
//!
//! With [`AnalyzeOptions::prune`] the analyzer also *rewrites* the images:
//! dead states are removed and right/left-equivalent states merged (see
//! [`prune`]), preserving match semantics exactly — the optional
//! [`soundness`] pass proves the final images equivalent to their source
//! patterns by exact product construction.

mod dataflow;
mod graph;
mod passes;
pub mod prune;
pub mod soundness;

pub use dataflow::Facts;
pub use prune::{prune_all, prune_image, PruneStats};
pub use soundness::{
    check as check_soundness, check_overlap, compiled_match_ends, representatives, Overlap,
    SoundnessConfig,
};

use rap_compiler::{CompileError, Compiled, Mode};
use rap_diag::{Location, RuleCode};
use rap_regex::Pattern;
use rap_telemetry::{Histogram, Registry};
use serde::{Deserialize, Serialize};
use std::fmt;

pub use rap_diag::Severity;

/// The analyzer's rule family (`A001`…). Codes are stable and append-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rule {
    /// A001: no path from an initial state ever activates the state.
    UnreachableState,
    /// A002: the state can activate but no match ever depends on it.
    DeadState,
    /// A003: transitions that can never carry a live activation.
    DeadTransition,
    /// A004: the state's character class matches no byte.
    EmptyClass,
    /// A005: BV columns above the read point can never influence a match.
    DeadBvColumn,
    /// A006: a read `r(m)` with `m = 0` or `m > width` can never succeed.
    CounterOverflow,
    /// A007: the BV allocation cannot hold the vector; counts saturate.
    CounterSaturation,
    /// A008: successor sets with overlapping classes duplicate activations.
    AmbiguousOverlap,
    /// A009: the pattern failed to compile (typed compiler error).
    CompileError,
    /// A010: the compiled image diverges from the reference automaton.
    RewriteUnsound,
    /// A011: dead-state pruning / equivalence merging would shrink the image.
    RedundantState,
}

impl Rule {
    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            Rule::UnreachableState => "A001-unreachable-state",
            Rule::DeadState => "A002-dead-state",
            Rule::DeadTransition => "A003-dead-transition",
            Rule::EmptyClass => "A004-empty-class",
            Rule::DeadBvColumn => "A005-dead-bv-column",
            Rule::CounterOverflow => "A006-counter-overflow",
            Rule::CounterSaturation => "A007-counter-saturation",
            Rule::AmbiguousOverlap => "A008-ambiguous-overlap",
            Rule::CompileError => "A009-compile-error",
            Rule::RewriteUnsound => "A010-rewrite-unsound",
            Rule::RedundantState => "A011-redundant-state",
        }
    }

    /// The fixed severity of this rule's findings.
    pub fn severity(self) -> Severity {
        match self {
            Rule::DeadTransition | Rule::AmbiguousOverlap | Rule::RedundantState => Severity::Info,
            Rule::UnreachableState | Rule::DeadState | Rule::EmptyClass | Rule::DeadBvColumn => {
                Severity::Warning
            }
            Rule::CounterOverflow
            | Rule::CounterSaturation
            | Rule::CompileError
            | Rule::RewriteUnsound => Severity::Error,
        }
    }

    /// Every rule, in code order.
    pub fn all() -> [Rule; 11] {
        [
            Rule::UnreachableState,
            Rule::DeadState,
            Rule::DeadTransition,
            Rule::EmptyClass,
            Rule::DeadBvColumn,
            Rule::CounterOverflow,
            Rule::CounterSaturation,
            Rule::AmbiguousOverlap,
            Rule::CompileError,
            Rule::RewriteUnsound,
            Rule::RedundantState,
        ]
    }
}

impl RuleCode for Rule {
    fn code(&self) -> &'static str {
        Rule::code(*self)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// An analyzer finding.
pub type Diagnostic = rap_diag::Diagnostic<Rule>;
/// An analyzer report (shared JSON schema with `rap lint`).
pub type Report = rap_diag::Report<Rule>;

/// What the analyzer should do beyond reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AnalyzeOptions {
    /// Rewrite the images: remove dead states and merge equivalent ones.
    /// The returned [`Analysis::images`] then carry the reduced automata.
    pub prune: bool,
    /// Prove every (possibly pruned) image equivalent to its source
    /// pattern by exact product construction, reporting divergences as
    /// `A010-rewrite-unsound`.
    pub soundness: Option<SoundnessConfig>,
}

impl AnalyzeOptions {
    /// Reporting only: no rewriting, no model check.
    pub fn report_only() -> AnalyzeOptions {
        AnalyzeOptions::default()
    }

    /// Enables pruning (builder style).
    #[must_use]
    pub fn with_prune(mut self) -> AnalyzeOptions {
        self.prune = true;
        self
    }

    /// Enables the soundness check (builder style).
    #[must_use]
    pub fn with_soundness(mut self, cfg: SoundnessConfig) -> AnalyzeOptions {
        self.soundness = Some(cfg);
        self
    }
}

/// Aggregate counters over one analyzed workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalyzeStats {
    /// Images analyzed.
    pub images: u64,
    /// Hardware states before any rewriting.
    pub states_before: u64,
    /// Hardware states in the returned images.
    pub states_after: u64,
    /// Unreachable states found (A001).
    pub unreachable_states: u64,
    /// Dead states found (A002).
    pub dead_states: u64,
    /// Dead transitions found (A003).
    pub dead_transitions: u64,
    /// Dead bit-vector bits found (A005).
    pub dead_bv_bits: u64,
    /// States the merge passes would collapse (dry run; independent of
    /// whether pruning was applied).
    pub mergeable_states: u64,
    /// States actually removed from the returned images
    /// (`states_before − states_after`; zero unless pruning is on).
    pub pruned_states: u64,
}

/// Per-image findings summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageSummary {
    /// Execution mode of the image.
    pub mode: Mode,
    /// Hardware states in the original image.
    pub states: u64,
    /// Unreachable states (A001).
    pub unreachable: u64,
    /// Dead states (A002).
    pub dead: u64,
    /// Dead transitions (A003).
    pub dead_transitions: u64,
    /// States a prune would remove (dead + mergeable).
    pub prunable: u64,
    /// Ambiguous successor sets (A008).
    pub ambiguous_sets: u64,
}

/// The analyzer's output: the report, the (possibly rewritten) images, and
/// aggregate statistics.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Every finding, in pattern order.
    pub report: Report,
    /// The images to hand downstream: pruned when
    /// [`AnalyzeOptions::prune`] was set, otherwise clones of the input.
    pub images: Vec<Compiled>,
    /// Aggregate counters.
    pub stats: AnalyzeStats,
    /// One summary per image.
    pub summaries: Vec<ImageSummary>,
}

/// Runs every pass over a compiled workload. `patterns` provides the
/// source pattern for each image (same indexing); it is only consulted by
/// the soundness check and may be empty when that pass is off.
pub fn analyze(images: &[Compiled], patterns: &[Pattern], options: &AnalyzeOptions) -> Analysis {
    analyze_with_registry(images, patterns, options, None)
}

/// Optionally records per-pass wall-clock histograms
/// (`rap_analyze_pass_ns{pass=…}`) and the pruned-state counter
/// (`rap_analyze_states_pruned_total`) into `registry`.
pub fn analyze_with_registry(
    images: &[Compiled],
    patterns: &[Pattern],
    options: &AnalyzeOptions,
    registry: Option<&Registry>,
) -> Analysis {
    let pass_hist =
        |pass: &str| registry.map(|r| r.histogram("rap_analyze_pass_ns", &[("pass", pass)]));
    let mut report = Report::default();
    let mut stats = AnalyzeStats {
        images: images.len() as u64,
        ..AnalyzeStats::default()
    };
    let mut out_images = Vec::with_capacity(images.len());
    let mut summaries = Vec::with_capacity(images.len());

    for (i, image) in images.iter().enumerate() {
        let f = timed(pass_hist("dataflow"), || passes::image_facts(image));
        let sc = timed(pass_hist("structural"), || {
            passes::structural(&mut report, i, &f)
        });
        let cc = timed(pass_hist("counters"), || match image {
            Compiled::Nbva(c) => passes::counters(&mut report, i, c),
            _ => passes::CounterCounts::default(),
        });
        let ambiguous = timed(pass_hist("overlap"), || {
            passes::overlap(&mut report, i, image)
        });

        // The prune always dry-runs (for the A011 advisory and the stats);
        // its result is kept only in prune mode.
        let (pruned, pstats) = timed(pass_hist("prune"), || prune::prune_image(image));
        let before = pstats.states_before;
        stats.states_before += before;
        stats.unreachable_states += sc.unreachable;
        stats.dead_states += sc.dead;
        stats.dead_transitions += sc.dead_transitions;
        stats.dead_bv_bits += cc.dead_bv_bits;
        stats.mergeable_states += pstats.merged;
        if pstats.removed() > 0 {
            report.push(
                Rule::RedundantState,
                Rule::RedundantState.severity(),
                Location::of_pattern(i),
                format!(
                    "pruning would reduce the image from {before} to {} states \
                     ({} dead removed, {} merged by equivalence)",
                    pstats.states_after, pstats.removed_dead, pstats.merged
                ),
            );
        }
        summaries.push(ImageSummary {
            mode: image.mode(),
            states: before,
            unreachable: sc.unreachable,
            dead: sc.dead,
            dead_transitions: sc.dead_transitions,
            prunable: pstats.removed(),
            ambiguous_sets: ambiguous,
        });
        let out = if options.prune { pruned } else { image.clone() };
        stats.states_after += out.state_count();

        if let Some(cfg) = &options.soundness {
            if let Some(pattern) = patterns.get(i) {
                let mismatch = timed(pass_hist("soundness"), || {
                    soundness::check(&out, pattern, cfg)
                });
                if let Some(description) = mismatch {
                    report.push(
                        Rule::RewriteUnsound,
                        Rule::RewriteUnsound.severity(),
                        Location::of_pattern(i),
                        format!(
                            "compiled image diverges from the reference \
                             automaton: {description}"
                        ),
                    );
                }
            }
        }
        out_images.push(out);
    }
    stats.pruned_states = stats.states_before - stats.states_after;
    if let Some(r) = registry {
        r.counter("rap_analyze_states_pruned_total", &[])
            .add(stats.pruned_states);
    }
    Analysis {
        report,
        images: out_images,
        stats,
        summaries,
    }
}

/// Per-state activity capability of one sub-automaton of an image,
/// derived from the dataflow fixpoint. Exported for downstream worst-case
/// analysis (`rap-bound`): a state that is not activatable can never be
/// observed active by the simulator, so the count of activatable states
/// is a sound bound on an automaton's peak active-state count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitActivity {
    /// The state can be active at some cycle of some input: forward
    /// reachable from the initial states with a satisfiable class.
    pub activatable: Vec<bool>,
    /// The state can report a match at some cycle: activatable, final,
    /// and (for a bit-vector state) readable through a satisfiable read
    /// action.
    pub accepting: Vec<bool>,
}

impl UnitActivity {
    fn of_view(g: &graph::GraphView) -> UnitActivity {
        let facts = dataflow::solve(g);
        let accepting = facts
            .reachable
            .iter()
            .zip(&g.can_accept)
            .map(|(&r, &a)| r && a)
            .collect();
        UnitActivity {
            activatable: facts.reachable,
            accepting,
        }
    }

    /// Number of activatable states.
    pub fn activatable_count(&self) -> u64 {
        self.activatable.iter().filter(|&&b| b).count() as u64
    }

    /// Number of accepting-capable states.
    pub fn accepting_count(&self) -> u64 {
        self.accepting.iter().filter(|&&b| b).count() as u64
    }
}

/// Activity capabilities of every sub-automaton of `image`: one unit for
/// an NFA or NBVA image, one per chain for an LNFA image (in unit order,
/// matching [`rap_compiler::CompiledLnfa::units`]).
pub fn state_activity(image: &Compiled) -> Vec<UnitActivity> {
    match image {
        Compiled::Nfa(c) => vec![UnitActivity::of_view(&graph::GraphView::of_nfa(&c.nfa))],
        Compiled::Nbva(c) => vec![UnitActivity::of_view(&graph::GraphView::of_nbva(&c.nbva))],
        Compiled::Lnfa(c) => c
            .units
            .iter()
            .map(|u| UnitActivity::of_view(&graph::GraphView::of_chain(u.lnfa.classes())))
            .collect(),
    }
}

/// Records a typed compiler failure as an `A009-compile-error` finding —
/// the analyzer-facing surface of errors like
/// [`CompileError::BvCapacity`].
pub fn compile_error_diag(report: &mut Report, pattern: usize, err: &CompileError) {
    report.push(
        Rule::CompileError,
        Rule::CompileError.severity(),
        Location::of_pattern(pattern),
        format!("pattern failed to compile: {err}"),
    );
}

/// Runs `f`, recording its wall time when a histogram is present.
fn timed<T>(hist: Option<Histogram>, f: impl FnOnce() -> T) -> T {
    match hist {
        Some(h) => rap_telemetry::time(&h, f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_automata::nbva::{Nbva, NbvaState, ReadAction, StateKind};
    use rap_automata::nfa::{Nfa, NfaState};
    use rap_compiler::{BvAlloc, CompiledNbva, CompiledNfa, Compiler, CompilerConfig};
    use rap_regex::{parse_pattern, CharClass};

    fn nfa_image(states: Vec<NfaState>, initial: Vec<u32>) -> Compiled {
        let columns = vec![1; states.len()];
        Compiled::Nfa(CompiledNfa {
            nfa: Nfa::from_parts(states, initial, false),
            state_columns: columns,
        })
    }

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.rule.code()).collect()
    }

    #[test]
    fn rule_codes_are_stable_and_unique() {
        let all = Rule::all();
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.code()[..4], format!("A{:03}", i + 1));
        }
    }

    #[test]
    fn dead_state_fixture_reports_a002_and_a003() {
        // q0 -> {q1(final), q2}; q2 loops on itself without accepting.
        let image = nfa_image(
            vec![
                NfaState {
                    cc: CharClass::single(b'a'),
                    succ: vec![1, 2],
                    is_final: false,
                },
                NfaState {
                    cc: CharClass::single(b'b'),
                    succ: vec![],
                    is_final: true,
                },
                NfaState {
                    cc: CharClass::single(b'c'),
                    succ: vec![2],
                    is_final: false,
                },
            ],
            vec![0],
        );
        let a = analyze(&[image], &[], &AnalyzeOptions::report_only());
        assert_eq!(
            codes(&a.report),
            vec![
                "A002-dead-state",
                "A003-dead-transition",
                "A011-redundant-state"
            ]
        );
        assert_eq!(a.report.diagnostics[0].location.state, Some(2));
        assert_eq!(a.stats.dead_states, 1);
        assert_eq!(a.summaries[0].dead, 1);
        // Report-only: images untouched.
        assert_eq!(a.stats.states_after, 3);
        assert_eq!(a.stats.pruned_states, 0);
    }

    #[test]
    fn unreachable_and_empty_class_fixtures_report_a001_a004() {
        let image = nfa_image(
            vec![
                NfaState {
                    cc: CharClass::single(b'a'),
                    succ: vec![1],
                    is_final: true,
                },
                NfaState {
                    cc: CharClass::empty(),
                    succ: vec![],
                    is_final: true,
                },
                NfaState {
                    cc: CharClass::single(b'z'),
                    succ: vec![0],
                    is_final: false,
                },
            ],
            vec![0],
        );
        let a = analyze(&[image], &[], &AnalyzeOptions::report_only());
        let got = codes(&a.report);
        assert!(got.contains(&"A004-empty-class"), "{got:?}");
        assert!(got.contains(&"A001-unreachable-state"), "{got:?}");
        // Warnings only — the workload is still legal.
        assert!(a.report.is_legal());
    }

    fn nbva_image(states: Vec<NbvaState>, allocs: Vec<Option<BvAlloc>>) -> Compiled {
        let columns = vec![1; states.len()];
        Compiled::Nbva(CompiledNbva {
            nbva: Nbva::from_parts(states, vec![0], false),
            depth: 8,
            state_columns: columns,
            bv_allocs: allocs,
        })
    }

    #[test]
    fn counter_fixtures_report_a005_a006_a007() {
        let plain = |byte, succ| NbvaState {
            cc: CharClass::single(byte),
            kind: StateKind::Plain,
            succ,
            is_final: false,
        };
        // Overflowing read: r(9) of an 8-bit vector (A006, error).
        let overflow = nbva_image(
            vec![
                plain(b'a', vec![1]),
                NbvaState {
                    cc: CharClass::single(b'b'),
                    kind: StateKind::Bv {
                        width: 8,
                        read: ReadAction::Exact(9),
                    },
                    succ: vec![],
                    is_final: true,
                },
            ],
            vec![
                None,
                Some(BvAlloc {
                    width_bits: 8,
                    depth: 8,
                    columns: 1,
                    read: ReadAction::Exact(9),
                }),
            ],
        );
        let a = analyze(&[overflow], &[], &AnalyzeOptions::report_only());
        assert!(codes(&a.report).contains(&"A006-counter-overflow"));
        assert!(!a.report.is_legal());

        // Dead columns: 17-bit vector at depth 8 read at r(1) → 2 of 3
        // columns dead (A005), 16 dead bits.
        let deadcols = nbva_image(
            vec![
                plain(b'a', vec![1]),
                NbvaState {
                    cc: CharClass::single(b'b'),
                    kind: StateKind::Bv {
                        width: 17,
                        read: ReadAction::Exact(1),
                    },
                    succ: vec![],
                    is_final: true,
                },
            ],
            vec![
                None,
                Some(BvAlloc {
                    width_bits: 17,
                    depth: 8,
                    columns: 3,
                    read: ReadAction::Exact(1),
                }),
            ],
        );
        let a = analyze(&[deadcols], &[], &AnalyzeOptions::report_only());
        let dead = a.report.by_rule(Rule::DeadBvColumn);
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("2 of 3"), "{}", dead[0].message);
        assert_eq!(a.stats.dead_bv_bits, 16);

        // Saturating allocation: 1 column × depth 8 for a 16-bit vector.
        let saturating = nbva_image(
            vec![
                plain(b'a', vec![1]),
                NbvaState {
                    cc: CharClass::single(b'b'),
                    kind: StateKind::Bv {
                        width: 16,
                        read: ReadAction::Exact(16),
                    },
                    succ: vec![],
                    is_final: true,
                },
            ],
            vec![
                None,
                Some(BvAlloc {
                    width_bits: 16,
                    depth: 8,
                    columns: 1,
                    read: ReadAction::Exact(16),
                }),
            ],
        );
        let a = analyze(&[saturating], &[], &AnalyzeOptions::report_only());
        assert!(codes(&a.report).contains(&"A007-counter-saturation"));
        assert!(!a.report.is_legal());
    }

    #[test]
    fn overlap_metric_reports_a008() {
        // q0 -> {q1: [ab], q2: [bc]} — both activate on 'b'.
        let image = nfa_image(
            vec![
                NfaState {
                    cc: CharClass::single(b'x'),
                    succ: vec![1, 2],
                    is_final: false,
                },
                NfaState {
                    cc: CharClass::from_bytes([b'a', b'b']),
                    succ: vec![],
                    is_final: true,
                },
                NfaState {
                    cc: CharClass::from_bytes([b'b', b'c']),
                    succ: vec![],
                    is_final: true,
                },
            ],
            vec![0],
        );
        let a = analyze(&[image], &[], &AnalyzeOptions::report_only());
        let amb = a.report.by_rule(Rule::AmbiguousOverlap);
        assert_eq!(amb.len(), 1);
        assert_eq!(amb[0].severity, Severity::Info);
        assert_eq!(a.summaries[0].ambiguous_sets, 1);
    }

    #[test]
    fn clean_compiled_patterns_have_no_errors_and_soundness_passes() {
        let compiler = Compiler::new(CompilerConfig::default());
        let sources = ["abc", "a(b|c)d", "ab*c", "ac{6}d", "b(a{7}|c{5})b"];
        let patterns: Vec<_> = sources
            .iter()
            .map(|s| parse_pattern(s).expect("parses"))
            .collect();
        let images: Vec<_> = patterns
            .iter()
            .map(|p| compiler.compile_anchored(p).expect("compiles"))
            .collect();
        let options = AnalyzeOptions::report_only()
            .with_prune()
            .with_soundness(SoundnessConfig::default());
        let a = analyze(&images, &patterns, &options);
        assert!(a.report.is_legal(), "{}", a.report);
        assert_eq!(a.report.by_rule(Rule::RewriteUnsound).len(), 0);
        assert_eq!(a.images.len(), images.len());
    }

    #[test]
    fn prune_mode_rewrites_and_reports_a011() {
        let compiler = Compiler::new(CompilerConfig::default());
        let regex = rap_regex::parse("(cat|dot)").expect("parses");
        let image = compiler
            .compile_with_mode(&regex, Mode::Nfa)
            .expect("compiles");
        let a = analyze(
            std::slice::from_ref(&image),
            &[],
            &AnalyzeOptions::report_only().with_prune(),
        );
        assert!(codes(&a.report).contains(&"A011-redundant-state"));
        assert_eq!(a.stats.states_before, 6);
        assert_eq!(a.stats.states_after, 5);
        assert_eq!(a.stats.pruned_states, 1);
        assert_eq!(a.images[0].state_count(), 5);
    }

    #[test]
    fn compile_error_becomes_a009() {
        let mut report = Report::default();
        compile_error_diag(
            &mut report,
            4,
            &CompileError::BvCapacity {
                width: 100,
                capacity: 0,
            },
        );
        assert!(!report.is_legal());
        assert_eq!(report.diagnostics[0].rule.code(), "A009-compile-error");
        assert_eq!(report.diagnostics[0].location.pattern, Some(4));
        assert!(report.diagnostics[0].message.contains("100-bit"));
    }

    #[test]
    fn telemetry_records_pass_timings_and_prune_counter() {
        let registry = Registry::new();
        let compiler = Compiler::new(CompilerConfig::default());
        let regex = rap_regex::parse("(cat|dot)").expect("parses");
        let image = compiler
            .compile_with_mode(&regex, Mode::Nfa)
            .expect("compiles");
        let options = AnalyzeOptions::report_only().with_prune();
        let a = analyze_with_registry(std::slice::from_ref(&image), &[], &options, Some(&registry));
        assert_eq!(a.stats.pruned_states, 1);
        let hist = registry.histogram("rap_analyze_pass_ns", &[("pass", "dataflow")]);
        assert_eq!(hist.count(), 1);
        let counter = registry.counter("rap_analyze_states_pruned_total", &[]);
        assert_eq!(counter.get(), 1);
    }
}
