//! Rewriter-soundness check: exact equivalence of a compiled image
//! against the reference Glushkov NFA of its source pattern.
//!
//! The compiler applies non-trivial rewritings (repetition unfolding, tile
//! splitting, LNFA distribution) before an image reaches hardware. This
//! pass proves — not samples — that the rewritten image reports exactly
//! the reference automaton's match ends on *every* input, by a product
//! construction: both machines are stepped jointly, breadth-first, over
//! one representative byte per alphabet-partition block, and every
//! reachable joint configuration is checked for agreement of the raw
//! match signal. The frontier is deduplicated against the set of visited
//! configurations (the antichain-style subsumption of tools like Mata
//! degenerates to exact-configuration dedup here, because the image side
//! is not a plain powerset lattice — NBVA bit vectors and LNFA chain
//! registers carry more than a state set).
//!
//! Exhaustive over Σ = 256 bytes is hopeless, but the automata only ever
//! test byte membership in their character classes — so bytes with the
//! same membership signature across *every* class of both machines are
//! interchangeable ([`representatives`]). Exploring one representative
//! per block is exhaustive over the mintermized alphabet by construction.
//!
//! Unlike the bounded model check this pass replaces, the result does not
//! depend on an input-length bound: when the joint exploration closes
//! (no unvisited configuration remains) the two machines are *equal* on
//! all inputs of all lengths. The only knob left is a memory/time budget
//! ([`SoundnessConfig::max_configs`]); an exploration that exhausts it
//! returns inconclusively, exactly like the old string cap did.

use rap_automata::bitvec::BitVec;
use rap_automata::lnfa::ShiftAndRun;
use rap_automata::nbva::NbvaRun;
use rap_automata::nfa::{Nfa, NfaRun};
use rap_compiler::Compiled;
use rap_regex::{CharClass, Pattern};
use std::collections::HashSet;

/// Resource budget for the equivalence check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SoundnessConfig {
    /// Maximum number of distinct joint configurations explored. The
    /// check is exact whenever exploration closes under this budget;
    /// exhausting it returns inconclusively (no finding). There is no
    /// input-length bound — equivalence holds for all lengths once the
    /// configuration space closes.
    pub max_configs: usize,
}

impl Default for SoundnessConfig {
    fn default() -> Self {
        SoundnessConfig { max_configs: 8192 }
    }
}

/// Match ends reported by a compiled image on one input, normalised to a
/// sorted, deduplicated list (an LNFA image is a union of chains, each
/// reporting independently).
pub fn compiled_match_ends(image: &Compiled, input: &[u8]) -> Vec<usize> {
    match image {
        Compiled::Nfa(c) => c.nfa.match_ends(input),
        Compiled::Nbva(c) => c.nbva.match_ends(input),
        Compiled::Lnfa(c) => {
            let mut ends: Vec<usize> = c
                .units
                .iter()
                .flat_map(|u| u.lnfa.match_ends(input))
                .collect();
            ends.sort_unstable();
            ends.dedup();
            ends
        }
    }
}

/// Every character class either machine consults.
fn all_classes(image: &Compiled, reference: &Nfa) -> Vec<CharClass> {
    let mut ccs: Vec<CharClass> = reference.states().iter().map(|s| s.cc).collect();
    image_classes(image, &mut ccs);
    ccs
}

/// Appends every character class one compiled image consults.
fn image_classes(image: &Compiled, ccs: &mut Vec<CharClass>) {
    match image {
        Compiled::Nfa(c) => ccs.extend(c.nfa.states().iter().map(|s| s.cc)),
        Compiled::Nbva(c) => ccs.extend(c.nbva.states().iter().map(|s| s.cc)),
        Compiled::Lnfa(c) => {
            for u in &c.units {
                ccs.extend(u.lnfa.classes().iter().copied());
            }
        }
    }
}

/// One representative byte per alphabet-partition block: two bytes are
/// equivalent when no class in `ccs` distinguishes them, so stepping any
/// automaton built from those classes with either byte reaches the same
/// configuration. The all-miss block (bytes outside every class) gets a
/// representative too — mismatch behaviour is part of the semantics.
pub fn representatives(ccs: &[CharClass]) -> Vec<u8> {
    let mut reps: Vec<u8> = Vec::new();
    let mut seen: Vec<Vec<u64>> = Vec::new();
    for b in 0..=255u8 {
        // Pack the membership signature 64 classes per word.
        let mut sig = vec![0u64; ccs.len() / 64 + 1];
        for (i, cc) in ccs.iter().enumerate() {
            if cc.contains(b) {
                sig[i / 64] |= 1u64 << (i % 64);
            }
        }
        if !seen.contains(&sig) {
            seen.push(sig);
            reps.push(b);
        }
    }
    reps
}

/// The image side of a joint configuration: a live run of whichever IR
/// the pattern compiled to.
#[derive(Clone, Debug)]
enum ImageRun<'a> {
    Nfa(NfaRun<'a>),
    Nbva(NbvaRun<'a>),
    Lnfa(Vec<ShiftAndRun<'a>>),
}

impl<'a> ImageRun<'a> {
    fn start(image: &'a Compiled) -> ImageRun<'a> {
        match image {
            Compiled::Nfa(c) => ImageRun::Nfa(c.nfa.start()),
            Compiled::Nbva(c) => ImageRun::Nbva(c.nbva.start()),
            Compiled::Lnfa(c) => ImageRun::Lnfa(c.units.iter().map(|u| u.lnfa.start()).collect()),
        }
    }

    /// Consumes one byte; returns the raw (unfiltered) match signal.
    fn step(&mut self, byte: u8) -> bool {
        match self {
            ImageRun::Nfa(run) => run.step(byte),
            ImageRun::Nbva(run) => run.step(byte),
            ImageRun::Lnfa(runs) => runs.iter_mut().fold(false, |m, r| r.step(byte) | m),
        }
    }

    /// The configuration's content identity: every bit of run state, as
    /// bit vectors (activation maps, NBVA vectors, chain registers).
    fn fingerprint(&self) -> Vec<BitVec> {
        match self {
            ImageRun::Nfa(run) => vec![run.active_bits().clone()],
            ImageRun::Nbva(run) => {
                let plain = run.plain_active_bits().clone();
                let n = plain.len();
                let mut fp = Vec::with_capacity(n + 1);
                fp.push(plain);
                for q in 0..n {
                    fp.push(run.vector(q as u32).clone());
                }
                fp
            }
            ImageRun::Lnfa(runs) => runs.iter().map(|r| r.states().clone()).collect(),
        }
    }
}

/// One visited node of the joint exploration: the paired runs plus a
/// parent pointer for counterexample reconstruction.
struct Node<'a> {
    reference: NfaRun<'a>,
    image: ImageRun<'a>,
    /// Index of the predecessor node (`usize::MAX` for the root).
    parent: usize,
    /// The byte that led here from the parent.
    byte: u8,
}

/// Rebuilds the input string leading to `node`, then appends `last` and
/// (optionally) `extension`.
fn witness(nodes: &[Node<'_>], node: usize, last: u8, extension: Option<u8>) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut i = node;
    while nodes[i].parent != usize::MAX {
        bytes.push(nodes[i].byte);
        i = nodes[i].parent;
    }
    bytes.reverse();
    bytes.push(last);
    bytes.extend(extension);
    bytes
}

fn divergence(image: &Compiled, reference: &Nfa, input: &[u8]) -> String {
    let want = reference.match_ends(input);
    let got = compiled_match_ends(image, input);
    format!(
        "input {:?} (len {}): reference match ends {want:?}, compiled image reports {got:?}",
        String::from_utf8_lossy(input),
        input.len()
    )
}

/// Checks a compiled image against its source pattern by exact product
/// construction. Returns `None` when the image provably reports the
/// reference automaton's match ends on every input (or the exploration
/// budget runs out before the configuration space closes), or a
/// description of a concrete diverging input.
pub fn check(image: &Compiled, pattern: &Pattern, cfg: &SoundnessConfig) -> Option<String> {
    if cfg.max_configs == 0 {
        return None;
    }
    let reference = Nfa::from_pattern(pattern);
    let reps = representatives(&all_classes(image, &reference));
    let ref_end = reference.anchored_end();
    let img_end = image.anchored_end();

    let mut nodes = vec![Node {
        reference: reference.start(),
        image: ImageRun::start(image),
        parent: usize::MAX,
        byte: 0,
    }];
    // Joint-configuration dedup. The position-zero flag is part of the
    // key: `^`-anchored runs arm their initial states only at offset 0,
    // so an offset-0 configuration and a bit-identical later one are not
    // interchangeable.
    let mut visited: HashSet<(bool, BitVec, Vec<BitVec>)> = HashSet::new();
    visited.insert((
        true,
        nodes[0].reference.active_bits().clone(),
        nodes[0].image.fingerprint(),
    ));

    let mut i = 0;
    while i < nodes.len() {
        for &b in &reps {
            let mut ref_run = nodes[i].reference.clone();
            let mut img_run = nodes[i].image.clone();
            let want = ref_run.step(b);
            let got = img_run.step(b);
            if want != got {
                // The string leading here is itself a diverging input:
                // every input's final position reports the raw signal.
                let input = witness(&nodes, i, b, None);
                return Some(divergence(image, &reference, &input));
            }
            if want && ref_end != img_end {
                // The raw signals agree, but exactly one side suppresses
                // the match mid-stream — any one-byte extension turns
                // this position into a mid-input divergence.
                let input = witness(&nodes, i, b, Some(reps[0]));
                return Some(divergence(image, &reference, &input));
            }
            let key = (false, ref_run.active_bits().clone(), img_run.fingerprint());
            if !visited.contains(&key) {
                if visited.len() >= cfg.max_configs {
                    // Budget exhausted before the space closed:
                    // inconclusive, like the old string cap.
                    return None;
                }
                visited.insert(key);
                nodes.push(Node {
                    reference: ref_run,
                    image: img_run,
                    parent: i,
                    byte: b,
                });
            }
        }
        i += 1;
    }
    None
}

/// Outcome of the cross-image overlap probe ([`check_overlap`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Overlap {
    /// Exploration closed: no input makes both images raise their raw
    /// match signal at the same position, on any input of any length.
    Disjoint {
        /// Joint configurations explored before the space closed.
        explored: usize,
    },
    /// Both images report a match ending at the final byte of `input` —
    /// a stream that ends there makes both tenants report, whatever
    /// their end anchoring.
    Simultaneous {
        /// A concrete witness stream.
        input: Vec<u8>,
        /// Joint configurations explored before the witness surfaced.
        explored: usize,
    },
    /// The budget ran out before the joint space closed; nothing can be
    /// concluded either way.
    Inconclusive {
        /// Joint configurations explored (the exhausted budget).
        explored: usize,
    },
}

impl Overlap {
    /// Joint configurations explored, whatever the outcome.
    #[must_use]
    pub fn explored(&self) -> usize {
        match self {
            Overlap::Disjoint { explored }
            | Overlap::Simultaneous { explored, .. }
            | Overlap::Inconclusive { explored } => *explored,
        }
    }
}

/// Probes whether two compiled images can ever report a match at the
/// same input position, by the same product construction as [`check`]
/// but paired image-against-image instead of image-against-reference.
/// The raw (pre-anchor-filter) signal is the right one to compare: a
/// simultaneous raw report at position `p` is realised by any stream
/// ending at `p`, where even end-anchored images surface the match.
/// The mintermized alphabet is rebuilt over *both* images' classes, so
/// one representative per block stays exhaustive for the pair.
pub fn check_overlap(a: &Compiled, b: &Compiled, cfg: &SoundnessConfig) -> Overlap {
    if cfg.max_configs == 0 {
        return Overlap::Inconclusive { explored: 0 };
    }
    let mut ccs = Vec::new();
    image_classes(a, &mut ccs);
    image_classes(b, &mut ccs);
    let reps = representatives(&ccs);

    /// One visited joint node: both runs plus the witness back-pointer.
    struct Joint<'x> {
        a: ImageRun<'x>,
        b: ImageRun<'x>,
        parent: usize,
        byte: u8,
    }
    let mut nodes = vec![Joint {
        a: ImageRun::start(a),
        b: ImageRun::start(b),
        parent: usize::MAX,
        byte: 0,
    }];
    // Same offset-zero caveat as `check`: `^`-anchored images arm their
    // start states only at position 0, so the root is keyed apart.
    let mut visited: HashSet<(bool, Vec<BitVec>, Vec<BitVec>)> = HashSet::new();
    visited.insert((true, nodes[0].a.fingerprint(), nodes[0].b.fingerprint()));

    let mut i = 0;
    while i < nodes.len() {
        for &byte in &reps {
            let mut run_a = nodes[i].a.clone();
            let mut run_b = nodes[i].b.clone();
            let hit_a = run_a.step(byte);
            let hit_b = run_b.step(byte);
            if hit_a && hit_b {
                let mut input = Vec::new();
                let mut j = i;
                while nodes[j].parent != usize::MAX {
                    input.push(nodes[j].byte);
                    j = nodes[j].parent;
                }
                input.reverse();
                input.push(byte);
                return Overlap::Simultaneous {
                    input,
                    explored: visited.len(),
                };
            }
            let key = (false, run_a.fingerprint(), run_b.fingerprint());
            if !visited.contains(&key) {
                if visited.len() >= cfg.max_configs {
                    return Overlap::Inconclusive {
                        explored: visited.len(),
                    };
                }
                visited.insert(key);
                nodes.push(Joint {
                    a: run_a,
                    b: run_b,
                    parent: i,
                    byte,
                });
            }
        }
        i += 1;
    }
    Overlap::Disjoint {
        explored: visited.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_automata::nfa::NfaState;
    use rap_compiler::{CompiledNfa, Compiler, CompilerConfig};
    use rap_regex::parse_pattern;

    fn check_pattern(pattern: &str) -> Option<String> {
        let compiler = Compiler::new(CompilerConfig::default());
        let parsed = parse_pattern(pattern).expect("parses");
        let image = compiler.compile_anchored(&parsed).expect("compiles");
        check(&image, &parsed, &SoundnessConfig::default())
    }

    #[test]
    fn compiled_images_agree_with_reference() {
        // One pattern per mode, plus anchored and unfolding cases.
        for pattern in [
            "abc",
            "a(b|c)d",
            "ab*c",
            "ac{6}d",
            "b(a{7}|c{5})b",
            "^ab",
            "ab$",
        ] {
            assert_eq!(check_pattern(pattern), None, "{pattern}");
        }
    }

    #[test]
    fn pruned_images_stay_sound() {
        let compiler = Compiler::new(CompilerConfig::default());
        for pattern in ["(cat|dot)", "(cat|cow)", "x(a{9}y|b{9}y)"] {
            let parsed = parse_pattern(pattern).expect("parses");
            let image = compiler.compile_anchored(&parsed).expect("compiles");
            let (pruned, _) = crate::prune::prune_image(&image);
            assert_eq!(
                check(&pruned, &parsed, &SoundnessConfig::default()),
                None,
                "{pattern}"
            );
        }
    }

    #[test]
    fn broken_image_is_caught() {
        // An "image" for `ab` whose first state wrongly reports matches.
        let states = vec![
            NfaState {
                cc: rap_regex::CharClass::single(b'a'),
                succ: vec![1],
                is_final: true, // wrong: should be false
            },
            NfaState {
                cc: rap_regex::CharClass::single(b'b'),
                succ: vec![],
                is_final: true,
            },
        ];
        let nfa = Nfa::from_parts(states, vec![0], false);
        let image = Compiled::Nfa(CompiledNfa {
            nfa,
            state_columns: vec![1, 1],
        });
        let parsed = parse_pattern("ab").expect("parses");
        let mismatch = check(&image, &parsed, &SoundnessConfig::default());
        assert!(mismatch.is_some());
        assert!(mismatch.expect("mismatch").contains("reference match ends"));
    }

    #[test]
    fn divergence_beyond_any_fixed_depth_is_caught() {
        // A chain for `abcdefgh` that accepts one byte early (after
        // "abcdefg"). The old depth-5 bounded model check could never see
        // this; the product construction finds it at whatever depth the
        // configuration space demands.
        let source = b"abcdefgh";
        let states: Vec<NfaState> = source
            .iter()
            .enumerate()
            .map(|(i, &byte)| NfaState {
                cc: rap_regex::CharClass::single(byte),
                succ: if i + 1 < source.len() {
                    vec![(i + 1) as u32]
                } else {
                    vec![]
                },
                is_final: i == 6, // wrong: should be i == 7
            })
            .collect();
        let nfa = Nfa::from_parts(states, vec![0], false);
        let image = Compiled::Nfa(CompiledNfa {
            nfa,
            state_columns: vec![1; source.len()],
        });
        let parsed = parse_pattern("abcdefgh").expect("parses");
        let mismatch = check(&image, &parsed, &SoundnessConfig::default());
        let description = mismatch.expect("early-accept divergence found");
        assert!(description.contains("abcdefg"), "{description}");
    }

    #[test]
    fn dropped_end_anchor_is_caught() {
        // A correct image for `ab` checked against `ab$`: the raw match
        // signals agree everywhere, but the unanchored image reports
        // mid-stream matches the anchored reference suppresses.
        let compiler = Compiler::new(CompilerConfig::default());
        let unanchored = parse_pattern("ab").expect("parses");
        let image = compiler
            .compile_anchored(&unanchored)
            .expect("compiles")
            .with_anchors(false, false);
        let anchored = parse_pattern("ab$").expect("parses");
        let mismatch = check(&image, &anchored, &SoundnessConfig::default());
        assert!(mismatch.is_some(), "anchor mismatch must be caught");
    }

    #[test]
    fn budget_cap_is_respected() {
        // With a zero budget nothing is explored, so even a broken image
        // passes — the budget trades confidence for time.
        let states = vec![NfaState {
            cc: rap_regex::CharClass::single(b'a'),
            succ: vec![],
            is_final: true, // wrong for pattern `ab`
        }];
        let nfa = Nfa::from_parts(states, vec![0], false);
        let image = Compiled::Nfa(CompiledNfa {
            nfa,
            state_columns: vec![1],
        });
        let parsed = parse_pattern("ab").expect("parses");
        let cfg = SoundnessConfig { max_configs: 0 };
        assert_eq!(check(&image, &parsed, &cfg), None);
        assert!(check(&image, &parsed, &SoundnessConfig::default()).is_some());
    }

    fn compile(pattern: &str) -> Compiled {
        let compiler = Compiler::new(CompilerConfig::default());
        let parsed = parse_pattern(pattern).expect("parses");
        compiler.compile_anchored(&parsed).expect("compiles")
    }

    #[test]
    fn overlapping_literals_yield_a_simultaneous_witness() {
        let a = compile("abc");
        let b = compile("bc");
        let overlap = check_overlap(&a, &b, &SoundnessConfig::default());
        let Overlap::Simultaneous { input, .. } = overlap else {
            panic!("expected a witness, got {overlap:?}");
        };
        // The witness really makes both images report at its end.
        let end = input.len();
        assert!(compiled_match_ends(&a, &input).contains(&end), "{input:?}");
        assert!(compiled_match_ends(&b, &input).contains(&end), "{input:?}");
    }

    #[test]
    fn disjoint_literals_close_without_a_witness() {
        // Every match of `aaa` ends in `a`, every match of `bbb` in `b`:
        // no position can report both.
        let a = compile("aaa");
        let b = compile("bbb");
        assert!(matches!(
            check_overlap(&a, &b, &SoundnessConfig::default()),
            Overlap::Disjoint { .. }
        ));
    }

    #[test]
    fn overlap_budget_zero_is_inconclusive() {
        let a = compile("abc");
        let b = compile("bc");
        let cfg = SoundnessConfig { max_configs: 0 };
        assert_eq!(
            check_overlap(&a, &b, &cfg),
            Overlap::Inconclusive { explored: 0 }
        );
    }

    #[test]
    fn representatives_cover_all_blocks() {
        let ccs = vec![CharClass::single(b'a'), CharClass::from_bytes([b'a', b'b'])];
        let reps = representatives(&ccs);
        // Blocks: {a}, {b}, everything else.
        assert_eq!(reps.len(), 3);
        assert!(reps.contains(&b'a'));
        assert!(reps.contains(&b'b'));
    }
}
