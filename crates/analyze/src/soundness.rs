//! Rewriter-soundness lint: a bounded model check of a compiled image
//! against the reference Glushkov NFA of its source pattern.
//!
//! The compiler applies non-trivial rewritings (repetition unfolding, tile
//! splitting, LNFA distribution) before an image reaches hardware. This
//! pass replays both the reference automaton and the compiled image over
//! an exhaustive set of short strings and reports the first divergence in
//! reported match ends.
//!
//! Exhaustive over Σ = 256 bytes is hopeless, but the automata only ever
//! test byte membership in their character classes — so bytes with the
//! same membership signature across *every* class of both machines are
//! interchangeable. The check partitions the alphabet into those
//! equivalence blocks and enumerates strings over one representative per
//! block, which is exhaustive up to the chosen length by construction.

use rap_automata::nfa::Nfa;
use rap_compiler::Compiled;
use rap_regex::{CharClass, Pattern};

/// Bounds for the model check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SoundnessConfig {
    /// Longest string length enumerated (exhaustive up to here over the
    /// live alphabet partition).
    pub max_len: usize,
    /// Hard cap on the number of strings checked per pattern.
    pub max_strings: usize,
}

impl Default for SoundnessConfig {
    fn default() -> Self {
        SoundnessConfig {
            max_len: 5,
            max_strings: 2000,
        }
    }
}

/// Match ends reported by a compiled image on one input, normalised to a
/// sorted, deduplicated list (an LNFA image is a union of chains, each
/// reporting independently).
pub fn compiled_match_ends(image: &Compiled, input: &[u8]) -> Vec<usize> {
    match image {
        Compiled::Nfa(c) => c.nfa.match_ends(input),
        Compiled::Nbva(c) => c.nbva.match_ends(input),
        Compiled::Lnfa(c) => {
            let mut ends: Vec<usize> = c
                .units
                .iter()
                .flat_map(|u| u.lnfa.match_ends(input))
                .collect();
            ends.sort_unstable();
            ends.dedup();
            ends
        }
    }
}

/// Every character class either machine consults.
fn all_classes(image: &Compiled, reference: &Nfa) -> Vec<CharClass> {
    let mut ccs: Vec<CharClass> = reference.states().iter().map(|s| s.cc).collect();
    match image {
        Compiled::Nfa(c) => ccs.extend(c.nfa.states().iter().map(|s| s.cc)),
        Compiled::Nbva(c) => ccs.extend(c.nbva.states().iter().map(|s| s.cc)),
        Compiled::Lnfa(c) => {
            for u in &c.units {
                ccs.extend(u.lnfa.classes().iter().copied());
            }
        }
    }
    ccs
}

/// One representative byte per alphabet-partition block: two bytes are
/// equivalent when no class distinguishes them. The all-miss block (bytes
/// outside every class) gets a representative too — mismatch behaviour is
/// part of the semantics.
fn representatives(ccs: &[CharClass]) -> Vec<u8> {
    let mut reps: Vec<u8> = Vec::new();
    let mut seen: Vec<Vec<u64>> = Vec::new();
    for b in 0..=255u8 {
        // Pack the membership signature 64 classes per word.
        let mut sig = vec![0u64; ccs.len() / 64 + 1];
        for (i, cc) in ccs.iter().enumerate() {
            if cc.contains(b) {
                sig[i / 64] |= 1u64 << (i % 64);
            }
        }
        if !seen.contains(&sig) {
            seen.push(sig);
            reps.push(b);
        }
    }
    reps
}

/// Model-checks a compiled image against its source pattern. Returns
/// `None` when every enumerated string produces identical match ends, or
/// a description of the first divergence.
pub fn check(image: &Compiled, pattern: &Pattern, cfg: &SoundnessConfig) -> Option<String> {
    let reference = Nfa::from_pattern(pattern);
    let reps = representatives(&all_classes(image, &reference));
    let mut checked = 0usize;
    let mut buf: Vec<u8> = Vec::with_capacity(cfg.max_len);
    for len in 1..=cfg.max_len {
        // Odometer over representative bytes: indices[i] counts through
        // `reps` for position i.
        let mut indices = vec![0usize; len];
        loop {
            if checked >= cfg.max_strings {
                return None;
            }
            buf.clear();
            buf.extend(indices.iter().map(|&i| reps[i]));
            let want = reference.match_ends(&buf);
            let got = compiled_match_ends(image, &buf);
            if want != got {
                return Some(format!(
                    "input {:?} (len {len}): reference match ends {want:?}, compiled image reports {got:?}",
                    String::from_utf8_lossy(&buf)
                ));
            }
            checked += 1;
            // Advance the odometer; carry out means this length is done.
            let mut pos = 0;
            loop {
                if pos == len {
                    break;
                }
                indices[pos] += 1;
                if indices[pos] < reps.len() {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
            }
            if pos == len {
                break;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_automata::nfa::NfaState;
    use rap_compiler::{CompiledNfa, Compiler, CompilerConfig};
    use rap_regex::parse_pattern;

    fn check_pattern(pattern: &str) -> Option<String> {
        let compiler = Compiler::new(CompilerConfig::default());
        let parsed = parse_pattern(pattern).expect("parses");
        let image = compiler.compile_anchored(&parsed).expect("compiles");
        check(&image, &parsed, &SoundnessConfig::default())
    }

    #[test]
    fn compiled_images_agree_with_reference() {
        // One pattern per mode, plus anchored and unfolding cases.
        for pattern in [
            "abc",
            "a(b|c)d",
            "ab*c",
            "ac{6}d",
            "b(a{7}|c{5})b",
            "^ab",
            "ab$",
        ] {
            assert_eq!(check_pattern(pattern), None, "{pattern}");
        }
    }

    #[test]
    fn pruned_images_stay_sound() {
        let compiler = Compiler::new(CompilerConfig::default());
        for pattern in ["(cat|dot)", "(cat|cow)", "x(a{9}y|b{9}y)"] {
            let parsed = parse_pattern(pattern).expect("parses");
            let image = compiler.compile_anchored(&parsed).expect("compiles");
            let (pruned, _) = crate::prune::prune_image(&image);
            assert_eq!(
                check(&pruned, &parsed, &SoundnessConfig::default()),
                None,
                "{pattern}"
            );
        }
    }

    #[test]
    fn broken_image_is_caught() {
        // An "image" for `ab` whose first state wrongly reports matches.
        let states = vec![
            NfaState {
                cc: rap_regex::CharClass::single(b'a'),
                succ: vec![1],
                is_final: true, // wrong: should be false
            },
            NfaState {
                cc: rap_regex::CharClass::single(b'b'),
                succ: vec![],
                is_final: true,
            },
        ];
        let nfa = Nfa::from_parts(states, vec![0], false);
        let image = Compiled::Nfa(CompiledNfa {
            nfa,
            state_columns: vec![1, 1],
        });
        let parsed = parse_pattern("ab").expect("parses");
        let mismatch = check(&image, &parsed, &SoundnessConfig::default());
        assert!(mismatch.is_some());
        assert!(mismatch.expect("mismatch").contains("reference match ends"));
    }

    #[test]
    fn string_cap_is_respected() {
        // With a cap of 0 nothing is enumerated, so even the broken image
        // above would pass — the cap trades confidence for time.
        let parsed = parse_pattern("a.b").expect("parses");
        let compiler = Compiler::new(CompilerConfig::default());
        let image = compiler.compile_anchored(&parsed).expect("compiles");
        let cfg = SoundnessConfig {
            max_len: 3,
            max_strings: 0,
        };
        assert_eq!(check(&image, &parsed, &cfg), None);
    }
}
