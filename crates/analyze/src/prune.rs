//! Analyzer-driven image rewriting: dead-state pruning and equivalence
//! merging.
//!
//! Two language-preserving reductions run to a fixed point after the dead
//! states (reachable ∧ ¬live fails) are removed:
//!
//! * **Right equivalence** — states with identical character class, kind,
//!   successor set, and finality are interchangeable *downstream*: whichever
//!   of them is active, the emission into the (shared) successors and the
//!   match report are the same, so they collapse into one state whose
//!   activation is the OR of the originals. For bit-vector states the
//!   merged vector is the bitwise OR of the original vectors (`set1`,
//!   `shft`, and `clear` are all pointwise ∨-morphisms and both read
//!   actions distribute over ∨), so behaviour is preserved exactly.
//! * **Left equivalence** — states with identical character class, kind,
//!   predecessor set, and initial membership always activate *together*
//!   (same candidates, same class test), so they collapse into one state
//!   carrying the union of their successor sets and the OR of their
//!   finality.
//!
//! Glushkov automata of generated rule sets hit these constantly: the
//! alternatives of `(cat|cow)` share their first position's behaviour, the
//! alternatives of `(cat|dot)` share their last.

use crate::dataflow;
use crate::graph::GraphView;
use rap_automata::nbva::{Nbva, NbvaState, StateKind};
use rap_automata::nfa::{Nfa, NfaState};
use rap_compiler::{BvAlloc, Compiled, CompiledLnfa, CompiledNbva, CompiledNfa};
use rap_regex::CharClass;
use std::collections::HashMap;

/// What pruning one image did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// States before any rewriting.
    pub states_before: u64,
    /// States in the pruned image.
    pub states_after: u64,
    /// States removed because they were unreachable or dead.
    pub removed_dead: u64,
    /// States removed by right/left equivalence merging.
    pub merged: u64,
}

impl PruneStats {
    /// Total states removed.
    pub fn removed(&self) -> u64 {
        self.states_before - self.states_after
    }

    fn add(&mut self, other: PruneStats) {
        self.states_before += other.states_before;
        self.states_after += other.states_after;
        self.removed_dead += other.removed_dead;
        self.merged += other.merged;
    }
}

/// Rewrites one compiled image with dead-state pruning and equivalence
/// merging. The returned image matches exactly the same `(input, offset)`
/// pairs as the original; [`PruneStats`] reports the reduction.
///
/// Images that would be left with no states (every state dead — the
/// pattern matches nothing) are returned unchanged: an empty image cannot
/// be mapped, and keeping the original preserves the (empty) language.
pub fn prune_image(image: &Compiled) -> (Compiled, PruneStats) {
    match image {
        Compiled::Nfa(c) => {
            let (c, stats) = prune_nfa(c);
            (Compiled::Nfa(c), stats)
        }
        Compiled::Nbva(c) => {
            let (c, stats) = prune_nbva(c);
            (Compiled::Nbva(c), stats)
        }
        Compiled::Lnfa(c) => {
            let (c, stats) = prune_lnfa(c);
            (Compiled::Lnfa(c), stats)
        }
    }
}

/// IR-generic working state for the rewrite: NFA states are `Plain`-kinded.
#[derive(Clone, Debug)]
struct WorkState {
    cc: CharClass,
    kind: StateKind,
    succ: Vec<u32>,
    is_final: bool,
    columns: u32,
    alloc: Option<BvAlloc>,
}

fn normalize(mut succ: Vec<u32>) -> Vec<u32> {
    succ.sort_unstable();
    succ.dedup();
    succ
}

/// Encodes a state kind as comparable words (no `Hash` on `StateKind`).
fn kind_key(kind: StateKind) -> [u64; 2] {
    use rap_automata::nbva::ReadAction;
    match kind {
        StateKind::Plain => [0, 0],
        StateKind::Bv { width, read } => match read {
            ReadAction::Exact(m) => [1 | (u64::from(width) << 8), u64::from(m)],
            ReadAction::All => [2 | (u64::from(width) << 8), 0],
        },
    }
}

/// Drops the states `keep[q] == false`, remapping successors and initials.
fn retain(states: &mut Vec<WorkState>, initial: &mut Vec<u32>, keep: &[bool]) -> u64 {
    let n = states.len();
    let mut new_idx = vec![u32::MAX; n];
    let mut next = 0u32;
    for q in 0..n {
        if keep[q] {
            new_idx[q] = next;
            next += 1;
        }
    }
    let removed = (n as u64) - u64::from(next);
    if removed == 0 {
        return 0;
    }
    let mut new_states = Vec::with_capacity(next as usize);
    for (q, s) in states.iter().enumerate() {
        if !keep[q] {
            continue;
        }
        let mut s = s.clone();
        s.succ = normalize(
            s.succ
                .iter()
                .filter(|&&t| keep[t as usize])
                .map(|&t| new_idx[t as usize])
                .collect(),
        );
        new_states.push(s);
    }
    *initial = normalize(
        initial
            .iter()
            .filter(|&&q| keep[q as usize])
            .map(|&q| new_idx[q as usize])
            .collect(),
    );
    *states = new_states;
    removed
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum MergeSide {
    /// Group by (cc, kind, successors, finality).
    Right,
    /// Group by (cc, kind, predecessors, initial membership).
    Left,
}

/// One merge pass: groups equivalent states, collapses each group onto its
/// first member, and renumbers. Returns how many states were merged away.
fn merge_pass(states: &mut Vec<WorkState>, initial: &mut Vec<u32>, side: MergeSide) -> u64 {
    let n = states.len();
    let mut pred: Vec<Vec<u32>> = vec![Vec::new(); n];
    if side == MergeSide::Left {
        for (p, s) in states.iter().enumerate() {
            for &q in &s.succ {
                pred[q as usize].push(p as u32);
            }
        }
        for p in &mut pred {
            p.sort_unstable();
            p.dedup();
        }
    }
    let is_init: Vec<bool> = {
        let mut v = vec![false; n];
        for &q in initial.iter() {
            v[q as usize] = true;
        }
        v
    };

    let mut canon: Vec<u32> = (0..n as u32).collect();
    let mut groups: HashMap<Vec<u64>, u32> = HashMap::new();
    let mut merged = 0u64;
    for q in 0..n {
        let s = &states[q];
        let mut key: Vec<u64> = Vec::with_capacity(8 + s.succ.len());
        key.extend_from_slice(&s.cc.as_words()[..]);
        key.extend_from_slice(&kind_key(s.kind));
        match side {
            MergeSide::Right => {
                key.push(u64::from(s.is_final));
                key.extend(s.succ.iter().map(|&t| u64::from(t)));
            }
            MergeSide::Left => {
                key.push(u64::from(is_init[q]));
                key.extend(pred[q].iter().map(|&t| u64::from(t)));
            }
        }
        match groups.get(&key) {
            Some(&rep) => {
                canon[q] = rep;
                merged += 1;
            }
            None => {
                groups.insert(key, q as u32);
            }
        }
    }
    if merged == 0 {
        return 0;
    }

    // Left merges carry their members' successors and finality onto the
    // representative (the members always activate together, so the merged
    // state's behaviour is the union of theirs).
    if side == MergeSide::Left {
        for q in 0..n {
            let rep = canon[q] as usize;
            if rep != q {
                let extra = states[q].succ.clone();
                states[rep].succ.extend(extra);
                states[rep].is_final |= states[q].is_final;
            }
        }
    }

    // Renumber representatives and remap every edge through canon.
    let mut new_idx = vec![u32::MAX; n];
    let mut next = 0u32;
    for q in 0..n {
        if canon[q] as usize == q {
            new_idx[q] = next;
            next += 1;
        }
    }
    let mut new_states = Vec::with_capacity(next as usize);
    for q in 0..n {
        if canon[q] as usize != q {
            continue;
        }
        let mut s = states[q].clone();
        s.succ = normalize(
            s.succ
                .iter()
                .map(|&t| new_idx[canon[t as usize] as usize])
                .collect(),
        );
        new_states.push(s);
    }
    *initial = normalize(
        initial
            .iter()
            .map(|&q| new_idx[canon[q as usize] as usize])
            .collect(),
    );
    *states = new_states;
    merged
}

/// Runs dead-state removal then right/left merging to a fixed point on the
/// working representation.
fn reduce(states: &mut Vec<WorkState>, initial: &mut Vec<u32>, useful: &[bool]) -> (u64, u64) {
    let removed_dead = retain(states, initial, useful);
    let mut merged = 0;
    loop {
        let round = merge_pass(states, initial, MergeSide::Right)
            + merge_pass(states, initial, MergeSide::Left);
        if round == 0 {
            break;
        }
        merged += round;
    }
    (removed_dead, merged)
}

fn prune_nfa(c: &CompiledNfa) -> (CompiledNfa, PruneStats) {
    let facts = dataflow::solve(&GraphView::of_nfa(&c.nfa));
    let useful = facts.useful();
    let before = c.nfa.len() as u64;
    if useful.iter().all(|&u| !u) {
        return (
            c.clone(),
            PruneStats {
                states_before: before,
                states_after: before,
                ..PruneStats::default()
            },
        );
    }
    let mut states: Vec<WorkState> = c
        .nfa
        .states()
        .iter()
        .zip(&c.state_columns)
        .map(|(s, &columns)| WorkState {
            cc: s.cc,
            kind: StateKind::Plain,
            succ: normalize(s.succ.clone()),
            is_final: s.is_final,
            columns,
            alloc: None,
        })
        .collect();
    let mut initial = normalize(c.nfa.initial().to_vec());
    let (removed_dead, merged) = reduce(&mut states, &mut initial, &useful);
    let nfa = Nfa::from_parts(
        states
            .iter()
            .map(|s| NfaState {
                cc: s.cc,
                succ: s.succ.clone(),
                is_final: s.is_final,
            })
            .collect(),
        initial,
        c.nfa.matches_empty(),
    )
    .with_anchors(c.nfa.anchored_start(), c.nfa.anchored_end());
    let stats = PruneStats {
        states_before: before,
        states_after: nfa.len() as u64,
        removed_dead,
        merged,
    };
    let state_columns = states.iter().map(|s| s.columns).collect();
    (CompiledNfa { nfa, state_columns }, stats)
}

fn prune_nbva(c: &CompiledNbva) -> (CompiledNbva, PruneStats) {
    let facts = dataflow::solve(&GraphView::of_nbva(&c.nbva));
    let useful = facts.useful();
    let before = c.nbva.len() as u64;
    if useful.iter().all(|&u| !u) {
        return (
            c.clone(),
            PruneStats {
                states_before: before,
                states_after: before,
                ..PruneStats::default()
            },
        );
    }
    let mut states: Vec<WorkState> = c
        .nbva
        .states()
        .iter()
        .zip(c.state_columns.iter().zip(&c.bv_allocs))
        .map(|(s, (&columns, &alloc))| WorkState {
            cc: s.cc,
            kind: s.kind,
            succ: normalize(s.succ.clone()),
            is_final: s.is_final,
            columns,
            alloc,
        })
        .collect();
    let mut initial = normalize(c.nbva.initial().to_vec());
    let (removed_dead, merged) = reduce(&mut states, &mut initial, &useful);
    let nbva = Nbva::from_parts(
        states
            .iter()
            .map(|s| NbvaState {
                cc: s.cc,
                kind: s.kind,
                succ: s.succ.clone(),
                is_final: s.is_final,
            })
            .collect(),
        initial,
        c.nbva.matches_empty(),
    )
    .with_anchors(c.nbva.anchored_start(), c.nbva.anchored_end());
    let stats = PruneStats {
        states_before: before,
        states_after: nbva.len() as u64,
        removed_dead,
        merged,
    };
    (
        CompiledNbva {
            nbva,
            depth: c.depth,
            state_columns: states.iter().map(|s| s.columns).collect(),
            bv_allocs: states.iter().map(|s| s.alloc).collect(),
        },
        stats,
    )
}

fn prune_lnfa(c: &CompiledLnfa) -> (CompiledLnfa, PruneStats) {
    let before: u64 = c.units.iter().map(|u| u.lnfa.len() as u64).sum();
    let mut units = Vec::with_capacity(c.units.len());
    let mut removed_dead = 0u64;
    let mut merged = 0u64;
    for unit in &c.units {
        // A chain with an unsatisfiable class can never complete a match.
        if unit.lnfa.classes().iter().any(CharClass::is_empty) {
            removed_dead += unit.lnfa.len() as u64;
            continue;
        }
        // Duplicate chains (e.g. both alternatives of `(x|x)` distributing
        // to the same literal) match identically: keep one.
        if units
            .iter()
            .any(|u: &rap_compiler::LnfaUnit| u.lnfa == unit.lnfa)
        {
            merged += unit.lnfa.len() as u64;
            continue;
        }
        units.push(unit.clone());
    }
    if units.is_empty() {
        return (
            c.clone(),
            PruneStats {
                states_before: before,
                states_after: before,
                ..PruneStats::default()
            },
        );
    }
    let after: u64 = units.iter().map(|u| u.lnfa.len() as u64).sum();
    (
        CompiledLnfa {
            units,
            matches_empty: c.matches_empty,
        },
        PruneStats {
            states_before: before,
            states_after: after,
            removed_dead,
            merged,
        },
    )
}

/// Prunes a whole workload, accumulating stats.
pub fn prune_all(images: &[Compiled]) -> (Vec<Compiled>, PruneStats) {
    let mut total = PruneStats::default();
    let pruned = images
        .iter()
        .map(|image| {
            let (out, stats) = prune_image(image);
            total.add(stats);
            out
        })
        .collect();
    (pruned, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_compiler::{Compiler, CompilerConfig, Mode};

    fn compile(pattern: &str) -> Compiled {
        Compiler::new(CompilerConfig::default())
            .compile_str(pattern)
            .expect("compiles")
    }

    fn compile_forced(pattern: &str, mode: Mode) -> Compiled {
        let compiler = Compiler::new(CompilerConfig::default());
        let regex = rap_regex::parse(pattern).expect("parses");
        compiler.compile_with_mode(&regex, mode).expect("compiles")
    }

    fn ends(image: &Compiled, input: &[u8]) -> Vec<usize> {
        crate::soundness::compiled_match_ends(image, input)
    }

    #[test]
    fn suffix_share_right_merges() {
        // (cat|dot) as a forced NFA: the two final 't' states have equal
        // class, successors (none), and finality — they merge.
        let image = compile_forced("(cat|dot)", Mode::Nfa);
        let (pruned, stats) = prune_image(&image);
        assert_eq!(stats.states_before, 6);
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.states_after, 5);
        for input in [&b"a cat sat"[..], b"dot dot", b"cot", b"catdot"] {
            assert_eq!(ends(&pruned, input), ends(&image, input), "{input:?}");
        }
    }

    #[test]
    fn prefix_share_left_merges() {
        // (cat|cow): both 'c' states are initial with no predecessors —
        // left equivalence merges them, carrying the union of successors.
        let image = compile_forced("(cat|cow)", Mode::Nfa);
        let (pruned, stats) = prune_image(&image);
        assert_eq!(stats.states_before, 6);
        assert!(stats.merged >= 1, "{stats:?}");
        for input in [&b"cat cow"[..], b"caw cot", b"ccow"] {
            assert_eq!(ends(&pruned, input), ends(&image, input), "{input:?}");
        }
    }

    #[test]
    fn clean_chain_is_untouched() {
        let image = compile_forced("abcd", Mode::Nfa);
        let (pruned, stats) = prune_image(&image);
        assert_eq!(stats.removed(), 0);
        assert_eq!(ends(&pruned, b"zabcdz"), vec![5]);
    }

    #[test]
    fn nbva_image_prunes_safely() {
        let image = compile("b(a{7}|c{5})b");
        let (pruned, stats) = prune_image(&image);
        assert_eq!(stats.states_before, 4);
        // The two BV states differ in class; the two 'b's differ in role.
        assert_eq!(stats.removed(), 0);
        assert_eq!(ends(&pruned, b"bcccccb"), vec![7]);
    }

    #[test]
    fn nbva_shared_read_targets_merge() {
        // x(a{9}y|b{9}y): the two 'y' finals share class/successors.
        let image = compile("x(a{9}y|b{9}y)");
        let (pruned, stats) = prune_image(&image);
        assert_eq!(stats.merged, 1);
        let input = b"xaaaaaaaaay xbbbbbbbbby";
        assert_eq!(ends(&pruned, input), ends(&image, input));
    }

    #[test]
    fn lnfa_duplicate_chains_dedup() {
        // The rewriter itself dedups syntactic duplicates, so build the
        // image by hand: two identical `axb` chains plus an unsatisfiable
        // one.
        use rap_automata::lnfa::Lnfa;
        use rap_compiler::{CompiledLnfa, LnfaUnit, MatchPath};
        let chain = |classes: Vec<CharClass>| Lnfa::new(classes);
        let axb = vec![
            CharClass::single(b'a'),
            CharClass::single(b'x'),
            CharClass::single(b'b'),
        ];
        let image = Compiled::Lnfa(CompiledLnfa {
            units: vec![
                LnfaUnit {
                    lnfa: chain(axb.clone()),
                    path: MatchPath::Cam,
                },
                LnfaUnit {
                    lnfa: chain(axb),
                    path: MatchPath::Cam,
                },
                LnfaUnit {
                    lnfa: chain(vec![CharClass::single(b'q'), CharClass::empty()]),
                    path: MatchPath::Cam,
                },
            ],
            matches_empty: false,
        });
        let (pruned, stats) = prune_image(&image);
        assert_eq!(stats.states_before, 8);
        assert_eq!(stats.merged, 3);
        assert_eq!(stats.removed_dead, 2);
        assert_eq!(stats.states_after, 3);
        assert_eq!(ends(&pruned, b"zaxbz"), vec![4]);
    }

    #[test]
    fn anchors_survive_pruning() {
        let compiler = Compiler::new(CompilerConfig::default());
        let image = compiler.compile_str("^(cat|dot)").expect("compiles");
        let (pruned, _) = prune_image(&image);
        assert!(pruned.anchored_start());
        assert_eq!(ends(&pruned, b"cat cat"), vec![3]);
        assert_eq!(ends(&image, b"cat cat"), vec![3]);
    }
}
