//! The per-image analysis passes: structural dead-code detection
//! (A001–A004), bit-vector counter analysis (A005–A007), and the
//! character-class ambiguity metric (A008).

use crate::dataflow::{self, Facts};
use crate::graph::{read_satisfiable, GraphView};
use crate::{Report, Rule};
use rap_automata::nbva::{ReadAction, StateKind};
use rap_compiler::{Compiled, CompiledNbva};
use rap_diag::Location;
use rap_regex::CharClass;

/// A flattened per-state picture of one image for the structural pass.
/// LNFA chains are concatenated in unit order so every state of the image
/// gets one stable index for diagnostics.
pub(crate) struct ImageFacts {
    /// Successor lists over the flattened indices.
    pub succ: Vec<Vec<u32>>,
    /// Per-state character classes.
    pub ccs: Vec<CharClass>,
    /// Per-state emission capability (read-gated for BV states).
    pub can_emit: Vec<bool>,
    /// The dataflow solution.
    pub facts: Facts,
}

impl ImageFacts {
    /// States that are both reachable and live.
    pub fn useful(&self) -> Vec<bool> {
        self.facts.useful()
    }
}

/// Builds the flattened view and solves the dataflow problems for one
/// compiled image of any mode.
pub(crate) fn image_facts(image: &Compiled) -> ImageFacts {
    match image {
        Compiled::Nfa(c) => {
            let g = GraphView::of_nfa(&c.nfa);
            let facts = dataflow::solve(&g);
            ImageFacts {
                ccs: c.nfa.states().iter().map(|s| s.cc).collect(),
                can_emit: g.can_emit.clone(),
                succ: g.succ,
                facts,
            }
        }
        Compiled::Nbva(c) => {
            let g = GraphView::of_nbva(&c.nbva);
            let facts = dataflow::solve(&g);
            ImageFacts {
                ccs: c.nbva.states().iter().map(|s| s.cc).collect(),
                can_emit: g.can_emit.clone(),
                succ: g.succ,
                facts,
            }
        }
        Compiled::Lnfa(c) => {
            let mut succ = Vec::new();
            let mut ccs = Vec::new();
            let mut can_emit = Vec::new();
            let mut reachable = Vec::new();
            let mut live = Vec::new();
            for unit in &c.units {
                let offset = succ.len() as u32;
                let g = GraphView::of_chain(unit.lnfa.classes());
                let f = dataflow::solve(&g);
                succ.extend(
                    g.succ
                        .iter()
                        .map(|edges| edges.iter().map(|&q| q + offset).collect()),
                );
                ccs.extend(unit.lnfa.classes().iter().copied());
                can_emit.extend(g.can_emit);
                reachable.extend(f.reachable);
                live.extend(f.live);
            }
            ImageFacts {
                succ,
                ccs,
                can_emit,
                facts: Facts { reachable, live },
            }
        }
    }
}

/// What the structural pass found in one image.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StructuralCounts {
    pub unreachable: u64,
    pub dead: u64,
    pub empty_classes: u64,
    pub dead_transitions: u64,
    pub transitions: u64,
}

/// A001–A004: unreachable states, dead states, unsatisfiable classes, and
/// transitions that can never carry a live activation.
pub(crate) fn structural(report: &mut Report, pattern: usize, f: &ImageFacts) -> StructuralCounts {
    let mut counts = StructuralCounts::default();
    let useful = f.useful();
    for (q, cc) in f.ccs.iter().enumerate() {
        let loc = Location::of_pattern(pattern).state(q as u32);
        if cc.is_empty() {
            counts.empty_classes += 1;
            report.push(
                Rule::EmptyClass,
                Rule::EmptyClass.severity(),
                loc,
                "state has an unsatisfiable character class: no input byte \
                 can ever activate it"
                    .to_string(),
            );
            continue;
        }
        if !f.facts.reachable[q] {
            counts.unreachable += 1;
            report.push(
                Rule::UnreachableState,
                Rule::UnreachableState.severity(),
                loc,
                "state can never activate: no path from an initial state \
                 reaches it on any input"
                    .to_string(),
            );
        } else if !f.facts.live[q] {
            counts.dead += 1;
            report.push(
                Rule::DeadState,
                Rule::DeadState.severity(),
                loc,
                "state is dead: it can activate but no match ever depends \
                 on it"
                    .to_string(),
            );
        }
    }
    for (p, succ) in f.succ.iter().enumerate() {
        for &q in succ {
            counts.transitions += 1;
            if !(useful[p] && f.can_emit[p] && useful[q as usize]) {
                counts.dead_transitions += 1;
            }
        }
    }
    if counts.dead_transitions > 0 {
        report.push(
            Rule::DeadTransition,
            Rule::DeadTransition.severity(),
            Location::of_pattern(pattern),
            format!(
                "{} of {} transitions can never carry a live activation",
                counts.dead_transitions, counts.transitions
            ),
        );
    }
    counts
}

/// What the counter pass found in one NBVA image.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct CounterCounts {
    pub dead_bv_bits: u64,
    pub overflows: u64,
    pub saturations: u64,
}

/// A005–A007: bit-vector range analysis. `r(m)` reads outside `1..=width`
/// can never succeed (the reference executor would panic on them — the
/// hardware reads a wired zero); bits above the read point are dead
/// storage; an allocation smaller than the vector silently saturates the
/// count.
pub(crate) fn counters(report: &mut Report, pattern: usize, c: &CompiledNbva) -> CounterCounts {
    let mut counts = CounterCounts::default();
    for (q, (state, alloc)) in c.nbva.states().iter().zip(&c.bv_allocs).enumerate() {
        let StateKind::Bv { width, read } = state.kind else {
            continue;
        };
        let loc = Location::of_pattern(pattern).state(q as u32);
        if !read_satisfiable(width, read) {
            counts.overflows += 1;
            let m = match read {
                ReadAction::Exact(m) => m,
                ReadAction::All => 0,
            };
            report.push(
                Rule::CounterOverflow,
                Rule::CounterOverflow.severity(),
                loc,
                format!(
                    "read r({m}) of a {width}-bit vector can never see a set \
                     bit (valid reads are r(1)..=r({width}))"
                ),
            );
            continue;
        }
        if let ReadAction::Exact(m) = read {
            // Bits m..width count repetitions past the read point; nothing
            // ever observes them.
            let dead_bits = u64::from(width - m);
            if dead_bits > 0 {
                counts.dead_bv_bits += dead_bits;
                let depth = alloc.map_or(c.depth, |a| a.depth);
                let dead_cols = width.div_ceil(depth) - m.div_ceil(depth);
                if dead_cols > 0 {
                    report.push(
                        Rule::DeadBvColumn,
                        Rule::DeadBvColumn.severity(),
                        loc,
                        format!(
                            "top {dead_cols} of {} BV columns ({dead_bits} of \
                             {width} bits) can never influence the read r({m})",
                            width.div_ceil(depth)
                        ),
                    );
                }
            }
        }
        if let Some(a) = alloc {
            let capacity = u64::from(a.columns) * u64::from(a.depth);
            if a.width_bits != width || capacity < u64::from(width) {
                counts.saturations += 1;
                report.push(
                    Rule::CounterSaturation,
                    Rule::CounterSaturation.severity(),
                    loc,
                    format!(
                        "allocated {} columns × depth {} = {capacity} bits for \
                         a {width}-bit vector (alloc says {} bits): counts \
                         would saturate",
                        a.columns, a.depth, a.width_bits
                    ),
                );
            }
        }
    }
    counts
}

/// A008: ambiguity metric for basic-NFA images. A state whose successor
/// set contains two states with overlapping character classes duplicates
/// activations on the shared bytes — legal, but it inflates switching
/// activity and match-report traffic.
pub(crate) fn overlap(report: &mut Report, pattern: usize, image: &Compiled) -> u64 {
    let Compiled::Nfa(c) = image else {
        return 0;
    };
    let states = c.nfa.states();
    let mut sets: Vec<&[u32]> = states.iter().map(|s| s.succ.as_slice()).collect();
    sets.push(c.nfa.initial());
    let mut ambiguous = 0u64;
    for set in sets {
        let overlapping = set.iter().enumerate().any(|(i, &a)| {
            set[i + 1..].iter().any(|&b| {
                a != b
                    && !states[a as usize]
                        .cc
                        .intersection(&states[b as usize].cc)
                        .is_empty()
            })
        });
        if overlapping {
            ambiguous += 1;
        }
    }
    if ambiguous > 0 {
        report.push(
            Rule::AmbiguousOverlap,
            Rule::AmbiguousOverlap.severity(),
            Location::of_pattern(pattern),
            format!(
                "{ambiguous} successor sets contain states with overlapping \
                 character classes (duplicated activations on shared bytes)"
            ),
        );
    }
    ambiguous
}
