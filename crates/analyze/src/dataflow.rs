//! The fixed-point dataflow solver: forward reachability from the initial
//! states, backward liveness from the accepting states.
//!
//! Both problems are monotone boolean dataflow over the automaton graph,
//! solved with a worklist in O(states + edges):
//!
//! * `reachable(q)` — q can activate on some input: q's class is
//!   satisfiable and q is initial or some reachable predecessor can emit
//!   into it.
//! * `live(q)` — an activation of q can contribute to some future match:
//!   q can accept, or q can emit and some satisfiable successor is live.
//!
//! A state that is reachable but not live is *dead* hardware: it can turn
//! on but no match ever depends on it, so pruning it (and every transition
//! into it) preserves the language.

use crate::graph::GraphView;

/// The per-state solution of both dataflow problems.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Facts {
    /// Forward: the state can activate on some input string.
    pub reachable: Vec<bool>,
    /// Backward: an activation can contribute to a future match.
    pub live: Vec<bool>,
}

impl Facts {
    /// States that are both reachable and live — the ones execution can
    /// actually use.
    pub fn useful(&self) -> Vec<bool> {
        self.reachable
            .iter()
            .zip(&self.live)
            .map(|(&r, &l)| r && l)
            .collect()
    }
}

/// Solves both dataflow problems for one automaton view.
pub(crate) fn solve(g: &GraphView) -> Facts {
    let n = g.len();
    // Forward reachability: BFS from the satisfiable initial states,
    // following edges only out of emitting states.
    let mut reachable = vec![false; n];
    let mut work: Vec<u32> = Vec::new();
    for &q in &g.initial {
        let q_us = q as usize;
        if g.can_activate[q_us] && !reachable[q_us] {
            reachable[q_us] = true;
            work.push(q);
        }
    }
    while let Some(p) = work.pop() {
        let p_us = p as usize;
        if !g.can_emit[p_us] {
            continue;
        }
        for &q in &g.succ[p_us] {
            let q_us = q as usize;
            if g.can_activate[q_us] && !reachable[q_us] {
                reachable[q_us] = true;
                work.push(q);
            }
        }
    }

    // Backward liveness: BFS from the accepting states over reversed
    // edges, entering only emitting predecessors.
    let mut pred: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (p, succ) in g.succ.iter().enumerate() {
        for &q in succ {
            pred[q as usize].push(p as u32);
        }
    }
    let mut live = vec![false; n];
    let mut work: Vec<u32> = Vec::new();
    for (q, is_live) in live.iter_mut().enumerate() {
        if g.can_accept[q] {
            *is_live = true;
            work.push(q as u32);
        }
    }
    while let Some(q) = work.pop() {
        for &p in &pred[q as usize] {
            let p_us = p as usize;
            if g.can_emit[p_us] && !live[p_us] {
                live[p_us] = true;
                work.push(p);
            }
        }
    }
    Facts { reachable, live }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_automata::nfa::Nfa;
    use rap_regex::parse;

    fn facts(pattern: &str) -> Facts {
        let nfa = Nfa::from_regex(&parse(pattern).expect("parses"));
        solve(&GraphView::of_nfa(&nfa))
    }

    #[test]
    fn clean_glushkov_automata_are_fully_useful() {
        for pattern in ["abc", "a(b|c)d", "ab*c", "a(.a){3}b", "x{6}y"] {
            let f = facts(pattern);
            assert!(f.reachable.iter().all(|&r| r), "{pattern} reachable");
            assert!(f.live.iter().all(|&l| l), "{pattern} live");
        }
    }

    #[test]
    fn hand_built_unreachable_state_detected() {
        use rap_automata::nfa::NfaState;
        use rap_regex::CharClass;
        // q0 -> q1(final); q2 unreachable (no one points at it).
        let states = vec![
            NfaState {
                cc: CharClass::single(b'a'),
                succ: vec![1],
                is_final: false,
            },
            NfaState {
                cc: CharClass::single(b'b'),
                succ: vec![],
                is_final: true,
            },
            NfaState {
                cc: CharClass::single(b'c'),
                succ: vec![1],
                is_final: false,
            },
        ];
        let nfa = Nfa::from_parts(states, vec![0], false);
        let f = solve(&GraphView::of_nfa(&nfa));
        assert_eq!(f.reachable, vec![true, true, false]);
        assert_eq!(f.live, vec![true, true, true]); // q2 could reach q1, just never activates
        assert_eq!(f.useful(), vec![true, true, false]);
    }

    #[test]
    fn hand_built_dead_state_detected() {
        use rap_automata::nfa::NfaState;
        use rap_regex::CharClass;
        // q0 -> {q1(final), q2}; q2 -> q2 loops forever without accepting.
        let states = vec![
            NfaState {
                cc: CharClass::single(b'a'),
                succ: vec![1, 2],
                is_final: false,
            },
            NfaState {
                cc: CharClass::single(b'b'),
                succ: vec![],
                is_final: true,
            },
            NfaState {
                cc: CharClass::single(b'c'),
                succ: vec![2],
                is_final: false,
            },
        ];
        let nfa = Nfa::from_parts(states, vec![0], false);
        let f = solve(&GraphView::of_nfa(&nfa));
        assert_eq!(f.reachable, vec![true, true, true]);
        assert_eq!(f.live, vec![true, true, false]);
    }

    #[test]
    fn empty_class_blocks_both_directions() {
        use rap_automata::nfa::NfaState;
        use rap_regex::CharClass;
        // q0 -> q1(empty class) -> q2(final): q1 can never activate, so q2
        // is unreachable and q0 is dead.
        let states = vec![
            NfaState {
                cc: CharClass::single(b'a'),
                succ: vec![1],
                is_final: false,
            },
            NfaState {
                cc: CharClass::empty(),
                succ: vec![2],
                is_final: false,
            },
            NfaState {
                cc: CharClass::single(b'c'),
                succ: vec![],
                is_final: true,
            },
        ];
        let nfa = Nfa::from_parts(states, vec![0], false);
        let f = solve(&GraphView::of_nfa(&nfa));
        assert_eq!(f.reachable, vec![true, false, false]);
        assert_eq!(f.live, vec![false, false, true]);
        assert_eq!(f.useful(), vec![false, false, false]);
    }
}
