//! Uniform graph views over the three compiled IRs.
//!
//! The dataflow solver ([`crate::dataflow`]) is IR-agnostic: it sees an
//! automaton as states with successor edges, an initial set, and three
//! per-state capability predicates derived from the IR's step semantics:
//!
//! * `can_activate(q)` — some input byte turns the state on (its character
//!   class is non-empty),
//! * `can_emit(q)` — an active state can ever hand activation to its
//!   successors (for a bit-vector state this additionally requires a
//!   satisfiable read action: `r(m)` with `1 ≤ m ≤ width`),
//! * `can_accept(q)` — an active state can ever report a match
//!   (`is_final` gated the same way).

use rap_automata::nbva::{Nbva, ReadAction, StateKind};
use rap_automata::nfa::Nfa;
use rap_regex::CharClass;

/// An IR-agnostic automaton view for the dataflow solver.
#[derive(Clone, Debug)]
pub(crate) struct GraphView {
    /// Successor lists, indexed by state.
    pub succ: Vec<Vec<u32>>,
    /// The always-armed initial states.
    pub initial: Vec<u32>,
    /// Some byte activates the state (non-empty character class).
    pub can_activate: Vec<bool>,
    /// An active state can eventually pass activation downstream.
    pub can_emit: Vec<bool>,
    /// An active state can eventually report a match.
    pub can_accept: Vec<bool>,
}

impl GraphView {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// View of a Glushkov NFA: emission and acceptance are gated only by
    /// class satisfiability.
    pub fn of_nfa(nfa: &Nfa) -> GraphView {
        let can_activate: Vec<bool> = nfa.states().iter().map(|s| !s.cc.is_empty()).collect();
        GraphView {
            succ: nfa.states().iter().map(|s| s.succ.clone()).collect(),
            initial: nfa.initial().to_vec(),
            can_emit: can_activate.clone(),
            can_accept: nfa
                .states()
                .iter()
                .zip(&can_activate)
                .map(|(s, &act)| s.is_final && act)
                .collect(),
            can_activate,
        }
    }

    /// View of an NBVA: a bit-vector state emits (and accepts) only through
    /// its read action, so a broken `r(m)` read — `m = 0` or `m > width`,
    /// which can never see a set bit — blocks both.
    pub fn of_nbva(nbva: &Nbva) -> GraphView {
        let mut can_activate = Vec::with_capacity(nbva.len());
        let mut can_emit = Vec::with_capacity(nbva.len());
        let mut can_accept = Vec::with_capacity(nbva.len());
        for s in nbva.states() {
            let act = !s.cc.is_empty();
            let read_ok = match s.kind {
                StateKind::Plain => true,
                StateKind::Bv { width, read } => read_satisfiable(width, read),
            };
            can_activate.push(act);
            can_emit.push(act && read_ok);
            can_accept.push(s.is_final && act && read_ok);
        }
        GraphView {
            succ: nbva.states().iter().map(|s| s.succ.clone()).collect(),
            initial: nbva.initial().to_vec(),
            can_activate,
            can_emit,
            can_accept,
        }
    }

    /// View of one LNFA chain: `q0 → q1 → … → qn−1`, single initial, single
    /// final.
    pub fn of_chain(classes: &[CharClass]) -> GraphView {
        let n = classes.len();
        let can_activate: Vec<bool> = classes.iter().map(|cc| !cc.is_empty()).collect();
        GraphView {
            succ: (0..n)
                .map(|i| {
                    if i + 1 < n {
                        vec![i as u32 + 1]
                    } else {
                        vec![]
                    }
                })
                .collect(),
            initial: if n > 0 { vec![0] } else { vec![] },
            can_emit: can_activate.clone(),
            can_accept: (0..n).map(|i| i + 1 == n && can_activate[i]).collect(),
            can_activate,
        }
    }
}

/// Whether a bit-vector read action can ever succeed on a `width`-bit
/// vector. `r(m)` tests bit `m − 1`; `m = 0` underflows and `m > width` is
/// out of range (the reference executor panics, the hardware reads a wired
/// zero).
pub(crate) fn read_satisfiable(width: u32, read: ReadAction) -> bool {
    match read {
        ReadAction::Exact(m) => m >= 1 && m <= width,
        ReadAction::All => width > 0,
    }
}
