//! Bench-corpus audit: the analyzer over every synthetic suite.
//!
//! Two properties are pinned here:
//!
//! * **No false positives.** The generators produce clean patterns and the
//!   compiler is trusted, so analyzing any suite — in the native mode mix
//!   or force-compiled to basic NFAs (the CA/CAMA baselines) — must yield
//!   zero Error-severity findings.
//! * **Pruning finds real reductions.** Union-shaped patterns whose
//!   alternatives share first/last literals produce left/right-equivalent
//!   Glushkov states; over a bench-scale corpus the merge passes must fire
//!   on at least one suite.

use rap_analyze::{analyze, AnalyzeOptions, PruneStats};
use rap_compiler::{Compiled, Compiler, CompilerConfig, Mode};
use rap_workloads::{generate_patterns, Suite};

fn compile_suite(suite: Suite, n: usize, forced: Option<Mode>) -> Vec<Compiled> {
    let compiler = Compiler::new(CompilerConfig::default());
    generate_patterns(suite, n, 42)
        .iter()
        .filter_map(|src| {
            let parsed = rap_regex::parse_pattern(src).expect("suite patterns parse");
            match forced {
                Some(mode) => compiler.compile_with_mode(&parsed.regex, mode).ok(),
                None => compiler.compile_anchored(&parsed).ok(),
            }
        })
        .collect()
}

#[test]
fn bench_corpus_has_no_error_findings_and_pruning_fires() {
    let mut total = PruneStats::default();
    for suite in Suite::all() {
        for forced in [None, Some(Mode::Nfa)] {
            let images = compile_suite(suite, 120, forced);
            assert!(!images.is_empty(), "{suite}: nothing compiled");
            let a = analyze(&images, &[], &AnalyzeOptions::report_only().with_prune());
            let errors: Vec<_> = a.report.errors().collect();
            assert!(
                errors.is_empty(),
                "{suite} (forced {forced:?}): unexpected errors: {errors:?}"
            );
            // Clean automata: nothing unreachable or dead anywhere.
            assert_eq!(a.stats.unreachable_states, 0, "{suite}");
            assert_eq!(a.stats.dead_states, 0, "{suite}");
            total.states_before += a.stats.states_before;
            total.states_after += a.stats.states_after;
            total.merged += a.stats.mergeable_states;
            println!(
                "{suite:<13} forced={:<9} states {} -> {} (merged {})",
                format!("{forced:?}"),
                a.stats.states_before,
                a.stats.states_after,
                a.stats.mergeable_states
            );
        }
    }
    assert!(
        total.merged > 0,
        "no suite produced a mergeable state at bench scale: {total:?}"
    );
    assert!(total.states_after < total.states_before, "{total:?}");
}
