//! Property tests: analyzer-driven pruning preserves match semantics.
//!
//! For random patterns compiled to each IR, the pruned image must report
//! exactly the unpruned image's match ends on random inputs — and both
//! must agree with the software reference NFA. The tiny `{a,b,c}`
//! alphabet makes shared prefixes/suffixes (and therefore real merges)
//! common, so the rewriting path is genuinely exercised.

use proptest::prelude::*;
use rap_analyze::{analyze, compiled_match_ends, prune_image, AnalyzeOptions};
use rap_automata::nfa::Nfa;
use rap_compiler::{Compiler, CompilerConfig, Mode};
use rap_regex::{CharClass, Regex};

/// Random patterns that exercise all three RAP modes.
fn arb_pattern() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::literal_byte(b'a')),
        Just(Regex::literal_byte(b'b')),
        Just(Regex::literal_byte(b'c')),
        Just(Regex::Class(CharClass::from_bytes([b'a', b'b']))),
        (5u32..24).prop_map(|n| Regex::repeat(Regex::literal_byte(b'c'), n, Some(n))),
    ];
    leaf.prop_recursive(2, 10, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::opt),
            inner.prop_map(Regex::star),
        ]
    })
    .prop_filter("needs at least one state", |re| re.unfolded_size() > 0)
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            5 => Just(b'a'),
            5 => Just(b'b'),
            10 => Just(b'c'),
            1 => Just(b'x'),
        ],
        0..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `prune_image` never changes an image's match ends, in any IR.
    #[test]
    fn pruning_preserves_match_ends(re in arb_pattern(), input in arb_input()) {
        let compiler = Compiler::new(CompilerConfig::default());
        let expect = Nfa::from_regex(&re).match_ends(&input);
        for mode in [Mode::Nfa, Mode::Nbva, Mode::Lnfa] {
            // Not every pattern is expressible in every IR: LNFA requires
            // a linearizable shape (forcing it otherwise is a contract
            // violation), and the other modes can reject via typed errors.
            if mode == Mode::Lnfa && compiler.decide(&re) != Mode::Lnfa {
                continue;
            }
            let Ok(image) = compiler.compile_with_mode(&re, mode) else {
                continue;
            };
            let before = compiled_match_ends(&image, &input);
            prop_assert_eq!(
                &before, &expect,
                "{mode:?} image of {re} disagrees with reference"
            );
            let (pruned, stats) = prune_image(&image);
            prop_assert_eq!(pruned.state_count(), stats.states_after);
            let after = compiled_match_ends(&pruned, &input);
            prop_assert_eq!(
                &after, &before,
                "pruned {mode:?} image of {re} changed semantics ({stats:?})"
            );
        }
    }

    /// The full `analyze` entry point in prune mode hands back images with
    /// identical semantics to the ones it was given.
    #[test]
    fn analyze_prune_mode_is_semantics_preserving(
        res in prop::collection::vec(arb_pattern(), 1..4),
        input in arb_input(),
    ) {
        let compiler = Compiler::new(CompilerConfig::default());
        let images: Vec<_> = res.iter().filter_map(|re| compiler.compile(re).ok()).collect();
        let a = analyze(&images, &[], &AnalyzeOptions::report_only().with_prune());
        prop_assert_eq!(a.images.len(), images.len());
        for (orig, pruned) in images.iter().zip(&a.images) {
            prop_assert_eq!(
                compiled_match_ends(pruned, &input),
                compiled_match_ends(orig, &input),
                "pruned image of {} changed semantics", orig.state_count()
            );
        }
    }
}
