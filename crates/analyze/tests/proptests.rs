//! Property tests: analyzer-driven pruning preserves match semantics.
//!
//! For random patterns compiled to each IR, the pruned image must report
//! exactly the unpruned image's match ends on random inputs — and both
//! must agree with the software reference NFA. The tiny `{a,b,c}`
//! alphabet makes shared prefixes/suffixes (and therefore real merges)
//! common, so the rewriting path is genuinely exercised.

use proptest::prelude::*;
use rap_analyze::{
    analyze, check_soundness, compiled_match_ends, prune_image, representatives, AnalyzeOptions,
    SoundnessConfig,
};
use rap_automata::nfa::Nfa;
use rap_compiler::{Compiler, CompilerConfig, Mode};
use rap_regex::{CharClass, Pattern, Regex};

/// Random patterns that exercise all three RAP modes.
fn arb_pattern() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::literal_byte(b'a')),
        Just(Regex::literal_byte(b'b')),
        Just(Regex::literal_byte(b'c')),
        Just(Regex::Class(CharClass::from_bytes([b'a', b'b']))),
        (5u32..24).prop_map(|n| Regex::repeat(Regex::literal_byte(b'c'), n, Some(n))),
    ];
    leaf.prop_recursive(2, 10, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::opt),
            inner.prop_map(Regex::star),
        ]
    })
    .prop_filter("needs at least one state", |re| re.unfolded_size() > 0)
}

/// Character classes biased toward partition-boundary shapes: ranges that
/// start at 0x00 or end at 0xFF, adjacent ranges sharing an edge, and
/// singletons next to a range edge — the cases where an off-by-one in
/// mintermization would merge bytes a class distinguishes.
fn arb_class() -> impl Strategy<Value = CharClass> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| CharClass::range(a.min(b), a.max(b))),
        any::<u8>().prop_map(|hi| CharClass::range(0x00, hi)),
        any::<u8>().prop_map(|lo| CharClass::range(lo, 0xFF)),
        any::<u8>().prop_map(CharClass::single),
        // An edge pair: [lo..=split] and its right neighbour starting at
        // split+1, exercising adjacent-range boundaries.
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| {
            let (lo, hi) = (a.min(b), a.max(b));
            CharClass::range(lo, lo.max(hi.saturating_sub(1)))
        }),
        Just(CharClass::single(0x00)),
        Just(CharClass::single(0xFF)),
    ]
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            5 => Just(b'a'),
            5 => Just(b'b'),
            10 => Just(b'c'),
            1 => Just(b'x'),
        ],
        0..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `prune_image` never changes an image's match ends, in any IR.
    #[test]
    fn pruning_preserves_match_ends(re in arb_pattern(), input in arb_input()) {
        let compiler = Compiler::new(CompilerConfig::default());
        let expect = Nfa::from_regex(&re).match_ends(&input);
        for mode in [Mode::Nfa, Mode::Nbva, Mode::Lnfa] {
            // Not every pattern is expressible in every IR: LNFA requires
            // a linearizable shape (forcing it otherwise is a contract
            // violation), and the other modes can reject via typed errors.
            if mode == Mode::Lnfa && compiler.decide(&re) != Mode::Lnfa {
                continue;
            }
            let Ok(image) = compiler.compile_with_mode(&re, mode) else {
                continue;
            };
            let before = compiled_match_ends(&image, &input);
            prop_assert_eq!(
                &before, &expect,
                "{mode:?} image of {re} disagrees with reference"
            );
            let (pruned, stats) = prune_image(&image);
            prop_assert_eq!(pruned.state_count(), stats.states_after);
            let after = compiled_match_ends(&pruned, &input);
            prop_assert_eq!(
                &after, &before,
                "pruned {mode:?} image of {re} changed semantics ({stats:?})"
            );
        }
    }

    /// The full `analyze` entry point in prune mode hands back images with
    /// identical semantics to the ones it was given.
    #[test]
    fn analyze_prune_mode_is_semantics_preserving(
        res in prop::collection::vec(arb_pattern(), 1..4),
        input in arb_input(),
    ) {
        let compiler = Compiler::new(CompilerConfig::default());
        let images: Vec<_> = res.iter().filter_map(|re| compiler.compile(re).ok()).collect();
        let a = analyze(&images, &[], &AnalyzeOptions::report_only().with_prune());
        prop_assert_eq!(a.images.len(), images.len());
        for (orig, pruned) in images.iter().zip(&a.images) {
            prop_assert_eq!(
                compiled_match_ends(pruned, &input),
                compiled_match_ends(orig, &input),
                "pruned image of {} changed semantics", orig.state_count()
            );
        }
    }

    /// The exact product-construction equivalence checker agrees with the
    /// reference matcher on every compiled (and pruned) image: a faithful
    /// image is never reported divergent, at any input length, with no
    /// depth parameter involved.
    #[test]
    fn exact_equivalence_accepts_faithful_images(re in arb_pattern()) {
        let compiler = Compiler::new(CompilerConfig::default());
        let pattern = Pattern {
            regex: re.clone(),
            anchored_start: false,
            anchored_end: false,
        };
        let cfg = SoundnessConfig::default();
        for mode in [Mode::Nfa, Mode::Nbva, Mode::Lnfa] {
            if mode == Mode::Lnfa && compiler.decide(&re) != Mode::Lnfa {
                continue;
            }
            let Ok(image) = compiler.compile_with_mode(&re, mode) else {
                continue;
            };
            prop_assert_eq!(
                check_soundness(&image, &pattern, &cfg),
                None,
                "{mode:?} image of {re} flagged divergent"
            );
            let (pruned, _) = prune_image(&image);
            prop_assert_eq!(
                check_soundness(&pruned, &pattern, &cfg),
                None,
                "pruned {mode:?} image of {re} flagged divergent"
            );
        }
    }

    /// Mintermization is a true alphabet partition: every byte — including
    /// the boundary bytes 0x00 and 0xFF and bytes flanking range edges —
    /// shares its full class-membership signature with exactly one
    /// representative, and no two representatives share a signature.
    #[test]
    fn representatives_partition_the_alphabet(
        ccs in prop::collection::vec(arb_class(), 0..6),
    ) {
        let reps = representatives(&ccs);
        let signature =
            |b: u8| ccs.iter().map(|cc| cc.contains(b)).collect::<Vec<bool>>();
        for b in 0..=255u8 {
            let matching = reps
                .iter()
                .filter(|&&r| signature(r) == signature(b))
                .count();
            prop_assert_eq!(matching, 1, "byte {b:#04x} matches {matching} reps");
        }
        // Each block's representative is its smallest member, so the
        // extreme bytes are themselves representatives of their blocks.
        prop_assert_eq!(reps[0], 0x00);
        prop_assert!(reps.iter().any(|&r| signature(r) == signature(0xFF)));
        // Bytes flanking every range edge land in different blocks when a
        // class distinguishes them.
        for cc in &ccs {
            for b in 0..255u8 {
                if cc.contains(b) != cc.contains(b + 1) {
                    prop_assert!(
                        signature(b) != signature(b + 1),
                        "edge {b:#04x}/{:#04x} merged",
                        b + 1
                    );
                }
            }
        }
    }
}
