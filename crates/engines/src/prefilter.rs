//! Aho–Corasick multi-literal matching, used as the software engines'
//! prefilter (the role Hyperscan's FDR literal matcher plays): the scan
//! hot loop is one table lookup per byte, and the expensive NFA machinery
//! only wakes up when a pattern's literal prefix actually occurred.

/// A dense-goto Aho–Corasick automaton over byte strings.
///
/// # Example
///
/// ```
/// use rap_engines::prefilter::AhoCorasick;
///
/// let ac = AhoCorasick::new(&[b"he".to_vec(), b"she".to_vec(), b"hers".to_vec()]);
/// let mut hits = Vec::new();
/// ac.scan(b"ushers", |lit, end| hits.push((lit, end)));
/// // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
/// assert_eq!(hits, vec![(1, 4), (0, 4), (2, 6)]);
/// ```
#[derive(Clone, Debug)]
pub struct AhoCorasick {
    /// Dense transition table: `goto[state * 256 + byte]`.
    goto_table: Vec<u32>,
    /// Literal ids ending at each state (own + suffix outputs merged).
    outputs: Vec<Vec<u32>>,
    /// Literal lengths, for reporting conveniences.
    lengths: Vec<usize>,
}

impl AhoCorasick {
    /// Builds the automaton from literal byte strings. Duplicate literals
    /// are allowed (each id reports independently); empty literals are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if any literal is empty.
    pub fn new(literals: &[Vec<u8>]) -> AhoCorasick {
        // Trie construction.
        let mut children: Vec<[u32; 256]> = vec![[u32::MAX; 256]];
        let mut own: Vec<Vec<u32>> = vec![Vec::new()];
        for (id, lit) in literals.iter().enumerate() {
            assert!(!lit.is_empty(), "empty prefilter literal");
            let mut node = 0usize;
            for &b in lit {
                let next = children[node][b as usize];
                node = if next == u32::MAX {
                    children.push([u32::MAX; 256]);
                    own.push(Vec::new());
                    let new = (children.len() - 1) as u32;
                    children[node][b as usize] = new;
                    new as usize
                } else {
                    next as usize
                };
            }
            own[node].push(id as u32);
        }
        let n = children.len();

        // BFS failure links, merging output sets, and densifying the goto
        // table so the scan needs no failure chasing.
        let mut fail = vec![0u32; n];
        let mut outputs: Vec<Vec<u32>> = own.clone();
        let mut goto_table = vec![0u32; n * 256];
        let mut queue = std::collections::VecDeque::new();
        for b in 0..256usize {
            let c = children[0][b];
            if c != u32::MAX {
                goto_table[b] = c;
                queue.push_back(c as usize);
            }
        }
        while let Some(node) = queue.pop_front() {
            let f = fail[node] as usize;
            let merged: Vec<u32> = outputs[f].clone();
            outputs[node].extend(merged);
            for b in 0..256usize {
                let c = children[node][b];
                if c == u32::MAX {
                    goto_table[node * 256 + b] = goto_table[f * 256 + b];
                } else {
                    fail[c as usize] = goto_table[f * 256 + b];
                    goto_table[node * 256 + b] = c;
                    queue.push_back(c as usize);
                }
            }
        }
        AhoCorasick {
            goto_table,
            outputs,
            lengths: literals.iter().map(Vec::len).collect(),
        }
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lengths.len()
    }

    /// Whether the automaton holds no literals.
    pub fn is_empty(&self) -> bool {
        self.lengths.is_empty()
    }

    /// Length of literal `id`.
    pub fn literal_len(&self, id: u32) -> usize {
        self.lengths[id as usize]
    }

    /// The root state.
    pub fn start(&self) -> u32 {
        0
    }

    /// One transition.
    #[inline]
    pub fn step(&self, state: u32, byte: u8) -> u32 {
        self.goto_table[state as usize * 256 + byte as usize]
    }

    /// Literal ids ending at `state` (all suffix occurrences).
    #[inline]
    pub fn outputs(&self, state: u32) -> &[u32] {
        &self.outputs[state as usize]
    }

    /// Scans a haystack, calling `on_hit(literal id, end offset)` for every
    /// occurrence (end offset is one past the final byte).
    pub fn scan<F: FnMut(u32, usize)>(&self, haystack: &[u8], mut on_hit: F) {
        let mut state = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            for &lit in self.outputs(state) {
                on_hit(lit, i + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(ac: &AhoCorasick, haystack: &[u8]) -> Vec<(u32, usize)> {
        let mut out = Vec::new();
        ac.scan(haystack, |lit, end| out.push((lit, end)));
        out.sort_unstable();
        out
    }

    #[test]
    fn classic_ushers() {
        let ac = AhoCorasick::new(&[
            b"he".to_vec(),
            b"she".to_vec(),
            b"his".to_vec(),
            b"hers".to_vec(),
        ]);
        assert_eq!(hits(&ac, b"ushers"), vec![(0, 4), (1, 4), (3, 6)]);
    }

    #[test]
    fn overlapping_occurrences() {
        let ac = AhoCorasick::new(&[b"aa".to_vec()]);
        assert_eq!(hits(&ac, b"aaaa"), vec![(0, 2), (0, 3), (0, 4)]);
    }

    #[test]
    fn duplicate_literals_both_report() {
        let ac = AhoCorasick::new(&[b"ab".to_vec(), b"ab".to_vec()]);
        assert_eq!(hits(&ac, b"xab"), vec![(0, 3), (1, 3)]);
    }

    #[test]
    fn literal_is_suffix_of_another() {
        let ac = AhoCorasick::new(&[b"abcd".to_vec(), b"cd".to_vec()]);
        assert_eq!(hits(&ac, b"abcd"), vec![(0, 4), (1, 4)]);
    }

    #[test]
    fn no_false_positives_exhaustive() {
        let lits: Vec<Vec<u8>> = vec![b"ab".to_vec(), b"ba".to_vec(), b"aba".to_vec()];
        let ac = AhoCorasick::new(&lits);
        // Brute-force cross-check on all 4-byte strings over {a, b}.
        for s in 0..(1u32 << 8) {
            let hay: Vec<u8> = (0..4)
                .map(|k| if s >> (2 * k) & 1 == 0 { b'a' } else { b'b' })
                .collect();
            let got = hits(&ac, &hay);
            let mut expect = Vec::new();
            for (id, lit) in lits.iter().enumerate() {
                for end in lit.len()..=hay.len() {
                    if &hay[end - lit.len()..end] == lit.as_slice() {
                        expect.push((id as u32, end));
                    }
                }
            }
            expect.sort_unstable();
            assert_eq!(got, expect, "haystack {hay:?}");
        }
    }

    #[test]
    fn binary_bytes() {
        let ac = AhoCorasick::new(&[vec![0x00, 0xff], vec![0xff, 0xff]]);
        assert_eq!(hits(&ac, &[0x00, 0xff, 0xff]), vec![(0, 2), (1, 3)]);
    }

    #[test]
    #[should_panic(expected = "empty prefilter literal")]
    fn empty_literal_rejected() {
        let _ = AhoCorasick::new(&[Vec::new()]);
    }

    #[test]
    fn lengths_exposed() {
        let ac = AhoCorasick::new(&[b"abc".to_vec()]);
        assert_eq!(ac.len(), 1);
        assert_eq!(ac.literal_len(0), 3);
    }
}
