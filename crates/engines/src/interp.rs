//! Multi-pattern NFA interpretation — the ground-truth engine.
//!
//! The scan is *activity-driven*: a pattern's automaton is only stepped on
//! bytes that could arm one of its initial states (a 256-entry trigger
//! index, the moral equivalent of Hyperscan's literal prefiltering) or
//! while it still has live states. On miss-dominated traffic most patterns
//! are skipped on most bytes, which is what makes software multi-pattern
//! matching viable at all.

use crate::{normalize, Engine, Hit};
use rap_automata::nbva::Nbva;
use rap_automata::nfa::Nfa;
use rap_regex::Regex;

/// Scans by stepping one Glushkov NFA per pattern (set-based simulation)
/// behind an initial-byte trigger index.
#[derive(Clone, Debug)]
pub struct NfaEngine {
    nfas: Vec<Nfa>,
    /// `triggers[b]` — patterns with an initial state matching byte `b`.
    triggers: Vec<Vec<u32>>,
}

impl NfaEngine {
    /// Builds the engine from parsed patterns.
    pub fn new(patterns: &[Regex]) -> NfaEngine {
        let nfas: Vec<Nfa> = patterns.iter().map(Nfa::from_regex).collect();
        let mut triggers: Vec<Vec<u32>> = vec![Vec::new(); 256];
        for (i, nfa) in nfas.iter().enumerate() {
            let mut starts = rap_regex::CharClass::empty();
            for &q in nfa.initial() {
                starts = starts.union(&nfa.states()[q as usize].cc);
            }
            for b in starts.iter() {
                triggers[b as usize].push(i as u32);
            }
        }
        NfaEngine { nfas, triggers }
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.nfas.len()
    }

    /// Whether the engine holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.nfas.is_empty()
    }
}

impl Engine for NfaEngine {
    fn name(&self) -> &'static str {
        "nfa-interp"
    }

    fn scan(&self, input: &[u8]) -> Vec<Hit> {
        let mut hits = Vec::new();
        let mut runs: Vec<_> = self.nfas.iter().map(Nfa::start).collect();
        // Patterns with live states must be stepped every byte until their
        // activity dies out; `live` is their dense worklist.
        let mut live: Vec<u32> = Vec::new();
        let mut is_live = vec![false; self.nfas.len()];
        for (offset, &byte) in input.iter().enumerate() {
            // Patterns armed by this byte join the worklist.
            for &p in &self.triggers[byte as usize] {
                if !is_live[p as usize] {
                    is_live[p as usize] = true;
                    live.push(p);
                }
            }
            let mut k = 0;
            while k < live.len() {
                let p = live[k] as usize;
                if runs[p].step(byte) {
                    hits.push(Hit {
                        pattern: p,
                        end: offset + 1,
                    });
                }
                if runs[p].active_count() == 0 {
                    is_live[p] = false;
                    live.swap_remove(k);
                } else {
                    k += 1;
                }
            }
        }
        normalize(hits)
    }
}

/// One prefilter arm: when its literal fires, inject `state` into
/// `pattern`'s run (and report a match outright when the prefix alone is
/// already a complete match).
#[derive(Clone, Copy, Debug)]
struct Arm {
    pattern: u32,
    state: u32,
    report: bool,
}

/// The production-flavored interpreter: literal prefixes are verified by
/// an Aho–Corasick pass (one table lookup per byte), and a pattern's NFA
/// only runs between a verified prefix occurrence and the death of the
/// states it injected. Patterns without a usable literal prefix fall back
/// to the byte-trigger mechanism of [`NfaEngine`].
#[derive(Clone, Debug)]
pub struct PrefilteredNfa {
    /// NBVA images: bounded repetitions stay compact bit vectors instead
    /// of unfolding into Θ(k²) Glushkov edges (the same compression the
    /// hardware's NBVA mode performs, reused here for software speed).
    nbvas: Vec<Nbva>,
    ac: Option<crate::prefilter::AhoCorasick>,
    /// Arms per prefilter literal id.
    arms: Vec<Vec<Arm>>,
    /// Byte-trigger lists for prefix-less patterns.
    triggers: Vec<Vec<u32>>,
    /// Whether each pattern is prefilter-driven (stepped without initial
    /// re-arming; thread starts come from AC injections only).
    anchored: Vec<bool>,
}

/// Enumerates the byte strings of a pattern's leading class chain — the
/// Glushkov positions `0..depth` — as prefilter literals. Classes multiply
/// the enumeration, so expansion stops once the product exceeds
/// `MAX_ENUM` strings (or 4 positions). Returns the strings and the arm
/// state (`depth − 1`), or `None` when no useful prefix exists (e.g. the
/// pattern starts with a quantifier or a huge class).
fn enumerate_prefixes(re: &Regex) -> Option<(Vec<Vec<u8>>, u32)> {
    const MAX_ENUM: usize = 64;
    const MAX_DEPTH: u32 = 4;
    let parts: Vec<&Regex> = match re {
        Regex::Concat(parts) => parts.iter().collect(),
        other => vec![other],
    };
    let mut strings: Vec<Vec<u8>> = vec![Vec::new()];
    let mut depth = 0u32;
    for part in parts {
        let Regex::Class(cc) = part else { break };
        if cc.is_empty() || depth >= MAX_DEPTH {
            break;
        }
        if strings.len() * cc.len() as usize > MAX_ENUM {
            break;
        }
        strings = strings
            .iter()
            .flat_map(|s| {
                cc.iter().map(move |b| {
                    let mut t = s.clone();
                    t.push(b);
                    t
                })
            })
            .collect();
        depth += 1;
    }
    (depth >= 2).then(|| (strings, depth - 1))
}

impl PrefilteredNfa {
    /// Builds the engine from parsed patterns.
    pub fn new(patterns: &[Regex]) -> PrefilteredNfa {
        const UNFOLD_THRESHOLD: u32 = 4;
        let nbvas: Vec<Nbva> = patterns
            .iter()
            .map(|re| Nbva::from_regex(re, UNFOLD_THRESHOLD))
            .collect();
        let mut literals: Vec<Vec<u8>> = Vec::new();
        let mut arms: Vec<Vec<Arm>> = Vec::new();
        let mut triggers: Vec<Vec<u32>> = vec![Vec::new(); 256];
        let mut anchored = vec![false; patterns.len()];
        for (i, (re, nfa)) in patterns.iter().zip(nbvas.iter()).enumerate() {
            if let Some((prefixes, state)) = enumerate_prefixes(re).filter(|_| !nfa.is_empty()) {
                anchored[i] = true;
                let arm = Arm {
                    pattern: i as u32,
                    state,
                    report: nfa.states()[state as usize].is_final,
                };
                for prefix in prefixes {
                    // Share AC entries between identical prefixes.
                    match literals.iter().position(|l| *l == prefix) {
                        Some(lit) => arms[lit].push(arm),
                        None => {
                            literals.push(prefix);
                            arms.push(vec![arm]);
                        }
                    }
                }
            } else {
                let mut starts = rap_regex::CharClass::empty();
                for &q in nfa.initial() {
                    starts = starts.union(&nfa.states()[q as usize].cc);
                }
                for b in starts.iter() {
                    triggers[b as usize].push(i as u32);
                }
            }
        }
        let ac = if literals.is_empty() {
            None
        } else {
            Some(crate::prefilter::AhoCorasick::new(&literals))
        };
        PrefilteredNfa {
            nbvas,
            ac,
            arms,
            triggers,
            anchored,
        }
    }

    /// Scans while collecting work counters: `(hits, automaton steps,
    /// prefilter arms fired)`. Used by benchmarks and diagnostics to
    /// verify the prefilter keeps the automata cold.
    pub fn scan_with_stats(&self, input: &[u8]) -> (Vec<Hit>, u64, u64) {
        let mut steps = 0u64;
        let mut armed = 0u64;
        let mut hits = Vec::new();
        let mut runs: Vec<_> = self.nbvas.iter().map(Nbva::start).collect();
        let mut live: Vec<u32> = Vec::new();
        let mut is_live = vec![false; self.nbvas.len()];
        let mut ac_state = self.ac.as_ref().map(|ac| ac.start());
        for (offset, &byte) in input.iter().enumerate() {
            for &p in &self.triggers[byte as usize] {
                if !is_live[p as usize] {
                    is_live[p as usize] = true;
                    live.push(p);
                }
            }
            let mut k = 0;
            while k < live.len() {
                let p = live[k] as usize;
                steps += 1;
                let matched = if self.anchored[p] {
                    runs[p].step_anchored(byte).matched
                } else {
                    runs[p].step(byte)
                };
                if matched {
                    hits.push(Hit {
                        pattern: p,
                        end: offset + 1,
                    });
                }
                if runs[p].active_count() == 0 {
                    is_live[p] = false;
                    live.swap_remove(k);
                } else {
                    k += 1;
                }
            }
            if let (Some(ac), Some(state)) = (self.ac.as_ref(), ac_state.as_mut()) {
                *state = ac.step(*state, byte);
                for &lit in ac.outputs(*state) {
                    for arm in &self.arms[lit as usize] {
                        armed += 1;
                        if arm.report {
                            hits.push(Hit {
                                pattern: arm.pattern as usize,
                                end: offset + 1,
                            });
                        }
                        let p = arm.pattern as usize;
                        runs[p].activate_plain(arm.state);
                        if !is_live[p] {
                            is_live[p] = true;
                            live.push(arm.pattern);
                        }
                    }
                }
            }
        }
        (normalize(hits), steps, armed)
    }

    /// Number of patterns routed through the literal prefilter.
    pub fn prefiltered_count(&self) -> usize {
        let mut seen: Vec<u32> = self.arms.iter().flatten().map(|a| a.pattern).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

impl Engine for PrefilteredNfa {
    fn name(&self) -> &'static str {
        "prefiltered-nfa"
    }

    fn scan(&self, input: &[u8]) -> Vec<Hit> {
        let mut hits = Vec::new();
        let mut runs: Vec<_> = self.nbvas.iter().map(Nbva::start).collect();
        let mut live: Vec<u32> = Vec::new();
        let mut is_live = vec![false; self.nbvas.len()];
        let mut ac_state = self.ac.as_ref().map(|ac| ac.start());
        for (offset, &byte) in input.iter().enumerate() {
            // Prefix-less patterns arm on their initial bytes and step now.
            for &p in &self.triggers[byte as usize] {
                if !is_live[p as usize] {
                    is_live[p as usize] = true;
                    live.push(p);
                }
            }
            let mut k = 0;
            while k < live.len() {
                let p = live[k] as usize;
                let matched = if self.anchored[p] {
                    runs[p].step_anchored(byte).matched
                } else {
                    runs[p].step(byte)
                };
                if matched {
                    hits.push(Hit {
                        pattern: p,
                        end: offset + 1,
                    });
                }
                if runs[p].active_count() == 0 {
                    is_live[p] = false;
                    live.swap_remove(k);
                } else {
                    k += 1;
                }
            }
            // Prefilter pass: verified prefixes report and/or inject the
            // post-prefix state (effective from the next byte).
            if let (Some(ac), Some(state)) = (self.ac.as_ref(), ac_state.as_mut()) {
                *state = ac.step(*state, byte);
                for &lit in ac.outputs(*state) {
                    for arm in &self.arms[lit as usize] {
                        if arm.report {
                            hits.push(Hit {
                                pattern: arm.pattern as usize,
                                end: offset + 1,
                            });
                        }
                        let p = arm.pattern as usize;
                        runs[p].activate_plain(arm.state);
                        if !is_live[p] {
                            is_live[p] = true;
                            live.push(arm.pattern);
                        }
                    }
                }
            }
        }
        normalize(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_regex::parse;

    #[test]
    fn multi_pattern_hits() {
        let patterns: Vec<Regex> = ["ab", "b"]
            .iter()
            .map(|p| parse(p).expect("parses"))
            .collect();
        let engine = NfaEngine::new(&patterns);
        let hits = engine.scan(b"abb");
        assert_eq!(
            hits,
            vec![
                Hit { pattern: 0, end: 2 },
                Hit { pattern: 1, end: 2 },
                Hit { pattern: 1, end: 3 },
            ]
        );
        assert_eq!(engine.len(), 2);
    }

    /// The trigger index must not lose matches relative to stepping every
    /// pattern on every byte.
    #[test]
    fn triggered_scan_equals_naive_scan() {
        let patterns: Vec<Regex> = ["abc", "a.*c", "c{3}d", "x(y|z)w", "[0-9]{2}", "q?r"]
            .iter()
            .map(|p| parse(p).expect("parses"))
            .collect();
        let input = b"abc accc cccd xyw xzw 42 r qr abcccd";
        let engine = NfaEngine::new(&patterns);
        let got = engine.scan(input);
        // Naive reference: full per-pattern simulation.
        let mut expect = Vec::new();
        for (i, re) in patterns.iter().enumerate() {
            for end in Nfa::from_regex(re).match_ends(input) {
                expect.push(Hit { pattern: i, end });
            }
        }
        let expect = crate::normalize(expect);
        assert_eq!(got, expect);
    }

    /// The prefiltered engine is exactly equivalent to the reference
    /// engine on a broad sample of pattern shapes.
    #[test]
    fn prefiltered_equals_reference() {
        let shapes = [
            "needle",   // pure literal (report at AC hit)
            "abc.*xyz", // literal prefix + loop rest
            "abc(d)?",  // nullable rest (prefix is a match)
            "ab{3,9}c", // prefix "a" too short → trigger path
            "[0-9]+px", // no prefix (class head)
            "aa",       // overlapping prefix occurrences
            "aab",      // shared prefix with the above
        ];
        let patterns: Vec<Regex> = shapes.iter().map(|p| parse(p).expect("parses")).collect();
        let reference = NfaEngine::new(&patterns);
        let fast = PrefilteredNfa::new(&patterns);
        assert!(fast.prefiltered_count() >= 4);
        let inputs: [&[u8]; 6] = [
            b"needle in a haystack needle",
            b"abc middle xyz and abcd",
            b"aaab aab aaaab",
            b"12px abbbc abbbbbbbbbc",
            b"abcxyz",
            b"",
        ];
        for input in inputs {
            assert_eq!(
                fast.scan(input),
                reference.scan(input),
                "input {:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    /// Patterns whose matches start mid-stream after long dead stretches.
    #[test]
    fn trigger_rearms_after_death() {
        let patterns = vec![parse("needle").expect("parses")];
        let engine = NfaEngine::new(&patterns);
        let mut input = vec![b'.'; 1000];
        input.extend_from_slice(b"needle");
        input.extend(std::iter::repeat_n(b'.', 500));
        input.extend_from_slice(b"needle");
        let hits = engine.scan(&input);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].end, 1006);
        assert_eq!(hits[1].end, 1512);
    }
}
