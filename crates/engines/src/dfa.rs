//! Subset-construction DFA over byte equivalence classes — the third tier
//! of the software stack.
//!
//! Hyperscan's fastest general path is a determinized automaton
//! (McClellan); it falls back to NFA simulation when determinization
//! blows up. This module mirrors that: [`Dfa::determinize`] builds a dense
//! transition table for the *union* of a pattern set (per-state accept
//! lists keep the pattern identities), with two standard space controls:
//!
//! * **alphabet compression** — bytes that no character class
//!   distinguishes share a column, so a table row is `#classes` wide, not
//!   256;
//! * a **state cap** — determinization aborts (returns `None`) once the
//!   subset construction exceeds `max_states`, and the caller keeps those
//!   patterns on the NFA path.
//!
//! The scan loop is one load per byte plus an accept check.

use crate::{normalize, Engine, Hit};
use rap_automata::nfa::Nfa;
use rap_regex::Regex;
use std::collections::HashMap;

/// A dense DFA for a multi-pattern union.
#[derive(Clone, Debug)]
pub struct Dfa {
    /// `next[state * classes + class]` → state.
    next: Vec<u32>,
    /// Byte → equivalence class.
    class_of: [u16; 256],
    /// Number of equivalence classes.
    classes: usize,
    /// Pattern ids accepting in each state (sorted, deduplicated).
    accepts: Vec<Vec<u32>>,
}

impl Dfa {
    /// Determinizes the union of `patterns`, giving up when more than
    /// `max_states` subset states are needed.
    pub fn determinize(patterns: &[Regex], max_states: usize) -> Option<Dfa> {
        let nfas: Vec<Nfa> = patterns.iter().map(Nfa::from_regex).collect();
        // Global state ids: (pattern base + local id).
        let mut base = Vec::with_capacity(nfas.len());
        let mut total = 0usize;
        for nfa in &nfas {
            base.push(total);
            total += nfa.len();
        }
        // Byte equivalence classes: two bytes are equivalent iff every
        // state's character class treats them identically.
        let class_of = byte_classes(&nfas);
        let classes = (*class_of.iter().max().expect("256 entries") + 1) as usize;
        let mut representative = vec![0u8; classes];
        for b in (0..=255u8).rev() {
            representative[class_of[b as usize] as usize] = b;
        }

        // The subset construction runs over *available* sets: the DFA
        // state reached after a byte is the set of NFA states that matched
        // it; the always-armed initial states are merged into every
        // successor set (unanchored semantics).
        let mut states: Vec<Vec<u32>> = vec![Vec::new()]; // state 0 = start (empty active set)
        let mut index: HashMap<Vec<u32>, u32> = HashMap::new();
        index.insert(Vec::new(), 0);
        let mut next: Vec<u32> = Vec::new();
        let mut accepts: Vec<Vec<u32>> = vec![Vec::new()];
        let mut cursor = 0usize;
        while cursor < states.len() {
            let current = states[cursor].clone();
            for &byte in representative.iter().take(classes) {
                let mut target: Vec<u32> = Vec::new();
                // Successors of the current active set...
                for &g in &current {
                    let (p, local) = locate(&base, g);
                    for &q in &nfas[p].states()[local].succ {
                        push_unique(&mut target, base[p] as u32 + q);
                    }
                }
                // ...plus the always-armed initial states.
                for (p, nfa) in nfas.iter().enumerate() {
                    for &q in nfa.initial() {
                        push_unique(&mut target, base[p] as u32 + q);
                    }
                }
                // Keep those whose class matches the byte.
                target.retain(|&g| {
                    let (p, local) = locate(&base, g);
                    nfas[p].states()[local].cc.contains(byte)
                });
                target.sort_unstable();
                let id = match index.get(&target) {
                    Some(&id) => id,
                    None => {
                        if states.len() >= max_states {
                            return None;
                        }
                        let id = states.len() as u32;
                        let mut acc: Vec<u32> = target
                            .iter()
                            .filter(|&&g| {
                                let (p, local) = locate(&base, g);
                                nfas[p].states()[local].is_final
                            })
                            .map(|&g| locate(&base, g).0 as u32)
                            .collect();
                        acc.sort_unstable();
                        acc.dedup();
                        index.insert(target.clone(), id);
                        states.push(target);
                        accepts.push(acc);
                        id
                    }
                };
                next.push(id);
            }
            cursor += 1;
        }
        Some(Dfa {
            next,
            class_of,
            classes,
            accepts,
        })
    }

    /// Number of DFA states.
    pub fn len(&self) -> usize {
        self.accepts.len()
    }

    /// Whether the DFA has no states (never: there is always a start state).
    pub fn is_empty(&self) -> bool {
        self.accepts.is_empty()
    }

    /// Number of byte equivalence classes.
    pub fn alphabet_classes(&self) -> usize {
        self.classes
    }

    /// Scans `input`, pushing hits with `base`-adjusted offsets.
    pub fn scan_into(&self, input: &[u8], out: &mut Vec<Hit>) {
        let mut state = 0u32;
        for (i, &b) in input.iter().enumerate() {
            let class = self.class_of[b as usize] as usize;
            state = self.next[state as usize * self.classes + class];
            for &p in &self.accepts[state as usize] {
                out.push(Hit {
                    pattern: p as usize,
                    end: i + 1,
                });
            }
        }
    }
}

impl Engine for Dfa {
    fn name(&self) -> &'static str {
        "dfa"
    }

    fn scan(&self, input: &[u8]) -> Vec<Hit> {
        let mut hits = Vec::new();
        self.scan_into(input, &mut hits);
        normalize(hits)
    }
}

/// Maps a global state id back to (pattern index, local state index).
fn locate(base: &[usize], global: u32) -> (usize, usize) {
    let g = global as usize;
    let p = base.partition_point(|&b| b <= g) - 1;
    (p, g - base[p])
}

fn push_unique(v: &mut Vec<u32>, x: u32) {
    if !v.contains(&x) {
        v.push(x);
    }
}

/// Partitions the byte alphabet so that equivalent bytes share a class.
fn byte_classes(nfas: &[Nfa]) -> [u16; 256] {
    // Signature of a byte = the set of (state, matches?) bits; bucket by
    // signature incrementally using a split-refine over class ids.
    let mut class_of = [0u16; 256];
    let mut next_class = 1u16;
    for nfa in nfas {
        for s in nfa.states() {
            // Refine: bytes currently sharing a class but disagreeing on
            // this character class get split.
            let mut mapping: HashMap<(u16, bool), u16> = HashMap::new();
            let mut fresh = next_class;
            for (b, class) in class_of.iter_mut().enumerate() {
                let key = (*class, s.cc.contains(b as u8));
                let id = *mapping.entry(key).or_insert_with(|| {
                    let id = fresh;
                    fresh += 1;
                    id
                });
                *class = id;
            }
            next_class = fresh;
        }
    }
    // Renumber densely from 0.
    let mut dense: HashMap<u16, u16> = HashMap::new();
    for c in class_of.iter_mut() {
        let n = dense.len() as u16;
        *c = *dense.entry(*c).or_insert(n);
    }
    class_of
}

/// The hybrid software engine: one union DFA for everything that
/// determinizes within the state cap, the prefiltered NBVA interpreter
/// for the rest — Hyperscan's architecture in miniature.
#[derive(Clone, Debug)]
pub struct HybridEngine {
    dfa: Option<Dfa>,
    dfa_idx: Vec<usize>,
    fallback: crate::interp::PrefilteredNfa,
    fallback_idx: Vec<usize>,
}

impl HybridEngine {
    /// Default subset-state budget (per Hyperscan's McClellan limits,
    /// scaled down).
    pub const DEFAULT_MAX_STATES: usize = 4096;

    /// Builds the engine. Patterns whose *individual* DFA already exceeds
    /// a proportional share of the budget are routed to the NFA path, then
    /// the union of the rest is determinized (retrying without the largest
    /// contributors is beyond this reproduction's scope — a failed union
    /// sends everything to the NFA path).
    pub fn new(patterns: &[Regex], max_states: usize) -> HybridEngine {
        // Heuristic split: big or loop-heavy patterns determinize badly.
        let mut dfa_idx = Vec::new();
        let mut fallback_idx = Vec::new();
        for (i, re) in patterns.iter().enumerate() {
            if re.unfolded_size() <= 64 {
                dfa_idx.push(i);
            } else {
                fallback_idx.push(i);
            }
        }
        let dfa_patterns: Vec<Regex> = dfa_idx.iter().map(|&i| patterns[i].clone()).collect();
        let dfa = Dfa::determinize(&dfa_patterns, max_states);
        if dfa.is_none() {
            // Union blow-up: run everything on the NFA path.
            fallback_idx = (0..patterns.len()).collect();
            dfa_idx.clear();
        }
        let fallback_patterns: Vec<Regex> =
            fallback_idx.iter().map(|&i| patterns[i].clone()).collect();
        HybridEngine {
            dfa,
            dfa_idx,
            fallback: crate::interp::PrefilteredNfa::new(&fallback_patterns),
            fallback_idx,
        }
    }

    /// Number of patterns on the DFA path.
    pub fn dfa_count(&self) -> usize {
        self.dfa_idx.len()
    }
}

impl Engine for HybridEngine {
    fn name(&self) -> &'static str {
        "hybrid-dfa"
    }

    fn scan(&self, input: &[u8]) -> Vec<Hit> {
        let mut hits = Vec::new();
        if let Some(dfa) = &self.dfa {
            let mut raw = Vec::new();
            dfa.scan_into(input, &mut raw);
            hits.extend(raw.into_iter().map(|h| Hit {
                pattern: self.dfa_idx[h.pattern],
                end: h.end,
            }));
        }
        for h in self.fallback.scan(input) {
            hits.push(Hit {
                pattern: self.fallback_idx[h.pattern],
                end: h.end,
            });
        }
        normalize(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::NfaEngine;
    use rap_regex::parse;

    fn regexes(patterns: &[&str]) -> Vec<Regex> {
        patterns.iter().map(|p| parse(p).expect("parses")).collect()
    }

    #[test]
    fn dfa_agrees_with_interpreter() {
        let patterns = ["abc", "a[bc]d", "q.*z", "m{3}", "x(y|z)+w"];
        let res = regexes(&patterns);
        let dfa = Dfa::determinize(&res, 4096).expect("determinizes");
        let input = b"abcd abd acd qqz qxyzz mmmm xyw xyzyw abc";
        assert_eq!(dfa.scan(input), NfaEngine::new(&res).scan(input));
    }

    #[test]
    fn alphabet_compression_is_tight() {
        // Patterns over {a, b, c} need at most 4 classes (a, b, c, rest).
        let res = regexes(&["abc", "a(b|c)a"]);
        let dfa = Dfa::determinize(&res, 4096).expect("determinizes");
        assert!(dfa.alphabet_classes() <= 4, "{}", dfa.alphabet_classes());
    }

    #[test]
    fn state_cap_aborts() {
        // A union of many unanchored `.{k}x` patterns is exponential-ish;
        // a tiny cap must trip.
        let res = regexes(&["a.{6}b", "c.{6}d", "e.{6}f"]);
        assert!(Dfa::determinize(&res, 8).is_none());
        assert!(Dfa::determinize(&res, 100_000).is_some());
    }

    #[test]
    fn overlapping_matches_reported() {
        let res = regexes(&["aa"]);
        let dfa = Dfa::determinize(&res, 64).expect("determinizes");
        let hits = dfa.scan(b"aaaa");
        assert_eq!(
            hits.iter().map(|h| h.end).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn multi_pattern_ids_survive_union() {
        let res = regexes(&["ab", "b"]);
        let dfa = Dfa::determinize(&res, 64).expect("determinizes");
        let hits = dfa.scan(b"ab");
        assert_eq!(
            hits,
            vec![Hit { pattern: 0, end: 2 }, Hit { pattern: 1, end: 2 }]
        );
    }

    #[test]
    fn hybrid_routes_and_agrees() {
        let patterns = ["abc", "q{200}r", "x.*y", "hello"];
        let res = regexes(&patterns);
        let hybrid = HybridEngine::new(&res, HybridEngine::DEFAULT_MAX_STATES);
        // q{200}r is too big for the DFA path.
        assert_eq!(hybrid.dfa_count(), 3);
        let mut input = b"abc hello xqqy ".to_vec();
        input.extend(std::iter::repeat_n(b'q', 200));
        input.push(b'r');
        assert_eq!(hybrid.scan(&input), NfaEngine::new(&res).scan(&input));
    }

    #[test]
    fn empty_pattern_set() {
        let dfa = Dfa::determinize(&[], 16).expect("empty set determinizes");
        assert!(dfa.scan(b"anything").is_empty());
        let hybrid = HybridEngine::new(&[], 16);
        assert!(hybrid.scan(b"anything").is_empty());
    }
}
