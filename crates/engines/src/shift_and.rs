//! Multi-pattern bit-parallel Shift-And (the Hyperscan-style CPU engine).
//!
//! All linearizable patterns are rewritten into chains (§4.2) and packed
//! back-to-back into one wide bit vector. One shift, one OR and one AND per
//! input byte then advance *every* chain simultaneously — the word-level
//! parallelism that makes Shift-And the workhorse of software matchers.
//!
//! Bits that shift across a chain boundary land on the next chain's first
//! position, which is re-armed by the `initial` mask every step anyway
//! (unanchored matching), so no per-chain masking is needed.

use crate::interp::PrefilteredNfa;
use crate::{normalize, Engine, Hit};
use rap_automata::lnfa::Lnfa;
use rap_regex::Regex;

/// Budget factor for the LNFA rewriting used by the software engines
/// (more generous than the hardware's 2×: software has no area cost, only
/// mask memory).
const EXPAND_FACTOR: u64 = 8;

/// Longest chain worth bit-parallel packing. The packed scan costs
/// O(total bits) per byte regardless of activity, so very long chains
/// (unfolded virus signatures) are cheaper in the activity-driven NFA
/// engine — the same routing decision Hyperscan makes between its
/// bit-parallel literal paths and its general NFA subsystem.
const MAX_PACKED_CHAIN: usize = 128;

/// The packed chain set shared by the CPU and batch engines.
#[derive(Clone, Debug)]
pub(crate) struct PackedChains {
    words: usize,
    /// 256 per-byte label masks.
    labels: Vec<Vec<u64>>,
    /// First-position mask (one bit per chain).
    initial: Vec<u64>,
    /// Final-position mask.
    finals: Vec<u64>,
    /// Pattern index of each final bit (dense map over all bits).
    bit_pattern: Vec<u32>,
    /// Longest chain (the lookback window needed when chunking input).
    pub max_chain_len: usize,
}

impl PackedChains {
    /// Packs the linearizable patterns; returns the packer and the indices
    /// of patterns that need NFA fallback.
    pub(crate) fn build(patterns: &[Regex]) -> (PackedChains, Vec<usize>) {
        let mut fallback = Vec::new();
        let mut classes: Vec<(usize, Vec<rap_regex::CharClass>)> = Vec::new();
        let mut total_bits = 0usize;
        let mut max_chain_len = 0usize;
        for (idx, re) in patterns.iter().enumerate() {
            let budget = re.unfolded_size().max(4) * EXPAND_FACTOR;
            match Lnfa::from_regex(re, budget) {
                Some(set)
                    if !set.lnfas.is_empty()
                        && set.lnfas.iter().all(|l| l.len() <= MAX_PACKED_CHAIN) =>
                {
                    for lnfa in set.lnfas {
                        total_bits += lnfa.len();
                        max_chain_len = max_chain_len.max(lnfa.len());
                        classes.push((idx, lnfa.classes().to_vec()));
                    }
                }
                _ => fallback.push(idx),
            }
        }
        let words = total_bits.div_ceil(64).max(1);
        let mut labels = vec![vec![0u64; words]; 256];
        let mut initial = vec![0u64; words];
        let mut finals = vec![0u64; words];
        let mut bit_pattern = vec![u32::MAX; total_bits.max(1)];
        let mut bit = 0usize;
        for (idx, chain) in &classes {
            initial[bit / 64] |= 1 << (bit % 64);
            for (k, cc) in chain.iter().enumerate() {
                let pos = bit + k;
                for b in cc.iter() {
                    labels[b as usize][pos / 64] |= 1 << (pos % 64);
                }
            }
            let last = bit + chain.len() - 1;
            finals[last / 64] |= 1 << (last % 64);
            bit_pattern[last] = *idx as u32;
            bit += chain.len();
        }
        (
            PackedChains {
                words,
                labels,
                initial,
                finals,
                bit_pattern,
                max_chain_len,
            },
            fallback,
        )
    }

    /// Whether any chains were packed.
    pub(crate) fn is_empty(&self) -> bool {
        self.max_chain_len == 0
    }

    /// Scans a slice, pushing hits with `base + relative_end` offsets.
    pub(crate) fn scan_into(&self, input: &[u8], base: usize, out: &mut Vec<Hit>) {
        if self.is_empty() {
            return;
        }
        let mut states = vec![0u64; self.words];
        for (i, &byte) in input.iter().enumerate() {
            let labels = &self.labels[byte as usize];
            // states = ((states << 1) | initial) & labels[byte]
            let mut carry = 0u64;
            for (w, state) in states.iter_mut().enumerate().take(self.words) {
                let s = *state;
                *state = ((s << 1) | carry | self.initial[w]) & labels[w];
                carry = s >> 63;
            }
            // Report finals.
            for (w, &s) in states.iter().enumerate().take(self.words) {
                let mut t = s & self.finals[w];
                while t != 0 {
                    let b = t.trailing_zeros() as usize;
                    t &= t - 1;
                    let pattern = self.bit_pattern[w * 64 + b] as usize;
                    out.push(Hit {
                        pattern,
                        end: base + i + 1,
                    });
                }
            }
        }
    }
}

/// The CPU engine: packed Shift-And plus NFA fallback for patterns that do
/// not linearize (Hyperscan similarly routes complex regexes to its NFA
/// subsystem).
#[derive(Clone, Debug)]
pub struct ShiftAndEngine {
    packed: PackedChains,
    fallback: PrefilteredNfa,
    fallback_idx: Vec<usize>,
}

impl ShiftAndEngine {
    /// Builds the engine from parsed patterns.
    pub fn new(patterns: &[Regex]) -> ShiftAndEngine {
        let (packed, fallback_idx) = PackedChains::build(patterns);
        let fallback_patterns: Vec<Regex> =
            fallback_idx.iter().map(|&i| patterns[i].clone()).collect();
        ShiftAndEngine {
            packed,
            fallback: PrefilteredNfa::new(&fallback_patterns),
            fallback_idx,
        }
    }

    /// Number of patterns that fell back to NFA interpretation.
    pub fn fallback_count(&self) -> usize {
        self.fallback_idx.len()
    }

    pub(crate) fn parts(&self) -> (&PackedChains, &PrefilteredNfa, &[usize]) {
        (&self.packed, &self.fallback, &self.fallback_idx)
    }
}

impl Engine for ShiftAndEngine {
    fn name(&self) -> &'static str {
        "shift-and"
    }

    fn scan(&self, input: &[u8]) -> Vec<Hit> {
        let mut hits = Vec::new();
        self.packed.scan_into(input, 0, &mut hits);
        for hit in self.fallback.scan(input) {
            hits.push(Hit {
                pattern: self.fallback_idx[hit.pattern],
                end: hit.end,
            });
        }
        normalize(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_regex::parse;

    fn engine(patterns: &[&str]) -> ShiftAndEngine {
        let res: Vec<Regex> = patterns.iter().map(|p| parse(p).expect("parses")).collect();
        ShiftAndEngine::new(&res)
    }

    fn reference(patterns: &[&str], input: &[u8]) -> Vec<Hit> {
        let res: Vec<Regex> = patterns.iter().map(|p| parse(p).expect("parses")).collect();
        crate::interp::NfaEngine::new(&res).scan(input)
    }

    #[test]
    fn agrees_with_interpreter() {
        let patterns = ["abc", "a[bc]d", "xy", "a(b|c)d", "q.*z", "m{3}"];
        let input = b"abcd abd acd xyz qqqz mmmm abc";
        assert_eq!(engine(&patterns).scan(input), reference(&patterns, input));
    }

    #[test]
    fn fallback_routing() {
        let e = engine(&["abc", "a.*b", "x+y"]);
        assert_eq!(e.fallback_count(), 2);
    }

    #[test]
    fn chains_spanning_word_boundaries() {
        // Two 40-state chains cross the 64-bit word boundary.
        let p1 = "a".repeat(40);
        let p2 = "b".repeat(40);
        let patterns = [p1.as_str(), p2.as_str()];
        let mut input = vec![b'a'; 41];
        input.extend(std::iter::repeat_n(b'b', 41));
        assert_eq!(engine(&patterns).scan(&input), reference(&patterns, &input));
    }

    #[test]
    fn boundary_bleed_is_harmless() {
        // Adjacent chains: activity at the end of chain 0 must not create
        // a phantom match in chain 1.
        let patterns = ["aa", "ab"];
        let input = b"aaab";
        assert_eq!(engine(&patterns).scan(input), reference(&patterns, input));
    }

    #[test]
    fn overlapping_and_multiple_hits() {
        let patterns = ["aa"];
        let input = b"aaaa";
        let hits = engine(&patterns).scan(input);
        assert_eq!(
            hits.iter().map(|h| h.end).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn empty_pattern_set() {
        let e = ShiftAndEngine::new(&[]);
        assert!(e.scan(b"anything").is_empty());
    }

    #[test]
    fn union_pattern_expands_to_multiple_chains() {
        let patterns = ["x(a|b)y"];
        let input = b"xay xby xcy";
        assert_eq!(engine(&patterns).scan(input), reference(&patterns, input));
    }
}
