//! Software multi-pattern matchers: the CPU and GPU baselines of §5.5.
//!
//! The paper compares RAP against Hyperscan on a desktop CPU and HybridSA
//! on a discrete GPU. Neither binary nor device is available here, so this
//! crate implements the *algorithms* those systems are built on and
//! measures their real throughput on this machine:
//!
//! * [`ShiftAndEngine`] — a multi-pattern bit-parallel Shift-And scanner
//!   (the core of Hyperscan's literal/fdr paths and of HybridSA): all
//!   linearizable patterns are packed into one wide bit vector with shared
//!   shift/AND steps; non-linearizable patterns fall back to NFA
//!   simulation.
//! * [`BatchEngine`] — a HybridSA-style data-parallel scanner that splits
//!   the input into overlapping chunks processed concurrently (standing in
//!   for the GPU's thread blocks), with the same fallback.
//! * [`NfaEngine`] — plain multi-pattern NFA interpretation, the ground
//!   truth.
//!
//! Device power envelopes for the Fig. 13 comparison are published
//! constants in [`power`].

pub mod batch;
pub mod dfa;
pub mod interp;
pub mod power;
pub mod prefilter;
pub mod shift_and;

pub use batch::BatchEngine;
pub use dfa::{Dfa, HybridEngine};
pub use interp::{NfaEngine, PrefilteredNfa};
pub use shift_and::ShiftAndEngine;

use serde::{Deserialize, Serialize};

/// One match hit: pattern index and the offset just past the final byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Hit {
    /// Pattern index in the engine's pattern list.
    pub pattern: usize,
    /// Offset just past the matched substring.
    pub end: usize,
}

/// A multi-pattern scanner over byte streams.
pub trait Engine {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Scans `input`, returning all hits sorted by `(end, pattern)` with
    /// duplicates removed.
    fn scan(&self, input: &[u8]) -> Vec<Hit>;
}

/// Normalizes a hit list: sort by (end, pattern) and deduplicate.
pub(crate) fn normalize(mut hits: Vec<Hit>) -> Vec<Hit> {
    hits.sort_unstable_by_key(|h| (h.end, h.pattern));
    hits.dedup();
    hits
}

/// Measures an engine's throughput in gigacharacters per second by timing
/// repeated scans (at least `min_repeats`, at least ~50 ms of work).
pub fn measure_throughput_gchps<E: Engine>(engine: &E, input: &[u8], min_repeats: u32) -> f64 {
    let start = std::time::Instant::now();
    let mut bytes = 0u64;
    let mut repeats = 0u32;
    while repeats < min_repeats || start.elapsed().as_millis() < 50 {
        std::hint::black_box(engine.scan(std::hint::black_box(input)));
        bytes += input.len() as u64;
        repeats += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    if secs == 0.0 {
        return 0.0;
    }
    bytes as f64 / secs / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Engine for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn scan(&self, input: &[u8]) -> Vec<Hit> {
            input
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'!')
                .map(|(i, _)| Hit {
                    pattern: 0,
                    end: i + 1,
                })
                .collect()
        }
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let hits = vec![
            Hit { pattern: 1, end: 5 },
            Hit { pattern: 0, end: 5 },
            Hit { pattern: 1, end: 5 },
            Hit { pattern: 0, end: 2 },
        ];
        let n = normalize(hits);
        assert_eq!(
            n,
            vec![
                Hit { pattern: 0, end: 2 },
                Hit { pattern: 0, end: 5 },
                Hit { pattern: 1, end: 5 },
            ]
        );
    }

    #[test]
    fn throughput_measurement_positive() {
        let t = measure_throughput_gchps(&Dummy, b"hello!world!", 3);
        assert!(t > 0.0);
    }
}
