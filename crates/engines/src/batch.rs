//! Data-parallel batch scanning — the HybridSA/GPU stand-in.
//!
//! HybridSA executes Shift-And variants on thousands of GPU threads, each
//! scanning an input segment with enough lookback to catch matches that
//! straddle segment boundaries; regexes its bit-parallel forms cannot
//! express run on the CPU. This engine reproduces that structure with OS
//! threads: the input splits into overlapping chunks processed in
//! parallel, with the longest chain length as the lookback window, and
//! non-linearizable patterns interpreted on the full stream.

use crate::interp::PrefilteredNfa;
use crate::shift_and::ShiftAndEngine;
use crate::{normalize, Engine, Hit};
use rap_regex::Regex;

/// Batch (chunked, parallel) Shift-And engine.
#[derive(Clone, Debug)]
pub struct BatchEngine {
    inner: ShiftAndEngine,
    /// Fallback patterns re-sharded into per-worker engines (HybridSA
    /// distributes regex groups over thread blocks the same way); each
    /// entry holds the shard plus the original pattern indices.
    fallback_shards: Vec<(PrefilteredNfa, Vec<usize>)>,
    chunk_size: usize,
    threads: usize,
}

impl BatchEngine {
    /// Builds the engine; `chunk_size` is the per-thread segment length.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(patterns: &[Regex], chunk_size: usize) -> BatchEngine {
        assert!(chunk_size > 0, "chunk size must be positive");
        let threads = std::thread::available_parallelism().map_or(4, usize::from);
        let inner = ShiftAndEngine::new(patterns);
        let (_, _, fallback_idx) = inner.parts();
        let shard_count = threads.clamp(1, fallback_idx.len().max(1));
        let mut fallback_shards = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            let idx: Vec<usize> = fallback_idx
                .iter()
                .copied()
                .skip(s)
                .step_by(shard_count)
                .collect();
            if idx.is_empty() {
                continue;
            }
            let shard_patterns: Vec<Regex> = idx.iter().map(|&i| patterns[i].clone()).collect();
            fallback_shards.push((PrefilteredNfa::new(&shard_patterns), idx));
        }
        BatchEngine {
            inner,
            fallback_shards,
            chunk_size,
            threads,
        }
    }

    /// Number of worker threads used per scan.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Engine for BatchEngine {
    fn name(&self) -> &'static str {
        "batch-shift-and"
    }

    fn scan(&self, input: &[u8]) -> Vec<Hit> {
        let (packed, _, _) = self.inner.parts();
        let lookback = packed.max_chain_len.saturating_sub(1);
        let chunks: Vec<(usize, usize)> = (0..input.len())
            .step_by(self.chunk_size)
            .map(|start| (start, (start + self.chunk_size).min(input.len())))
            .collect();

        let mut hits: Vec<Hit> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            // Data-parallel workers over the packed chains.
            for worker in 0..self.threads {
                let chunks = &chunks;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    // Static round-robin chunk assignment.
                    for (ci, &(start, end)) in chunks.iter().enumerate() {
                        if ci % self.threads != worker {
                            continue;
                        }
                        let from = start.saturating_sub(lookback);
                        let mut raw = Vec::new();
                        packed.scan_into(&input[from..end], from, &mut raw);
                        // Hits ending inside the lookback prefix belong to
                        // the previous chunk.
                        local.extend(raw.into_iter().filter(|h| h.end > start));
                    }
                    local
                }));
            }
            // Pattern-parallel workers over the fallback shards (these
            // automata carry unbounded history, so they split by pattern,
            // not by input position).
            for (shard, idx) in &self.fallback_shards {
                handles.push(scope.spawn(move || {
                    shard
                        .scan(input)
                        .into_iter()
                        .map(|h| Hit {
                            pattern: idx[h.pattern],
                            end: h.end,
                        })
                        .collect()
                }));
            }
            for h in handles {
                hits.extend(h.join().expect("batch worker panicked"));
            }
        });
        normalize(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::NfaEngine;
    use rap_regex::parse;

    fn regexes(patterns: &[&str]) -> Vec<Regex> {
        patterns.iter().map(|p| parse(p).expect("parses")).collect()
    }

    #[test]
    fn agrees_with_interpreter_across_chunk_sizes() {
        let patterns = ["abc", "a[bc]d", "needle", "q.*z"];
        let res = regexes(&patterns);
        let input = b"abcd needle acd needleneedle qz abc qqz needle abcd".repeat(7);
        let expect = NfaEngine::new(&res).scan(&input);
        for chunk in [1usize, 3, 16, 64, 1 << 20] {
            let e = BatchEngine::new(&res, chunk);
            assert_eq!(e.scan(&input), expect, "chunk size {chunk}");
        }
    }

    #[test]
    fn matches_straddling_chunk_boundary() {
        let res = regexes(&["abcdefgh"]);
        let input = b"xxxabcdefghxxx";
        // Chunk size 5 puts the match across three chunks; lookback covers
        // it.
        let e = BatchEngine::new(&res, 5);
        let hits = e.scan(input);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].end, 11);
    }

    #[test]
    fn no_duplicate_hits_from_overlap() {
        let res = regexes(&["aba"]);
        let input = b"abababab";
        let e = BatchEngine::new(&res, 2);
        let hits = e.scan(input);
        let expect = NfaEngine::new(&res).scan(input);
        assert_eq!(hits, expect);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = BatchEngine::new(&[], 0);
    }

    #[test]
    fn empty_input() {
        let e = BatchEngine::new(&regexes(&["abc"]), 8);
        assert!(e.scan(b"").is_empty());
    }
}
