//! Device power envelopes for the Fig. 13 comparison.
//!
//! The paper measures average power with Intel SoC Watch (CPU socket) and
//! NVML at 50 Hz (GPU). Without those devices we use the published
//! envelopes of the paper's testbed parts; RAP's power, by contrast, is
//! *computed* by the simulator from the Table 1 circuit models.

/// Average socket power of the paper's CPU (Intel Core i9-12900K) under
/// sustained multi-pattern scanning, in watts (PL2-class load).
pub const CPU_SOCKET_W: f64 = 240.0;

/// Average board power of the paper's GPU (NVIDIA GeForce RTX 4060 Ti)
/// under sustained HybridSA kernels, in watts (NVML-measured class).
pub const GPU_BOARD_W: f64 = 60.0;

/// Energy efficiency in Gch/s per watt for a measured throughput and a
/// device power envelope.
pub fn energy_efficiency_gchps_per_w(throughput_gchps: f64, power_w: f64) -> f64 {
    assert!(power_w > 0.0, "power must be positive");
    throughput_gchps / power_w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_math() {
        let eff = energy_efficiency_gchps_per_w(2.4, 60.0);
        assert!((eff - 0.04).abs() < 1e-12);
    }

    #[test]
    fn gpu_uses_less_power_than_cpu() {
        const { assert!(GPU_BOARD_W < CPU_SOCKET_W) }
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn zero_power_rejected() {
        let _ = energy_efficiency_gchps_per_w(1.0, 0.0);
    }
}
