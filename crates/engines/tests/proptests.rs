//! Fuzzed equivalence of the bit-parallel engines against the NFA
//! interpreter.

use proptest::prelude::*;
use rap_engines::{
    BatchEngine, Dfa, Engine, HybridEngine, NfaEngine, PrefilteredNfa, ShiftAndEngine,
};
use rap_regex::{CharClass, Regex};

fn arb_pattern() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::literal_byte(b'a')),
        Just(Regex::literal_byte(b'b')),
        Just(Regex::literal_byte(b'c')),
        Just(Regex::Class(CharClass::from_bytes([b'a', b'c']))),
        Just(Regex::Class(CharClass::dot())),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..5).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::opt),
            inner.clone().prop_map(Regex::star),
            (inner, 1u32..5).prop_map(|(r, n)| Regex::repeat(r, n, Some(n + 2))),
        ]
    })
    .prop_filter("needs at least one state", |re| re.unfolded_size() > 0)
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![4 => Just(b'a'), 4 => Just(b'b'), 4 => Just(b'c'), 1 => Just(b'\n')],
        0..96,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn shift_and_equals_interpreter(
        patterns in prop::collection::vec(arb_pattern(), 1..5),
        input in arb_input(),
    ) {
        let expect = NfaEngine::new(&patterns).scan(&input);
        let got = ShiftAndEngine::new(&patterns).scan(&input);
        prop_assert_eq!(
            got, expect,
            "patterns {:?}",
            patterns.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn prefiltered_equals_interpreter(
        patterns in prop::collection::vec(arb_pattern(), 1..5),
        input in arb_input(),
    ) {
        let expect = NfaEngine::new(&patterns).scan(&input);
        let got = PrefilteredNfa::new(&patterns).scan(&input);
        prop_assert_eq!(
            got, expect,
            "patterns {:?}",
            patterns.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dfa_and_hybrid_equal_interpreter(
        patterns in prop::collection::vec(arb_pattern(), 1..4),
        input in arb_input(),
    ) {
        let expect = NfaEngine::new(&patterns).scan(&input);
        if let Some(dfa) = Dfa::determinize(&patterns, 20_000) {
            prop_assert_eq!(
                dfa.scan(&input), expect.clone(),
                "DFA, patterns {:?}",
                patterns.iter().map(ToString::to_string).collect::<Vec<_>>()
            );
        }
        let hybrid = HybridEngine::new(&patterns, 20_000);
        prop_assert_eq!(
            hybrid.scan(&input), expect,
            "hybrid, patterns {:?}",
            patterns.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batch_equals_interpreter(
        patterns in prop::collection::vec(arb_pattern(), 1..4),
        input in arb_input(),
        chunk in 1usize..64,
    ) {
        let expect = NfaEngine::new(&patterns).scan(&input);
        let got = BatchEngine::new(&patterns, chunk).scan(&input);
        prop_assert_eq!(
            got, expect,
            "patterns {:?} chunk {}",
            patterns.iter().map(ToString::to_string).collect::<Vec<_>>(),
            chunk
        );
    }
}
