//! Per-stage instrumentation.
//!
//! Every [`crate::Pipeline`] accumulates wall-clock per stage, cache
//! hit/miss counters, and work-volume counters into atomics; a
//! [`PipelineReport`] is a cheap snapshot that renders as a small table —
//! the artifact CI prints so pipeline regressions and cache breakage are
//! visible in plain log output.

use crate::cache::CacheStats;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The pipeline's stages, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Workload materialization (generate + parse + input synthesis).
    Generate,
    /// Regex-to-hardware compilation.
    Compile,
    /// Array placement.
    Map,
    /// Static legality verification.
    Verify,
    /// Cycle-accurate simulation.
    Simulate,
}

/// All stages in execution order.
pub const STAGES: [Stage; 5] = [
    Stage::Generate,
    Stage::Compile,
    Stage::Map,
    Stage::Verify,
    Stage::Simulate,
];

impl Stage {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Generate => "generate",
            Stage::Compile => "compile",
            Stage::Map => "map",
            Stage::Verify => "verify",
            Stage::Simulate => "simulate",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Generate => 0,
            Stage::Compile => 1,
            Stage::Map => 2,
            Stage::Verify => 3,
            Stage::Simulate => 4,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Lock-free accumulation cell shared by pipeline workers.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    stage_ns: [AtomicU64; 5],
    patterns: AtomicU64,
    states: AtomicU64,
    cells: AtomicU64,
    workers: AtomicU64,
    grid_ns: AtomicU64,
}

impl Metrics {
    /// Times `f`, charging the elapsed wall-clock to `stage`.
    pub fn timed<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stage_ns[stage.index()].fetch_add(ns, Ordering::Relaxed);
        out
    }

    pub fn add_compiled(&self, patterns: u64, states: u64) {
        self.patterns.fetch_add(patterns, Ordering::Relaxed);
        self.states.fetch_add(states, Ordering::Relaxed);
    }

    pub fn add_cell(&self) {
        self.cells.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_grid(&self, workers: u64, ns: u64) {
        self.workers.fetch_max(workers, Ordering::Relaxed);
        self.grid_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn snapshot(&self, plan_cache: CacheStats, corpus_cache: CacheStats) -> PipelineReport {
        let mut stage_ns = [0u64; 5];
        for (out, cell) in stage_ns.iter_mut().zip(&self.stage_ns) {
            *out = cell.load(Ordering::Relaxed);
        }
        PipelineReport {
            stage_ns,
            plan_cache,
            corpus_cache,
            patterns_compiled: self.patterns.load(Ordering::Relaxed),
            states_compiled: self.states.load(Ordering::Relaxed),
            cells_evaluated: self.cells.load(Ordering::Relaxed),
            max_workers: self.workers.load(Ordering::Relaxed),
            grid_ns: self.grid_ns.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one pipeline's instrumentation.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineReport {
    /// Cumulative wall-clock nanoseconds per stage, summed across workers
    /// (parallel stage time can exceed elapsed real time).
    pub stage_ns: [u64; 5],
    /// Verified-plan cache hits/misses (misses = distinct compiles run).
    pub plan_cache: CacheStats,
    /// Process-wide workload memo hits/misses.
    pub corpus_cache: CacheStats,
    /// Patterns compiled (cache misses only — cache hits compile nothing).
    pub patterns_compiled: u64,
    /// Hardware states produced by those compiles.
    pub states_compiled: u64,
    /// (machine × suite) cells simulated.
    pub cells_evaluated: u64,
    /// Largest worker count used by a grid fan-out.
    pub max_workers: u64,
    /// Cumulative wall-clock nanoseconds inside grid fan-outs.
    pub grid_ns: u64,
}

impl PipelineReport {
    /// Wall-clock charged to `stage`, in seconds.
    pub fn stage_secs(&self, stage: Stage) -> f64 {
        self.stage_ns[stage.index()] as f64 / 1e9
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pipeline report")?;
        writeln!(f, "  stage      cumulative wall-clock")?;
        for stage in STAGES {
            writeln!(
                f,
                "  {:<9} {:>12.3} s",
                stage.name(),
                self.stage_secs(stage)
            )?;
        }
        writeln!(
            f,
            "  plan cache   : {} hits, {} misses ({} distinct compiles)",
            self.plan_cache.hits, self.plan_cache.misses, self.plan_cache.misses
        )?;
        writeln!(
            f,
            "  corpus memo  : {} hits, {} misses",
            self.corpus_cache.hits, self.corpus_cache.misses
        )?;
        writeln!(
            f,
            "  compiled     : {} patterns -> {} states",
            self.patterns_compiled, self.states_compiled
        )?;
        writeln!(
            f,
            "  simulated    : {} cells (grid workers <= {}, {:.3} s in fan-outs)",
            self.cells_evaluated,
            self.max_workers,
            self.grid_ns as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_accumulates() {
        let m = Metrics::default();
        m.timed(Stage::Compile, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        m.add_compiled(3, 17);
        m.add_cell();
        m.record_grid(4, 1_000);
        let r = m.snapshot(CacheStats::default(), CacheStats::default());
        assert!(r.stage_secs(Stage::Compile) > 0.0);
        assert_eq!(r.stage_secs(Stage::Map), 0.0);
        assert_eq!(r.patterns_compiled, 3);
        assert_eq!(r.states_compiled, 17);
        assert_eq!(r.cells_evaluated, 1);
        assert_eq!(r.max_workers, 4);
    }

    #[test]
    fn report_renders_every_stage() {
        let r = PipelineReport::default();
        let s = r.to_string();
        for stage in STAGES {
            assert!(s.contains(stage.name()), "{s}");
        }
        assert!(s.contains("plan cache"), "{s}");
    }
}
