//! Per-stage instrumentation.
//!
//! Every [`crate::Pipeline`] accumulates wall-clock per stage, cache
//! hit/miss counters, and work-volume counters; a [`PipelineReport`] is a
//! cheap snapshot that renders as a small table — the artifact CI prints
//! so pipeline regressions and cache breakage are visible in plain log
//! output.
//!
//! Since the telemetry subsystem landed, the cells live in a
//! [`rap_telemetry::Registry`] (per-stage span histograms named
//! `rap_pipeline_stage_ns{stage=…}`, work counters, cache gauges) rather
//! than hand-rolled atomics. A standalone pipeline owns a private
//! registry; `Pipeline::with_telemetry` rebinds onto the shared one, so
//! the same numbers also appear in the Prometheus snapshot.

use crate::cache::CacheStats;
use crate::store::TierStats;
use rap_telemetry::{Counter, Gauge, Histogram, Registry};
use std::fmt;

/// The pipeline's stages, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Workload materialization (generate + parse + input synthesis).
    Generate,
    /// Regex-to-hardware compilation.
    Compile,
    /// Static analysis of the compiled images (opt-in, with pruning).
    Analyze,
    /// Array placement.
    Map,
    /// Static legality verification.
    Verify,
    /// Static worst-case bound analysis (opt-in).
    Bound,
    /// Multi-tenant admission analysis (opt-in).
    Admit,
    /// Hot-swap safety analysis and certificate construction (opt-in).
    Swap,
    /// Cycle-accurate simulation.
    Simulate,
}

/// All stages in execution order.
pub const STAGES: [Stage; 9] = [
    Stage::Generate,
    Stage::Compile,
    Stage::Analyze,
    Stage::Map,
    Stage::Verify,
    Stage::Bound,
    Stage::Admit,
    Stage::Swap,
    Stage::Simulate,
];

impl Stage {
    /// Iterates all stages in execution order — the canonical way for
    /// downstream consumers (telemetry labels, report tables) to
    /// enumerate them without hand-rolling [`STAGES`].
    pub fn iter() -> impl Iterator<Item = Stage> {
        STAGES.into_iter()
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Generate => "generate",
            Stage::Compile => "compile",
            Stage::Analyze => "analyze",
            Stage::Map => "map",
            Stage::Verify => "verify",
            Stage::Bound => "bound",
            Stage::Admit => "admit",
            Stage::Swap => "swap",
            Stage::Simulate => "simulate",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Generate => 0,
            Stage::Compile => 1,
            Stage::Analyze => 2,
            Stage::Map => 3,
            Stage::Verify => 4,
            Stage::Bound => 5,
            Stage::Admit => 6,
            Stage::Swap => 7,
            Stage::Simulate => 8,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Lock-free accumulation cells shared by pipeline workers: handles into
/// a telemetry registry, registered once at pipeline construction.
#[derive(Debug)]
pub(crate) struct Metrics {
    stage_ns: [Histogram; 9],
    bound_arrays: Counter,
    bound_peak_active: Gauge,
    admitted: Counter,
    rejected: Counter,
    swaps_certified: Counter,
    swaps_rejected: Counter,
    patterns: Counter,
    states: Counter,
    pruned: Counter,
    cells: Counter,
    workers: Gauge,
    grid_ns: Counter,
    plan_cache_hits: Gauge,
    plan_cache_misses: Gauge,
    corpus_cache_hits: Gauge,
    corpus_cache_misses: Gauge,
    store_hits: Gauge,
    store_misses: Gauge,
    store_writes: Gauge,
    store_corrupt: Gauge,
    store_stale: Gauge,
    store_evictions: Gauge,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::on(&Registry::new())
    }
}

impl Metrics {
    /// Registers the pipeline's cells on `registry`. Registering twice on
    /// the same registry shares the cells (registry identity semantics).
    pub fn on(registry: &Registry) -> Metrics {
        Metrics {
            stage_ns: STAGES.map(|stage| {
                registry.histogram("rap_pipeline_stage_ns", &[("stage", stage.name())])
            }),
            bound_arrays: registry.counter("rap_pipeline_bound_arrays_total", &[]),
            bound_peak_active: registry.gauge("rap_pipeline_bound_peak_active_states", &[]),
            admitted: registry.counter(
                "rap_pipeline_compositions_total",
                &[("verdict", "admitted")],
            ),
            rejected: registry.counter(
                "rap_pipeline_compositions_total",
                &[("verdict", "rejected")],
            ),
            swaps_certified: registry
                .counter("rap_pipeline_swaps_total", &[("verdict", "certified")]),
            swaps_rejected: registry
                .counter("rap_pipeline_swaps_total", &[("verdict", "rejected")]),
            patterns: registry.counter("rap_pipeline_patterns_compiled_total", &[]),
            states: registry.counter("rap_pipeline_states_compiled_total", &[]),
            pruned: registry.counter("rap_pipeline_states_pruned_total", &[]),
            cells: registry.counter("rap_pipeline_cells_evaluated_total", &[]),
            workers: registry.gauge("rap_pipeline_grid_workers_max", &[]),
            grid_ns: registry.counter("rap_pipeline_grid_ns_total", &[]),
            plan_cache_hits: registry.gauge("rap_pipeline_plan_cache_hits", &[]),
            plan_cache_misses: registry.gauge("rap_pipeline_plan_cache_misses", &[]),
            corpus_cache_hits: registry.gauge("rap_pipeline_corpus_cache_hits", &[]),
            corpus_cache_misses: registry.gauge("rap_pipeline_corpus_cache_misses", &[]),
            store_hits: registry.gauge("rap_store_hits", &[("tier", "disk")]),
            store_misses: registry.gauge("rap_store_misses", &[("tier", "disk")]),
            store_writes: registry.gauge("rap_store_writes", &[("tier", "disk")]),
            store_corrupt: registry.gauge("rap_store_corrupt", &[("tier", "disk")]),
            store_stale: registry.gauge("rap_store_stale", &[("tier", "disk")]),
            store_evictions: registry.gauge("rap_store_evictions", &[("tier", "disk")]),
        }
    }

    /// Times `f`, charging the elapsed wall-clock to `stage`'s span
    /// histogram (one observation per call, so the histogram also carries
    /// the per-invocation latency distribution).
    pub fn timed<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        rap_telemetry::time(&self.stage_ns[stage.index()], f)
    }

    pub fn add_compiled(&self, patterns: u64, states: u64) {
        self.patterns.add(patterns);
        self.states.add(states);
    }

    pub fn add_cell(&self) {
        self.cells.inc();
    }

    /// Charges states removed by the Analyze stage's pruning.
    pub fn add_pruned(&self, states: u64) {
        self.pruned.add(states);
    }

    /// Charges one Bound-stage run: arrays bounded and the plan's total
    /// worst-case active-state bound (kept as a high-water mark).
    pub fn record_bounds(&self, arrays: u64, peak_active: u64) {
        self.bound_arrays.add(arrays);
        self.bound_peak_active.set_max(peak_active);
    }

    /// Charges one Admit-stage verdict.
    pub fn record_admission(&self, admitted: bool) {
        if admitted {
            self.admitted.inc();
        } else {
            self.rejected.inc();
        }
    }

    /// Charges one Swap-stage verdict.
    pub fn record_swap(&self, certified: bool) {
        if certified {
            self.swaps_certified.inc();
        } else {
            self.swaps_rejected.inc();
        }
    }

    pub fn record_grid(&self, workers: u64, ns: u64) {
        self.workers.set_max(workers);
        self.grid_ns.add(ns);
    }

    pub fn snapshot(
        &self,
        plan_cache: CacheStats,
        disk_store: Option<TierStats>,
        corpus_cache: CacheStats,
    ) -> PipelineReport {
        // Mirror the cache stats onto the registry so the Prometheus
        // snapshot carries them too.
        self.plan_cache_hits.set(plan_cache.hits);
        self.plan_cache_misses.set(plan_cache.misses);
        self.corpus_cache_hits.set(corpus_cache.hits);
        self.corpus_cache_misses.set(corpus_cache.misses);
        if let Some(disk) = disk_store {
            self.store_hits.set(disk.hits);
            self.store_misses.set(disk.misses);
            self.store_writes.set(disk.writes);
            self.store_corrupt.set(disk.corrupt);
            self.store_stale.set(disk.stale);
            self.store_evictions.set(disk.evictions);
        }
        let mut stage_ns = [0u64; 9];
        for (out, hist) in stage_ns.iter_mut().zip(&self.stage_ns) {
            *out = hist.sum();
        }
        PipelineReport {
            stage_ns,
            plan_cache,
            disk_store,
            corpus_cache,
            patterns_compiled: self.patterns.get(),
            states_compiled: self.states.get(),
            states_pruned: self.pruned.get(),
            arrays_bounded: self.bound_arrays.get(),
            peak_active_bound: self.bound_peak_active.get(),
            compositions_admitted: self.admitted.get(),
            compositions_rejected: self.rejected.get(),
            swaps_certified: self.swaps_certified.get(),
            swaps_rejected: self.swaps_rejected.get(),
            cells_evaluated: self.cells.get(),
            max_workers: self.workers.get(),
            grid_ns: self.grid_ns.get(),
        }
    }
}

/// Snapshot of one pipeline's instrumentation.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineReport {
    /// Cumulative wall-clock nanoseconds per stage, summed across workers
    /// (parallel stage time can exceed elapsed real time).
    pub stage_ns: [u64; 9],
    /// Verified-plan memory-tier hits/misses. Without a disk store, a
    /// miss is a distinct compile; with one, disk hits answer some misses
    /// without compiling (see [`PipelineReport::disk_store`]).
    pub plan_cache: CacheStats,
    /// Persistent disk-tier counters, when a store is attached
    /// ([`crate::Pipeline::with_store`]).
    pub disk_store: Option<TierStats>,
    /// Process-wide workload memo hits/misses.
    pub corpus_cache: CacheStats,
    /// Patterns compiled (cache misses only — cache hits compile nothing).
    pub patterns_compiled: u64,
    /// Hardware states produced by those compiles.
    pub states_compiled: u64,
    /// States the Analyze stage's pruning removed from those compiles.
    pub states_pruned: u64,
    /// Arrays the Bound stage computed worst-case bounds for (0 when the
    /// stage is not enabled).
    pub arrays_bounded: u64,
    /// Largest per-plan total worst-case active-state bound seen.
    pub peak_active_bound: u64,
    /// Multi-tenant compositions the Admit stage certified.
    pub compositions_admitted: u64,
    /// Multi-tenant compositions the Admit stage rejected.
    pub compositions_rejected: u64,
    /// Hot swaps the Swap stage certified.
    pub swaps_certified: u64,
    /// Hot swaps the Swap stage rejected.
    pub swaps_rejected: u64,
    /// (machine × suite) cells simulated.
    pub cells_evaluated: u64,
    /// Largest worker count used by a grid fan-out.
    pub max_workers: u64,
    /// Cumulative wall-clock nanoseconds inside grid fan-outs.
    pub grid_ns: u64,
}

impl PipelineReport {
    /// Wall-clock charged to `stage`, in seconds.
    pub fn stage_secs(&self, stage: Stage) -> f64 {
        self.stage_ns[stage.index()] as f64 / 1e9
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pipeline report")?;
        writeln!(f, "  stage      cumulative wall-clock")?;
        for stage in STAGES {
            writeln!(
                f,
                "  {:<9} {:>12.3} s",
                stage.name(),
                self.stage_secs(stage)
            )?;
        }
        writeln!(
            f,
            "  plan cache   : {} hits, {} misses",
            self.plan_cache.hits, self.plan_cache.misses
        )?;
        if let Some(disk) = &self.disk_store {
            writeln!(
                f,
                "  disk store   : {} hits, {} misses, {} writes ({} corrupt, {} stale, {} evicted)",
                disk.hits, disk.misses, disk.writes, disk.corrupt, disk.stale, disk.evictions
            )?;
        }
        writeln!(
            f,
            "  corpus memo  : {} hits, {} misses",
            self.corpus_cache.hits, self.corpus_cache.misses
        )?;
        writeln!(
            f,
            "  compiled     : {} patterns -> {} states ({} pruned by analysis)",
            self.patterns_compiled, self.states_compiled, self.states_pruned
        )?;
        if self.arrays_bounded > 0 {
            writeln!(
                f,
                "  bounds       : {} arrays bounded (peak active-state bound {})",
                self.arrays_bounded, self.peak_active_bound
            )?;
        }
        if self.compositions_admitted + self.compositions_rejected > 0 {
            writeln!(
                f,
                "  admission    : {} composition(s) admitted, {} rejected",
                self.compositions_admitted, self.compositions_rejected
            )?;
        }
        if self.swaps_certified + self.swaps_rejected > 0 {
            writeln!(
                f,
                "  hot swaps    : {} certified, {} rejected",
                self.swaps_certified, self.swaps_rejected
            )?;
        }
        writeln!(
            f,
            "  simulated    : {} cells (grid workers <= {}, {:.3} s in fan-outs)",
            self.cells_evaluated,
            self.max_workers,
            self.grid_ns as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_accumulates() {
        let m = Metrics::default();
        m.timed(Stage::Compile, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        m.add_compiled(3, 17);
        m.add_cell();
        m.record_grid(4, 1_000);
        let r = m.snapshot(CacheStats::default(), None, CacheStats::default());
        assert!(r.stage_secs(Stage::Compile) > 0.0);
        assert_eq!(r.stage_secs(Stage::Map), 0.0);
        assert_eq!(r.patterns_compiled, 3);
        assert_eq!(r.states_compiled, 17);
        assert_eq!(r.cells_evaluated, 1);
        assert_eq!(r.max_workers, 4);
    }

    #[test]
    fn stage_iter_matches_stages_in_order() {
        assert_eq!(Stage::iter().collect::<Vec<_>>(), STAGES.to_vec());
        // The new ordering derives follow execution order.
        assert!(Stage::Generate < Stage::Compile);
        assert!(Stage::Verify < Stage::Simulate);
        let set: std::collections::HashSet<Stage> = Stage::iter().collect();
        assert_eq!(set.len(), STAGES.len());
    }

    #[test]
    fn metrics_shared_through_registry() {
        let registry = Registry::new();
        let a = Metrics::on(&registry);
        let b = Metrics::on(&registry);
        a.add_cell();
        b.add_cell();
        let r = a.snapshot(CacheStats::default(), None, CacheStats::default());
        assert_eq!(r.cells_evaluated, 2, "cells registered twice must share");
    }

    #[test]
    fn report_renders_every_stage() {
        let r = PipelineReport::default();
        let s = r.to_string();
        for stage in STAGES {
            assert!(s.contains(stage.name()), "{s}");
        }
        assert!(s.contains("plan cache"), "{s}");
    }
}
