//! The pipeline orchestrator and its parallel grid driver.
//!
//! [`Pipeline`] ties the stages together: it materializes suite corpora
//! through the process-wide memo, compiles/maps/verifies through the
//! content-addressed plan cache, simulates, and fans independent
//! (machine × suite) cells out over scoped worker threads — all while
//! charging wall-clock and work counters to a [`PipelineReport`].

use crate::artifact::{CompiledSet, MappedPlan, PatternSet, VerifiedPlan};
use crate::error::EvalError;
use crate::report::{Metrics, PipelineReport, Stage};
use crate::store::{DiskTier, StoreConfig, TierStats, TieredStore};
use crate::summary::RunSummary;
use crate::workload::{self, BenchConfig, SuiteCorpus};
use rap_circuit::Machine;
use rap_compiler::Mode;
use rap_sim::Simulator;
use rap_telemetry::Telemetry;
use rap_workloads::Suite;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default grid worker count: every available core, but never fewer than
/// two, so the (machine × suite) grid always actually overlaps work.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(2, usize::from)
        .max(2)
}

/// Maps `f` over `items` on a bounded pool of scoped worker threads.
///
/// Workers claim items through a shared atomic cursor (the same
/// work-stealing shape as `rap_engines::batch`), so an expensive item
/// never serializes the rest of the grid behind it. Results come back in
/// input order. With one worker (or one item) the map runs inline.
pub fn par_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work lock poisoned")
                    .take()
                    .expect("each item claimed once");
                let out = f(item);
                *slots[i].lock().expect("slot lock poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// The outcome of one multi-tenant admission request.
///
/// `analysis` always carries the full S-rule report and per-tenant
/// decisions; `plan` is the certified composed plan, present exactly
/// when admission succeeded. The composed plan re-entered the typed
/// artifact chain through [`crate::MappedPlan::verify`], so a certified
/// composition is also a structurally verified plan — and it lives in
/// the same tiered plan store as solo plans, addressed by a key derived
/// from the tenants' plan keys (order-insensitive).
#[derive(Clone, Debug)]
pub struct Admission {
    /// The static interference analysis (S001–S008 findings, fabric
    /// sizing, per-bank loads, per-tenant summaries).
    pub analysis: rap_admit::AdmissionAnalysis,
    /// The certified, verified composed plan — `None` when rejected.
    pub plan: Option<Arc<VerifiedPlan>>,
}

/// What [`Pipeline::swap`] produces.
#[derive(Debug)]
pub struct SwapOutcome {
    /// The static hot-swap analysis (Q001–Q008 findings, drain bound,
    /// reconfiguration cost, the certificate).
    pub analysis: rap_swap::SwapAnalysis,
    /// The verified post-swap composed plan — `None` when rejected.
    pub plan: Option<Arc<VerifiedPlan>>,
}

impl SwapOutcome {
    /// Whether the swap was certified.
    pub fn certified(&self) -> bool {
        self.plan.is_some()
    }
}

impl Admission {
    /// Whether the composition was certified.
    pub fn admitted(&self) -> bool {
        self.plan.is_some()
    }
}

/// The staged evaluation engine.
///
/// One `Pipeline` per process is the intended shape: its plan cache is
/// what lets seven suites × four machines × several experiments compile
/// each distinct configuration exactly once.
#[derive(Debug)]
pub struct Pipeline {
    spec: BenchConfig,
    workers: usize,
    plans: TieredStore<VerifiedPlan>,
    metrics: Metrics,
    telemetry: Option<Arc<Telemetry>>,
    analysis: Option<rap_analyze::AnalyzeOptions>,
    bounds: Option<rap_bound::BoundOptions>,
}

impl Pipeline {
    /// Creates a pipeline for one workload scale, with
    /// [`default_workers`] grid workers.
    pub fn new(spec: BenchConfig) -> Pipeline {
        Pipeline {
            spec,
            workers: default_workers(),
            plans: TieredStore::new(),
            metrics: Metrics::default(),
            telemetry: None,
            analysis: None,
            bounds: None,
        }
    }

    /// Overrides the grid worker count (floored at 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Pipeline {
        self.workers = workers.max(1);
        self
    }

    /// Attaches a persistent disk tier behind the in-memory plan cache:
    /// plans built in this process are written through to `config.dir`,
    /// and later processes sharing the directory load them back instead
    /// of compiling — a warm run of the full evaluation compiles nothing.
    ///
    /// Loaded plans are untrusted: they re-enter through the full
    /// [`crate::MappedPlan::verify`] path (with the Bound stage re-run
    /// when enabled), so a corrupt or tampered file is rejected, counted
    /// ([`TierStats::corrupt`]), and rebuilt from source.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the store directory cannot be created.
    pub fn with_store(mut self, config: StoreConfig) -> std::io::Result<Pipeline> {
        let tier = DiskTier::<VerifiedPlan>::open(config)?;
        self.plans = std::mem::take(&mut self.plans).with_disk(Box::new(tier));
        Ok(self)
    }

    /// Whether a persistent disk tier is attached.
    pub fn has_store(&self) -> bool {
        self.plans.has_disk()
    }

    /// Disk-tier counters, when a store is attached.
    pub fn store_stats(&self) -> Option<TierStats> {
        self.plans.disk_stats()
    }

    /// Attaches an observability context: per-stage spans and cache
    /// gauges land in its registry (instead of a pipeline-private one),
    /// and every evaluated cell emits a cycle-sampled trace labeled
    /// `{machine}/{suite}` into its journal. Telemetry only observes —
    /// results and plan cache keys are unchanged.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Pipeline {
        self.metrics = Metrics::on(telemetry.registry());
        self.telemetry = Some(telemetry);
        self
    }

    /// The attached observability context, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Enables the Analyze stage: every plan build runs the static
    /// analyzer between compile and map. With
    /// [`rap_analyze::AnalyzeOptions::prune`] the mapper then places the
    /// analyzer's *reduced* images (dead states removed, equivalent states
    /// merged — match semantics preserved). The options are part of the
    /// plan cache key, so analyzed and plain plans never collide.
    #[must_use]
    pub fn with_analysis(mut self, options: rap_analyze::AnalyzeOptions) -> Pipeline {
        self.analysis = Some(options);
        self
    }

    /// The Analyze stage configuration, if enabled.
    pub fn analysis(&self) -> Option<&rap_analyze::AnalyzeOptions> {
        self.analysis.as_ref()
    }

    /// Enables the Bound stage: every plan build runs the static
    /// worst-case bound analyzer after verification and attaches the
    /// result to the plan ([`VerifiedPlan::bounds`]). The options are part
    /// of the plan cache key, so bounded and plain plans never collide;
    /// per-plan totals land in the report
    /// ([`PipelineReport::arrays_bounded`]).
    #[must_use]
    pub fn with_bounds(mut self, options: rap_bound::BoundOptions) -> Pipeline {
        self.bounds = Some(options);
        self
    }

    /// The Bound stage configuration, if enabled.
    pub fn bounds(&self) -> Option<&rap_bound::BoundOptions> {
        self.bounds.as_ref()
    }

    /// The workload scale knobs.
    pub fn spec(&self) -> &BenchConfig {
        &self.spec
    }

    /// The grid worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Materializes (or recalls) a suite's corpus.
    pub fn corpus(&self, suite: Suite) -> Arc<SuiteCorpus> {
        self.metrics
            .timed(Stage::Generate, || {
                workload::suite_corpus(suite, &self.spec)
            })
            .0
    }

    /// Builds a simulator with a suite's DSE-chosen knobs for `machine`.
    pub fn simulator_for(&self, machine: Machine, suite: Suite) -> Simulator {
        Simulator::new(machine)
            .with_bv_depth(suite.chosen_bv_depth())
            .with_bin_size(suite.chosen_bin_size())
    }

    /// Returns the verified plan for `(patterns, machine, configs)`,
    /// compiling/mapping/verifying on a cache miss and recalling the
    /// shared artifact on a hit. With a disk store attached, a miss first
    /// probes the store: a disk hit re-verifies the loaded plan (and
    /// re-runs the Bound stage when enabled — bound analyses are derived,
    /// not persisted) instead of compiling.
    ///
    /// # Errors
    ///
    /// Propagates the first stage failure; failures are not cached.
    pub fn plan(
        &self,
        sim: &Simulator,
        patterns: &PatternSet,
        forced: Option<Mode>,
    ) -> Result<Arc<VerifiedPlan>, EvalError> {
        let mut key = patterns.cache_key(sim, forced);
        if let Some(options) = &self.analysis {
            key = crate::cache::analysis_key(key, options);
        }
        if let Some(options) = &self.bounds {
            key = crate::cache::bounds_key(key, options);
        }
        let rehydrate = |plan: Arc<VerifiedPlan>| match &self.bounds {
            Some(options) => {
                let plan = self.metrics.timed(Stage::Bound, || {
                    Arc::unwrap_or_clone(plan).bound(patterns.parsed(), options)
                });
                let bounds = plan.bounds().expect("bound stage attaches bounds");
                self.metrics
                    .record_bounds(bounds.arrays.len() as u64, bounds.total_peak_active());
                Arc::new(plan)
            }
            None => plan,
        };
        self.plans.get_or_build(key, rehydrate, || {
            let compiled = self
                .metrics
                .timed(Stage::Compile, || patterns.compile(sim, forced))?;
            self.metrics
                .add_compiled(patterns.len() as u64, compiled.state_count());
            let compiled = match &self.analysis {
                Some(options) => {
                    let analyzed = self.metrics.timed(Stage::Analyze, || {
                        compiled.analyze(
                            patterns.parsed(),
                            options,
                            self.telemetry.as_ref().map(|t| t.registry()),
                        )
                    });
                    self.metrics.add_pruned(analyzed.stats().pruned_states);
                    analyzed.into_compiled()
                }
                None => compiled,
            };
            let mapped = self.metrics.timed(Stage::Map, || compiled.map(sim));
            let plan = self.metrics.timed(Stage::Verify, || mapped.verify())?;
            match &self.bounds {
                Some(options) => {
                    let plan = self
                        .metrics
                        .timed(Stage::Bound, || plan.bound(patterns.parsed(), options));
                    let bounds = plan.bounds().expect("bound stage attaches bounds");
                    self.metrics
                        .record_bounds(bounds.arrays.len() as u64, bounds.total_peak_active());
                    Ok(plan)
                }
                None => Ok(plan),
            }
        })
    }

    /// Evaluates one (machine × suite) cell: plan (cached) + simulate.
    ///
    /// # Errors
    ///
    /// Propagates compile/verify failures as [`EvalError`]; the simulate
    /// stage itself is total.
    pub fn eval(
        &self,
        machine: Machine,
        suite: Suite,
        patterns: &PatternSet,
        input: &[u8],
        forced: Option<Mode>,
    ) -> Result<RunSummary, EvalError> {
        let label = format!("{machine}/{}", suite.name());
        self.eval_labeled(
            &self.simulator_for(machine, suite),
            patterns,
            input,
            forced,
            &label,
        )
    }

    /// Like [`Pipeline::eval`] but with explicit simulator knobs (the DSE
    /// sweeps of Fig. 10 vary BV depth / bin size away from the
    /// suite-chosen values). The knobs are part of the cache key, so each
    /// swept configuration is its own artifact.
    ///
    /// # Errors
    ///
    /// Propagates compile/verify failures as [`EvalError`].
    pub fn eval_with(
        &self,
        sim: &Simulator,
        patterns: &PatternSet,
        input: &[u8],
        forced: Option<Mode>,
    ) -> Result<RunSummary, EvalError> {
        let label = sim.machine.to_string();
        self.eval_labeled(sim, patterns, input, forced, &label)
    }

    /// Core cell evaluation with an explicit trace label (the label only
    /// matters when telemetry is attached; it names the run's trace in
    /// the JSONL journal, e.g. `"rap/snort"`).
    ///
    /// # Errors
    ///
    /// Propagates compile/verify failures as [`EvalError`].
    pub fn eval_labeled(
        &self,
        sim: &Simulator,
        patterns: &PatternSet,
        input: &[u8],
        forced: Option<Mode>,
        label: &str,
    ) -> Result<RunSummary, EvalError> {
        let plan = self.plan(sim, patterns, forced)?;
        let result = self
            .metrics
            .timed(Stage::Simulate, || match &self.telemetry {
                Some(tel) => plan.simulate_traced(input, tel, label),
                None => plan.simulate(input),
            });
        self.metrics.add_cell();
        Ok(RunSummary::of(&result, plan.compiled().state_count()))
    }

    /// Runs the multi-tenant admission analyzer over named tenants,
    /// each `(name, simulator knobs, patterns)`. Every tenant's solo
    /// plan is built (or recalled) through the ordinary cached plan
    /// path first, then [`rap_admit::admit`] decides co-residency under
    /// the fabric architecture of the *first* tenant's simulator. On
    /// certification the composed plan re-enters the typed chain
    /// (assemble → map-from-parts → verify) and is cached/persisted
    /// under an order-insensitive composition key, so re-admitting the
    /// same tenant set — in any order — recalls the artifact.
    ///
    /// # Errors
    ///
    /// Propagates per-tenant compile/verify failures, and verification
    /// failure of the composed plan itself (which would indicate an
    /// admission soundness bug).
    ///
    /// # Panics
    ///
    /// Panics when `tenants` is empty or mixes target machines.
    pub fn admit(
        &self,
        tenants: &[(&str, &Simulator, &PatternSet)],
        options: &rap_admit::AdmitOptions,
    ) -> Result<Admission, EvalError> {
        assert!(!tenants.is_empty(), "admission needs at least one tenant");
        let machine = tenants[0].1.machine;
        assert!(
            tenants.iter().all(|(_, sim, _)| sim.machine == machine),
            "admission tenants must target one machine"
        );
        let arch = tenants[0].1.mapper.arch;
        let mut plans = Vec::with_capacity(tenants.len());
        for (name, sim, patterns) in tenants {
            plans.push((*name, self.plan(sim, patterns, None)?, *patterns));
        }
        let views: Vec<rap_admit::Tenant<'_>> = plans
            .iter()
            .map(|(name, plan, patterns)| rap_admit::Tenant {
                name,
                images: plan.compiled().images(),
                patterns: patterns.parsed(),
                mapping: plan.mapping(),
                match_base: None,
                slot: None,
            })
            .collect();
        let analysis = self
            .metrics
            .timed(Stage::Admit, || rap_admit::admit(&views, &arch, options));
        self.metrics.record_admission(analysis.admitted());
        let plan = match &analysis.composed {
            Some(composed) => {
                let pairs: Vec<(&str, crate::cache::CacheKey)> = plans
                    .iter()
                    .map(|(name, plan, _)| (*name, plan.compiled().key()))
                    .collect();
                let key = crate::cache::compose_key(&pairs);
                Some(self.plans.get_or_build(
                    key,
                    |p| p,
                    || {
                        let compiled = CompiledSet::assemble(machine, key, composed.images.clone());
                        self.metrics.timed(Stage::Verify, || {
                            MappedPlan::from_parts(compiled, composed.mapping.clone()).verify()
                        })
                    },
                )?)
            }
            None => None,
        };
        Ok(Admission { analysis, plan })
    }

    /// Runs the hot-swap safety analyzer against a certified admission:
    /// replace resident tenant `outgoing` with the `incoming`
    /// `(name, simulator knobs, patterns)` tenant while everyone else
    /// keeps scanning. The replacement's solo plan is built (or
    /// recalled) through the ordinary cached plan path, then
    /// [`rap_swap::analyze_swap`] issues or refuses the certificate. On
    /// certification the spliced post-swap composition re-enters the
    /// typed chain (assemble → map-from-parts → verify) and is
    /// cached/persisted under a swap-specific key derived from the
    /// resident composition's key and the replacement's.
    ///
    /// # Errors
    ///
    /// Propagates the replacement's compile/verify failures, and
    /// verification failure of the spliced plan itself (which would
    /// indicate a swap-analyzer soundness bug).
    ///
    /// # Panics
    ///
    /// Panics when `admission` was not certified.
    pub fn swap(
        &self,
        admission: &Admission,
        outgoing: &str,
        incoming: (&str, &Simulator, &PatternSet),
        options: &rap_swap::SwapOptions,
    ) -> Result<SwapOutcome, EvalError> {
        let resident = admission
            .analysis
            .composed
            .as_ref()
            .expect("hot swap requires a certified admission");
        let resident_plan = admission
            .plan
            .as_ref()
            .expect("certified admissions carry a composed plan");
        let (name, sim, patterns) = incoming;
        let solo = self.plan(sim, patterns, None)?;
        let tenant = rap_swap::Tenant {
            name,
            images: solo.compiled().images(),
            patterns: patterns.parsed(),
            mapping: solo.mapping(),
            match_base: None,
            slot: None,
        };
        let arch = resident.mapping.config.arch;
        let analysis = self.metrics.timed(Stage::Swap, || {
            rap_swap::analyze_swap(resident, outgoing, &tenant, &arch, options)
        });
        self.metrics.record_swap(analysis.certified());
        let plan = match &analysis.plan {
            Some(cert) => {
                let key = crate::cache::swap_key(
                    resident_plan.compiled().key(),
                    outgoing,
                    name,
                    solo.compiled().key(),
                );
                Some(self.plans.get_or_build(
                    key,
                    |p| p,
                    || {
                        let compiled =
                            CompiledSet::assemble(sim.machine, key, cert.composed.images.clone());
                        self.metrics.timed(Stage::Verify, || {
                            MappedPlan::from_parts(compiled, cert.composed.mapping.clone()).verify()
                        })
                    },
                )?)
            }
            None => None,
        };
        Ok(SwapOutcome { analysis, plan })
    }

    /// Fans independent grid cells out over this pipeline's worker pool,
    /// recording worker count and fan-out wall-clock in the report.
    pub fn grid<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let workers = self.workers.clamp(1, items.len().max(1));
        let start = Instant::now();
        let out = par_map(items, workers, f);
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.metrics.record_grid(workers as u64, ns);
        out
    }

    /// Snapshots the instrumentation accumulated so far.
    pub fn report(&self) -> PipelineReport {
        self.metrics.snapshot(
            self.plans.stats(),
            self.plans.disk_stats(),
            workload::corpus_stats(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..97).collect::<Vec<i64>>(), 5, |x| x * 2);
        assert_eq!(out, (0..97).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_single_worker_and_empty() {
        assert_eq!(par_map(vec![3, 4], 1, |x| x + 1), vec![4, 5]);
        assert_eq!(par_map(Vec::<u8>::new(), 8, |x| x), Vec::<u8>::new());
    }

    #[test]
    fn plan_cache_hits_on_second_request() {
        let pipe = Pipeline::new(BenchConfig {
            patterns_per_suite: 4,
            input_len: 256,
            match_rate: 0.02,
            seed: 3,
        });
        let corpus = pipe.corpus(Suite::Snort);
        let sim = pipe.simulator_for(Machine::Rap, Suite::Snort);
        let a = pipe.plan(&sim, corpus.patterns(), None).expect("plans");
        let b = pipe.plan(&sim, corpus.patterns(), None).expect("plans");
        assert!(Arc::ptr_eq(&a, &b));
        let report = pipe.report();
        assert_eq!(report.plan_cache.misses, 1);
        assert_eq!(report.plan_cache.hits, 1);
        assert!(report.stage_secs(Stage::Compile) > 0.0);
    }

    #[test]
    fn telemetry_observes_without_changing_results() {
        let spec = BenchConfig {
            patterns_per_suite: 4,
            input_len: 512,
            match_rate: 0.02,
            seed: 9,
        };
        let tel = Arc::new(Telemetry::default());
        let traced_pipe = Pipeline::new(spec).with_telemetry(Arc::clone(&tel));
        let corpus = traced_pipe.corpus(Suite::Snort);
        let traced = traced_pipe
            .eval(
                Machine::Rap,
                Suite::Snort,
                corpus.patterns(),
                corpus.input(),
                None,
            )
            .expect("evals");

        let plain_pipe = Pipeline::new(spec);
        let corpus = plain_pipe.corpus(Suite::Snort);
        let plain = plain_pipe
            .eval(
                Machine::Rap,
                Suite::Snort,
                corpus.patterns(),
                corpus.input(),
                None,
            )
            .expect("evals");
        assert_eq!(traced, plain, "telemetry must only observe");

        let traces = tel.drain_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].label, "RAP/Snort");
        assert!(traces[0]
            .events
            .iter()
            .any(|e| matches!(e, rap_telemetry::ProbeEvent::RunEnd { .. })));
        let prom = tel.prometheus();
        assert!(prom.contains("rap_pipeline_stage_ns"), "{prom}");
        assert!(prom.contains("rap_sim_runs_total"), "{prom}");
    }

    #[test]
    fn analyze_stage_prunes_without_changing_matches() {
        // Force-NFA (the CA baseline) on a union-heavy suite: the Glushkov
        // automata of `(lit|lit)` fragments are full of left/right
        // equivalent states, so pruning must fire.
        // Shared literals across union alternatives are random collisions
        // (~1/26 per candidate), so a bench-scale corpus is needed for the
        // merge passes to fire; 120 patterns at this seed merge 5 states.
        let spec = BenchConfig {
            patterns_per_suite: 120,
            input_len: 2_000,
            match_rate: 0.02,
            seed: 42,
        };
        let plain_pipe = Pipeline::new(spec);
        let corpus = plain_pipe.corpus(Suite::RegexLib);
        let sim = plain_pipe.simulator_for(Machine::Ca, Suite::RegexLib);
        let plain = plain_pipe
            .eval_with(&sim, corpus.patterns(), corpus.input(), Some(Mode::Nfa))
            .expect("evals");

        let pruned_pipe = Pipeline::new(spec)
            .with_analysis(rap_analyze::AnalyzeOptions::report_only().with_prune());
        let corpus = pruned_pipe.corpus(Suite::RegexLib);
        let sim = pruned_pipe.simulator_for(Machine::Ca, Suite::RegexLib);
        let pruned = pruned_pipe
            .eval_with(&sim, corpus.patterns(), corpus.input(), Some(Mode::Nfa))
            .expect("evals");

        // Same matches, fewer placed states — and the reduction is
        // visible in the report counter.
        assert_eq!(pruned.matches, plain.matches);
        assert!(
            pruned.states < plain.states,
            "pruned {} vs plain {}",
            pruned.states,
            plain.states
        );
        let report = pruned_pipe.report();
        assert!(report.states_pruned > 0, "{report}");
        assert!(report.stage_secs(Stage::Analyze) > 0.0);
        assert_eq!(plain_pipe.report().states_pruned, 0);
    }

    #[test]
    fn bound_stage_attaches_bounds_and_reports() {
        let spec = BenchConfig {
            patterns_per_suite: 6,
            input_len: 256,
            match_rate: 0.02,
            seed: 3,
        };
        let pipe = Pipeline::new(spec).with_bounds(rap_bound::BoundOptions::bounds_only());
        let corpus = pipe.corpus(Suite::Snort);
        let sim = pipe.simulator_for(Machine::Rap, Suite::Snort);
        let plan = pipe.plan(&sim, corpus.patterns(), None).expect("plans");
        let bounds = plan.bounds().expect("bound stage ran");
        assert_eq!(bounds.arrays.len(), plan.mapping().arrays.len());
        let report = pipe.report();
        assert_eq!(report.arrays_bounded, bounds.arrays.len() as u64);
        assert_eq!(report.peak_active_bound, bounds.total_peak_active());
        assert!(report.stage_secs(Stage::Bound) > 0.0);

        // A pipeline without the stage must not collide in the cache.
        let plain = Pipeline::new(spec);
        let corpus = plain.corpus(Suite::Snort);
        let plan = plain.plan(&sim, corpus.patterns(), None).expect("plans");
        assert!(plan.bounds().is_none());
        let base = corpus.patterns().cache_key(&sim, None);
        assert_ne!(
            base,
            crate::cache::bounds_key(base, &rap_bound::BoundOptions::bounds_only())
        );
    }

    #[test]
    fn analysis_options_are_part_of_the_cache_key() {
        let spec = BenchConfig {
            patterns_per_suite: 4,
            input_len: 256,
            match_rate: 0.02,
            seed: 3,
        };
        let pipe = Pipeline::new(spec);
        let corpus = pipe.corpus(Suite::Snort);
        let sim = pipe.simulator_for(Machine::Rap, Suite::Snort);
        let base = corpus.patterns().cache_key(&sim, None);
        let with_prune = crate::cache::analysis_key(
            base,
            &rap_analyze::AnalyzeOptions::report_only().with_prune(),
        );
        let without = crate::cache::analysis_key(base, &rap_analyze::AnalyzeOptions::report_only());
        assert_ne!(base, with_prune);
        assert_ne!(with_prune, without);
    }

    #[test]
    fn warm_pipeline_loads_plans_from_disk_without_compiling() {
        let dir = std::env::temp_dir().join(format!(
            "rap-pipe-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = BenchConfig {
            patterns_per_suite: 4,
            input_len: 256,
            match_rate: 0.02,
            seed: 3,
        };

        // Cold: compiles and writes through to disk.
        let cold = Pipeline::new(spec)
            .with_store(StoreConfig::at(&dir))
            .expect("store opens");
        let corpus = cold.corpus(Suite::Snort);
        let sim = cold.simulator_for(Machine::Rap, Suite::Snort);
        let cold_plan = cold.plan(&sim, corpus.patterns(), None).expect("plans");
        let report = cold.report();
        assert_eq!(report.patterns_compiled, 4);
        let disk = report.disk_store.expect("disk tier attached");
        assert_eq!((disk.hits, disk.misses, disk.writes), (0, 1, 1));

        // Warm (fresh pipeline = fresh process-alike): loads from disk,
        // re-verifies, compiles nothing.
        let warm = Pipeline::new(spec)
            .with_store(StoreConfig::at(&dir))
            .expect("store opens");
        let warm_plan = warm.plan(&sim, corpus.patterns(), None).expect("plans");
        let report = warm.report();
        assert_eq!(report.patterns_compiled, 0, "warm run must not compile");
        assert_eq!(report.stage_secs(Stage::Compile), 0.0);
        let disk = report.disk_store.expect("disk tier attached");
        assert_eq!((disk.hits, disk.misses, disk.corrupt), (1, 0, 0));
        // The loaded plan is behaviourally identical to the built one.
        assert_eq!(
            warm_plan.compiled().state_count(),
            cold_plan.compiled().state_count()
        );
        let input = corpus.input();
        assert_eq!(
            warm_plan.simulate(input).matches,
            cold_plan.simulate(input).matches
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_hit_reruns_bound_stage_when_enabled() {
        let dir = std::env::temp_dir().join(format!(
            "rap-pipe-store-bound-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = BenchConfig {
            patterns_per_suite: 4,
            input_len: 256,
            match_rate: 0.02,
            seed: 3,
        };
        let make = || {
            Pipeline::new(spec)
                .with_bounds(rap_bound::BoundOptions::bounds_only())
                .with_store(StoreConfig::at(&dir))
                .expect("store opens")
        };

        let cold = make();
        let corpus = cold.corpus(Suite::Snort);
        let sim = cold.simulator_for(Machine::Rap, Suite::Snort);
        cold.plan(&sim, corpus.patterns(), None).expect("plans");

        // Bound analyses are derived, not persisted: a disk hit must
        // re-attach them by re-running the Bound stage.
        let warm = make();
        let plan = warm.plan(&sim, corpus.patterns(), None).expect("plans");
        assert!(plan.bounds().is_some(), "bounds re-attached on disk hit");
        let report = warm.report();
        assert_eq!(report.patterns_compiled, 0);
        assert!(report.arrays_bounded > 0);
        assert!(report.stage_secs(Stage::Bound) > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_certifies_and_caches_composed_plans() {
        let pipe = Pipeline::new(BenchConfig {
            patterns_per_suite: 4,
            input_len: 512,
            match_rate: 0.02,
            seed: 5,
        });
        let snort = pipe.corpus(Suite::Snort);
        let yara = pipe.corpus(Suite::Yara);
        let sim = pipe.simulator_for(Machine::Rap, Suite::Snort);
        let tenants = [
            ("snort", &sim, snort.patterns()),
            ("yara", &sim, yara.patterns()),
        ];
        let first = pipe
            .admit(&tenants, &rap_admit::AdmitOptions::default())
            .expect("admits");
        assert!(first.admitted(), "{}", first.analysis.report);
        let plan = first.plan.as_ref().expect("certified plan");
        assert_eq!(
            plan.mapping().arrays.len(),
            first.analysis.total_arrays as usize
        );

        // Re-admitting the same tenants in the other order recalls the
        // composed artifact from the plan cache (order-insensitive key).
        let misses = pipe.report().plan_cache.misses;
        let swapped = [tenants[1], tenants[0]];
        let second = pipe
            .admit(&swapped, &rap_admit::AdmitOptions::default())
            .expect("admits");
        assert!(Arc::ptr_eq(plan, second.plan.as_ref().expect("cached")));
        assert_eq!(pipe.report().plan_cache.misses, misses);
        let report = pipe.report();
        assert_eq!(report.compositions_admitted, 2);
        assert_eq!(report.compositions_rejected, 0);
        assert!(report.stage_secs(Stage::Admit) > 0.0);

        // The composed run demultiplexes back to each tenant's solo run.
        let input = snort.input();
        let composed = first.analysis.composed.as_ref().expect("certified");
        let merged = plan.simulate(input);
        for (i, (name, sim, patterns)) in tenants.iter().enumerate() {
            let solo = pipe.plan(sim, patterns, None).expect("plans");
            let solo_run = solo.simulate(input);
            let mine = composed.tenant_matches(
                composed
                    .tenants
                    .iter()
                    .position(|t| t.name == *name)
                    .expect("tenant present"),
                &merged.matches,
            );
            assert_eq!(mine, solo_run.matches, "tenant {i} diverges");
        }
    }

    #[test]
    fn rejected_admission_reports_without_a_plan() {
        let pipe = Pipeline::new(BenchConfig {
            patterns_per_suite: 4,
            input_len: 256,
            match_rate: 0.02,
            seed: 5,
        });
        let sim = pipe.simulator_for(Machine::Rap, Suite::Snort);
        let corpora: Vec<_> = [Suite::Snort, Suite::Yara, Suite::ClamAv, Suite::Prosite]
            .iter()
            .map(|&s| pipe.corpus(s))
            .collect();
        let tenants: Vec<(&str, &Simulator, &PatternSet)> = corpora
            .iter()
            .map(|c| (c.suite().name(), &sim, c.patterns()))
            .collect();
        // One bank cannot host four tenants' arrays.
        let options = rap_admit::AdmitOptions {
            banks: Some(1),
            ..rap_admit::AdmitOptions::default()
        };
        let rejected = pipe.admit(&tenants, &options).expect("analyzes");
        assert!(!rejected.admitted());
        assert!(rejected.plan.is_none());
        assert!(!rejected.analysis.report.is_legal());
        let report = pipe.report();
        assert_eq!(report.compositions_rejected, 1);
    }

    #[test]
    fn composed_plans_persist_and_reload_from_the_store() {
        let dir = std::env::temp_dir().join(format!(
            "rap-pipe-store-admit-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = BenchConfig {
            patterns_per_suite: 4,
            input_len: 256,
            match_rate: 0.02,
            seed: 5,
        };
        let make = || {
            Pipeline::new(spec)
                .with_store(StoreConfig::at(&dir))
                .expect("store opens")
        };

        let cold = make();
        let snort = cold.corpus(Suite::Snort);
        let yara = cold.corpus(Suite::Yara);
        let sim = cold.simulator_for(Machine::Rap, Suite::Snort);
        let tenants = [
            ("snort", &sim, snort.patterns()),
            ("yara", &sim, yara.patterns()),
        ];
        let first = cold
            .admit(&tenants, &rap_admit::AdmitOptions::default())
            .expect("admits");
        assert!(first.admitted());
        // Two solo plans + one composed plan written through.
        assert_eq!(cold.report().disk_store.expect("disk").writes, 3);

        // A warm pipeline recalls all three; the composed plan still
        // re-enters through verification.
        let warm = make();
        let second = warm
            .admit(&tenants, &rap_admit::AdmitOptions::default())
            .expect("admits");
        assert!(second.admitted());
        let report = warm.report();
        assert_eq!(
            report.patterns_compiled, 0,
            "warm admission compiles nothing"
        );
        let disk = report.disk_store.expect("disk");
        assert_eq!((disk.hits, disk.misses, disk.corrupt), (3, 0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn certified_swap_builds_a_verified_post_swap_plan() {
        let pipe = Pipeline::new(BenchConfig::default());
        let sim = pipe.simulator_for(Machine::Rap, Suite::Snort);
        let alpha =
            PatternSet::parse(&["needle".to_string(), "ne+dle".to_string()]).expect("parses");
        let bravo = PatternSet::parse(&["haystack".to_string()]).expect("parses");
        let tenants: Vec<(&str, &Simulator, &PatternSet)> =
            vec![("alpha", &sim, &alpha), ("bravo", &sim, &bravo)];
        let admission = pipe
            .admit(&tenants, &rap_admit::AdmitOptions::default())
            .expect("admits");
        assert!(admission.admitted());

        let charlie = PatternSet::parse(&["beacon".to_string()]).expect("parses");
        let outcome = pipe
            .swap(
                &admission,
                "bravo",
                ("charlie", &sim, &charlie),
                &rap_swap::SwapOptions::default(),
            )
            .expect("analyzes");
        assert!(outcome.certified(), "{}", outcome.analysis.report);
        let plan = outcome.plan.as_ref().expect("certified");
        let cert = outcome.analysis.plan.as_ref().expect("certified");
        assert!(cert.drain.cycles > 0);
        // The cached artifact is the spliced composition, verified.
        assert_eq!(plan.compiled().images().len(), cert.composed.images.len());
        let report = pipe.report();
        assert_eq!(report.swaps_certified, 1);
        assert!(report.stage_secs(Stage::Swap) > 0.0);

        // A rejected swap (unbounded replacement footprint on a pinned
        // one-bank fabric) reports without a plan.
        let big_sources: Vec<String> = (0..64).map(|i| format!("pattern{i:03}xyz")).collect();
        let big = PatternSet::parse(&big_sources).expect("parses");
        let rejected = pipe
            .swap(
                &admission,
                "bravo",
                ("delta", &sim, &big),
                &rap_swap::SwapOptions {
                    banks: Some(1),
                    ..rap_swap::SwapOptions::default()
                },
            )
            .expect("analyzes");
        if !rejected.certified() {
            assert!(rejected.plan.is_none());
            assert!(!rejected.analysis.report.is_legal());
            assert_eq!(pipe.report().swaps_rejected, 1);
        }
    }

    #[test]
    fn eval_produces_sane_summary() {
        let pipe = Pipeline::new(BenchConfig {
            patterns_per_suite: 6,
            input_len: 1_000,
            match_rate: 0.02,
            seed: 11,
        });
        let corpus = pipe.corpus(Suite::Yara);
        let s = pipe
            .eval(
                Machine::Rap,
                Suite::Yara,
                corpus.patterns(),
                corpus.input(),
                None,
            )
            .expect("evals");
        assert!(s.energy_uj > 0.0);
        assert!(s.states > 0);
        assert_eq!(pipe.report().cells_evaluated, 1);
    }
}
