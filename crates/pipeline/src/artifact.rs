//! Typed stage artifacts.
//!
//! The end-to-end flow is a chain of owning types, one per stage:
//!
//! ```text
//! PatternSet --compile--> CompiledSet --map--> MappedPlan --verify--> VerifiedPlan --simulate--> RunResult
//! ```
//!
//! Each transition consumes the previous artifact (or borrows it
//! immutably), so illegal stage orderings are unrepresentable at the type
//! level: [`VerifiedPlan::simulate`] is the *only* road to a
//! [`rap_sim::RunResult`], and a [`VerifiedPlan`] can only be obtained
//! through [`MappedPlan::verify`], which refuses hardware-illegal plans.

use crate::cache::{hash_configs, CacheKey, StableHasher};
use crate::error::EvalError;
use crate::store::{Persist, PersistError};
use rap_circuit::Machine;
use rap_compiler::{Compiled, Mode};
use rap_mapper::Mapping;
use rap_regex::{Pattern, Regex};
use rap_sim::{BankStats, RunResult, SimError, Simulator};
use serde::{Deserialize, Serialize};

/// Stage 1 artifact: a parse-validated pattern set with its source text.
///
/// Keeping the sources alongside the parsed forms gives every later stage
/// a stable content identity to hash (regex ASTs have no guaranteed
/// canonical byte form; their source text does).
#[derive(Clone, Debug)]
pub struct PatternSet {
    sources: Vec<String>,
    parsed: Vec<Pattern>,
}

impl PatternSet {
    /// Parses pattern strings, honouring `^`/`$` anchors.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Parse`] for the first malformed pattern.
    pub fn parse(sources: &[String]) -> Result<PatternSet, EvalError> {
        let parsed = sources
            .iter()
            .enumerate()
            .map(|(i, s)| {
                rap_regex::parse_pattern(s).map_err(|error| EvalError::Parse { pattern: i, error })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PatternSet {
            sources: sources.to_vec(),
            parsed,
        })
    }

    /// Wraps already-parsed patterns (e.g. the CLI's front-end output).
    ///
    /// # Panics
    ///
    /// Panics if `sources` and `parsed` differ in length.
    pub fn from_parsed(sources: Vec<String>, parsed: Vec<Pattern>) -> PatternSet {
        assert_eq!(sources.len(), parsed.len(), "source/parsed length mismatch");
        PatternSet { sources, parsed }
    }

    /// Wraps bare regexes as unanchored patterns, recovering source text
    /// from their canonical rendering.
    pub fn from_regexes(regexes: &[Regex]) -> PatternSet {
        PatternSet {
            sources: regexes.iter().map(|r| r.to_string()).collect(),
            parsed: regexes
                .iter()
                .map(|r| Pattern {
                    regex: r.clone(),
                    anchored_start: false,
                    anchored_end: false,
                })
                .collect(),
        }
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.parsed.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.parsed.is_empty()
    }

    /// The original pattern strings.
    pub fn sources(&self) -> &[String] {
        &self.sources
    }

    /// The parsed patterns.
    pub fn parsed(&self) -> &[Pattern] {
        &self.parsed
    }

    /// The bare regexes (anchors stripped), cloned.
    pub fn regexes(&self) -> Vec<Regex> {
        self.parsed.iter().map(|p| p.regex.clone()).collect()
    }

    /// Absorbs the set's content identity (sources + anchor flags).
    pub fn hash_into(&self, h: &mut StableHasher) {
        h.write_u64(self.sources.len() as u64);
        for (src, p) in self.sources.iter().zip(&self.parsed) {
            h.write_str(src);
            h.write(&[u8::from(p.anchored_start), u8::from(p.anchored_end)]);
        }
    }

    /// The content address a compile of this set would have for the given
    /// simulator and forced mode.
    pub fn cache_key(&self, sim: &Simulator, forced: Option<Mode>) -> CacheKey {
        let mut h = StableHasher::new();
        self.hash_into(&mut h);
        h.write_str(sim.machine.name());
        match forced {
            None => h.write(&[0]),
            Some(mode) => {
                h.write(&[1]);
                h.write_str(&mode.to_string());
            }
        }
        hash_configs(&mut h, &sim.compiler, &sim.mapper);
        h.finish()
    }

    /// Stage transition: compiles the set for `sim`'s machine.
    ///
    /// `forced` compiles every pattern in one mode (the RAP-NFA columns of
    /// Tables 2/3); `None` uses the machine's native mode decision and
    /// honours anchors.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Compile`] for the first failing pattern.
    pub fn compile(&self, sim: &Simulator, forced: Option<Mode>) -> Result<CompiledSet, EvalError> {
        let images = match forced {
            Some(mode) => sim.compile_forced(&self.regexes(), mode),
            None => sim.compile_parsed(&self.parsed),
        }
        .map_err(|e| EvalError::from_sim(sim.machine, e))?;
        Ok(CompiledSet {
            machine: sim.machine,
            forced,
            key: self.cache_key(sim, forced),
            images,
        })
    }
}

/// Stage 2 artifact: hardware images for one machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompiledSet {
    machine: Machine,
    forced: Option<Mode>,
    key: CacheKey,
    images: Vec<Compiled>,
}

impl CompiledSet {
    /// Assembles a compile product from already-compiled images under an
    /// externally derived content address. This is the composition path's
    /// re-entry into the typed chain: the pipeline's Admit stage merges
    /// tenant images under a `compose_key` and the merged plan must still
    /// earn [`VerifiedPlan`] status through [`MappedPlan::verify`].
    pub(crate) fn assemble(machine: Machine, key: CacheKey, images: Vec<Compiled>) -> CompiledSet {
        CompiledSet {
            machine,
            forced: None,
            key,
            images,
        }
    }

    /// The machine the images target.
    pub fn machine(&self) -> Machine {
        self.machine
    }

    /// The forced mode, if compilation bypassed the decision graph.
    pub fn forced(&self) -> Option<Mode> {
        self.forced
    }

    /// The content address of this compile product.
    pub fn key(&self) -> CacheKey {
        self.key
    }

    /// The per-pattern hardware images.
    pub fn images(&self) -> &[Compiled] {
        &self.images
    }

    /// Total hardware states (STEs / chain positions) across images.
    pub fn state_count(&self) -> u64 {
        self.images.iter().map(Compiled::state_count).sum()
    }

    /// Total CAM columns across images.
    pub fn column_count(&self) -> u64 {
        self.images.iter().map(Compiled::column_count).sum()
    }

    /// Stage transition: places the images onto arrays.
    pub fn map(self, sim: &Simulator) -> MappedPlan {
        let mapping = sim.map(&self.images);
        MappedPlan {
            compiled: self,
            mapping,
        }
    }

    /// Stage transition: runs the static analyzer over the images.
    ///
    /// `patterns` provides each image's source pattern for the optional
    /// soundness check (same indexing as the images; pass `&[]` when that
    /// pass is off). With [`rap_analyze::AnalyzeOptions::prune`] the
    /// returned set carries the *pruned* images — dead states removed,
    /// equivalent states merged — and a correspondingly re-derived cache
    /// key, so pruned and unpruned plans never collide in the plan cache.
    ///
    /// Analyzer findings are advisory at the pipeline level (the mapping
    /// verifier still gates simulation); `rap analyze` is the surface that
    /// turns Error-severity findings into a failing exit.
    pub fn analyze(
        self,
        patterns: &[Pattern],
        options: &rap_analyze::AnalyzeOptions,
        registry: Option<&rap_telemetry::Registry>,
    ) -> AnalyzedSet {
        let analysis =
            rap_analyze::analyze_with_registry(&self.images, patterns, options, registry);
        AnalyzedSet {
            compiled: CompiledSet {
                machine: self.machine,
                forced: self.forced,
                key: crate::cache::analysis_key(self.key, options),
                images: analysis.images,
            },
            report: analysis.report,
            stats: analysis.stats,
        }
    }
}

/// Stage 2½ artifact: analyzed (and, in prune mode, rewritten) images plus
/// the analyzer's findings. Obtained through [`CompiledSet::analyze`];
/// mapping an `AnalyzedSet` places the analyzer's output images.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnalyzedSet {
    compiled: CompiledSet,
    report: rap_analyze::Report,
    stats: rap_analyze::AnalyzeStats,
}

impl AnalyzedSet {
    /// The (possibly pruned) compile product.
    pub fn compiled(&self) -> &CompiledSet {
        &self.compiled
    }

    /// The analyzer's findings.
    pub fn report(&self) -> &rap_analyze::Report {
        &self.report
    }

    /// The analyzer's aggregate counters (state reductions live here).
    pub fn stats(&self) -> &rap_analyze::AnalyzeStats {
        &self.stats
    }

    /// Unwraps to the compile product, dropping the findings.
    pub fn into_compiled(self) -> CompiledSet {
        self.compiled
    }

    /// Stage transition: places the analyzed images onto arrays.
    pub fn map(self, sim: &Simulator) -> MappedPlan {
        self.compiled.map(sim)
    }
}

/// Stage 3 artifact: images plus their array placement — *not yet checked
/// for hardware legality*, so it cannot be simulated.
///
/// `MappedPlan` is the wire artifact of the persistent store: a plan read
/// back from disk deserializes into this *unverified* shape and must earn
/// back its [`VerifiedPlan`] status through [`MappedPlan::verify`], so a
/// corrupt or tampered payload is rejected by the V-rules, never trusted.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MappedPlan {
    compiled: CompiledSet,
    mapping: Mapping,
}

impl MappedPlan {
    /// Assembles a plan from an externally produced placement (a loaded,
    /// hand-edited, or otherwise untrusted mapping) so it can be linted
    /// like any mapper output. No legality is assumed: the result still
    /// has to pass [`MappedPlan::verify`] before it can be simulated.
    pub fn from_parts(compiled: CompiledSet, mapping: Mapping) -> MappedPlan {
        MappedPlan { compiled, mapping }
    }

    /// The compile product this plan places.
    pub fn compiled(&self) -> &CompiledSet {
        &self.compiled
    }

    /// The array placement.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Runs every static legality rule, returning the full report
    /// (including non-fatal advisories) without consuming the plan.
    pub fn lint(&self) -> rap_verify::Report {
        rap_verify::verify(
            &self.compiled.images,
            &self.mapping,
            &self.mapping.config.arch,
        )
    }

    /// Stage transition: verifies legality, yielding the only artifact the
    /// simulator accepts.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::IllegalMapping`] when any rule reports an
    /// error; warnings and infos are retained as
    /// [`VerifiedPlan::advisories`].
    pub fn verify(self) -> Result<VerifiedPlan, EvalError> {
        let report = self.lint();
        if report.is_legal() {
            Ok(VerifiedPlan {
                compiled: self.compiled,
                mapping: self.mapping,
                advisories: report,
                bounds: None,
            })
        } else {
            Err(EvalError::IllegalMapping {
                machine: self.compiled.machine,
                report,
            })
        }
    }
}

/// Stage 4 artifact: a plan that passed every legality rule.
///
/// There is no public constructor — the only way to obtain one is
/// [`MappedPlan::verify`] — so holding a `VerifiedPlan` *is* the proof
/// that the plan is hardware-legal.
#[derive(Clone, Debug)]
pub struct VerifiedPlan {
    compiled: CompiledSet,
    mapping: Mapping,
    advisories: rap_verify::Report,
    bounds: Option<rap_bound::BoundAnalysis>,
}

impl VerifiedPlan {
    /// The compile product this plan places.
    pub fn compiled(&self) -> &CompiledSet {
        &self.compiled
    }

    /// The array placement.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Non-fatal findings (warnings/infos) from verification.
    pub fn advisories(&self) -> &rap_verify::Report {
        &self.advisories
    }

    /// Stage transition (opt-in): runs the static worst-case bound
    /// analyzer over the plan and attaches its result, retrievable through
    /// [`VerifiedPlan::bounds`]. `patterns` provides each image's source
    /// for the optional B008 equivalence verdicts (same indexing as the
    /// images; `&[]` is fine when that check is off).
    #[must_use]
    pub fn bound(
        mut self,
        patterns: &[Pattern],
        options: &rap_bound::BoundOptions,
    ) -> VerifiedPlan {
        self.bounds = Some(rap_bound::analyze_bounds(
            &self.compiled.images,
            patterns,
            &self.mapping,
            options,
        ));
        self
    }

    /// The attached worst-case bound analysis, when the Bound stage ran.
    pub fn bounds(&self) -> Option<&rap_bound::BoundAnalysis> {
        self.bounds.as_ref()
    }

    /// Stage transition: runs the cycle-accurate simulator over `input`.
    pub fn simulate(&self, input: &[u8]) -> RunResult {
        rap_sim::simulate(
            &self.compiled.images,
            &self.mapping,
            input,
            self.compiled.machine,
        )
    }

    /// Like [`VerifiedPlan::simulate`], with cycle-sampled probe events
    /// and run totals recorded into `telemetry` under `label`. Tracing
    /// only observes; the result is identical to [`VerifiedPlan::simulate`].
    pub fn simulate_traced(
        &self,
        input: &[u8],
        telemetry: &rap_telemetry::Telemetry,
        label: &str,
    ) -> RunResult {
        rap_sim::simulate_traced(
            &self.compiled.images,
            &self.mapping,
            input,
            self.compiled.machine,
            telemetry,
            label,
        )
    }

    /// Like [`VerifiedPlan::simulate`], but through the §3.3 bank buffer
    /// hierarchy, returning buffer statistics alongside the result.
    pub fn simulate_streaming(&self, input: &[u8]) -> (RunResult, BankStats) {
        rap_sim::simulate_streaming(
            &self.compiled.images,
            &self.mapping,
            input,
            self.compiled.machine,
        )
    }
}

/// Disk-tier persistence for verified plans.
///
/// Only the durable state — the compile product and its placement — is
/// encoded; verification advisories and bound analyses are *recomputed*
/// on load rather than trusted from disk. `from_payload` therefore
/// decodes into the unverified [`MappedPlan`] shape and re-runs the full
/// V-rule verifier: a payload that decodes but describes an illegal plan
/// (stale encoding, bit rot the checksum missed, deliberate tampering) is
/// rejected here and the store counts it as corrupt.
impl Persist for VerifiedPlan {
    fn to_payload(&self) -> Vec<u8> {
        let mut e = serde::bin::Encoder::new();
        self.compiled.serialize(&mut e);
        self.mapping.serialize(&mut e);
        e.into_bytes()
    }

    fn from_payload(payload: &[u8]) -> Result<VerifiedPlan, PersistError> {
        let mut d = serde::bin::Decoder::new(payload);
        let compiled = CompiledSet::deserialize(&mut d)?;
        let mapping = Mapping::deserialize(&mut d)?;
        d.finish()?;
        MappedPlan::from_parts(compiled, mapping)
            .verify()
            .map_err(|e| PersistError::Rejected(e.to_string()))
    }
}

/// Runs the full typed chain for one simulator: compile → map → verify.
///
/// # Errors
///
/// Propagates the first stage failure as [`EvalError`].
pub fn build_plan(
    sim: &Simulator,
    patterns: &PatternSet,
    forced: Option<Mode>,
) -> Result<VerifiedPlan, EvalError> {
    patterns.compile(sim, forced)?.map(sim).verify()
}

/// Lifts a [`SimError`]-returning front-end into the typed chain (used by
/// the facade, which keeps [`SimError`] as its public error type).
///
/// # Errors
///
/// Returns the underlying [`SimError`], with illegal plans surfaced as
/// [`SimError::IllegalMapping`].
pub fn build_plan_sim(sim: &Simulator, patterns: &PatternSet) -> Result<VerifiedPlan, SimError> {
    build_plan(sim, patterns, None).map_err(SimError::from)
}
