//! Tiered, persistent, content-addressed artifact store.
//!
//! The plan cache used to be a single in-memory map that died with the
//! process; this module generalizes it into an [`ArtifactTier`] stack:
//!
//! - [`MemoryTier`] — the existing two-level map (outer key → per-key
//!   build cell, inner cell lock serializing construction), unchanged in
//!   behaviour: racing workers on one key build exactly once.
//! - [`DiskTier`] — a content-addressed directory of files named by
//!   [`CacheKey`] (`<032x-key>.rap`), each carrying a versioned header
//!   and an FNV-1a/128 payload checksum ([`DiskStore`] is the raw
//!   bytes-level store underneath).
//!
//! [`TieredStore`] chains them: memory hit → disk hit → build, with
//! write-through on build and memory backfill on a disk hit.
//!
//! # Trust model
//!
//! A disk artifact is *never* trusted. [`Persist::from_payload`] for
//! verified plans decodes into the unverified [`MappedPlan`] shape via
//! `MappedPlan::from_parts` and re-earns `VerifiedPlan` status through
//! the full V-rule verifier, so a corrupted, stale, or tampered payload
//! is rejected (and counted in [`TierStats::corrupt`]) — decoding and
//! verification failures are misses that trigger a rebuild, never
//! panics and never bad plans entering the simulator.
//!
//! # On-disk format
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "RAPSTORE"
//!      8     4  store format version (u32 LE)          — mismatch ⇒ miss
//!     12    16  cache key (u128 LE)                     — must match name
//!     28     8  payload length in bytes (u64 LE)
//!     36    16  FNV-1a/128 checksum of payload (LE)     — mismatch ⇒ corrupt
//!     52     …  payload (serde::bin encoding)
//! ```
//!
//! Writes are atomic (unique temp file + rename). Eviction is
//! size-budgeted LRU over file mtimes: every hit touches the file's
//! mtime, and [`DiskStore::evict_to`] removes oldest-first until the
//! directory fits the budget.

use crate::cache::{CacheKey, CacheStats, StableHasher};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Bump when the header layout or any serialized artifact's encoding
/// changes shape; old files then read as stale misses and get rebuilt.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// File magic: identifies RAP store entries regardless of version.
const MAGIC: &[u8; 8] = b"RAPSTORE";

/// Header size in bytes (magic + version + key + payload len + checksum).
const HEADER_LEN: usize = 8 + 4 + 16 + 8 + 16;

/// Extension of store entries.
const ENTRY_EXT: &str = "rap";

/// Sidecar file carrying cumulative counters across processes.
const COUNTERS_FILE: &str = "counters.v1";

/// Running counters for one tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups answered by this tier.
    pub hits: u64,
    /// Lookups this tier could not answer.
    pub misses: u64,
    /// Artifacts written into this tier.
    pub writes: u64,
    /// Loads rejected as corrupt (bad magic, checksum, decode, or
    /// re-verification failure).
    pub corrupt: u64,
    /// Loads skipped because the entry's store-format version differs.
    pub stale: u64,
    /// Entries removed by the LRU eviction pass.
    pub evictions: u64,
}

impl TierStats {
    /// Fraction of lookups answered by this tier (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Field-wise saturating sum (used to merge persisted and session
    /// counters).
    #[must_use]
    pub fn merged(&self, other: &TierStats) -> TierStats {
        TierStats {
            hits: self.hits.saturating_add(other.hits),
            misses: self.misses.saturating_add(other.misses),
            writes: self.writes.saturating_add(other.writes),
            corrupt: self.corrupt.saturating_add(other.corrupt),
            stale: self.stale.saturating_add(other.stale),
            evictions: self.evictions.saturating_add(other.evictions),
        }
    }
}

/// Lock-free counter cells behind [`TierStats`].
#[derive(Debug, Default)]
struct TierCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

impl TierCounters {
    fn snapshot(&self) -> TierStats {
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of probing one tier.
#[derive(Debug)]
pub enum TierLoad<T> {
    /// The tier held a usable artifact.
    Hit(Arc<T>),
    /// The tier does not hold this key.
    Miss,
    /// The tier held bytes for this key but they failed integrity,
    /// decoding, or re-verification — treated as a miss by callers, with
    /// the bad entry already discarded and counted.
    Corrupt,
}

/// One storage level of the tiered artifact store.
pub trait ArtifactTier<T>: fmt::Debug + Send + Sync {
    /// Short tier name for reports ("memory", "disk").
    fn name(&self) -> &'static str;

    /// Probes the tier for `key`.
    fn load(&self, key: CacheKey) -> TierLoad<T>;

    /// Writes an artifact into the tier (best-effort; tiers may evict).
    fn store(&self, key: CacheKey, artifact: &Arc<T>);

    /// Running counters.
    fn stats(&self) -> TierStats;
}

// ---------------------------------------------------------------------------
// Memory tier
// ---------------------------------------------------------------------------

/// The in-memory tier: the original two-level content-addressed map.
///
/// An outer lock resolves the key to a per-key build cell, and the
/// cell's own lock serializes construction, so two workers racing on the
/// *same* key build the artifact exactly once while workers on
/// *different* keys build concurrently.
#[derive(Debug, Default)]
pub struct MemoryTier<T> {
    cells: Mutex<HashMap<CacheKey, Arc<BuildCell<T>>>>,
    counters: TierCounters,
}

#[derive(Debug)]
pub(crate) struct BuildCell<T> {
    pub(crate) slot: Mutex<Option<Arc<T>>>,
}

impl<T> MemoryTier<T> {
    /// An empty tier.
    pub fn new() -> MemoryTier<T> {
        MemoryTier {
            cells: Mutex::new(HashMap::new()),
            counters: TierCounters::default(),
        }
    }

    /// The per-key build cell, created on first use. Holding the cell's
    /// slot lock across probe-lower-tiers-then-build is what gives the
    /// tiered store its build-once guarantee.
    pub(crate) fn cell(&self, key: CacheKey) -> Arc<BuildCell<T>> {
        let mut cells = self.cells.lock().expect("store lock poisoned");
        Arc::clone(cells.entry(key).or_insert_with(|| {
            Arc::new(BuildCell {
                slot: Mutex::new(None),
            })
        }))
    }

    pub(crate) fn record_hit(&self) {
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self) {
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of distinct keys holding a built artifact.
    pub fn len(&self) -> usize {
        self.cells
            .lock()
            .expect("store lock poisoned")
            .values()
            .filter(|c| c.slot.lock().expect("cell lock poisoned").is_some())
            .count()
    }

    /// Whether no artifact has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Running counters (also available through [`ArtifactTier::stats`]).
    pub fn stats(&self) -> TierStats {
        self.counters.snapshot()
    }
}

impl<T: Send + Sync + fmt::Debug> ArtifactTier<T> for MemoryTier<T> {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn load(&self, key: CacheKey) -> TierLoad<T> {
        let cell = self.cell(key);
        let slot = cell.slot.lock().expect("cell lock poisoned");
        match slot.as_ref() {
            Some(artifact) => {
                self.record_hit();
                TierLoad::Hit(Arc::clone(artifact))
            }
            None => {
                self.record_miss();
                TierLoad::Miss
            }
        }
    }

    fn store(&self, key: CacheKey, artifact: &Arc<T>) {
        let cell = self.cell(key);
        let mut slot = cell.slot.lock().expect("cell lock poisoned");
        *slot = Some(Arc::clone(artifact));
        self.record_write();
    }

    fn stats(&self) -> TierStats {
        MemoryTier::stats(self)
    }
}

// ---------------------------------------------------------------------------
// Disk store (bytes level)
// ---------------------------------------------------------------------------

/// Where the disk tier lives and how big it may grow.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Directory holding the entries (created on open).
    pub dir: PathBuf,
    /// Size budget in bytes; exceeding it triggers LRU eviction after
    /// each write. `None` = unbounded.
    pub max_bytes: Option<u64>,
}

impl StoreConfig {
    /// A store rooted at `dir` with no size budget.
    pub fn at(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            max_bytes: None,
        }
    }

    /// Sets the size budget.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: u64) -> StoreConfig {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// The user-level default store directory:
    /// `$XDG_CACHE_HOME/rap/store` or `$HOME/.cache/rap/store`.
    pub fn default_dir() -> Option<PathBuf> {
        if let Some(cache) = std::env::var_os("XDG_CACHE_HOME").filter(|s| !s.is_empty()) {
            return Some(PathBuf::from(cache).join("rap").join("store"));
        }
        std::env::var_os("HOME")
            .filter(|s| !s.is_empty())
            .map(|home| PathBuf::from(home).join(".cache").join("rap").join("store"))
    }
}

/// One entry as seen by `rap cache stats` / the GC pass.
#[derive(Clone, Debug)]
pub struct StoreEntry {
    /// The content address (parsed back from the filename).
    pub key: CacheKey,
    /// File size in bytes (header + payload).
    pub bytes: u64,
    /// Last access (mtime; refreshed on every hit, so LRU order).
    pub modified: SystemTime,
}

/// The raw on-disk content-addressed byte store underneath [`DiskTier`].
///
/// Deals purely in `(CacheKey, payload bytes)` pairs: framing, integrity
/// (checksum), versioning, atomic writes, LRU bookkeeping, and eviction.
/// Decoding payloads into artifacts is the [`Persist`] layer's job.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    max_bytes: Option<u64>,
    counters: TierCounters,
    /// Counters accumulated by *earlier* processes, read from the sidecar
    /// at open; this process's session counters are merged back into the
    /// sidecar on drop (see [`DiskStore::cumulative_stats`]).
    persisted: Mutex<TierStats>,
}

impl DiskStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Returns the `create_dir_all` error if the directory cannot be
    /// created.
    pub fn open(config: StoreConfig) -> io::Result<DiskStore> {
        fs::create_dir_all(&config.dir)?;
        let persisted = read_counters(&config.dir.join(COUNTERS_FILE));
        Ok(DiskStore {
            dir: config.dir,
            max_bytes: config.max_bytes,
            counters: TierCounters::default(),
            persisted: Mutex::new(persisted),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The size budget, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The file path an entry for `key` lives at.
    pub fn path_for(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.{ENTRY_EXT}"))
    }

    /// Loads and integrity-checks the payload for `key`.
    ///
    /// Returns `None` on any non-hit: absent entry (miss), mismatched
    /// store-format version (stale ⇒ miss, the entry is left for a
    /// binary of that version or the GC), or failed magic / key /
    /// length / checksum validation (corrupt ⇒ the entry is deleted so
    /// the rebuild can replace it). Never panics on malformed bytes.
    pub fn load(&self, key: CacheKey) -> Option<Vec<u8>> {
        let path = self.path_for(key);
        let Ok(mut bytes) = fs::read(&path) else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match parse_entry(&bytes, key) {
            EntryCheck::Ok(payload_start) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                touch(&path);
                bytes.drain(..payload_start);
                Some(bytes)
            }
            EntryCheck::Stale => {
                self.counters.stale.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            EntryCheck::Corrupt => {
                self.discard_corrupt(key);
                None
            }
        }
    }

    /// Counts a corrupt entry and deletes its file (used both for framing
    /// failures here and decode/verify failures one layer up).
    pub fn discard_corrupt(&self, key: CacheKey) {
        self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
        let _ = fs::remove_file(self.path_for(key));
    }

    /// Atomically writes the entry for `key`, then enforces the size
    /// budget. Write errors are swallowed (the store is a cache; the
    /// artifact lives on in memory).
    pub fn store(&self, key: CacheKey, payload: &[u8]) {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&key.0.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&checksum(payload).to_le_bytes());
        bytes.extend_from_slice(payload);

        let path = self.path_for(key);
        let tmp = self.dir.join(format!(
            "{key}.{:x}.{:x}.tmp",
            std::process::id(),
            self.counters.writes.load(Ordering::Relaxed),
        ));
        let written = fs::write(&tmp, &bytes).is_ok() && fs::rename(&tmp, &path).is_ok();
        if written {
            self.counters.writes.fetch_add(1, Ordering::Relaxed);
            if let Some(max) = self.max_bytes {
                self.evict_to(max);
            }
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Every entry currently on disk, unordered.
    pub fn entries(&self) -> Vec<StoreEntry> {
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in dir.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                continue;
            }
            let Some(key) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.parse::<CacheKey>().ok())
            else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            out.push(StoreEntry {
                key,
                bytes: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        out
    }

    /// Total bytes across entries.
    pub fn total_bytes(&self) -> u64 {
        self.entries().iter().map(|e| e.bytes).sum()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// LRU eviction: removes least-recently-used entries (oldest mtime
    /// first) until the directory fits `max_bytes`. Returns the number
    /// of entries removed.
    pub fn evict_to(&self, max_bytes: u64) -> u64 {
        let mut entries = self.entries();
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        if total <= max_bytes {
            return 0;
        }
        entries.sort_by_key(|e| e.modified);
        let mut evicted = 0;
        for entry in entries {
            if total <= max_bytes {
                break;
            }
            if fs::remove_file(self.path_for(entry.key)).is_ok() {
                total = total.saturating_sub(entry.bytes);
                evicted += 1;
            }
        }
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Removes every entry and the cumulative-counters sidecar. Returns
    /// the number of entries removed.
    pub fn clear(&self) -> u64 {
        let mut removed = 0;
        for entry in self.entries() {
            if fs::remove_file(self.path_for(entry.key)).is_ok() {
                removed += 1;
            }
        }
        let _ = fs::remove_file(self.dir.join(COUNTERS_FILE));
        *self.persisted.lock().expect("counters lock poisoned") = TierStats::default();
        removed
    }

    /// Running counters for this process's use of the store.
    pub fn stats(&self) -> TierStats {
        self.counters.snapshot()
    }

    /// Lifetime counters for the store directory: everything earlier
    /// processes flushed into the sidecar plus this process's session.
    /// Best-effort under concurrency (the sidecar is last-writer-wins, so
    /// overlapping processes may undercount) — good enough for the hit
    /// rates `rap cache stats` reports, and never affects correctness.
    pub fn cumulative_stats(&self) -> TierStats {
        self.persisted
            .lock()
            .expect("counters lock poisoned")
            .merged(&self.counters.snapshot())
    }

    /// Flushes the cumulative counters to the sidecar (also runs on
    /// drop). Write failures are swallowed — counters are advisory.
    pub fn flush_counters(&self) {
        write_counters(&self.dir.join(COUNTERS_FILE), self.cumulative_stats());
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        self.flush_counters();
    }
}

/// Reads the cumulative-counters sidecar; any malformed or missing file
/// reads as zeroes (the counters are advisory, never load-bearing).
fn read_counters(path: &Path) -> TierStats {
    let Ok(text) = fs::read_to_string(path) else {
        return TierStats::default();
    };
    let mut fields = text.split_ascii_whitespace();
    if fields.next() != Some("v1") {
        return TierStats::default();
    }
    let mut next = || fields.next().and_then(|f| f.parse().ok()).unwrap_or(0);
    TierStats {
        hits: next(),
        misses: next(),
        writes: next(),
        corrupt: next(),
        stale: next(),
        evictions: next(),
    }
}

/// Atomically writes the cumulative-counters sidecar (absolute totals,
/// not increments, so repeated flushes are idempotent).
fn write_counters(path: &Path, stats: TierStats) {
    let text = format!(
        "v1 {} {} {} {} {} {}\n",
        stats.hits, stats.misses, stats.writes, stats.corrupt, stats.stale, stats.evictions
    );
    let tmp = path.with_extension(format!("v1.{:x}.tmp", std::process::id()));
    if fs::write(&tmp, text).is_ok() && fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

/// FNV-1a/128 checksum of a payload (same function as the cache keys, so
/// the store has exactly one hash in play).
fn checksum(payload: &[u8]) -> u128 {
    let mut h = StableHasher::new();
    h.write(payload);
    h.finish().0
}

enum EntryCheck {
    /// Valid; payload starts at the contained offset.
    Ok(usize),
    /// Well-formed but written by a different store-format version.
    Stale,
    /// Malformed: bad magic, wrong key, bad length, or checksum failure.
    Corrupt,
}

/// Validates an entry's framing without panicking on any input.
fn parse_entry(bytes: &[u8], key: CacheKey) -> EntryCheck {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return EntryCheck::Corrupt;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != STORE_FORMAT_VERSION {
        return EntryCheck::Stale;
    }
    let stored_key = u128::from_le_bytes(bytes[12..28].try_into().expect("16 bytes"));
    if stored_key != key.0 {
        return EntryCheck::Corrupt;
    }
    let payload_len = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload_len != payload.len() as u64 {
        return EntryCheck::Corrupt;
    }
    let stored_sum = u128::from_le_bytes(bytes[36..52].try_into().expect("16 bytes"));
    if stored_sum != checksum(payload) {
        return EntryCheck::Corrupt;
    }
    EntryCheck::Ok(HEADER_LEN)
}

/// Refreshes a file's mtime so LRU eviction sees the access.
fn touch(path: &Path) {
    if let Ok(file) = fs::File::options().append(true).open(path) {
        let _ = file.set_modified(SystemTime::now());
    }
}

// ---------------------------------------------------------------------------
// Persist + disk tier (artifact level)
// ---------------------------------------------------------------------------

/// Failure to reconstitute an artifact from stored bytes.
#[derive(Debug)]
pub enum PersistError {
    /// The payload bytes did not decode.
    Decode(serde::bin::DecodeError),
    /// The decoded artifact was rejected on re-validation (e.g. the
    /// V-rule verifier refused the plan).
    Rejected(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Decode(e) => write!(f, "payload decode failed: {e}"),
            PersistError::Rejected(why) => write!(f, "artifact rejected on load: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<serde::bin::DecodeError> for PersistError {
    fn from(e: serde::bin::DecodeError) -> PersistError {
        PersistError::Decode(e)
    }
}

/// An artifact that can live in the disk tier.
///
/// `from_payload` must treat the bytes as untrusted: decode defensively
/// and re-validate before returning (for verified plans that means the
/// full `MappedPlan::from_parts` → `verify()` path).
pub trait Persist: Sized {
    /// Encodes the artifact's durable state.
    fn to_payload(&self) -> Vec<u8>;

    /// Reconstitutes and re-validates an artifact from stored bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] when the bytes do not decode or the
    /// decoded artifact fails re-validation.
    fn from_payload(payload: &[u8]) -> Result<Self, PersistError>;
}

/// The on-disk tier: a [`DiskStore`] plus [`Persist`]-based
/// encode/decode. Decode or re-verification failures count as `corrupt`
/// and discard the entry, surfacing as [`TierLoad::Corrupt`].
#[derive(Debug)]
pub struct DiskTier<T> {
    store: DiskStore,
    _artifact: PhantomData<fn() -> T>,
}

impl<T> DiskTier<T> {
    /// Opens the tier's backing directory.
    ///
    /// # Errors
    ///
    /// Propagates [`DiskStore::open`] failures.
    pub fn open(config: StoreConfig) -> io::Result<DiskTier<T>> {
        Ok(DiskTier {
            store: DiskStore::open(config)?,
            _artifact: PhantomData,
        })
    }

    /// The raw byte store underneath.
    pub fn disk(&self) -> &DiskStore {
        &self.store
    }
}

impl<T: Persist + Send + Sync + fmt::Debug> ArtifactTier<T> for DiskTier<T> {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn load(&self, key: CacheKey) -> TierLoad<T> {
        match self.store.load(key) {
            None => TierLoad::Miss,
            Some(payload) => match T::from_payload(&payload) {
                Ok(artifact) => TierLoad::Hit(Arc::new(artifact)),
                Err(_) => {
                    // Framing was intact but the artifact itself is bad
                    // (decode error or re-verification rejected it).
                    self.store.discard_corrupt(key);
                    TierLoad::Corrupt
                }
            },
        }
    }

    fn store(&self, key: CacheKey, artifact: &Arc<T>) {
        self.store.store(key, &artifact.to_payload());
    }

    fn stats(&self) -> TierStats {
        self.store.stats()
    }
}

// ---------------------------------------------------------------------------
// Tiered store
// ---------------------------------------------------------------------------

/// The tiered artifact store: memory in front, optional disk behind.
///
/// Lookup order on [`TieredStore::get_or_build`]: memory → disk →
/// build. Disk hits are rehydrated (the caller re-attaches anything
/// that is deliberately not persisted, e.g. bound analyses) and
/// backfilled into memory; builds are written through to disk.
#[derive(Debug)]
pub struct TieredStore<T> {
    memory: MemoryTier<T>,
    disk: Option<Box<dyn ArtifactTier<T>>>,
}

impl<T> Default for TieredStore<T> {
    fn default() -> TieredStore<T> {
        TieredStore::new()
    }
}

impl<T> TieredStore<T> {
    /// A memory-only store (the pre-refactor behaviour).
    pub fn new() -> TieredStore<T> {
        TieredStore {
            memory: MemoryTier::new(),
            disk: None,
        }
    }

    /// Attaches a lower tier probed on memory misses.
    #[must_use]
    pub fn with_disk(mut self, tier: Box<dyn ArtifactTier<T>>) -> TieredStore<T> {
        self.disk = Some(tier);
        self
    }

    /// Whether a disk tier is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Memory-tier counters in the legacy hit/miss shape (a miss means
    /// "not answered from memory" — it may still have been answered from
    /// disk rather than compiled; see [`TieredStore::disk_stats`]).
    pub fn stats(&self) -> CacheStats {
        let memory = self.memory.stats();
        CacheStats {
            hits: memory.hits,
            misses: memory.misses,
        }
    }

    /// Full memory-tier counters.
    pub fn memory_stats(&self) -> TierStats {
        self.memory.stats()
    }

    /// Disk-tier counters, when a disk tier is attached.
    pub fn disk_stats(&self) -> Option<TierStats> {
        self.disk.as_deref().map(ArtifactTier::stats)
    }

    /// Number of distinct keys built or loaded into memory.
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    /// Whether nothing has been cached in memory yet.
    pub fn is_empty(&self) -> bool {
        self.memory.is_empty()
    }

    /// Returns the artifact for `key`: from memory, else from disk
    /// (passed through `rehydrate`), else by running `build` (written
    /// through to disk).
    ///
    /// Concurrent callers with the same key resolve once — the losers
    /// wait on the per-key cell and receive the winner's artifact,
    /// counted as memory hits. Failed builds are not cached, so a later
    /// retry runs `build` again.
    ///
    /// # Errors
    ///
    /// Propagates the error returned by `build`.
    pub fn get_or_build<E>(
        &self,
        key: CacheKey,
        rehydrate: impl FnOnce(Arc<T>) -> Arc<T>,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        let cell = self.memory.cell(key);
        let mut slot = cell.slot.lock().expect("store cell lock poisoned");
        if let Some(artifact) = slot.as_ref() {
            self.memory.record_hit();
            return Ok(Arc::clone(artifact));
        }
        self.memory.record_miss();

        if let Some(disk) = self.disk.as_deref() {
            if let TierLoad::Hit(artifact) = disk.load(key) {
                let artifact = rehydrate(artifact);
                *slot = Some(Arc::clone(&artifact));
                self.memory.record_write();
                return Ok(artifact);
            }
        }

        let artifact = Arc::new(build()?);
        *slot = Some(Arc::clone(&artifact));
        self.memory.record_write();
        if let Some(disk) = self.disk.as_deref() {
            disk.store(key, &artifact);
        }
        Ok(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rap-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    impl Persist for u32 {
        fn to_payload(&self) -> Vec<u8> {
            serde::bin::to_bytes(self)
        }

        fn from_payload(payload: &[u8]) -> Result<u32, PersistError> {
            Ok(serde::bin::from_bytes(payload)?)
        }
    }

    #[test]
    fn memory_store_builds_once_per_key() {
        let store: TieredStore<u32> = TieredStore::new();
        let key = CacheKey(7);
        let a = store
            .get_or_build(key, |a| a, || Ok::<_, ()>(41))
            .expect("builds");
        let b = store
            .get_or_build(
                key,
                |a| a,
                || -> Result<u32, ()> { panic!("must not rebuild") },
            )
            .expect("cached");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn failed_builds_are_retried() {
        let store: TieredStore<u32> = TieredStore::new();
        let key = CacheKey(9);
        assert!(store
            .get_or_build(key, |a| a, || Err::<u32, _>("boom"))
            .is_err());
        let v = store
            .get_or_build(key, |a| a, || Ok::<_, ()>(5))
            .expect("builds");
        assert_eq!(*v, 5);
        assert_eq!(store.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn disk_round_trip_and_backfill() {
        let dir = temp_dir("roundtrip");
        let key = CacheKey(0xabcdef);
        {
            let store = TieredStore::new().with_disk(Box::new(
                DiskTier::<u32>::open(StoreConfig::at(&dir)).unwrap(),
            ));
            let v = store
                .get_or_build(key, |a| a, || Ok::<_, ()>(1234))
                .expect("builds");
            assert_eq!(*v, 1234);
            let disk = store.disk_stats().unwrap();
            assert_eq!((disk.hits, disk.misses, disk.writes), (0, 1, 1));
        }
        // A fresh process-alike store must answer from disk, not build.
        let store = TieredStore::new().with_disk(Box::new(
            DiskTier::<u32>::open(StoreConfig::at(&dir)).unwrap(),
        ));
        let v = store
            .get_or_build(
                key,
                |a| a,
                || -> Result<u32, ()> { panic!("warm start must not rebuild") },
            )
            .expect("loads");
        assert_eq!(*v, 1234);
        let disk = store.disk_stats().unwrap();
        assert_eq!((disk.hits, disk.misses), (1, 0));
        // Backfilled: second lookup is a memory hit, disk untouched.
        store
            .get_or_build(key, |a| a, || Ok::<_, ()>(0))
            .expect("memory");
        assert_eq!(store.disk_stats().unwrap().hits, 1);
        assert_eq!(store.stats().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_is_corrupt_not_a_panic() {
        let dir = temp_dir("corrupt");
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        let key = CacheKey(42);
        store.store(key, b"payload-bytes");
        assert!(store.load(key).is_some());

        // Flip one payload byte on disk: checksum must reject the load.
        let path = store.path_for(key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(key).is_none());
        assert_eq!(store.stats().corrupt, 1);
        // The corrupt entry was discarded so a rebuild can replace it.
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_a_miss_not_an_error() {
        let dir = temp_dir("version");
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        let key = CacheKey(43);
        store.store(key, b"old-format");
        // Bump the version field in the header.
        let path = store.path_for(key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(STORE_FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(key).is_none());
        let stats = store.stats();
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.corrupt, 0);
        // Stale entries are left in place (a binary of that version owns
        // them); only GC reclaims the space.
        assert!(path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_and_truncation_are_corrupt() {
        let dir = temp_dir("framing");
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        store.store(CacheKey(1), b"abc");
        // Copy entry 1's bytes under entry 2's name: key check must fire.
        let bytes = fs::read(store.path_for(CacheKey(1))).unwrap();
        fs::write(store.path_for(CacheKey(2)), &bytes).unwrap();
        assert!(store.load(CacheKey(2)).is_none());
        // Truncate below the header: corrupt, not a panic.
        fs::write(store.path_for(CacheKey(3)), b"RAPST").unwrap();
        assert!(store.load(CacheKey(3)).is_none());
        assert_eq!(store.stats().corrupt, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_removes_oldest_first() {
        let dir = temp_dir("lru");
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        let payload = vec![0u8; 100];
        for i in 0..4u128 {
            store.store(CacheKey(i), &payload);
            // mtime granularity: space the writes out.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        // Touch entry 0 (a hit) so it becomes most-recently-used.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(store.load(CacheKey(0)).is_some());

        let entry_bytes = (HEADER_LEN + payload.len()) as u64;
        let evicted = store.evict_to(2 * entry_bytes);
        assert_eq!(evicted, 2);
        // The LRU entries (1, 2) went; 0 survived its touch, 3 is newest.
        assert!(store.load(CacheKey(0)).is_some());
        assert!(store.load(CacheKey(3)).is_some());
        assert!(store.load(CacheKey(1)).is_none());
        assert!(store.load(CacheKey(2)).is_none());
        assert_eq!(store.stats().evictions, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cumulative_counters_survive_reopen() {
        let dir = temp_dir("counters");
        {
            let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
            store.store(CacheKey(1), b"a");
            assert!(store.load(CacheKey(1)).is_some());
            assert!(store.load(CacheKey(2)).is_none());
            // Drop flushes the sidecar.
        }
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        assert!(store.load(CacheKey(1)).is_some());
        let total = store.cumulative_stats();
        assert_eq!((total.hits, total.misses, total.writes), (2, 1, 1));
        // Session counters only know this process.
        assert_eq!(store.stats().hits, 1);
        // clear() also resets the lifetime counters.
        store.clear();
        assert_eq!(store.cumulative_stats().hits, store.stats().hits);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_empties_the_store() {
        let dir = temp_dir("clear");
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        store.store(CacheKey(1), b"a");
        store.store(CacheKey(2), b"b");
        assert_eq!(store.len(), 2);
        assert!(store.total_bytes() > 0);
        assert_eq!(store.clear(), 2);
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
