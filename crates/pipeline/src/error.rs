//! Typed pipeline errors.
//!
//! Every stage transition returns [`EvalError`] instead of panicking, so a
//! single bad suite (an unparsable pattern, an over-capacity automaton, an
//! illegal plan) surfaces as a reportable row failure rather than aborting
//! a whole table run.

use rap_circuit::Machine;
use rap_compiler::CompileError;
use rap_regex::ParseError;
use rap_sim::SimError;
use std::fmt;

/// Error produced by a pipeline stage.
#[derive(Clone, Debug)]
pub enum EvalError {
    /// A pattern string failed to parse.
    Parse {
        /// Index of the offending pattern within its set.
        pattern: usize,
        /// The parser's diagnosis.
        error: ParseError,
    },
    /// A parsed pattern failed to compile for the target machine.
    Compile {
        /// The machine being compiled for.
        machine: Machine,
        /// Index of the offending pattern within its set.
        pattern: usize,
        /// The compiler's diagnosis.
        error: CompileError,
    },
    /// The mapper produced a plan that fails static legality verification;
    /// the report lists every violated rule.
    IllegalMapping {
        /// The machine being mapped for.
        machine: Machine,
        /// The verifier's findings.
        report: rap_verify::Report,
    },
}

impl EvalError {
    /// Lifts a [`SimError`] into an [`EvalError`], attaching the machine.
    pub fn from_sim(machine: Machine, error: SimError) -> EvalError {
        match error {
            SimError::Compile { pattern, error } => EvalError::Compile {
                machine,
                pattern,
                error,
            },
            SimError::IllegalMapping { report } => EvalError::IllegalMapping { machine, report },
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Parse { pattern, error } => {
                write!(f, "pattern #{pattern}: {error}")
            }
            EvalError::Compile {
                machine,
                pattern,
                error,
            } => write!(f, "{machine}: pattern #{pattern}: {error}"),
            EvalError::IllegalMapping { machine, report } => {
                write!(
                    f,
                    "{machine}: mapping is illegal ({} findings):\n{report}",
                    report.len()
                )
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> SimError {
        match e {
            EvalError::Parse { pattern, error } => SimError::Compile {
                pattern,
                error: CompileError::Parse(error),
            },
            EvalError::Compile { pattern, error, .. } => SimError::Compile { pattern, error },
            EvalError::IllegalMapping { report, .. } => SimError::IllegalMapping { report },
        }
    }
}
