//! Memoized workload materialization.
//!
//! The harness historically regenerated each suite's synthetic corpus
//! twice per cell (once for the patterns, once to synthesize the input
//! stream) and once more per *binary*. This module materializes each
//! `(suite, BenchConfig)` corpus exactly once per process — patterns
//! generated once, parsed once, input synthesized once — behind a
//! process-wide memo shared by every pipeline, harness binary, and bench.

use crate::artifact::PatternSet;
use crate::cache::CacheStats;
use rap_regex::Regex;
use rap_workloads::Suite;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Harness scale knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Patterns generated per suite.
    pub patterns_per_suite: usize,
    /// Input stream length in bytes.
    pub input_len: usize,
    /// Fraction of stream bytes belonging to planted matches.
    pub match_rate: f64,
    /// RNG seed for workload synthesis.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            patterns_per_suite: 300,
            input_len: 100_000,
            match_rate: 0.02,
            seed: 42,
        }
    }
}

/// One suite's fully materialized workload: sources, parsed patterns, and
/// the synthesized input stream, each produced exactly once.
#[derive(Clone, Debug)]
pub struct SuiteCorpus {
    suite: Suite,
    patterns: PatternSet,
    input: Vec<u8>,
}

impl SuiteCorpus {
    /// The suite this corpus belongs to.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The parse-validated pattern set.
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// The bare regexes, cloned.
    pub fn regexes(&self) -> Vec<Regex> {
        self.patterns.regexes()
    }

    /// The synthesized input stream.
    pub fn input(&self) -> &[u8] {
        &self.input
    }
}

type MemoKey = (Suite, usize, usize, u64, u64);

fn memo() -> &'static Mutex<HashMap<MemoKey, Arc<SuiteCorpus>>> {
    static MEMO: OnceLock<Mutex<HashMap<MemoKey, Arc<SuiteCorpus>>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Returns the memoized corpus for `(suite, cfg)`, generating it on first
/// request. The boolean is `true` on a memo hit.
pub fn suite_corpus(suite: Suite, cfg: &BenchConfig) -> (Arc<SuiteCorpus>, bool) {
    let key: MemoKey = (
        suite,
        cfg.patterns_per_suite,
        cfg.input_len,
        cfg.match_rate.to_bits(),
        cfg.seed,
    );
    if let Some(corpus) = memo().lock().expect("memo lock poisoned").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return (Arc::clone(corpus), true);
    }
    // Generation runs outside the lock (it can take a while at paper
    // scale); a rare double-generate race wastes work but stays correct
    // and is still counted as a miss.
    MISSES.fetch_add(1, Ordering::Relaxed);
    let sources = rap_workloads::generate_patterns(suite, cfg.patterns_per_suite, cfg.seed);
    let input = rap_workloads::generate_input(&sources, cfg.input_len, cfg.match_rate, cfg.seed);
    let patterns = PatternSet::parse(&sources).expect("generated patterns always parse");
    let corpus = Arc::new(SuiteCorpus {
        suite,
        patterns,
        input,
    });
    let mut map = memo().lock().expect("memo lock poisoned");
    let entry = map.entry(key).or_insert_with(|| Arc::clone(&corpus));
    (Arc::clone(entry), false)
}

/// Process-wide corpus memo hit/miss totals.
pub fn corpus_stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_memoized_and_stable() {
        let cfg = BenchConfig {
            patterns_per_suite: 5,
            input_len: 512,
            match_rate: 0.02,
            seed: 991,
        };
        let (a, _) = suite_corpus(Suite::Snort, &cfg);
        let (b, hit) = suite_corpus(Suite::Snort, &cfg);
        assert!(hit, "second request must hit the memo");
        assert!(Arc::ptr_eq(&a, &b), "memo returns the same allocation");
        assert_eq!(a.patterns().len(), 5);
        assert_eq!(a.input().len(), 512);
        // Distinct seeds are distinct entries.
        let (c, hit) = suite_corpus(Suite::Snort, &BenchConfig { seed: 992, ..cfg });
        assert!(!hit);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
