//! Aggregate per-run numbers.

use rap_sim::RunResult;
use serde::{Deserialize, Serialize};

/// Aggregate numbers for one (machine, workload) run — one table cell row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Total energy in microjoules.
    pub energy_uj: f64,
    /// Allocated area in mm².
    pub area_mm2: f64,
    /// Throughput in Gch/s.
    pub throughput_gchps: f64,
    /// Average power in watts.
    pub power_w: f64,
    /// Matches reported.
    pub matches: u64,
    /// Hardware states (STEs / chain positions) allocated.
    pub states: u64,
}

impl RunSummary {
    /// Summarizes a simulator result; `states` is the workload's total
    /// hardware state count (an artifact property the result lacks).
    pub fn of(r: &RunResult, states: u64) -> RunSummary {
        RunSummary {
            energy_uj: r.metrics.energy_uj,
            area_mm2: r.metrics.area_mm2,
            throughput_gchps: r.metrics.throughput_gchps(),
            power_w: r.metrics.power_w(),
            matches: r.metrics.matches,
            states,
        }
    }

    /// Energy efficiency in Gch/s/W.
    pub fn energy_efficiency(&self) -> f64 {
        if self.power_w == 0.0 {
            0.0
        } else {
            self.throughput_gchps / self.power_w
        }
    }

    /// Compute density in Gch/s/mm².
    pub fn compute_density(&self) -> f64 {
        if self.area_mm2 == 0.0 {
            0.0
        } else {
            self.throughput_gchps / self.area_mm2
        }
    }
}
