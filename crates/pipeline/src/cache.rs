//! Content-addressed artifact cache.
//!
//! Compile products are keyed by a *stable* hash of everything that
//! determines them: the pattern sources, the target machine, the forced
//! mode (if any), and every field of the compiler and mapper
//! configurations. The hash is FNV-1a/128 computed over an explicit field
//! serialization — independent of `std::hash::Hash` (whose output is not
//! guaranteed stable across releases) and of struct layout.
//!
//! The cache itself is a two-level map: an outer lock resolves the key to
//! a per-key build cell, and the cell's own lock serializes construction,
//! so two workers racing on the *same* key build the artifact exactly once
//! while workers on *different* keys build concurrently.

use rap_compiler::CompilerConfig;
use rap_mapper::MapperConfig;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A 128-bit content address identifying one compile product.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming FNV-1a hasher over 128 bits, stable across platforms and
/// releases.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u128,
}

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` via its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a length-prefixed string (prefixing prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs an optional `u32` with a presence tag.
    pub fn write_opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.write(&[0]),
            Some(v) => {
                self.write(&[1]);
                self.write_u32(v);
            }
        }
    }

    /// Finalizes into a cache key.
    pub fn finish(&self) -> CacheKey {
        CacheKey(self.state)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// Absorbs every compile- and map-determining configuration field.
pub(crate) fn hash_configs(h: &mut StableHasher, compiler: &CompilerConfig, mapper: &MapperConfig) {
    h.write_u32(compiler.unfold_threshold);
    h.write_u32(compiler.bv_depth);
    h.write_f64(compiler.lnfa_expand_factor);
    h.write_opt_u32(compiler.bv_bits_cap);
    for arch in [&compiler.arch, &mapper.arch] {
        h.write_u32(arch.cam_rows);
        h.write_u32(arch.tile_columns);
        h.write_u32(arch.tiles_per_array);
        h.write_u32(arch.arrays_per_bank);
        h.write_u32(arch.global_ports_per_tile);
        h.write_u32(arch.max_bin_size);
        h.write_u32(arch.ring_width_bits);
        h.write_u32(arch.bank_input_entries);
        h.write_u32(arch.array_input_entries);
        h.write_u32(arch.bank_output_entries);
        h.write_u32(arch.array_output_entries);
        h.write_f64(arch.tile_wire_mm);
        h.write_f64(arch.ring_hop_mm);
    }
    h.write_u32(mapper.bin_size);
    match mapper.bvm {
        None => h.write(&[0]),
        Some(bvm) => {
            h.write(&[1]);
            h.write_u32(bvm.slot_bits);
            h.write_u32(bvm.slots_per_tile);
        }
    }
    h.write(&[u8::from(mapper.validate)]);
}

/// Derives the content address of an *analyzed* compile product from the
/// base compile key: the analyzer options determine the output images
/// (prune rewrites them), so they are part of the artifact's identity.
pub(crate) fn analysis_key(base: CacheKey, options: &rap_analyze::AnalyzeOptions) -> CacheKey {
    let mut h = StableHasher::new();
    h.write(&base.0.to_le_bytes());
    h.write_str("analyze");
    h.write(&[u8::from(options.prune)]);
    match options.soundness {
        None => h.write(&[0]),
        Some(cfg) => {
            h.write(&[1]);
            h.write_u64(cfg.max_configs as u64);
        }
    }
    h.finish()
}

/// Derives the content address of a *bounded* plan from the verified
/// plan's key: the bound options determine the attached bound analysis,
/// so they are part of the artifact's identity.
pub(crate) fn bounds_key(base: CacheKey, options: &rap_bound::BoundOptions) -> CacheKey {
    let mut h = StableHasher::new();
    h.write(&base.0.to_le_bytes());
    h.write_str("bound");
    match options.equivalence {
        None => h.write(&[0]),
        Some(cfg) => {
            h.write(&[1]);
            h.write_u64(cfg.max_configs as u64);
        }
    }
    h.finish()
}

/// Running hit/miss totals for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the artifact.
    pub misses: u64,
}

/// A content-addressed map from [`CacheKey`] to a shared artifact.
///
/// Generic over the artifact type so the same machinery caches verified
/// plans today and could cache, e.g., serialized images later.
#[derive(Debug, Default)]
pub struct ArtifactCache<T> {
    cells: Mutex<HashMap<CacheKey, Arc<Cell<T>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct Cell<T> {
    slot: Mutex<Option<Arc<T>>>,
}

impl<T> ArtifactCache<T> {
    /// An empty cache.
    pub fn new() -> ArtifactCache<T> {
        ArtifactCache {
            cells: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the artifact for `key`, building it with `build` on a miss.
    ///
    /// Concurrent callers with the same key build once (the losers wait and
    /// receive the winner's artifact, counted as hits); failed builds are
    /// not cached, so a later retry runs `build` again.
    ///
    /// # Errors
    ///
    /// Propagates the error returned by `build`.
    pub fn get_or_build<E>(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        let cell = {
            let mut cells = self.cells.lock().expect("cache lock poisoned");
            Arc::clone(cells.entry(key).or_insert_with(|| {
                Arc::new(Cell {
                    slot: Mutex::new(None),
                })
            }))
        };
        let mut slot = cell.slot.lock().expect("cache cell lock poisoned");
        if let Some(artifact) = slot.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(artifact));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let artifact = Arc::new(build()?);
        *slot = Some(Arc::clone(&artifact));
        Ok(artifact)
    }

    /// Current hit/miss totals.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct keys holding a built artifact.
    pub fn len(&self) -> usize {
        self.cells
            .lock()
            .expect("cache lock poisoned")
            .values()
            .filter(|c| c.slot.lock().expect("cell lock poisoned").is_some())
            .count()
    }

    /// Whether no artifact has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors_are_stable() {
        // Bit-for-bit stability is the whole point: pin two vectors.
        let mut h = StableHasher::new();
        h.write(b"");
        assert_eq!(h.finish().0, FNV_OFFSET);
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish().0, 0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964);
    }

    #[test]
    fn length_prefix_disambiguates() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn cache_builds_once_per_key() {
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        let key = CacheKey(7);
        let a = cache.get_or_build(key, || Ok::<_, ()>(41)).expect("builds");
        let b = cache
            .get_or_build(key, || -> Result<u32, ()> { panic!("must not rebuild") })
            .expect("cached");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failed_builds_are_retried() {
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        let key = CacheKey(9);
        assert!(cache.get_or_build(key, || Err::<u32, _>("boom")).is_err());
        let v = cache.get_or_build(key, || Ok::<_, ()>(5)).expect("builds");
        assert_eq!(*v, 5);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
    }
}
