//! Content addressing for compile artifacts: keys and stable hashing.
//!
//! Compile products are keyed by a *stable* hash of everything that
//! determines them: the pattern sources, the target machine, the forced
//! mode (if any), and every field of the compiler and mapper
//! configurations. The hash is FNV-1a/128 computed over an explicit field
//! serialization — independent of `std::hash::Hash` (whose output is not
//! guaranteed stable across releases) and of struct layout.
//!
//! The storage side — the in-memory build-once map and the persistent
//! on-disk tier addressed by these keys — lives in [`crate::store`].

use rap_compiler::CompilerConfig;
use rap_mapper::MapperConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 128-bit content address identifying one compile product.
///
/// Its canonical text form — [`fmt::Display`] and [`FromStr`] — is 32
/// lowercase hex digits, used verbatim as the disk-tier filename stem so
/// keys look identical in reports, `rap cache` output, and `ls`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheKey(pub u128);

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for CacheKey {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<CacheKey, Self::Err> {
        u128::from_str_radix(s, 16).map(CacheKey)
    }
}

/// Streaming FNV-1a hasher over 128 bits, stable across platforms and
/// releases.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u128,
}

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` via its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a length-prefixed string (prefixing prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs an optional `u32` with a presence tag.
    pub fn write_opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.write(&[0]),
            Some(v) => {
                self.write(&[1]);
                self.write_u32(v);
            }
        }
    }

    /// Finalizes into a cache key.
    pub fn finish(&self) -> CacheKey {
        CacheKey(self.state)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// Absorbs every compile- and map-determining configuration field.
pub(crate) fn hash_configs(h: &mut StableHasher, compiler: &CompilerConfig, mapper: &MapperConfig) {
    h.write_u32(compiler.unfold_threshold);
    h.write_u32(compiler.bv_depth);
    h.write_f64(compiler.lnfa_expand_factor);
    h.write_opt_u32(compiler.bv_bits_cap);
    for arch in [&compiler.arch, &mapper.arch] {
        h.write_u32(arch.cam_rows);
        h.write_u32(arch.tile_columns);
        h.write_u32(arch.tiles_per_array);
        h.write_u32(arch.arrays_per_bank);
        h.write_u32(arch.global_ports_per_tile);
        h.write_u32(arch.max_bin_size);
        h.write_u32(arch.ring_width_bits);
        h.write_u32(arch.bank_input_entries);
        h.write_u32(arch.array_input_entries);
        h.write_u32(arch.bank_output_entries);
        h.write_u32(arch.array_output_entries);
        h.write_f64(arch.tile_wire_mm);
        h.write_f64(arch.ring_hop_mm);
    }
    h.write_u32(mapper.bin_size);
    match mapper.bvm {
        None => h.write(&[0]),
        Some(bvm) => {
            h.write(&[1]);
            h.write_u32(bvm.slot_bits);
            h.write_u32(bvm.slots_per_tile);
        }
    }
    h.write(&[u8::from(mapper.validate)]);
}

/// Derives the content address of an *analyzed* compile product from the
/// base compile key: the analyzer options determine the output images
/// (prune rewrites them), so they are part of the artifact's identity.
pub(crate) fn analysis_key(base: CacheKey, options: &rap_analyze::AnalyzeOptions) -> CacheKey {
    let mut h = StableHasher::new();
    h.write(&base.0.to_le_bytes());
    h.write_str("analyze");
    h.write(&[u8::from(options.prune)]);
    match options.soundness {
        None => h.write(&[0]),
        Some(cfg) => {
            h.write(&[1]);
            h.write_u64(cfg.max_configs as u64);
        }
    }
    h.finish()
}

/// Derives the content address of a *bounded* plan from the verified
/// plan's key: the bound options determine the attached bound analysis,
/// so they are part of the artifact's identity.
pub(crate) fn bounds_key(base: CacheKey, options: &rap_bound::BoundOptions) -> CacheKey {
    let mut h = StableHasher::new();
    h.write(&base.0.to_le_bytes());
    h.write_str("bound");
    match options.equivalence {
        None => h.write(&[0]),
        Some(cfg) => {
            h.write(&[1]);
            h.write_u64(cfg.max_configs as u64);
        }
    }
    h.finish()
}

/// Derives the content address of a *composed* (multi-tenant) plan from
/// the tenants' verified-plan keys. The pairs are hashed sorted by
/// tenant name — admission canonicalizes the same way, so any
/// permutation of one tenant set addresses one artifact. The admission
/// options are deliberately absent: they decide the verdict, not the
/// merged artifact's content.
pub(crate) fn compose_key(parts: &[(&str, CacheKey)]) -> CacheKey {
    let mut sorted: Vec<&(&str, CacheKey)> = parts.iter().collect();
    sorted.sort();
    let mut h = StableHasher::new();
    h.write_str("admit");
    h.write_u64(sorted.len() as u64);
    for (name, key) in sorted {
        h.write_str(name);
        h.write(&key.0.to_le_bytes());
    }
    h.finish()
}

/// Derives the content address of a post-swap composed plan from the
/// resident composition's key and the replacement tenant. Unlike
/// [`compose_key`] this is order-*sensitive*: the certificate pins the
/// replacement to the outgoing tenant's pattern window and match-ID
/// base, so swapping different tenants of the same resident set yields
/// different artifacts.
pub(crate) fn swap_key(
    resident: CacheKey,
    outgoing: &str,
    incoming_name: &str,
    incoming: CacheKey,
) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_str("swap");
    h.write(&resident.0.to_le_bytes());
    h.write_str(outgoing);
    h.write_str(incoming_name);
    h.write(&incoming.0.to_le_bytes());
    h.finish()
}

/// Running hit/miss totals for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the artifact.
    pub misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors_are_stable() {
        // Bit-for-bit stability is the whole point: pin two vectors.
        let mut h = StableHasher::new();
        h.write(b"");
        assert_eq!(h.finish().0, FNV_OFFSET);
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish().0, 0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964);
    }

    #[test]
    fn length_prefix_disambiguates() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn compose_key_is_order_insensitive() {
        let fwd = compose_key(&[("alpha", CacheKey(1)), ("bravo", CacheKey(2))]);
        let rev = compose_key(&[("bravo", CacheKey(2)), ("alpha", CacheKey(1))]);
        assert_eq!(fwd, rev);
        // ...but sensitive to the actual tenants and their plans.
        assert_ne!(fwd, compose_key(&[("alpha", CacheKey(1))]));
        assert_ne!(
            fwd,
            compose_key(&[("alpha", CacheKey(3)), ("bravo", CacheKey(2))])
        );
        assert_ne!(
            fwd,
            compose_key(&[("alpha", CacheKey(1)), ("charlie", CacheKey(2))])
        );
    }

    #[test]
    fn cache_key_text_form_round_trips() {
        let key = CacheKey(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let text = key.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(text.parse::<CacheKey>().unwrap(), key);
        assert!("not-hex".parse::<CacheKey>().is_err());
    }
}
