//! Staged evaluation pipeline for the RAP reproduction.
//!
//! The paper's evaluation (§5.2–§5.5) runs the same flow — parse →
//! compile → map → verify → simulate — for four machines across seven
//! suites. This crate extracts that flow into one engine with three
//! load-bearing properties:
//!
//! 1. **Typed stage artifacts.** The flow is a chain of owning types
//!    ([`PatternSet`] → [`CompiledSet`] → \[[`AnalyzedSet`] →\]
//!    [`MappedPlan`] → [`VerifiedPlan`] → [`rap_sim::RunResult`]); each
//!    transition is the only way to obtain the next artifact, so illegal
//!    orderings — e.g. simulating an unverified plan — are
//!    unrepresentable at compile time. The bracketed Analyze stage is
//!    opt-in ([`Pipeline::with_analysis`]): it lints the compiled images
//!    and, in prune mode, hands the mapper a semantically equivalent but
//!    smaller automaton.
//! 2. **Content-addressed caching.** Verified plans live in a tiered
//!    [`TieredStore`] keyed by a stable FNV-1a/128 hash of (pattern
//!    sources, machine, forced mode, `CompilerConfig`, `MapperConfig`):
//!    an in-memory tier means each distinct configuration compiles
//!    exactly once per process, and an optional persistent disk tier
//!    ([`Pipeline::with_store`]) carries plans across processes — a warm
//!    second run compiles nothing. Disk artifacts are untrusted: they
//!    re-enter through [`MappedPlan::verify`], so corruption is rejected,
//!    never simulated. Workload corpora are memoized process-wide
//!    ([`suite_corpus`]). Certified multi-tenant compositions
//!    ([`Pipeline::admit`]) live in the same store, addressed by an
//!    order-insensitive key over the tenants' plan keys.
//! 3. **Parallel fan-out with instrumentation.** Independent
//!    (machine × suite) cells run on scoped worker threads
//!    ([`Pipeline::grid`]), and every stage's wall-clock plus cache
//!    hit/miss and work-volume counters surface through a
//!    [`PipelineReport`].
//!
//! # Example
//!
//! ```
//! use rap_circuit::Machine;
//! use rap_pipeline::{BenchConfig, Pipeline};
//! use rap_workloads::Suite;
//!
//! let pipe = Pipeline::new(BenchConfig {
//!     patterns_per_suite: 8,
//!     input_len: 1_000,
//!     match_rate: 0.02,
//!     seed: 1,
//! });
//! let corpus = pipe.corpus(Suite::Snort);
//! let summary = pipe
//!     .eval(Machine::Rap, Suite::Snort, corpus.patterns(), corpus.input(), None)
//!     .expect("suite evaluates");
//! assert!(summary.throughput_gchps > 0.0);
//! // A second eval of the same cell hits the plan cache.
//! pipe.eval(Machine::Rap, Suite::Snort, corpus.patterns(), corpus.input(), None)
//!     .expect("cached");
//! assert_eq!(pipe.report().plan_cache.hits, 1);
//! ```

pub mod artifact;
pub mod cache;
pub mod driver;
pub mod error;
pub mod report;
pub mod store;
pub mod summary;
pub mod workload;

pub use artifact::{
    build_plan, build_plan_sim, AnalyzedSet, CompiledSet, MappedPlan, PatternSet, VerifiedPlan,
};
pub use cache::{CacheKey, CacheStats, StableHasher};
pub use driver::{default_workers, par_map, Admission, Pipeline, SwapOutcome};
pub use error::EvalError;
pub use report::{PipelineReport, Stage, STAGES};
pub use store::{
    ArtifactTier, DiskStore, DiskTier, MemoryTier, Persist, PersistError, StoreConfig, StoreEntry,
    TierLoad, TierStats, TieredStore, STORE_FORMAT_VERSION,
};
pub use summary::RunSummary;
pub use workload::{corpus_stats, suite_corpus, BenchConfig, SuiteCorpus};

pub use rap_admit::AdmitOptions;
pub use rap_analyze::{AnalyzeOptions, SoundnessConfig};
pub use rap_swap::SwapOptions;
