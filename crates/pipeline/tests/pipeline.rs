//! End-to-end properties of the staged pipeline: cache hits are
//! bit-identical to cold compiles, the parallel grid driver computes
//! exactly what the serial path computes, and the verify gate rejects
//! corrupted placements (the only road to simulation is a verified plan).

use proptest::prelude::*;
use rap_circuit::Machine;
use rap_compiler::Mode;
use rap_mapper::{ArrayKind, Mapping};
use rap_pipeline::{
    build_plan, ArtifactTier, BenchConfig, CacheKey, DiskTier, EvalError, MappedPlan, PatternSet,
    Persist, Pipeline, RunSummary, StoreConfig, TierLoad, VerifiedPlan,
};
use rap_sim::Simulator;
use rap_workloads::Suite;
use serde::Serialize as _;
use std::sync::Arc;

fn tiny() -> BenchConfig {
    BenchConfig {
        patterns_per_suite: 10,
        input_len: 2_000,
        match_rate: 0.02,
        seed: 1234,
    }
}

/// A cache hit must be indistinguishable from the cold compile it reuses:
/// same shared artifact, and bit-identical images, placement, and
/// simulation summary compared with an independent cold build.
#[test]
fn cache_hit_is_bit_identical_to_cold_compile() {
    let pipe = Pipeline::new(tiny());
    let corpus = pipe.corpus(Suite::Snort);
    let sim = pipe.simulator_for(Machine::Rap, Suite::Snort);

    let cold = pipe.plan(&sim, corpus.patterns(), None).expect("cold plan");
    let hit = pipe
        .plan(&sim, corpus.patterns(), None)
        .expect("cached plan");
    assert!(Arc::ptr_eq(&cold, &hit), "hit must reuse the artifact");
    let stats = pipe.report().plan_cache;
    assert_eq!((stats.misses, stats.hits), (1, 1));

    // An independent cold build outside the cache must agree bit for bit.
    let fresh = build_plan(&sim, corpus.patterns(), None).expect("fresh plan");
    assert_eq!(
        format!("{:?}", fresh.compiled().images()),
        format!("{:?}", hit.compiled().images()),
        "hardware images must be identical"
    );
    assert_eq!(
        fresh.mapping(),
        hit.mapping(),
        "array placement must be identical"
    );
    let a = RunSummary::of(
        &fresh.simulate(corpus.input()),
        fresh.compiled().state_count(),
    );
    let b = RunSummary::of(&hit.simulate(corpus.input()), hit.compiled().state_count());
    assert_eq!(a, b, "simulation results must be identical");
}

/// The parallel (machine × suite) fan-out must produce exactly the
/// summaries the serial driver produces, in the same order.
#[test]
fn parallel_grid_equals_serial() {
    let cells: Vec<(Machine, Suite)> = [Suite::Snort, Suite::Yara]
        .into_iter()
        .flat_map(|s| Machine::all().into_iter().map(move |m| (m, s)))
        .collect();

    let serial = Pipeline::new(tiny()).with_workers(1);
    let parallel = Pipeline::new(tiny()).with_workers(4);
    let eval = |pipe: &Pipeline, (machine, suite): (Machine, Suite)| -> RunSummary {
        let corpus = pipe.corpus(suite);
        pipe.eval(machine, suite, corpus.patterns(), corpus.input(), None)
            .expect("cell evaluates")
    };
    let a = serial.grid(cells.clone(), |cell| eval(&serial, cell));
    let b = parallel.grid(cells.clone(), |cell| eval(&parallel, cell));
    assert_eq!(a, b, "parallel grid must match serial results");
    assert_eq!(a.len(), cells.len());
    assert!(
        parallel.report().max_workers >= 2,
        "grid must actually fan out"
    );
}

/// Random compilable NFA-mode patterns (loops over distinct literals).
fn arb_sources() -> impl Strategy<Value = Vec<String>> {
    let pat = (0u8..4, 0u8..4).prop_map(|(a, b)| {
        format!(
            "{}.*{}",
            (b'a' + a) as char,
            (b'w' + b) as char // distinct tail alphabet
        )
    });
    prop::collection::vec(pat, 1..5)
}

/// Random NBVA-mode sources: bounded repetitions of a character class
/// whose bounds survive unfolding (threshold 4), so the bit-vector IR is
/// genuinely exercised.
fn arb_nbva_sources() -> impl Strategy<Value = Vec<String>> {
    let pat = (0u8..4, 5u32..9, 0u32..6)
        .prop_map(|(a, lo, extra)| format!("{}[xy]{{{lo},{}}}z", (b'a' + a) as char, lo + extra));
    prop::collection::vec(pat, 1..4)
}

/// Random LNFA-mode sources: plain literal runs, which the sequence
/// rewriting always accepts.
fn arb_lnfa_sources() -> impl Strategy<Value = Vec<String>> {
    let pat = prop::collection::vec(0u8..26, 4..12).prop_map(|chars| {
        chars
            .into_iter()
            .map(|c| (b'a' + c) as char)
            .collect::<String>()
    });
    prop::collection::vec(pat, 1..4)
}

/// Sets one placement tile index to a value no array has, returning
/// whether anything was mutated.
fn corrupt_one_tile(mapping: &mut Mapping, victim: usize) -> bool {
    for array in &mut mapping.arrays {
        if let ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } = &mut array.kind
        {
            for p in placements.iter_mut() {
                let slot = victim % p.state_tile.len().max(1);
                if let Some(t) = p.state_tile.get_mut(slot) {
                    *t = 99;
                    return true;
                }
            }
        }
    }
    false
}

/// A payload whose framing and checksum are valid but whose mapping is
/// semantically illegal must be rejected by the disk tier *through the
/// verify gate* — counted as corrupt and discarded, never a panic and
/// never a trusted plan.
#[test]
fn semantically_tampered_payload_is_rejected_through_verify() {
    let dir = std::env::temp_dir().join(format!(
        "rap-pipeline-tamper-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let sim = Simulator::new(Machine::Rap);
    let pats = PatternSet::parse(&["a.*z".to_string()]).expect("parses");
    let compiled = pats.compile(&sim, None).expect("compiles");
    let mut mapping = sim.map(compiled.images());
    assert!(corrupt_one_tile(&mut mapping, 0), "plan has a placement");
    assert!(
        MappedPlan::from_parts(compiled.clone(), mapping.clone())
            .verify()
            .is_err(),
        "the tampered mapping must be illegal"
    );

    // Encode exactly the way `Persist` does, so the header, framing, and
    // checksum the store writes are all valid — only the *meaning* is bad.
    let mut e = serde::bin::Encoder::new();
    compiled.serialize(&mut e);
    mapping.serialize(&mut e);
    let payload = e.into_bytes();

    let tier = DiskTier::<VerifiedPlan>::open(StoreConfig::at(&dir)).expect("store opens");
    let key = CacheKey(0xDEAD_BEEF);
    tier.disk().store(key, &payload);
    assert!(
        tier.disk().load(key).is_some(),
        "the raw bytes pass the integrity check"
    );

    assert!(
        matches!(tier.load(key), TierLoad::Corrupt),
        "the typed load must reject the plan through Verify"
    );
    assert_eq!(tier.disk().stats().corrupt, 1, "counted as corrupt");
    assert!(
        !tier.disk().path_for(key).exists(),
        "the poisoned entry is discarded"
    );
    assert!(
        matches!(tier.load(key), TierLoad::Miss),
        "subsequent loads are plain misses"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Persistence round-trip across all three compiled IRs: a verified
    /// plan's payload must decode back (through the untrusted
    /// `from_parts` → Verify door) to a plan whose re-serialization is
    /// bit-identical, with equal placements and hardware images.
    #[test]
    fn persisted_plans_round_trip_bit_identically(
        nfa in arb_sources(),
        nbva in arb_nbva_sources(),
        lnfa in arb_lnfa_sources(),
    ) {
        let sim = Simulator::new(Machine::Rap);
        let cases: [(&Vec<String>, Option<Mode>); 3] =
            [(&nfa, None), (&nbva, Some(Mode::Nbva)), (&lnfa, Some(Mode::Lnfa))];
        for (sources, forced) in cases {
            let pats = PatternSet::parse(sources).expect("sources parse");
            let plan = build_plan(&sim, &pats, forced).expect("plan builds");
            let payload = plan.to_payload();
            let restored = VerifiedPlan::from_payload(&payload)
                .expect("a faithful payload re-verifies");
            prop_assert_eq!(
                restored.to_payload(),
                payload,
                "re-serialization must be bit-identical ({:?})",
                forced
            );
            prop_assert_eq!(restored.mapping(), plan.mapping());
            prop_assert_eq!(
                format!("{:?}", restored.compiled().images()),
                format!("{:?}", plan.compiled().images())
            );
        }
    }

    /// Corrupting any placement tile index must trip the verify gate:
    /// `MappedPlan::verify` refuses the plan, so no `VerifiedPlan` (and
    /// therefore no simulation) can exist for it. The uncorrupted twin of
    /// the same plan must verify.
    #[test]
    fn corrupted_placements_never_verify(
        sources in arb_sources(),
        victim in 0usize..64,
    ) {
        let sim = Simulator::new(Machine::Rap);
        let pats = PatternSet::parse(&sources).expect("sources parse");
        let compiled = pats.compile(&sim, None).expect("sources compile");
        let mut mapping = sim.map(compiled.images());

        // The pristine placement passes the gate.
        let pristine = MappedPlan::from_parts(compiled.clone(), mapping.clone());
        prop_assert!(pristine.verify().is_ok(), "mapper output must verify");

        // Corrupt one placement's tile index to a value no array has.
        let mut corrupted = false;
        'outer: for array in &mut mapping.arrays {
            if let ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } =
                &mut array.kind
            {
                for p in placements.iter_mut() {
                    let slot = victim % p.state_tile.len().max(1);
                    if let Some(t) = p.state_tile.get_mut(slot) {
                        *t = 99;
                        corrupted = true;
                        break 'outer;
                    }
                }
            }
        }
        prop_assume!(corrupted);

        match MappedPlan::from_parts(compiled, mapping).verify() {
            Err(EvalError::IllegalMapping { machine, report }) => {
                prop_assert_eq!(machine, Machine::Rap);
                prop_assert!(!report.is_legal());
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
            Ok(_) => prop_assert!(false, "corrupted plan must not verify"),
        }
    }
}
