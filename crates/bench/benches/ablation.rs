//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! BV depth, bin size, unfold threshold, and unified storage vs a fixed
//! BVM (the BVAP-style alternative).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rap_bench::eval::{BenchConfig, ModeSplit};
use rap_bench::{suite_input, suite_regexes};
use rap_circuit::Machine;
use rap_compiler::Mode;
use rap_sim::Simulator;
use rap_workloads::Suite;

fn cfg() -> BenchConfig {
    BenchConfig {
        patterns_per_suite: 40,
        input_len: 10_000,
        match_rate: 0.02,
        seed: 42,
    }
}

/// Sweep the BV depth on an NBVA-heavy workload; Criterion tracks the
/// simulation wall-time, and the run prints the modeled energy/area so the
/// trade-off of Fig. 10(a) is visible alongside.
fn ablate_bv_depth(c: &mut Criterion) {
    let config = cfg();
    let patterns = suite_regexes(Suite::ClamAv, &config);
    let nbva = ModeSplit::of(&patterns).nbva;
    let input = suite_input(Suite::ClamAv, &config);
    let mut group = c.benchmark_group("ablation/bv_depth");
    for depth in [4u32, 8, 16, 32] {
        let sim = Simulator::new(Machine::Rap).with_bv_depth(depth);
        let compiled = sim.compile_forced(&nbva, Mode::Nbva).expect("compiles");
        let mapping = sim.map(&compiled);
        let result = sim.simulate(&compiled, &mapping, &input);
        println!(
            "[bv_depth={depth}] energy={:.1} uJ area={:.3} mm2 thpt={:.2} Gch/s",
            result.metrics.energy_uj,
            result.metrics.area_mm2,
            result.metrics.throughput_gchps()
        );
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| sim.simulate(&compiled, &mapping, &input));
        });
    }
    group.finish();
}

/// Sweep the LNFA bin size (Fig. 10(b)).
fn ablate_bin_size(c: &mut Criterion) {
    let config = cfg();
    let patterns = suite_regexes(Suite::Prosite, &config);
    let lnfa = ModeSplit::of(&patterns).lnfa;
    let input = suite_input(Suite::Prosite, &config);
    let mut group = c.benchmark_group("ablation/bin_size");
    for bin in [1u32, 4, 16, 32] {
        let sim = Simulator::new(Machine::Rap).with_bin_size(bin);
        let compiled = sim.compile_forced(&lnfa, Mode::Lnfa).expect("compiles");
        let mapping = sim.map(&compiled);
        let result = sim.simulate(&compiled, &mapping, &input);
        println!(
            "[bin_size={bin}] energy={:.1} uJ area={:.3} mm2",
            result.metrics.energy_uj, result.metrics.area_mm2
        );
        group.bench_with_input(BenchmarkId::from_parameter(bin), &bin, |b, _| {
            b.iter(|| sim.simulate(&compiled, &mapping, &input));
        });
    }
    group.finish();
}

/// Unified CC/BV storage (RAP) vs fixed bit-vector modules (BVAP-style):
/// the headline architectural ablation.
fn ablate_unified_storage(c: &mut Criterion) {
    let config = cfg();
    let patterns = suite_regexes(Suite::Yara, &config);
    let input = suite_input(Suite::Yara, &config);
    let mut group = c.benchmark_group("ablation/storage");
    for machine in [Machine::Rap, Machine::Bvap] {
        let sim = Simulator::new(machine);
        let compiled = sim.compile(&patterns).expect("compiles");
        let mapping = sim.map(&compiled);
        let result = sim.simulate(&compiled, &mapping, &input);
        println!(
            "[{}] energy={:.1} uJ area={:.3} mm2",
            machine, result.metrics.energy_uj, result.metrics.area_mm2
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(machine.name()),
            &machine,
            |b, _| b.iter(|| sim.simulate(&compiled, &mapping, &input)),
        );
    }
    group.finish();
}

/// Unfold-threshold sweep: low thresholds keep tiny repetitions as BVs
/// (more stalls); high thresholds unfold big repetitions (more states).
fn ablate_unfold_threshold(c: &mut Criterion) {
    let config = cfg();
    let patterns = suite_regexes(Suite::Snort, &config);
    let input = suite_input(Suite::Snort, &config);
    let mut group = c.benchmark_group("ablation/unfold_threshold");
    for threshold in [2u32, 4, 8, 16] {
        let mut sim = Simulator::new(Machine::Rap);
        sim.compiler.unfold_threshold = threshold;
        let compiled = sim.compile(&patterns).expect("compiles");
        let mapping = sim.map(&compiled);
        let result = sim.simulate(&compiled, &mapping, &input);
        println!(
            "[threshold={threshold}] energy={:.1} uJ area={:.3} mm2 stalls={}",
            result.metrics.energy_uj, result.metrics.area_mm2, result.stall_cycles
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, _| b.iter(|| sim.simulate(&compiled, &mapping, &input)),
        );
    }
    group.finish();
}

/// Bit vectors vs counter sets: the execution-model ablation behind the
/// NBVA choice (§2.1 relates the two; the hardware picks bit vectors
/// because they reuse the CAM). Software cost tells the same story per
/// workload shape: shift cost is O(width/64) regardless of live threads,
/// counter cost is O(live threads) regardless of width.
fn ablate_bv_vs_counters(c: &mut Criterion) {
    use rap_automata::nbva::Nbva;
    use rap_automata::nca::NcaRun;

    let mut group = c.benchmark_group("ablation/bv_vs_counters");
    // Dense regime: every byte extends the repetition, many live threads.
    let dense_re = rap_regex::parse("cc{2000}").expect("parses");
    let dense_nbva = Nbva::from_regex(&dense_re, 4);
    let dense_input = vec![b'c'; 10_000];
    group.bench_function("dense/bit_vector", |b| {
        b.iter(|| {
            let mut run = dense_nbva.start();
            for &byte in &dense_input {
                std::hint::black_box(run.step(byte));
            }
        });
    });
    group.bench_function("dense/counters", |b| {
        b.iter(|| std::hint::black_box(NcaRun::match_ends(&dense_nbva, &dense_input)));
    });
    // Sparse regime: a huge width but threads enter rarely and die fast.
    let sparse_re = rap_regex::parse("zq{4000}").expect("parses");
    let sparse_nbva = Nbva::from_regex(&sparse_re, 4);
    let sparse_input: Vec<u8> = (0..10_000u32)
        .map(|i| if i % 97 == 0 { b'z' } else { b'q' })
        .collect();
    group.bench_function("sparse/bit_vector", |b| {
        b.iter(|| {
            let mut run = sparse_nbva.start();
            for &byte in &sparse_input {
                std::hint::black_box(run.step(byte));
            }
        });
    });
    group.bench_function("sparse/counters", |b| {
        b.iter(|| std::hint::black_box(NcaRun::match_ends(&sparse_nbva, &sparse_input)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablate_bv_depth, ablate_bin_size, ablate_unified_storage,
        ablate_unfold_threshold, ablate_bv_vs_counters
}
criterion_main!(benches);
