//! Criterion microbenchmarks of the individual pipeline stages: parsing,
//! Glushkov construction, software matching, compilation, mapping, and the
//! cycle simulator itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rap_automata::nfa::Nfa;
use rap_bench::eval::BenchConfig;
use rap_bench::{suite_input, suite_regexes};
use rap_circuit::Machine;
use rap_engines::{BatchEngine, Engine, NfaEngine, ShiftAndEngine};
use rap_sim::Simulator;
use rap_workloads::Suite;

fn cfg() -> BenchConfig {
    BenchConfig {
        patterns_per_suite: 60,
        input_len: 20_000,
        match_rate: 0.02,
        seed: 42,
    }
}

fn bench_parser(c: &mut Criterion) {
    let patterns = rap_workloads::generate_patterns(Suite::Snort, 200, 1);
    let bytes: usize = patterns.iter().map(String::len).sum();
    let mut group = c.benchmark_group("parser");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("snort_200_patterns", |b| {
        b.iter(|| {
            for p in &patterns {
                std::hint::black_box(rap_regex::parse(p).expect("parses"));
            }
        });
    });
    group.finish();
}

fn bench_glushkov(c: &mut Criterion) {
    let regexes = suite_regexes(Suite::RegexLib, &cfg());
    c.bench_function("glushkov/regexlib_60", |b| {
        b.iter(|| {
            for re in &regexes {
                std::hint::black_box(Nfa::from_regex(re));
            }
        });
    });
}

fn bench_engines(c: &mut Criterion) {
    let config = cfg();
    let regexes = suite_regexes(Suite::SpamAssassin, &config);
    let input = suite_input(Suite::SpamAssassin, &config);
    let mut group = c.benchmark_group("engines");
    group.throughput(Throughput::Bytes(input.len() as u64));
    let shift_and = ShiftAndEngine::new(&regexes);
    group.bench_function("shift_and", |b| b.iter(|| shift_and.scan(&input)));
    let batch = BatchEngine::new(&regexes, 4096);
    group.bench_function("batch", |b| b.iter(|| batch.scan(&input)));
    let interp = NfaEngine::new(&regexes);
    group.bench_function("nfa_interp", |b| b.iter(|| interp.scan(&input)));
    group.finish();
}

fn bench_compile_map(c: &mut Criterion) {
    let regexes = suite_regexes(Suite::ClamAv, &cfg());
    let sim = Simulator::new(Machine::Rap);
    c.bench_function("compile/clamav_60", |b| {
        b.iter(|| std::hint::black_box(sim.compile(&regexes).expect("compiles")));
    });
    let compiled = sim.compile(&regexes).expect("compiles");
    c.bench_function("map/clamav_60", |b| {
        b.iter(|| std::hint::black_box(sim.map(&compiled)));
    });
}

fn bench_simulator(c: &mut Criterion) {
    let config = cfg();
    let mut group = c.benchmark_group("simulator");
    for suite in [Suite::SpamAssassin, Suite::ClamAv] {
        let regexes = suite_regexes(suite, &config);
        let input = suite_input(suite, &config);
        group.throughput(Throughput::Bytes(input.len() as u64));
        for machine in Machine::all() {
            let sim = Simulator::new(machine);
            let compiled = sim.compile(&regexes).expect("compiles");
            let mapping = sim.map(&compiled);
            group.bench_with_input(
                BenchmarkId::new(format!("{machine}"), suite.name()),
                &input,
                |b, input| b.iter(|| sim.simulate(&compiled, &mapping, input)),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_glushkov,
    bench_engines,
    bench_compile_map,
    bench_simulator
);
criterion_main!(benches);
