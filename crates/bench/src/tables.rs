//! Plain-text table rendering and CSV output.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV under `results/`, creating the directory.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (the harness treats them as fatal).
    pub fn write_csv(&self, name: &str) {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir).expect("create results/");
        let mut csv = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        csv.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            csv.push('\n');
        }
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        println!("[written {}]", path.display());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Geometric mean of a slice (ignores non-positive entries).
pub fn geomean(xs: &[f64]) -> f64 {
    let pos: Vec<f64> = xs.iter().copied().filter(|&x| x > 0.0).collect();
    if pos.is_empty() {
        return 0.0;
    }
    (pos.iter().map(|x| x.ln()).sum::<f64>() / pos.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "2.50"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(ratio(2.5), "2.50x");
    }
}
