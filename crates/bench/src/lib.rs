//! Evaluation harness for the RAP reproduction (§5 of the paper).
//!
//! Each table and figure of the paper's evaluation is a function in
//! [`experiments`], driven by one shared [`Pipeline`] (see `rap-pipeline`)
//! whose content-addressed plan cache compiles each (suite,
//! machine-config) pattern set exactly once per process and whose grid
//! driver fans independent (machine × suite) cells out over worker
//! threads. The `src/bin/*` binaries are thin wrappers.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p rap-bench --bin table2
//! cargo run --release -p rap-bench --bin all_experiments
//! ```
//!
//! Results are also written as CSV under `results/`; `all_experiments`
//! finishes with the pipeline's stage-timing and cache-counter report.

pub mod eval;
pub mod experiments;
pub mod tables;

pub use eval::{
    eval_machine, eval_rap_by_mode, suite_input, suite_regexes, BenchConfig, EvalError, ModeSplit,
    RunSummary,
};
pub use rap_pipeline::{Pipeline, PipelineReport};

/// Standard scale knobs for the harness, overridable via environment
/// variables so CI can run quick versions:
///
/// * `RAP_BENCH_PATTERNS` — patterns per suite (default 120),
/// * `RAP_BENCH_INPUT` — input length in bytes (default 100 000, matching
///   the paper's §5.4 streams),
/// * `RAP_BENCH_SEED` — RNG seed (default 42).
pub fn config_from_env() -> eval::BenchConfig {
    let get = |key: &str, default: usize| -> usize {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    eval::BenchConfig {
        patterns_per_suite: get("RAP_BENCH_PATTERNS", 300),
        input_len: get("RAP_BENCH_INPUT", 100_000),
        match_rate: 0.02,
        seed: get("RAP_BENCH_SEED", 42) as u64,
    }
}
