//! Evaluation harness for the RAP reproduction (§5 of the paper).
//!
//! Each table and figure of the paper's evaluation is a function in
//! [`experiments`], driven by one shared [`Pipeline`] (see `rap-pipeline`)
//! whose content-addressed plan cache compiles each (suite,
//! machine-config) pattern set exactly once per process and whose grid
//! driver fans independent (machine × suite) cells out over worker
//! threads. The `src/bin/*` binaries are thin wrappers.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p rap-bench --bin table2
//! cargo run --release -p rap-bench --bin all_experiments
//! ```
//!
//! Results are also written as CSV under `results/`; `all_experiments`
//! finishes with the pipeline's stage-timing and cache-counter report.
//!
//! Setting `RAP_TRACE=1` additionally attaches the telemetry subsystem:
//! each experiment then writes `results/<name>_trace.jsonl` (cycle-sampled
//! simulator probe events) and `results/<name>_metrics.prom` (a
//! Prometheus-style metrics snapshot) next to its CSVs.

pub mod eval;
pub mod experiments;
pub mod tables;

pub use eval::{
    eval_machine, eval_rap_by_mode, suite_input, suite_regexes, BenchConfig, EvalError, ModeSplit,
    RunSummary,
};
pub use rap_pipeline::{Pipeline, PipelineReport, StoreConfig};
pub use rap_telemetry::Telemetry;

use std::sync::Arc;

/// Standard scale knobs for the harness, overridable via environment
/// variables so CI can run quick versions:
///
/// * `RAP_BENCH_PATTERNS` — patterns per suite (default 120),
/// * `RAP_BENCH_INPUT` — input length in bytes (default 100 000, matching
///   the paper's §5.4 streams),
/// * `RAP_BENCH_SEED` — RNG seed (default 42).
pub fn config_from_env() -> eval::BenchConfig {
    let get = |key: &str, default: usize| -> usize {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    eval::BenchConfig {
        patterns_per_suite: get("RAP_BENCH_PATTERNS", 300),
        input_len: get("RAP_BENCH_INPUT", 100_000),
        match_rate: 0.02,
        seed: get("RAP_BENCH_SEED", 42) as u64,
    }
}

/// The environment-gated telemetry context (`RAP_TRACE=1`, with
/// `RAP_TRACE_SAMPLE` / `RAP_TRACE_RING` tuning), or `None` when tracing
/// is off.
pub fn telemetry_from_env() -> Option<Arc<Telemetry>> {
    Telemetry::from_env()
}

/// The environment-gated persistent artifact store: `RAP_STORE_DIR`
/// names the directory (with `RAP_STORE_MAX_BYTES` optionally bounding
/// it for LRU eviction), or `None` when unset — harness runs stay
/// self-contained unless the caller opts in.
pub fn store_from_env() -> Option<StoreConfig> {
    let dir = std::env::var_os("RAP_STORE_DIR").filter(|v| !v.is_empty())?;
    let mut config = StoreConfig::at(std::path::PathBuf::from(dir));
    if let Some(max) = std::env::var("RAP_STORE_MAX_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        config = config.with_max_bytes(max);
    }
    Some(config)
}

/// A pipeline at the [`config_from_env`] scale with telemetry attached
/// when `RAP_TRACE` enables it and the persistent artifact store
/// attached when `RAP_STORE_DIR` names one — the constructor every
/// `src/bin/*` harness binary uses. With a store, a warm re-run of the
/// full evaluation loads every plan from disk and compiles nothing.
///
/// # Panics
///
/// Panics when `RAP_STORE_DIR` is set but the directory cannot be
/// created (the harness treats setup I/O errors as fatal).
pub fn pipeline_from_env() -> Pipeline {
    let mut pipe = Pipeline::new(config_from_env());
    if let Some(telemetry) = telemetry_from_env() {
        pipe = pipe.with_telemetry(telemetry);
    }
    if let Some(config) = store_from_env() {
        let dir = config.dir.clone();
        pipe = pipe
            .with_store(config)
            .unwrap_or_else(|e| panic!("open artifact store at {}: {e}", dir.display()));
    }
    pipe
}

/// Writes the experiment's trace artifacts under `results/`:
/// `<name>_trace.jsonl` with the probe events journalled since the last
/// export (the journal drains, so back-to-back experiments get disjoint
/// traces) and `<name>_metrics.prom` with the cumulative metrics
/// snapshot. A no-op when the pipeline has no telemetry attached.
///
/// # Panics
///
/// Panics on I/O errors (the harness treats them as fatal).
pub fn export_trace(pipe: &Pipeline, name: &str) {
    let Some(telemetry) = pipe.telemetry() else {
        return;
    };
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    let trace = dir.join(format!("{name}_trace.jsonl"));
    std::fs::write(&trace, telemetry.drain_jsonl())
        .unwrap_or_else(|e| panic!("write {trace:?}: {e}"));
    println!("[written {}]", trace.display());
    let prom = dir.join(format!("{name}_metrics.prom"));
    std::fs::write(&prom, telemetry.prometheus()).unwrap_or_else(|e| panic!("write {prom:?}: {e}"));
    println!("[written {}]", prom.display());
}
