//! Every table and figure of the paper's evaluation, as library functions
//! over one shared [`Pipeline`].
//!
//! The `src/bin/*` harness binaries are thin wrappers around these
//! functions; `all_experiments` calls [`all`] so the whole evaluation runs
//! in a single process sharing one content-addressed plan cache — each
//! (suite, machine-config) pattern set compiles exactly once no matter how
//! many tables request it, and independent (machine × suite) cells fan out
//! over the pipeline's worker pool.
//!
//! A cell that fails to compile or verify prints a `[skipping …]` note and
//! drops its row instead of aborting the run.

use crate::eval::{eval_machine, eval_rap_by_mode, ModeSplit};
use crate::tables::{f2, geomean, ratio, Table};
use rap_circuit::Machine;
use rap_compiler::Mode;
use rap_engines::power::{CPU_SOCKET_W, GPU_BOARD_W};
use rap_engines::{measure_throughput_gchps, BatchEngine, HybridEngine};
use rap_pipeline::{EvalError, PatternSet, Pipeline, RunSummary, SuiteCorpus};
use rap_sim::Simulator;
use rap_workloads::anmlzoo::AnmlZoo;
use rap_workloads::{generate_input, Suite};
use std::sync::Arc;

/// Materialized per-suite work for a mode-filtered table: the suite, the
/// mode-subset pattern set, and the shared corpus (for its input stream).
struct SuiteWork {
    suite: Suite,
    patterns: PatternSet,
    corpus: Arc<SuiteCorpus>,
}

/// Builds the per-suite subsets for one decided mode, dropping suites
/// whose subset is empty.
fn mode_subsets(
    pipe: &Pipeline,
    suites: &[Suite],
    pick: impl Fn(ModeSplit) -> Vec<rap_regex::Regex>,
) -> Vec<SuiteWork> {
    suites
        .iter()
        .filter_map(|&suite| {
            let corpus = pipe.corpus(suite);
            let subset = pick(ModeSplit::of(&corpus.regexes()));
            if subset.is_empty() {
                return None;
            }
            Some(SuiteWork {
                suite,
                patterns: PatternSet::from_regexes(&subset),
                corpus,
            })
        })
        .collect()
}

/// Fans a (row × column) grid of evaluation cells out over the pipeline's
/// workers and reassembles complete rows, skipping rows with failed cells.
fn eval_grid(
    pipe: &Pipeline,
    work: &[SuiteWork],
    cols: &[(Machine, Option<Mode>)],
) -> Vec<(Suite, Vec<RunSummary>)> {
    let cells: Vec<(usize, usize)> = (0..work.len())
        .flat_map(|r| (0..cols.len()).map(move |c| (r, c)))
        .collect();
    let results = pipe.grid(cells, |(r, c)| {
        let w = &work[r];
        let (machine, forced) = cols[c];
        pipe.eval(machine, w.suite, &w.patterns, w.corpus.input(), forced)
    });
    collect_rows(work.iter().map(|w| w.suite), &results, cols.len())
}

/// Groups a flat row-major cell-result vector back into per-suite rows.
fn collect_rows(
    suites: impl Iterator<Item = Suite>,
    results: &[Result<RunSummary, EvalError>],
    width: usize,
) -> Vec<(Suite, Vec<RunSummary>)> {
    suites
        .zip(results.chunks(width))
        .filter_map(
            |(suite, chunk)| match chunk.iter().cloned().collect::<Result<Vec<_>, _>>() {
                Ok(cells) => Some((suite, cells)),
                Err(e) => {
                    println!("[skipping {suite}: {e}]");
                    None
                }
            },
        )
        .collect()
}

/// Renders one mode-comparison table family (Tables 2 and 3 share this
/// shape: three metrics, five machine columns, geomean ratio row).
fn mode_table(
    rows: &[(Suite, Vec<RunSummary>)],
    machines: &[&str; 5],
    baseline: &str,
    csv_prefix: &str,
) {
    type Get = fn(&RunSummary) -> f64;
    let metrics: [(&str, Get, &str); 3] = [
        ("Energy (uJ)", |s: &RunSummary| s.energy_uj, "energy"),
        ("Area (mm2)", |s: &RunSummary| s.area_mm2, "area"),
        (
            "Throughput (Gch/s)",
            |s: &RunSummary| s.throughput_gchps,
            "throughput",
        ),
    ];
    for (metric, get, csv_suffix) in metrics {
        println!("\n== {metric} ==");
        let mut table = Table::new(std::iter::once("Dataset").chain(machines.iter().copied()));
        let mut ratios = vec![Vec::new(); machines.len()];
        for (suite, cells) in rows {
            let base = get(&cells[0]);
            let mut line = vec![suite.name().to_string()];
            for (i, cell) in cells.iter().enumerate() {
                line.push(f2(get(cell)));
                ratios[i].push(get(cell) / base);
            }
            table.row(line);
        }
        let mut avg = vec![format!("Average (vs {baseline})")];
        for r in &ratios {
            avg.push(ratio(geomean(r)));
        }
        table.row(avg);
        print!("{}", table.render());
        table.write_csv(&format!("{csv_prefix}_{csv_suffix}"));
    }
}

/// Fig. 1 — the proportion of regexes representable by NFA, NBVA, and
/// LNFA in each of the seven benchmarks.
pub fn fig1(pipe: &Pipeline) {
    let cfg = pipe.spec();
    println!("Fig. 1 — regex model proportions per benchmark");
    println!(
        "({} synthetic patterns per suite, seed {})\n",
        cfg.patterns_per_suite, cfg.seed
    );
    let mut table = Table::new(["Benchmark", "NFA %", "NBVA %", "LNFA %"]);
    for suite in Suite::all() {
        let corpus = pipe.corpus(suite);
        let split = ModeSplit::of(&corpus.regexes());
        let n = corpus.patterns().len() as f64;
        table.row([
            suite.name().to_string(),
            f2(100.0 * split.nfa.len() as f64 / n),
            f2(100.0 * split.nbva.len() as f64 / n),
            f2(100.0 * split.lnfa.len() as f64 / n),
        ]);
    }
    print!("{}", table.render());
    table.write_csv("fig1");
    crate::export_trace(pipe, "fig1");
}

/// Fig. 10 — design-space exploration: (a) NBVA BV depth, (b) LNFA bin
/// size. `which` is `"nbva"`, `"lnfa"`, or `"both"`.
pub fn fig10(pipe: &Pipeline, which: &str) {
    if which == "nbva" || which == "both" {
        dse_nbva(pipe);
    }
    if which == "lnfa" || which == "both" {
        dse_lnfa(pipe);
    }
    crate::export_trace(pipe, "fig10");
}

/// One DSE sweep: evaluates every (suite, knob) cell on the grid and
/// returns rows of summaries grouped by suite, knob-major within a suite.
fn dse_sweep(
    pipe: &Pipeline,
    work: &[SuiteWork],
    knobs: &[u32],
    forced: Mode,
    sim_for: impl Fn(u32) -> Simulator + Sync,
) -> Vec<(Suite, Vec<RunSummary>)> {
    let cells: Vec<(usize, usize)> = (0..work.len())
        .flat_map(|r| (0..knobs.len()).map(move |k| (r, k)))
        .collect();
    let results = pipe.grid(cells, |(r, k)| {
        let w = &work[r];
        pipe.eval_with(
            &sim_for(knobs[k]),
            &w.patterns,
            w.corpus.input(),
            Some(forced),
        )
    });
    collect_rows(work.iter().map(|w| w.suite), &results, knobs.len())
}

fn dse_nbva(pipe: &Pipeline) {
    println!("Fig. 10(a) — NBVA DSE over BV depth (normalized to depth 4)\n");
    let depths = [4u32, 8, 16, 32];
    let work = mode_subsets(pipe, &Suite::all(), |s| s.nbva);
    let rows = dse_sweep(pipe, &work, &depths, Mode::Nbva, |d| {
        Simulator::new(Machine::Rap).with_bv_depth(d)
    });
    let mut table = Table::new(["Dataset", "depth", "energy", "area", "throughput", "chosen"]);
    for (suite, runs) in &rows {
        let base = &runs[0];
        for (&d, r) in depths.iter().zip(runs.iter()) {
            let chosen = if d == suite.chosen_bv_depth() {
                "<-"
            } else {
                ""
            };
            table.row([
                suite.name().to_string(),
                d.to_string(),
                f2(r.energy_uj / base.energy_uj),
                f2(r.area_mm2 / base.area_mm2),
                f2(r.throughput_gchps / base.throughput_gchps),
                chosen.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    table.write_csv("fig10a_nbva_dse");
}

fn dse_lnfa(pipe: &Pipeline) {
    println!("\nFig. 10(b) — LNFA DSE over bin size (normalized to bin 1)\n");
    let bins = [1u32, 2, 4, 8, 16, 32];
    let work = mode_subsets(pipe, &Suite::all(), |s| s.lnfa);
    let rows = dse_sweep(pipe, &work, &bins, Mode::Lnfa, |b| {
        Simulator::new(Machine::Rap).with_bin_size(b)
    });
    let mut table = Table::new(["Dataset", "bin", "energy", "area", "chosen"]);
    for (suite, runs) in &rows {
        let base = &runs[0];
        for (&b, r) in bins.iter().zip(runs.iter()) {
            let chosen = if b == suite.chosen_bin_size() {
                "<-"
            } else {
                ""
            };
            table.row([
                suite.name().to_string(),
                b.to_string(),
                f2(r.energy_uj / base.energy_uj),
                f2(r.area_mm2 / base.area_mm2),
                chosen.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    table.write_csv("fig10b_lnfa_dse");
}

/// Table 2 — NBVA mode of RAP (baseline) vs NFA mode of RAP, CAMA, BVAP,
/// and CA, on the regexes each benchmark compiles to NBVA.
pub fn table2(pipe: &Pipeline) {
    let cfg = pipe.spec();
    println!("Table 2 — NBVA-mode comparison (energy uJ / area mm2 / throughput Gch/s)");
    println!(
        "({} patterns per suite, {} input chars)\n",
        cfg.patterns_per_suite, cfg.input_len
    );
    let suites: Vec<Suite> = Suite::all()
        .into_iter()
        .filter(|s| *s != Suite::Prosite) // no NBVA regexes in Prosite (§5.3)
        .collect();
    let work = mode_subsets(pipe, &suites, |s| s.nbva);
    let cols = [
        (Machine::Rap, Some(Mode::Nbva)),
        (Machine::Rap, Some(Mode::Nfa)),
        (Machine::Cama, None),
        (Machine::Bvap, None),
        (Machine::Ca, None),
    ];
    let rows = eval_grid(pipe, &work, &cols);
    mode_table(
        &rows,
        &["NBVA", "NFA", "CAMA", "BVAP", "CA"],
        "NBVA",
        "table2",
    );
    crate::export_trace(pipe, "table2");
}

/// Table 3 — LNFA mode of RAP (baseline) vs NFA mode of RAP, CAMA, BVAP,
/// and CA, on the regexes each benchmark compiles to LNFA.
pub fn table3(pipe: &Pipeline) {
    let cfg = pipe.spec();
    println!("Table 3 — LNFA-mode comparison (energy uJ / area mm2 / throughput Gch/s)");
    println!(
        "({} patterns per suite, {} input chars)\n",
        cfg.patterns_per_suite, cfg.input_len
    );
    let work = mode_subsets(pipe, &Suite::all(), |s| s.lnfa);
    let cols = [
        (Machine::Rap, Some(Mode::Lnfa)),
        (Machine::Rap, Some(Mode::Nfa)),
        (Machine::Cama, None),
        (Machine::Bvap, None),
        (Machine::Ca, None),
    ];
    let rows = eval_grid(pipe, &work, &cols);
    mode_table(
        &rows,
        &["LNFA", "NFA", "CAMA", "BVAP", "CA"],
        "LNFA",
        "table3",
    );
    crate::export_trace(pipe, "table3");
}

/// Fig. 11 — the proportion of STEs, energy, and area contributed by the
/// NFA, NBVA, and LNFA modes when RAP runs every regex of every benchmark
/// with its optimal mode.
pub fn fig11(pipe: &Pipeline) {
    println!("Fig. 11 — per-mode share of STEs / energy / area across all benchmarks\n");
    let systems = pipe.grid(Suite::all().to_vec(), |suite| {
        let corpus = pipe.corpus(suite);
        eval_rap_by_mode(pipe, suite, &corpus.regexes(), corpus.input())
    });
    let mut ste = [0.0f64; 3];
    let mut energy = [0.0f64; 3];
    let mut area = [0.0f64; 3];
    for (suite, sys) in Suite::all().into_iter().zip(systems) {
        let sys = match sys {
            Ok(sys) => sys,
            Err(e) => {
                println!("[skipping {suite}: {e}]");
                continue;
            }
        };
        for (i, part) in [&sys.nfa, &sys.nbva, &sys.lnfa].iter().enumerate() {
            ste[i] += part.states as f64;
            energy[i] += part.energy_uj;
            area[i] += part.area_mm2;
        }
    }
    let mut table = Table::new(["Metric", "NFA %", "NBVA %", "LNFA %", "Total"]);
    for (name, vals, unit) in [
        ("STEs", ste, ""),
        ("Energy", energy, " uJ"),
        ("Area", area, " mm2"),
    ] {
        let total: f64 = vals.iter().sum();
        table.row([
            name.to_string(),
            f2(100.0 * vals[0] / total),
            f2(100.0 * vals[1] / total),
            f2(100.0 * vals[2] / total),
            format!("{}{}", f2(total), unit),
        ]);
    }
    print!("{}", table.render());
    table.write_csv("fig11");

    // The paper's observation: NFA's energy/area share exceeds its STE
    // share, showing the effectiveness of the NBVA and LNFA modes.
    let ste_total: f64 = ste.iter().sum();
    let e_total: f64 = energy.iter().sum();
    println!(
        "\nNFA share: {}% of STEs but {}% of energy (paper: energy share > STE share)",
        f2(100.0 * ste[0] / ste_total),
        f2(100.0 * energy[0] / e_total),
    );
    crate::export_trace(pipe, "fig11");
}

/// Fig. 12 — overall comparison of RAP vs BVAP, CAMA, and CA on full
/// benchmarks, normalized to RAP.
pub fn fig12(pipe: &Pipeline) {
    let cfg = pipe.spec();
    println!("Fig. 12 — RAP vs BVAP / CAMA / CA on full benchmarks");
    println!(
        "({} patterns per suite, {} input chars; ratios are machine/RAP)\n",
        cfg.patterns_per_suite, cfg.input_len
    );
    let suites = Suite::all();
    let baselines = [Machine::Bvap, Machine::Cama, Machine::Ca];
    // Cell grid: column 0 is the per-mode RAP system, 1..=3 the baselines.
    let cells: Vec<(usize, usize)> = (0..suites.len())
        .flat_map(|r| (0..=baselines.len()).map(move |c| (r, c)))
        .collect();
    let results = pipe.grid(cells, |(r, c)| {
        let suite = suites[r];
        let corpus = pipe.corpus(suite);
        if c == 0 {
            eval_rap_by_mode(pipe, suite, &corpus.regexes(), corpus.input()).map(|s| s.total())
        } else {
            eval_machine(
                pipe,
                baselines[c - 1],
                suite,
                &corpus.regexes(),
                corpus.input(),
                None,
            )
        }
    });
    let rows = collect_rows(suites.into_iter(), &results, baselines.len() + 1);

    let machines = ["RAP", "BVAP", "CAMA", "CA"];
    type Get = fn(&RunSummary) -> f64;
    let metrics: [(&str, Get, bool, &str); 5] = [
        (
            "Area (mm2)",
            |s: &RunSummary| s.area_mm2,
            false,
            "fig12_area",
        ),
        (
            "Throughput (Gch/s)",
            |s: &RunSummary| s.throughput_gchps,
            true,
            "fig12_throughput",
        ),
        (
            "Energy eff (Gch/s/W)",
            |s: &RunSummary| s.energy_efficiency(),
            true,
            "fig12_energy_eff",
        ),
        (
            "Compute density (Gch/s/mm2)",
            |s: &RunSummary| s.compute_density(),
            true,
            "fig12_compute_density",
        ),
        (
            "Power (W)",
            |s: &RunSummary| s.power_w,
            false,
            "fig12_power",
        ),
    ];
    for (name, get, higher_better, csv_name) in metrics {
        println!(
            "\n== {name} ({}) ==",
            if higher_better {
                "higher is better"
            } else {
                "lower is better"
            }
        );
        let mut table = Table::new(std::iter::once("Dataset").chain(machines.iter().copied()));
        let mut ratios = vec![Vec::new(); machines.len()];
        for (suite, cells) in &rows {
            let base = get(&cells[0]);
            let mut row = vec![suite.name().to_string()];
            for (i, cell) in cells.iter().enumerate() {
                row.push(f2(get(cell)));
                ratios[i].push(get(cell) / base);
            }
            table.row(row);
        }
        let mut avg = vec!["Geomean (vs RAP)".to_string()];
        for r in &ratios {
            avg.push(ratio(geomean(r)));
        }
        table.row(avg);
        print!("{}", table.render());

        // Paper headline: RAP improves energy efficiency 1.2-1.5x and
        // compute density 1.3-2.5x over CAMA/CA; 1.6x compute density over
        // BVAP at similar energy efficiency.
        table.write_csv(csv_name);
    }
    crate::export_trace(pipe, "fig12");
}

/// Fig. 13 — RAP vs software matchers: a Hyperscan-style multi-pattern
/// Shift-And engine on this machine's CPU and a HybridSA-style batch
/// engine standing in for the GPU.
pub fn fig13(pipe: &Pipeline) {
    let cfg = pipe.spec();
    println!("Fig. 13 — RAP vs GPU (HybridSA-style) and CPU (Hyperscan-style)");
    println!(
        "({} patterns per suite, {} input chars; engine throughput measured on this host)\n",
        cfg.patterns_per_suite, cfg.input_len
    );
    let results = pipe.grid(Suite::all().to_vec(), |suite| {
        let corpus = pipe.corpus(suite);
        let patterns = corpus.regexes();
        let rap = eval_rap_by_mode(pipe, suite, &patterns, corpus.input())?;
        let cpu = HybridEngine::new(&patterns, HybridEngine::DEFAULT_MAX_STATES);
        let cpu_t = measure_throughput_gchps(&cpu, corpus.input(), 2);
        let gpu = BatchEngine::new(&patterns, 4096);
        let gpu_t = measure_throughput_gchps(&gpu, corpus.input(), 2);
        Ok::<_, EvalError>((suite, rap.total(), cpu_t, gpu_t))
    });
    let rows: Vec<_> = Suite::all()
        .into_iter()
        .zip(results)
        .filter_map(|(suite, r)| match r {
            Ok(row) => Some(row),
            Err(e) => {
                println!("[skipping {suite}: {e}]");
                None
            }
        })
        .collect();

    let mut table = Table::new([
        "Dataset",
        "RAP Gch/s",
        "RAP W",
        "GPU Gch/s",
        "GPU W",
        "CPU Gch/s",
        "CPU W",
    ]);
    let mut eff_ratios_gpu = Vec::new();
    let mut eff_ratios_cpu = Vec::new();
    for (suite, rap, cpu_t, gpu_t) in &rows {
        table.row([
            suite.name().to_string(),
            f2(rap.throughput_gchps),
            f2(rap.power_w),
            format!("{gpu_t:.4}"),
            f2(GPU_BOARD_W),
            format!("{cpu_t:.4}"),
            f2(CPU_SOCKET_W),
        ]);
        let rap_eff = rap.energy_efficiency();
        if *gpu_t > 0.0 {
            eff_ratios_gpu.push(rap_eff / (gpu_t / GPU_BOARD_W));
        }
        if *cpu_t > 0.0 {
            eff_ratios_cpu.push(rap_eff / (cpu_t / CPU_SOCKET_W));
        }
    }
    print!("{}", table.render());
    table.write_csv("fig13");

    println!(
        "\nEnergy-efficiency advantage (geomean): {:.0}x vs GPU, {:.0}x vs CPU",
        geomean(&eff_ratios_gpu),
        geomean(&eff_ratios_cpu),
    );
    println!("(paper: >100x vs GPU, >1000x vs CPU)");
    crate::export_trace(pipe, "fig13");
}

/// Table 4 — RAP vs the hAP FPGA design on ANMLZoo-like benchmarks.
/// RAP's power/throughput are simulated; hAP's numbers are the published
/// Table 4 constants.
pub fn table4(pipe: &Pipeline) {
    let cfg = *pipe.spec();
    println!("Table 4 — RAP vs hAP (FPGA) on ANMLZoo-like benchmarks\n");
    let results = pipe.grid(AnmlZoo::all().to_vec(), |suite| {
        let patterns = suite.generate(cfg.patterns_per_suite, cfg.seed);
        let regexes: Vec<_> = patterns
            .iter()
            .map(|p| rap_regex::parse(p).expect("generated patterns parse"))
            .collect();
        let input = generate_input(&patterns, cfg.input_len, cfg.match_rate, cfg.seed);
        // ANMLZoo ships unfolded automata; keep ClamAV's repetitions.
        let workload_suite = Suite::ClamAv; // depth/bin knobs
        eval_rap_by_mode(pipe, workload_suite, &regexes, &input).map(|sys| (suite, sys.total()))
    });
    let rows: Vec<_> = AnmlZoo::all()
        .into_iter()
        .zip(results)
        .filter_map(|(suite, r)| match r {
            Ok(row) => Some(row),
            Err(e) => {
                println!("[skipping {}: {e}]", suite.name());
                None
            }
        })
        .collect();

    let mut table = Table::new([
        "Dataset",
        "RAP Power (W)",
        "RAP Thpt (Gch/s)",
        "hAP Power (W)",
        "hAP Thpt (Gch/s)",
        "Thpt ratio",
    ]);
    for (suite, rap) in &rows {
        table.row([
            suite.name().to_string(),
            f2(rap.power_w),
            f2(rap.throughput_gchps),
            f2(suite.hap_power_w()),
            f2(suite.hap_throughput_gchps()),
            format!(
                "{:.1}x",
                rap.throughput_gchps / suite.hap_throughput_gchps()
            ),
        ]);
    }
    print!("{}", table.render());
    table.write_csv("table4");
    crate::export_trace(pipe, "table4");
    println!("\n(paper: RAP throughput 11.5-13.8x hAP at 1.7-5.5x the power)");
}

/// A named experiment runner.
type Experiment = (&'static str, fn(&Pipeline));

/// Runs every experiment in the paper's order on one shared pipeline and
/// prints the pipeline report (stage timings, cache counters) at the end.
pub fn all(pipe: &Pipeline) {
    let experiments: [Experiment; 8] = [
        ("fig1", fig1),
        ("fig10", |p| fig10(p, "both")),
        ("table2", table2),
        ("table3", table3),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("table4", table4),
    ];
    for (name, run) in experiments {
        println!("\n================= {name} =================\n");
        run(pipe);
    }
    println!("\nAll experiments complete; CSVs are under results/.");
    println!("\n{}", pipe.report());
}
