//! Multi-tenant admission sweep — the rap-admit static interference
//! analyzer over growing tenant sets, for the RAP decision mix and the
//! force-NFA CA baseline. Each tenant is one benchmark suite with its
//! own verified solo plan; the sweep admits the first k suites
//! (k = 1..=7) onto an auto-sized shared fabric, then deliberately
//! over-subscribes a single-bank fabric with all seven tenants to show a
//! certified rejection. Prints one row per composition and writes
//! `results/admission.csv`; exits non-zero if a *single-tenant*
//! auto-sized composition reports an Error-severity finding (a lone
//! verified plan must always fit a fabric sized for it), or if the
//! over-subscribed control row is *not* rejected. Larger tenant sets may
//! legitimately be rejected — the CA baseline's one-array-per-tenant
//! NFAs burst the shared bank buffers well before RAP's decomposed
//! plans do, and that divergence is the point of the sweep.
//!
//! Scale knobs: `RAP_BENCH_PATTERNS` / `RAP_BENCH_SEED`. Unlike the
//! other harness binaries this sweep defaults to 24 patterns per suite —
//! co-residency stresses shared bank buffers, so the interesting regime
//! is many small tenants, not one huge one.

use rap_bench::{config_from_env, tables::Table};
use rap_circuit::Machine;
use rap_pipeline::{AdmitOptions, PatternSet, Pipeline};
use rap_sim::Simulator;
use rap_workloads::Suite;

fn main() {
    let mut cfg = config_from_env();
    if std::env::var_os("RAP_BENCH_PATTERNS").is_none() {
        cfg.patterns_per_suite = 24;
    }
    cfg.input_len = 256; // admission is input-independent; keep corpora tiny
    println!(
        "admission sweep: {} patterns per tenant suite, seed {}\n",
        cfg.patterns_per_suite, cfg.seed
    );

    let pipe = Pipeline::new(cfg);
    let mut table = Table::new([
        "Machine",
        "Tenants",
        "Fabric",
        "Patterns",
        "Arrays",
        "Banks",
        "Slots",
        "BvColumns",
        "Warnings",
        "Errors",
        "Admitted",
    ]);
    let mut auto_errors = 0u64;
    let mut control_failures = 0u64;
    for machine in [Machine::Rap, Machine::Ca] {
        let suites = Suite::all();
        let corpora: Vec<_> = suites.iter().map(|&s| pipe.corpus(s)).collect();
        let sims: Vec<Simulator> = suites
            .iter()
            .map(|&s| pipe.simulator_for(machine, s))
            .collect();
        let cells: Vec<(usize, AdmitOptions, &str)> = (1..=suites.len())
            .map(|k| (k, AdmitOptions::default(), "auto"))
            .chain(std::iter::once((
                suites.len(),
                AdmitOptions {
                    banks: Some(1),
                    ..AdmitOptions::default()
                },
                "1-bank",
            )))
            .collect();
        for (k, options, fabric) in cells {
            let tenants: Vec<(&str, &Simulator, &PatternSet)> = suites[..k]
                .iter()
                .zip(&sims)
                .zip(&corpora)
                .map(|((s, sim), corpus)| (s.name(), sim, corpus.patterns()))
                .collect();
            let admission = pipe.admit(&tenants, &options).expect("tenant plans build");
            let a = &admission.analysis;
            let errors = a.report.errors().count() as u64;
            let warnings = a.report.len() as u64 - errors;
            if fabric == "auto" && k == 1 {
                auto_errors += errors;
            } else if fabric != "auto" && admission.admitted() {
                control_failures += 1;
            }
            table.row([
                machine.name().to_string(),
                k.to_string(),
                fabric.to_string(),
                a.tenants
                    .iter()
                    .map(|t| t.patterns)
                    .sum::<usize>()
                    .to_string(),
                a.total_arrays.to_string(),
                a.banks.to_string(),
                a.slots.to_string(),
                a.bv_columns.to_string(),
                warnings.to_string(),
                errors.to_string(),
                admission.admitted().to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    table.write_csv("admission");
    println!("\n{}", pipe.report());

    if auto_errors > 0 {
        eprintln!("admission failed: {auto_errors} error(s) on single-tenant auto-sized fabrics");
        std::process::exit(2);
    }
    if control_failures > 0 {
        eprintln!("admission failed: {control_failures} over-subscribed control row(s) admitted");
        std::process::exit(2);
    }
    println!("\nadmission clean: single tenants certified, control rows rejected");
}
