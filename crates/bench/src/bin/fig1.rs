//! Fig. 1 — regex model proportions per benchmark (thin wrapper over
//! [`rap_bench::experiments::fig1`]).

use rap_bench::{experiments, pipeline_from_env};

fn main() {
    let pipe = pipeline_from_env();
    experiments::fig1(&pipe);
}
