//! Fig. 1 — the proportion of regexes representable by NFA, NBVA, and
//! LNFA in each of the seven benchmarks.

use rap_bench::tables::{f2, Table};
use rap_bench::{config_from_env, eval::ModeSplit, suite_regexes};
use rap_workloads::Suite;

fn main() {
    let cfg = config_from_env();
    println!("Fig. 1 — regex model proportions per benchmark");
    println!(
        "({} synthetic patterns per suite, seed {})\n",
        cfg.patterns_per_suite, cfg.seed
    );
    let mut table = Table::new(["Benchmark", "NFA %", "NBVA %", "LNFA %"]);
    for suite in Suite::all() {
        let patterns = suite_regexes(suite, &cfg);
        let split = ModeSplit::of(&patterns);
        let n = patterns.len() as f64;
        table.row([
            suite.name().to_string(),
            f2(100.0 * split.nfa.len() as f64 / n),
            f2(100.0 * split.nbva.len() as f64 / n),
            f2(100.0 * split.lnfa.len() as f64 / n),
        ]);
    }
    print!("{}", table.render());
    table.write_csv("fig1");
}
