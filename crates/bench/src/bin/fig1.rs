//! Fig. 1 — regex model proportions per benchmark (thin wrapper over
//! [`rap_bench::experiments::fig1`]).

use rap_bench::{config_from_env, experiments, Pipeline};

fn main() {
    let pipe = Pipeline::new(config_from_env());
    experiments::fig1(&pipe);
}
