//! Fig. 10 — design-space exploration over BV depth and bin size (thin
//! wrapper over [`rap_bench::experiments::fig10`]).
//!
//! Usage: `fig10 [nbva|lnfa]` (default: both).

use rap_bench::{experiments, pipeline_from_env};

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "both".to_string());
    let pipe = pipeline_from_env();
    experiments::fig10(&pipe, &which);
}
