//! Fig. 10 — design-space exploration: (a) NBVA BV depth, (b) LNFA bin
//! size. Values are normalized to depth = 4 (resp. bin = 1), as in the
//! paper.
//!
//! Usage: `fig10 [nbva|lnfa]` (default: both).

use rap_bench::eval::{par_map, ModeSplit};
use rap_bench::tables::{f2, Table};
use rap_bench::{config_from_env, suite_input, suite_regexes};
use rap_circuit::Machine;
use rap_compiler::Mode;
use rap_sim::Simulator;
use rap_workloads::Suite;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "both".to_string());
    let cfg = config_from_env();
    if which == "nbva" || which == "both" {
        dse_nbva(&cfg);
    }
    if which == "lnfa" || which == "both" {
        dse_lnfa(&cfg);
    }
}

fn dse_nbva(cfg: &rap_bench::BenchConfig) {
    println!("Fig. 10(a) — NBVA DSE over BV depth (normalized to depth 4)\n");
    let depths = [4u32, 8, 16, 32];
    let mut table = Table::new(["Dataset", "depth", "energy", "area", "throughput", "chosen"]);
    let rows = par_map(Suite::all().to_vec(), |suite| {
        let patterns = suite_regexes(suite, cfg);
        let nbva = ModeSplit::of(&patterns).nbva;
        if nbva.is_empty() {
            return Vec::new();
        }
        let input = suite_input(suite, cfg);
        let runs: Vec<_> = depths
            .iter()
            .map(|&d| {
                let sim = Simulator::new(Machine::Rap).with_bv_depth(d);
                let compiled = sim
                    .compile_forced(&nbva, Mode::Nbva)
                    .expect("NBVA compiles");
                let mapping = sim.map(&compiled);
                sim.simulate(&compiled, &mapping, &input)
            })
            .collect();
        let base = &runs[0];
        depths
            .iter()
            .zip(runs.iter())
            .map(|(&d, r)| {
                (
                    suite,
                    d,
                    r.metrics.energy_uj / base.metrics.energy_uj,
                    r.metrics.area_mm2 / base.metrics.area_mm2,
                    r.metrics.throughput_gchps() / base.metrics.throughput_gchps(),
                )
            })
            .collect::<Vec<_>>()
    });
    for suite_rows in rows {
        for (suite, d, e, a, t) in suite_rows {
            let chosen = if d == suite.chosen_bv_depth() {
                "<-"
            } else {
                ""
            };
            table.row([
                suite.name().to_string(),
                d.to_string(),
                f2(e),
                f2(a),
                f2(t),
                chosen.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    table.write_csv("fig10a_nbva_dse");
}

fn dse_lnfa(cfg: &rap_bench::BenchConfig) {
    println!("\nFig. 10(b) — LNFA DSE over bin size (normalized to bin 1)\n");
    let bins = [1u32, 2, 4, 8, 16, 32];
    let mut table = Table::new(["Dataset", "bin", "energy", "area", "chosen"]);
    let rows = par_map(Suite::all().to_vec(), |suite| {
        let patterns = suite_regexes(suite, cfg);
        let lnfa = ModeSplit::of(&patterns).lnfa;
        if lnfa.is_empty() {
            return Vec::new();
        }
        let input = suite_input(suite, cfg);
        let runs: Vec<_> = bins
            .iter()
            .map(|&b| {
                let sim = Simulator::new(Machine::Rap).with_bin_size(b);
                let compiled = sim
                    .compile_forced(&lnfa, Mode::Lnfa)
                    .expect("LNFA compiles");
                let mapping = sim.map(&compiled);
                sim.simulate(&compiled, &mapping, &input)
            })
            .collect();
        let base = &runs[0];
        bins.iter()
            .zip(runs.iter())
            .map(|(&b, r)| {
                (
                    suite,
                    b,
                    r.metrics.energy_uj / base.metrics.energy_uj,
                    r.metrics.area_mm2 / base.metrics.area_mm2,
                )
            })
            .collect::<Vec<_>>()
    });
    for suite_rows in rows {
        for (suite, b, e, a) in suite_rows {
            let chosen = if b == suite.chosen_bin_size() {
                "<-"
            } else {
                ""
            };
            table.row([
                suite.name().to_string(),
                b.to_string(),
                f2(e),
                f2(a),
                chosen.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    table.write_csv("fig10b_lnfa_dse");
}
