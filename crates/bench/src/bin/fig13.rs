//! Fig. 13 — RAP vs software matchers: a Hyperscan-style multi-pattern
//! Shift-And engine on this machine's CPU and a HybridSA-style batch
//! engine standing in for the GPU. Engine throughputs are *measured*;
//! device powers are the published envelopes of the paper's testbed (see
//! `rap_engines::power` and DESIGN.md §2).

use rap_bench::eval::{eval_rap_by_mode, par_map};
use rap_bench::tables::{f2, Table};
use rap_bench::{config_from_env, suite_input, suite_regexes};
use rap_engines::power::{CPU_SOCKET_W, GPU_BOARD_W};
use rap_engines::{measure_throughput_gchps, BatchEngine, HybridEngine};
use rap_workloads::Suite;

fn main() {
    let cfg = config_from_env();
    println!("Fig. 13 — RAP vs GPU (HybridSA-style) and CPU (Hyperscan-style)");
    println!(
        "({} patterns per suite, {} input chars; engine throughput measured on this host)\n",
        cfg.patterns_per_suite, cfg.input_len
    );

    let rows = par_map(Suite::all().to_vec(), |suite| {
        let patterns = suite_regexes(suite, &cfg);
        let input = suite_input(suite, &cfg);
        let rap = eval_rap_by_mode(suite, &patterns, &input).total();
        let cpu = HybridEngine::new(&patterns, HybridEngine::DEFAULT_MAX_STATES);
        let cpu_t = measure_throughput_gchps(&cpu, &input, 2);
        let gpu = BatchEngine::new(&patterns, 4096);
        let gpu_t = measure_throughput_gchps(&gpu, &input, 2);
        (suite, rap, cpu_t, gpu_t)
    });

    let mut table = Table::new([
        "Dataset",
        "RAP Gch/s",
        "RAP W",
        "GPU Gch/s",
        "GPU W",
        "CPU Gch/s",
        "CPU W",
    ]);
    let mut eff_ratios_gpu = Vec::new();
    let mut eff_ratios_cpu = Vec::new();
    for (suite, rap, cpu_t, gpu_t) in &rows {
        table.row([
            suite.name().to_string(),
            f2(rap.throughput_gchps),
            f2(rap.power_w),
            format!("{gpu_t:.4}"),
            f2(GPU_BOARD_W),
            format!("{cpu_t:.4}"),
            f2(CPU_SOCKET_W),
        ]);
        let rap_eff = rap.energy_efficiency();
        if *gpu_t > 0.0 {
            eff_ratios_gpu.push(rap_eff / (gpu_t / GPU_BOARD_W));
        }
        if *cpu_t > 0.0 {
            eff_ratios_cpu.push(rap_eff / (cpu_t / CPU_SOCKET_W));
        }
    }
    print!("{}", table.render());
    table.write_csv("fig13");

    println!(
        "\nEnergy-efficiency advantage (geomean): {:.0}x vs GPU, {:.0}x vs CPU",
        rap_bench::tables::geomean(&eff_ratios_gpu),
        rap_bench::tables::geomean(&eff_ratios_cpu),
    );
    println!("(paper: >100x vs GPU, >1000x vs CPU)");
}
