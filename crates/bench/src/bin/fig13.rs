//! Fig. 13 — RAP vs software matchers (thin wrapper over
//! [`rap_bench::experiments::fig13`]).

use rap_bench::{config_from_env, experiments, Pipeline};

fn main() {
    let pipe = Pipeline::new(config_from_env());
    experiments::fig13(&pipe);
}
