//! Fig. 13 — RAP vs software matchers (thin wrapper over
//! [`rap_bench::experiments::fig13`]).

use rap_bench::{experiments, pipeline_from_env};

fn main() {
    let pipe = pipeline_from_env();
    experiments::fig13(&pipe);
}
