//! Table 4 — RAP vs the hAP FPGA design (thin wrapper over
//! [`rap_bench::experiments::table4`]).

use rap_bench::{config_from_env, experiments, Pipeline};

fn main() {
    let pipe = Pipeline::new(config_from_env());
    experiments::table4(&pipe);
}
