//! Table 4 — RAP vs the hAP FPGA design on ANMLZoo-like benchmarks.
//! RAP's power/throughput are simulated; hAP's numbers are the published
//! Table 4 constants.

use rap_bench::config_from_env;
use rap_bench::eval::{eval_rap_by_mode, par_map};
use rap_bench::tables::{f2, Table};
use rap_workloads::anmlzoo::AnmlZoo;
use rap_workloads::generate_input;

fn main() {
    let cfg = config_from_env();
    println!("Table 4 — RAP vs hAP (FPGA) on ANMLZoo-like benchmarks\n");

    let rows = par_map(AnmlZoo::all().to_vec(), |suite| {
        let patterns = suite.generate(cfg.patterns_per_suite, cfg.seed);
        let regexes: Vec<_> = patterns
            .iter()
            .map(|p| rap_regex::parse(p).expect("generated patterns parse"))
            .collect();
        let input = generate_input(&patterns, cfg.input_len, cfg.match_rate, cfg.seed);
        // ANMLZoo ships unfolded automata; keep ClamAV's repetitions.
        let workload_suite = rap_workloads::Suite::ClamAv; // depth/bin knobs
        let rap = eval_rap_by_mode(workload_suite, &regexes, &input).total();
        (suite, rap)
    });

    let mut table = Table::new([
        "Dataset",
        "RAP Power (W)",
        "RAP Thpt (Gch/s)",
        "hAP Power (W)",
        "hAP Thpt (Gch/s)",
        "Thpt ratio",
    ]);
    for (suite, rap) in &rows {
        table.row([
            suite.name().to_string(),
            f2(rap.power_w),
            f2(rap.throughput_gchps),
            f2(suite.hap_power_w()),
            f2(suite.hap_throughput_gchps()),
            format!(
                "{:.1}x",
                rap.throughput_gchps / suite.hap_throughput_gchps()
            ),
        ]);
    }
    print!("{}", table.render());
    table.write_csv("table4");
    println!("\n(paper: RAP throughput 11.5-13.8x hAP at 1.7-5.5x the power)");
}
