//! Table 4 — RAP vs the hAP FPGA design (thin wrapper over
//! [`rap_bench::experiments::table4`]).

use rap_bench::{experiments, pipeline_from_env};

fn main() {
    let pipe = pipeline_from_env();
    experiments::table4(&pipe);
}
