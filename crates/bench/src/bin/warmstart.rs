//! Warm-start benchmark for the persistent artifact store: runs every
//! suite on RAP and CA twice against the same store directory — once
//! cold (empty store, every plan compiled and written through) and once
//! warm (fresh pipeline, every plan recalled from disk) — and writes the
//! per-cell wall-clock comparison to `results/warmstart.csv`.
//!
//! The warm pass is asserted, not just measured: zero compile-stage
//! invocations (`patterns_compiled == 0`, no time booked to Compile),
//! one disk hit per plan, zero corrupt entries, and bit-identical match
//! counts against the cold pass. `RAP_STORE_DIR` picks the directory
//! (default: a fresh temp dir, removed afterwards); the usual
//! `RAP_BENCH_*` knobs set the workload scale.

use rap_bench::{config_from_env, store_from_env, tables::Table, Pipeline, StoreConfig};
use rap_circuit::Machine;
use rap_pipeline::Stage;
use rap_workloads::Suite;
use std::time::Instant;

/// The machines compared per suite (the paper's subject vs the CA
/// baseline; the intermediate design points add nothing to a cache
/// benchmark).
const MACHINES: [Machine; 2] = [Machine::Rap, Machine::Ca];

/// One evaluated cell: wall-clock and the summary's match count (the
/// cold/warm equivalence witness).
struct Cell {
    machine: Machine,
    suite: Suite,
    secs: f64,
    matches: u64,
}

/// Runs every (machine, suite) cell through one fresh pipeline attached
/// to `store`, timing each evaluation.
fn run_pass(store: &StoreConfig, label: &str) -> (Vec<Cell>, rap_pipeline::PipelineReport) {
    let pipe = Pipeline::new(config_from_env())
        .with_store(store.clone())
        .unwrap_or_else(|e| panic!("open artifact store at {}: {e}", store.dir.display()));
    let mut cells = Vec::new();
    for suite in Suite::all() {
        let corpus = pipe.corpus(suite);
        for machine in MACHINES {
            let started = Instant::now();
            let summary = pipe
                .eval(machine, suite, corpus.patterns(), corpus.input(), None)
                .unwrap_or_else(|e| panic!("{label}: {machine}/{} failed: {e}", suite.name()));
            cells.push(Cell {
                machine,
                suite,
                secs: started.elapsed().as_secs_f64(),
                matches: summary.matches,
            });
        }
    }
    (cells, pipe.report())
}

fn main() {
    let (store, ephemeral) = match store_from_env() {
        Some(config) => (config, false),
        None => {
            let dir = std::env::temp_dir().join(format!("rap-warmstart-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            (StoreConfig::at(dir), true)
        }
    };
    println!("warmstart: store at {}", store.dir.display());

    let (cold, cold_report) = run_pass(&store, "cold");
    let (warm, warm_report) = run_pass(&store, "warm");

    // The warm pass must be a pure recall: nothing compiled, no time
    // booked to the compile stage, one disk hit per plan, nothing
    // corrupt, and the same matches the cold pass produced.
    assert_eq!(
        warm_report.patterns_compiled, 0,
        "warm pass compiled patterns: {warm_report}"
    );
    assert_eq!(
        warm_report.stage_secs(Stage::Compile),
        0.0,
        "warm pass booked compile time: {warm_report}"
    );
    let disk = warm_report
        .disk_store
        .expect("warm pipeline has a disk store attached");
    assert_eq!(
        disk.hits as usize,
        cold.len(),
        "expected one disk hit per plan: {warm_report}"
    );
    assert_eq!(disk.corrupt, 0, "warm pass hit corrupt entries");
    for (c, w) in cold.iter().zip(warm.iter()) {
        assert_eq!(
            c.matches,
            w.matches,
            "{}/{}: warm matches diverge from cold",
            c.machine,
            c.suite.name()
        );
    }

    let mut table = Table::new(["machine", "suite", "cold_secs", "warm_secs", "speedup"]);
    for (c, w) in cold.iter().zip(warm.iter()) {
        let speedup = if w.secs > 0.0 {
            c.secs / w.secs
        } else {
            f64::INFINITY
        };
        table.row([
            c.machine.name().to_string(),
            c.suite.name().to_string(),
            format!("{:.4}", c.secs),
            format!("{:.4}", w.secs),
            format!("{speedup:.2}"),
        ]);
    }
    println!("\n{}", table.render());
    table.write_csv("warmstart");

    println!("cold pass:\n{cold_report}");
    println!("warm pass:\n{warm_report}");
    println!(
        "warmstart: OK — warm pass compiled nothing ({} disk hits)",
        disk.hits
    );

    if ephemeral {
        let _ = std::fs::remove_dir_all(&store.dir);
    }
}
