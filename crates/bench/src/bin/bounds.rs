//! Static bounds sweep — the rap-bound worst-case analyzer over every
//! benchmark suite for the RAP decision mix and the force-NFA CA
//! baseline. Prints one row per (suite, machine) cell and writes
//! `results/bounds.csv`; exits non-zero if any cell reports an
//! Error-severity finding.
//!
//! Scale knobs: `RAP_BENCH_PATTERNS` / `RAP_BENCH_SEED` (input length is
//! irrelevant — the analyzer never executes the automata).

use rap_bench::{config_from_env, tables::Table};
use rap_bound::{analyze_bounds, BoundOptions};
use rap_circuit::Machine;
use rap_sim::Simulator;
use rap_workloads::Suite;

fn main() {
    let cfg = config_from_env();
    let options = BoundOptions::bounds_only();

    println!(
        "static bounds: {} patterns per suite, seed {}\n",
        cfg.patterns_per_suite, cfg.seed
    );
    let mut table = Table::new([
        "Suite",
        "Machine",
        "Arrays",
        "Placed",
        "PeakActive",
        "Reporters",
        "PeakFanin",
        "FifoBytes",
        "OutRecords",
        "MaxSkew",
        "Counters",
        "DeadReads",
        "Span",
        "Findings",
        "Errors",
    ]);
    let mut total_errors = 0u64;
    for suite in Suite::all() {
        for machine in [Machine::Rap, Machine::Ca] {
            let sim = Simulator::new(machine)
                .with_bv_depth(suite.chosen_bv_depth())
                .with_bin_size(suite.chosen_bin_size());
            let sources = rap_workloads::generate_patterns(suite, cfg.patterns_per_suite, cfg.seed);
            let patterns: Vec<_> = sources
                .iter()
                .map(|s| rap_regex::parse_pattern(s).expect("suite patterns parse"))
                .collect();
            let images = sim.compile_parsed(&patterns).expect("suite compiles");
            let mapping = sim.map(&images);
            let b = analyze_bounds(&images, &patterns, &mapping, &options);
            let errors = b.report.errors().count() as u64;
            total_errors += errors;
            table.row([
                suite.name().to_string(),
                machine.name().to_string(),
                b.arrays.len().to_string(),
                b.arrays
                    .iter()
                    .map(|a| a.placed_states)
                    .sum::<u64>()
                    .to_string(),
                b.total_peak_active().to_string(),
                b.arrays
                    .iter()
                    .map(|a| a.reporters)
                    .sum::<u64>()
                    .to_string(),
                b.arrays
                    .iter()
                    .map(|a| a.peak_fanin)
                    .max()
                    .unwrap_or(0)
                    .to_string(),
                b.bank.input_fifo_bytes.to_string(),
                b.bank.output_fifo_records.to_string(),
                b.bank.max_skew.to_string(),
                b.counters.len().to_string(),
                b.counters
                    .iter()
                    .filter(|c| !c.read_feasible)
                    .count()
                    .to_string(),
                b.replication
                    .max_match_span
                    .map_or_else(|| "unbounded".to_string(), |s| s.to_string()),
                b.report.len().to_string(),
                errors.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    table.write_csv("bounds");

    if total_errors > 0 {
        eprintln!("bounds failed: {total_errors} error-severity finding(s)");
        std::process::exit(2);
    }
    println!("\nbounds clean: no error-severity findings");
}
