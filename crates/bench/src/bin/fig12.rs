//! Fig. 12 — RAP vs BVAP / CAMA / CA on full benchmarks (thin wrapper
//! over [`rap_bench::experiments::fig12`]).

use rap_bench::{experiments, pipeline_from_env};

fn main() {
    let pipe = pipeline_from_env();
    experiments::fig12(&pipe);
}
