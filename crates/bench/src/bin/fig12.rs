//! Fig. 12 — overall comparison of RAP vs BVAP, CAMA, and CA on full
//! benchmarks (area, throughput, energy efficiency, compute density,
//! power), normalized to RAP.

use rap_bench::eval::{eval_rap_by_mode, par_map};
use rap_bench::tables::{f2, geomean, ratio, Table};
use rap_bench::{config_from_env, eval_machine, suite_input, suite_regexes, RunSummary};
use rap_circuit::Machine;
use rap_workloads::Suite;

fn main() {
    let cfg = config_from_env();
    println!("Fig. 12 — RAP vs BVAP / CAMA / CA on full benchmarks");
    println!(
        "({} patterns per suite, {} input chars; ratios are machine/RAP)\n",
        cfg.patterns_per_suite, cfg.input_len
    );

    let results: Vec<(Suite, [RunSummary; 4])> = par_map(Suite::all().to_vec(), |suite| {
        let patterns = suite_regexes(suite, &cfg);
        let input = suite_input(suite, &cfg);
        let rap = eval_rap_by_mode(suite, &patterns, &input).total();
        let bvap = eval_machine(Machine::Bvap, suite, &patterns, &input, None);
        let cama = eval_machine(Machine::Cama, suite, &patterns, &input, None);
        let ca = eval_machine(Machine::Ca, suite, &patterns, &input, None);
        (suite, [rap, bvap, cama, ca])
    });

    let machines = ["RAP", "BVAP", "CAMA", "CA"];
    type Get = fn(&RunSummary) -> f64;
    let metrics: [(&str, Get, bool); 5] = [
        ("Area (mm2)", |s: &RunSummary| s.area_mm2, false),
        (
            "Throughput (Gch/s)",
            |s: &RunSummary| s.throughput_gchps,
            true,
        ),
        (
            "Energy eff (Gch/s/W)",
            |s: &RunSummary| s.energy_efficiency(),
            true,
        ),
        (
            "Compute density (Gch/s/mm2)",
            |s: &RunSummary| s.compute_density(),
            true,
        ),
        ("Power (W)", |s: &RunSummary| s.power_w, false),
    ];

    for (name, get, higher_better) in metrics {
        println!(
            "\n== {name} ({}) ==",
            if higher_better {
                "higher is better"
            } else {
                "lower is better"
            }
        );
        let mut table = Table::new(std::iter::once("Dataset").chain(machines.iter().copied()));
        let mut ratios = vec![Vec::new(); 4];
        for (suite, cells) in &results {
            let base = get(&cells[0]);
            let mut row = vec![suite.name().to_string()];
            for (i, cell) in cells.iter().enumerate() {
                row.push(f2(get(cell)));
                ratios[i].push(get(cell) / base);
            }
            table.row(row);
        }
        let mut avg = vec!["Geomean (vs RAP)".to_string()];
        for r in &ratios {
            avg.push(ratio(geomean(r)));
        }
        table.row(avg);
        print!("{}", table.render());

        // Paper headline: RAP improves energy efficiency 1.2-1.5x and
        // compute density 1.3-2.5x over CAMA/CA; 1.6x compute density over
        // BVAP at similar energy efficiency.
        let csv_name = match name {
            "Area (mm2)" => "fig12_area",
            "Throughput (Gch/s)" => "fig12_throughput",
            "Energy eff (Gch/s/W)" => "fig12_energy_eff",
            "Compute density (Gch/s/mm2)" => "fig12_compute_density",
            _ => "fig12_power",
        };
        table.write_csv(csv_name);
    }
}
