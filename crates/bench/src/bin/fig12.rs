//! Fig. 12 — RAP vs BVAP / CAMA / CA on full benchmarks (thin wrapper
//! over [`rap_bench::experiments::fig12`]).

use rap_bench::{config_from_env, experiments, Pipeline};

fn main() {
    let pipe = Pipeline::new(config_from_env());
    experiments::fig12(&pipe);
}
