//! Corpus audit — the rap-analyze static analyzer (prune enabled) over
//! every benchmark suite for the RAP decision mix and the force-NFA CA
//! baseline. Prints one row per (suite, machine) cell and writes
//! `results/audit.csv`; exits non-zero if any cell reports an
//! Error-severity finding.
//!
//! Scale knobs: `RAP_BENCH_PATTERNS` / `RAP_BENCH_SEED` (input length is
//! irrelevant — the analyzer never executes the automata). `RAP_TRACE=1`
//! additionally records per-pass timings in the telemetry registry and
//! writes `results/audit_metrics.prom`.

use rap_analyze::{analyze_with_registry, AnalyzeOptions};
use rap_bench::{config_from_env, tables::Table, telemetry_from_env};
use rap_circuit::Machine;
use rap_sim::Simulator;
use rap_workloads::Suite;

fn main() {
    let cfg = config_from_env();
    let telemetry = telemetry_from_env();
    let registry = telemetry.as_ref().map(|t| t.registry());
    let options = AnalyzeOptions::report_only().with_prune();

    println!(
        "corpus audit: {} patterns per suite, seed {}\n",
        cfg.patterns_per_suite, cfg.seed
    );
    let mut table = Table::new([
        "Suite", "Machine", "Images", "States", "Unreach", "Dead", "DeadTr", "DeadBvB", "Merged",
        "Pruned", "After", "Findings", "Errors",
    ]);
    let mut total_errors = 0u64;
    for suite in Suite::all() {
        for machine in [Machine::Rap, Machine::Ca] {
            let sim = Simulator::new(machine)
                .with_bv_depth(suite.chosen_bv_depth())
                .with_bin_size(suite.chosen_bin_size());
            let sources = rap_workloads::generate_patterns(suite, cfg.patterns_per_suite, cfg.seed);
            let patterns: Vec<_> = sources
                .iter()
                .map(|s| rap_regex::parse_pattern(s).expect("suite patterns parse"))
                .collect();
            let images = sim.compile_parsed(&patterns).expect("suite compiles");
            let a = analyze_with_registry(&images, &patterns, &options, registry);
            let errors = a.report.errors().count() as u64;
            total_errors += errors;
            table.row([
                suite.name().to_string(),
                machine.name().to_string(),
                a.stats.images.to_string(),
                a.stats.states_before.to_string(),
                a.stats.unreachable_states.to_string(),
                a.stats.dead_states.to_string(),
                a.stats.dead_transitions.to_string(),
                a.stats.dead_bv_bits.to_string(),
                a.stats.mergeable_states.to_string(),
                a.stats.pruned_states.to_string(),
                a.stats.states_after.to_string(),
                a.report.len().to_string(),
                errors.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    table.write_csv("audit");

    if let Some(telemetry) = telemetry {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir).expect("create results/");
        let prom = dir.join("audit_metrics.prom");
        std::fs::write(&prom, telemetry.prometheus())
            .unwrap_or_else(|e| panic!("write {prom:?}: {e}"));
        println!("[written {}]", prom.display());
    }
    if total_errors > 0 {
        eprintln!("audit failed: {total_errors} error-severity finding(s)");
        std::process::exit(2);
    }
    println!("\naudit clean: no error-severity findings");
}
