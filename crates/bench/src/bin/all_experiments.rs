//! Runs every table/figure binary in sequence (the paper's full
//! evaluation). Equivalent to:
//!
//! ```text
//! for exp in fig1 fig10 table2 table3 fig11 fig12 fig13 table4; do
//!     cargo run --release -p rap-bench --bin $exp
//! done
//! ```

use std::process::Command;

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();
    for exp in [
        "fig1", "fig10", "table2", "table3", "fig11", "fig12", "fig13", "table4",
    ] {
        println!("\n================= {exp} =================\n");
        let status = Command::new(exe_dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed with {status}");
    }
    println!("\nAll experiments complete; CSVs are under results/.");
}
