//! Runs the paper's full evaluation in one process against one shared
//! pipeline, so the content-addressed plan cache and the corpus memo are
//! reused across every table and figure — each (suite, machine-config)
//! pattern set is generated and compiled exactly once — and finishes with
//! the pipeline's stage-timing and cache-counter report.

use rap_bench::{experiments, pipeline_from_env};

fn main() {
    let pipe = pipeline_from_env();
    experiments::all(&pipe);
}
