//! Multi-tenant streaming service load harness — drives `rap-serve`
//! with many concurrent tenant streams and reports per-chunk latency
//! percentiles and sustained stream throughput.
//!
//! Three phases, one CSV row each (`results/serve_load.csv`):
//!
//! * **load** — N concurrent tenant streams (one OS thread each)
//!   across a sharded scan plane, every tenant's delivered events
//!   checked bit-identical against its solo streaming run (the
//!   zero-leakage criterion).
//! * **overload** — a deliberately tiny certified budget (one shard,
//!   one queue page) driven with oversized chunks, to show chunks shed
//!   under backpressure with the R002-before-R003 finding ordering.
//! * **warm** — tenant registration against a persistent artifact
//!   store primed by an earlier server: the warm pass must perform
//!   zero compile-stage work.
//!
//! Exits non-zero when any tenant's stream diverges from its solo run,
//! when a shed is recorded without a backpressure finding, when the
//! session counters move non-monotonically, or when the warm pass
//! compiles anything.
//!
//! Scale knobs: `RAP_SERVE_TENANTS` (default 64), `RAP_SERVE_SHARDS`
//! (default 4), `RAP_SERVE_STREAM` bytes per tenant stream (default
//! 2048), `RAP_SERVE_CHUNK` bytes per chunk (default 256),
//! `RAP_SERVE_QUEUE_PAGES` (default 8), `RAP_BENCH_SEED`.

use std::time::Instant;

use rap_bench::tables::{f2, Table};
use rap_pipeline::{BenchConfig, PatternSet, Pipeline, StoreConfig};
use rap_serve::{SendOutcome, ServeConfig, Server, Session};
use rap_sim::{MatchEvent, Simulator};

fn env_num(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn spec() -> BenchConfig {
    BenchConfig {
        patterns_per_suite: 4,
        input_len: 256,
        match_rate: 0.02,
        seed: env_num("RAP_BENCH_SEED", 42),
    }
}

/// One tenant's workload: a private pattern set plus an input stream
/// salted with its own needles *and* its neighbours' — delivered events
/// must still be exactly the solo run's (zero cross-tenant leakage).
struct TenantLoad {
    name: String,
    patterns: PatternSet,
    input: Vec<u8>,
}

fn tenant_loads(tenants: usize, stream_len: usize) -> Vec<TenantLoad> {
    (0..tenants)
        .map(|i| {
            let sources = vec![format!("sig{i:03}x"), format!("beacon{i:03}")];
            let patterns = PatternSet::parse(&sources).expect("tenant patterns parse");
            let own = format!("sig{i:03}x");
            let foreign = format!("sig{:03}x", (i + 1) % tenants);
            let beacon = format!("beacon{i:03}");
            let mut input = Vec::with_capacity(stream_len);
            let mut k = 0usize;
            while input.len() < stream_len {
                match k % 4 {
                    0 => input.extend_from_slice(own.as_bytes()),
                    1 => input.extend_from_slice(b" filler filler "),
                    2 => input.extend_from_slice(foreign.as_bytes()),
                    _ => input.extend_from_slice(beacon.as_bytes()),
                }
                k += 1;
            }
            input.truncate(stream_len);
            TenantLoad {
                name: format!("tenant-{i:03}"),
                patterns,
                input,
            }
        })
        .collect()
}

/// Streams one tenant's input through its session in `chunk`-byte
/// pieces, retrying shed chunks once the shard drains; returns the
/// per-chunk latencies in milliseconds.
fn stream(session: &Session, input: &[u8], chunk: usize) -> Vec<f64> {
    let mut latencies = Vec::with_capacity(input.len().div_ceil(chunk));
    let mut at = 0usize;
    while at < input.len() {
        let len = chunk.min(input.len() - at);
        let piece = &input[at..at + len];
        let t0 = Instant::now();
        while let SendOutcome::Shed = session.send(piece).expect("session open") {
            session.wait_idle();
        }
        session.wait_idle();
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        at += len;
    }
    latencies
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn solo_matches(pipe: &Pipeline, set: &PatternSet, input: &[u8]) -> Vec<MatchEvent> {
    let sim = Simulator::new(rap_circuit::Machine::Rap);
    let plan = pipe.plan(&sim, set, None).expect("solo plan builds");
    plan.simulate_streaming(input).0.matches
}

#[allow(clippy::too_many_lines)]
fn main() {
    let tenants = env_num("RAP_SERVE_TENANTS", 64) as usize;
    let shards = env_num("RAP_SERVE_SHARDS", 4) as usize;
    let stream_len = env_num("RAP_SERVE_STREAM", 2048) as usize;
    let chunk = env_num("RAP_SERVE_CHUNK", 256).max(1) as usize;
    let queue_pages = env_num("RAP_SERVE_QUEUE_PAGES", 8);
    println!(
        "serve load: {tenants} tenant stream(s) across {shards} shard(s), \
         {stream_len} bytes/stream in {chunk}-byte chunks, {queue_pages} queue page(s)\n"
    );

    let mut table = Table::new([
        "phase",
        "tenants",
        "shards",
        "queue_pages",
        "chunks",
        "shed",
        "backpressure",
        "bytes",
        "matches",
        "p50_ms",
        "p99_ms",
        "streams_per_sec",
    ]);
    let mut failures = 0u64;

    // ---- Phase 1: concurrent load, solo-equivalence as leakage check.
    {
        let server = Server::new(
            Pipeline::new(spec()),
            ServeConfig {
                shards,
                queue_pages,
                ..ServeConfig::default()
            },
        );
        let loads = tenant_loads(tenants, stream_len);
        let mut sessions = Vec::with_capacity(tenants);
        for (i, load) in loads.iter().enumerate() {
            let session = server
                .register(&load.name, &load.patterns)
                .expect("tenant admits");
            let admitted = server.metrics().sessions_admitted.get();
            if admitted != (i + 1) as u64 {
                eprintln!(
                    "serve load failed: sessions_admitted {admitted} after {} registration(s)",
                    i + 1
                );
                failures += 1;
            }
            sessions.push(session);
        }
        let used_shards: std::collections::BTreeSet<usize> =
            sessions.iter().map(Session::shard).collect();
        println!(
            "registered {tenants} tenant(s) over {} shard(s)",
            used_shards.len()
        );

        let t0 = Instant::now();
        let mut latencies: Vec<f64> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = sessions
                .iter()
                .zip(&loads)
                .map(|(session, load)| {
                    scope.spawn(move || {
                        let lat = stream(session, &load.input, chunk);
                        session.finish();
                        lat
                    })
                })
                .collect();
            for handle in handles {
                latencies.extend(handle.join().expect("tenant thread"));
            }
        });
        let wall = t0.elapsed().as_secs_f64();

        let mut leaks = 0usize;
        let mut matches = 0u64;
        for (session, load) in sessions.iter().zip(&loads) {
            let mut delivered = session.drain();
            delivered.sort_unstable_by_key(|m| (m.end, m.pattern));
            delivered.dedup();
            matches += delivered.len() as u64;
            let expected = solo_matches(server.pipeline(), &load.patterns, &load.input);
            if delivered != expected {
                eprintln!(
                    "serve load failed: {} diverged from its solo run \
                     ({} delivered vs {} expected)",
                    load.name,
                    delivered.len(),
                    expected.len()
                );
                leaks += 1;
            }
        }
        failures += leaks as u64;
        if server.active_sessions() != 0 {
            eprintln!(
                "serve load failed: {} session(s) still active after finish",
                server.active_sessions()
            );
            failures += 1;
        }
        let m = server.metrics();
        if m.sessions_admitted.get() != tenants as u64 {
            eprintln!("serve load failed: admitted counter moved non-monotonically");
            failures += 1;
        }
        latencies.sort_by(f64::total_cmp);
        table.row([
            "load".to_string(),
            tenants.to_string(),
            used_shards.len().to_string(),
            queue_pages.to_string(),
            m.chunks_scanned.get().to_string(),
            m.chunks_shed.get().to_string(),
            m.backpressure_events.get().to_string(),
            m.bytes_scanned.get().to_string(),
            matches.to_string(),
            f2(percentile(&latencies, 0.50)),
            f2(percentile(&latencies, 0.99)),
            f2(tenants as f64 / wall),
        ]);
        println!(
            "streamed {} byte(s) in {wall:.2}s: p50 {:.2} ms, p99 {:.2} ms, {} leak(s)\n",
            m.bytes_scanned.get(),
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
            leaks
        );
    }

    // ---- Phase 2: overload a deliberately tiny certified budget.
    {
        let server = Server::new(
            Pipeline::new(spec()),
            ServeConfig {
                shards: 1,
                queue_pages: 1,
                ..ServeConfig::default()
            },
        );
        let loads = tenant_loads(4, 512);
        let sessions: Vec<Session> = loads
            .iter()
            .map(|l| server.register(&l.name, &l.patterns).expect("admits"))
            .collect();
        let t0 = Instant::now();
        let mut latencies: Vec<f64> = Vec::new();
        let oversize = vec![b'x'; 1 << 20];
        for (session, load) in sessions.iter().zip(&loads) {
            // An over-budget burst must shed...
            let outcome = session.send(&oversize).expect("open");
            assert_eq!(outcome, SendOutcome::Shed, "1 MiB burst must shed");
            // ...and the in-budget stream must still flow afterwards.
            latencies.extend(stream(session, &load.input, 128));
            session.finish();
        }
        let wall = t0.elapsed().as_secs_f64();
        let mut matches = 0u64;
        for (session, load) in sessions.iter().zip(&loads) {
            let mut delivered = session.drain();
            delivered.sort_unstable_by_key(|m| (m.end, m.pattern));
            delivered.dedup();
            matches += delivered.len() as u64;
            if delivered != solo_matches(server.pipeline(), &load.patterns, &load.input) {
                eprintln!("serve load failed: {} diverged under overload", load.name);
                failures += 1;
            }
        }
        let m = server.metrics();
        let findings = server.findings();
        if m.chunks_shed.get() == 0 || m.backpressure_events.get() == 0 {
            eprintln!("serve load failed: overload phase recorded no shed/backpressure");
            failures += 1;
        }
        if !findings.by_rule(rap_serve::Rule::ChunkShed).is_empty()
            && findings
                .by_rule(rap_serve::Rule::SessionBackpressure)
                .is_empty()
        {
            eprintln!("serve load failed: chunks shed without a backpressure finding");
            failures += 1;
        }
        latencies.sort_by(f64::total_cmp);
        table.row([
            "overload".to_string(),
            "4".to_string(),
            "1".to_string(),
            "1".to_string(),
            m.chunks_scanned.get().to_string(),
            m.chunks_shed.get().to_string(),
            m.backpressure_events.get().to_string(),
            m.bytes_scanned.get().to_string(),
            matches.to_string(),
            f2(percentile(&latencies, 0.50)),
            f2(percentile(&latencies, 0.99)),
            f2(4.0 / wall),
        ]);
        println!(
            "overload: {} chunk(s) shed, {} backpressure event(s), findings ordered R002→R003\n",
            m.chunks_shed.get(),
            m.backpressure_events.get()
        );
    }

    // ---- Phase 3: warm registration from the persistent store.
    {
        let dir = std::env::temp_dir().join(format!("rap-serve-load-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let loads = tenant_loads(8, 512);
        {
            let pipeline = Pipeline::new(spec())
                .with_store(StoreConfig::at(&dir))
                .expect("store opens");
            let cold = Server::new(pipeline, ServeConfig::default());
            for load in &loads {
                cold.register(&load.name, &load.patterns)
                    .expect("admits")
                    .finish();
            }
            assert!(cold.pipeline().report().patterns_compiled > 0);
        }
        let pipeline = Pipeline::new(spec())
            .with_store(StoreConfig::at(&dir))
            .expect("store opens");
        let warm = Server::new(pipeline, ServeConfig::default());
        let t0 = Instant::now();
        let mut latencies: Vec<f64> = Vec::new();
        let mut matches = 0u64;
        for load in &loads {
            let session = warm.register(&load.name, &load.patterns).expect("admits");
            latencies.extend(stream(&session, &load.input, chunk));
            session.finish();
            matches += session.drain().len() as u64;
        }
        let wall = t0.elapsed().as_secs_f64();
        let report = warm.pipeline().report();
        if report.patterns_compiled != 0 {
            eprintln!(
                "serve load failed: warm registration compiled {} pattern(s)",
                report.patterns_compiled
            );
            failures += 1;
        }
        let m = warm.metrics();
        latencies.sort_by(f64::total_cmp);
        table.row([
            "warm".to_string(),
            "8".to_string(),
            warm.config().shards.to_string(),
            warm.config().queue_pages.to_string(),
            m.chunks_scanned.get().to_string(),
            m.chunks_shed.get().to_string(),
            m.backpressure_events.get().to_string(),
            m.bytes_scanned.get().to_string(),
            matches.to_string(),
            f2(percentile(&latencies, 0.50)),
            f2(percentile(&latencies, 0.99)),
            f2(8.0 / wall),
        ]);
        println!(
            "warm: {} pattern(s) compiled on re-registration\n",
            report.patterns_compiled
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!("{}", table.render());
    table.write_csv("serve_load");

    if failures > 0 {
        eprintln!("serve load failed: {failures} invariant violation(s)");
        std::process::exit(2);
    }
    println!("\nserve load clean: zero leakage, certified backpressure, warm registration");
}
