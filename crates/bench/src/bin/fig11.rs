//! Fig. 11 — the proportion of STEs, energy, and area contributed by the
//! NFA, NBVA, and LNFA modes when RAP runs every regex of every benchmark
//! with its optimal mode.

use rap_bench::eval::{eval_rap_by_mode, par_map};
use rap_bench::tables::{f2, Table};
use rap_bench::{config_from_env, suite_input, suite_regexes};
use rap_workloads::Suite;

fn main() {
    let cfg = config_from_env();
    println!("Fig. 11 — per-mode share of STEs / energy / area across all benchmarks\n");

    let systems = par_map(Suite::all().to_vec(), |suite| {
        let patterns = suite_regexes(suite, &cfg);
        let input = suite_input(suite, &cfg);
        eval_rap_by_mode(suite, &patterns, &input)
    });

    let mut ste = [0.0f64; 3];
    let mut energy = [0.0f64; 3];
    let mut area = [0.0f64; 3];
    for sys in &systems {
        for (i, part) in [&sys.nfa, &sys.nbva, &sys.lnfa].iter().enumerate() {
            ste[i] += part.states as f64;
            energy[i] += part.energy_uj;
            area[i] += part.area_mm2;
        }
    }
    let mut table = Table::new(["Metric", "NFA %", "NBVA %", "LNFA %", "Total"]);
    for (name, vals, unit) in [
        ("STEs", ste, ""),
        ("Energy", energy, " uJ"),
        ("Area", area, " mm2"),
    ] {
        let total: f64 = vals.iter().sum();
        table.row([
            name.to_string(),
            f2(100.0 * vals[0] / total),
            f2(100.0 * vals[1] / total),
            f2(100.0 * vals[2] / total),
            format!("{}{}", f2(total), unit),
        ]);
    }
    print!("{}", table.render());
    table.write_csv("fig11");

    // The paper's observation: NFA's energy/area share exceeds its STE
    // share, showing the effectiveness of the NBVA and LNFA modes.
    let ste_total: f64 = ste.iter().sum();
    let e_total: f64 = energy.iter().sum();
    println!(
        "\nNFA share: {}% of STEs but {}% of energy (paper: energy share > STE share)",
        f2(100.0 * ste[0] / ste_total),
        f2(100.0 * energy[0] / e_total),
    );
}
