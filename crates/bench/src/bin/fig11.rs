//! Fig. 11 — per-mode share of STEs / energy / area (thin wrapper over
//! [`rap_bench::experiments::fig11`]).

use rap_bench::{experiments, pipeline_from_env};

fn main() {
    let pipe = pipeline_from_env();
    experiments::fig11(&pipe);
}
