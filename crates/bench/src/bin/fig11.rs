//! Fig. 11 — per-mode share of STEs / energy / area (thin wrapper over
//! [`rap_bench::experiments::fig11`]).

use rap_bench::{config_from_env, experiments, Pipeline};

fn main() {
    let pipe = Pipeline::new(config_from_env());
    experiments::fig11(&pipe);
}
