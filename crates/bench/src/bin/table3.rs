//! Table 3 — LNFA mode of RAP (baseline) vs NFA mode of RAP, CAMA, BVAP,
//! and CA, on the regexes each benchmark compiles to LNFA.

use rap_bench::eval::{par_map, ModeSplit};
use rap_bench::tables::{f2, ratio, Table};
use rap_bench::{config_from_env, eval_machine, suite_input, suite_regexes};
use rap_circuit::Machine;
use rap_compiler::Mode;
use rap_workloads::Suite;

struct Row {
    suite: Suite,
    /// [LNFA, NFA, CAMA, BVAP, CA] summaries.
    cells: [rap_bench::RunSummary; 5],
}

fn main() {
    let cfg = config_from_env();
    println!("Table 3 — LNFA-mode comparison (energy uJ / area mm2 / throughput Gch/s)");
    println!(
        "({} patterns per suite, {} input chars)\n",
        cfg.patterns_per_suite, cfg.input_len
    );

    let rows: Vec<Option<Row>> = par_map(Suite::all().to_vec(), |suite| {
        let patterns = suite_regexes(suite, &cfg);
        let lnfa = ModeSplit::of(&patterns).lnfa;
        if lnfa.is_empty() {
            return None;
        }
        let input = suite_input(suite, &cfg);
        let cells = [
            eval_machine(Machine::Rap, suite, &lnfa, &input, Some(Mode::Lnfa)),
            eval_machine(Machine::Rap, suite, &lnfa, &input, Some(Mode::Nfa)),
            eval_machine(Machine::Cama, suite, &lnfa, &input, None),
            eval_machine(Machine::Bvap, suite, &lnfa, &input, None),
            eval_machine(Machine::Ca, suite, &lnfa, &input, None),
        ];
        Some(Row { suite, cells })
    });
    let rows: Vec<Row> = rows.into_iter().flatten().collect();

    let machines = ["LNFA", "NFA", "CAMA", "BVAP", "CA"];
    for (metric, get) in [
        (
            "Energy (uJ)",
            (|s: &rap_bench::RunSummary| s.energy_uj) as fn(_) -> f64,
        ),
        ("Area (mm2)", |s: &rap_bench::RunSummary| s.area_mm2),
        ("Throughput (Gch/s)", |s: &rap_bench::RunSummary| {
            s.throughput_gchps
        }),
    ] {
        println!("\n== {metric} ==");
        let mut table = Table::new(std::iter::once("Dataset").chain(machines.iter().copied()));
        let mut ratios = vec![Vec::new(); 5];
        for row in &rows {
            let base = get(&row.cells[0]);
            let mut cells = vec![row.suite.name().to_string()];
            for (i, cell) in row.cells.iter().enumerate() {
                cells.push(f2(get(cell)));
                ratios[i].push(get(cell) / base);
            }
            table.row(cells);
        }
        let mut avg = vec!["Average (vs LNFA)".to_string()];
        for r in &ratios {
            avg.push(ratio(rap_bench::tables::geomean(r)));
        }
        table.row(avg);
        print!("{}", table.render());
        let name = match metric {
            "Energy (uJ)" => "table3_energy",
            "Area (mm2)" => "table3_area",
            _ => "table3_throughput",
        };
        table.write_csv(name);
    }
}
