//! Table 3 — LNFA-mode comparison (thin wrapper over
//! [`rap_bench::experiments::table3`]).

use rap_bench::{experiments, pipeline_from_env};

fn main() {
    let pipe = pipeline_from_env();
    experiments::table3(&pipe);
}
