//! Table 3 — LNFA-mode comparison (thin wrapper over
//! [`rap_bench::experiments::table3`]).

use rap_bench::{config_from_env, experiments, Pipeline};

fn main() {
    let pipe = Pipeline::new(config_from_env());
    experiments::table3(&pipe);
}
