//! Live partial-reconfiguration harness — swaps one tenant mid-stream
//! while the others keep scanning, and checks the certificate's two
//! promises: staying tenants are bit-identical to a no-swap control
//! run, and the observed drain never exceeds the certified bound.
//!
//! Two phases, one CSV row each (`results/hotswap.csv`):
//!
//! * **serve** — a server with N staying tenant streams plus one
//!   "rotor" tenant that is hot-swapped (`Server::swap_tenant`) once
//!   per iteration while the stayers stream. The stayers' delivered
//!   events are compared bit-identical against an identically
//!   configured control server that never swaps. Reports swap-latency
//!   p50/p99 and the largest certified drain bound.
//! * **execute** — the sim-level certificate spend: `Pipeline::swap`
//!   certifies a `ReconfigPlan`, `rap_swap::execute` runs it mid-stream
//!   through `simulate_hot_swap`, and the observed quiesce is checked
//!   against the certified drain bound with the staying tenants
//!   demux-identical to the unswapped composed run.
//!
//! Exits non-zero when any staying stream diverges, when a swap's
//! observed drain exceeds its certified bound, when a swap fails to
//! certify, or when the serve-plane swap counters disagree with the
//! number of swaps performed.
//!
//! Scale knobs: `RAP_SWAP_STAYING` (default 3), `RAP_SWAP_ITERS`
//! (default 8), `RAP_SWAP_STREAM` bytes per staying stream (default
//! 1536), `RAP_SWAP_CHUNK` bytes per chunk (default 192),
//! `RAP_BENCH_SEED`.

use std::time::Instant;

use rap_bench::tables::{f2, Table};
use rap_circuit::Machine;
use rap_pipeline::{BenchConfig, PatternSet, Pipeline, SwapOptions};
use rap_serve::{ServeConfig, Server, Session};
use rap_sim::{MatchEvent, Simulator};

fn env_num(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn spec() -> BenchConfig {
    BenchConfig {
        patterns_per_suite: 4,
        input_len: 256,
        match_rate: 0.02,
        seed: env_num("RAP_BENCH_SEED", 42),
    }
}

/// One staying tenant's workload: literal patterns (span-bounded, so
/// swaps next to it always have a finite drain) plus an input salted
/// with its own needles and a neighbour's.
struct TenantLoad {
    name: String,
    patterns: PatternSet,
    input: Vec<u8>,
}

fn staying_loads(n: usize, stream_len: usize) -> Vec<TenantLoad> {
    (0..n)
        .map(|i| {
            let sources = vec![format!("sig{i:03}x"), format!("beacon{i:03}")];
            let patterns = PatternSet::parse(&sources).expect("staying patterns parse");
            let own = format!("sig{i:03}x");
            let foreign = format!("sig{:03}x", (i + 1) % n.max(1));
            let beacon = format!("beacon{i:03}");
            let mut input = Vec::with_capacity(stream_len);
            let mut k = 0usize;
            while input.len() < stream_len {
                match k % 4 {
                    0 => input.extend_from_slice(own.as_bytes()),
                    1 => input.extend_from_slice(b" quiet wire "),
                    2 => input.extend_from_slice(foreign.as_bytes()),
                    _ => input.extend_from_slice(beacon.as_bytes()),
                }
                k += 1;
            }
            input.truncate(stream_len);
            TenantLoad {
                name: format!("stay-{i:03}"),
                patterns,
                input,
            }
        })
        .collect()
}

/// The rotor tenant swapped in at generation `k`.
fn rotor(k: usize) -> (String, PatternSet) {
    let patterns = PatternSet::parse(&[format!("needle{k:03}")]).expect("rotor patterns parse");
    (format!("rotor-{k:03}"), patterns)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn drained_sorted(session: &Session) -> Vec<MatchEvent> {
    let mut events = session.drain();
    events.sort_unstable_by_key(|m| (m.end, m.pattern));
    events.dedup();
    events
}

/// Streams every staying session's next chunk and waits for the scans.
fn feed_round(sessions: &[Session], loads: &[TenantLoad], round: usize, chunk: usize) {
    for (session, load) in sessions.iter().zip(loads) {
        let at = (round * chunk).min(load.input.len());
        let end = ((round + 1) * chunk).min(load.input.len());
        if at < end {
            session.send(&load.input[at..end]).expect("session open");
        }
    }
    for session in sessions {
        session.wait_idle();
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let staying = env_num("RAP_SWAP_STAYING", 3) as usize;
    let iters = env_num("RAP_SWAP_ITERS", 8) as usize;
    let stream_len = env_num("RAP_SWAP_STREAM", 1536) as usize;
    let chunk = env_num("RAP_SWAP_CHUNK", 192).max(1) as usize;
    println!(
        "hot swap: {staying} staying stream(s), {iters} swap(s), \
         {stream_len} bytes/stream in {chunk}-byte chunks\n"
    );

    let mut table = Table::new([
        "phase",
        "staying",
        "swaps",
        "bytes",
        "matches",
        "swap_p50_ms",
        "swap_p99_ms",
        "drain_certified",
        "drain_observed",
        "identical",
    ]);
    let mut failures = 0u64;

    // ---- Phase 1: serve-plane swaps under live staying traffic.
    {
        let config = ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        };
        let loads = staying_loads(staying, stream_len);
        let rounds = stream_len.div_ceil(chunk);

        // Control run: same registrations, same traffic, zero swaps.
        let control = Server::new(Pipeline::new(spec()), config);
        let control_sessions: Vec<Session> = loads
            .iter()
            .map(|l| control.register(&l.name, &l.patterns).expect("admits"))
            .collect();
        let (rotor_name, rotor_patterns) = rotor(0);
        let control_rotor = control
            .register(&rotor_name, &rotor_patterns)
            .expect("rotor admits");
        for round in 0..rounds {
            feed_round(&control_sessions, &loads, round, chunk);
        }
        for session in &control_sessions {
            session.finish();
        }
        control_rotor.finish();
        let expected: Vec<Vec<MatchEvent>> = control_sessions.iter().map(drained_sorted).collect();

        // Swap run: identical traffic, one hot swap per round.
        let server = Server::new(Pipeline::new(spec()), config);
        let sessions: Vec<Session> = loads
            .iter()
            .map(|l| server.register(&l.name, &l.patterns).expect("admits"))
            .collect();
        let (name0, patterns0) = rotor(0);
        let mut rotor_session = server.register(&name0, &patterns0).expect("rotor admits");
        let mut latencies: Vec<f64> = Vec::new();
        let mut drain_certified = 0u64;
        let mut swaps = 0usize;
        for round in 0..rounds.max(iters) {
            feed_round(&sessions, &loads, round, chunk);
            if swaps < iters {
                let (name, patterns) = rotor(swaps + 1);
                let t0 = Instant::now();
                match server.swap_tenant(&rotor_session, &name, &patterns) {
                    Ok((replacement, plan)) => {
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        drain_certified = drain_certified.max(plan.drain.cycles);
                        if plan.drain.cycles == 0 {
                            eprintln!("hot swap failed: certified drain bound of zero");
                            failures += 1;
                        }
                        rotor_session = replacement;
                        swaps += 1;
                    }
                    Err(e) => {
                        eprintln!("hot swap failed: swap {} refused: {e}", swaps + 1);
                        failures += 1;
                        break;
                    }
                }
            }
        }
        for session in &sessions {
            session.finish();
        }
        rotor_session.finish();

        let mut identical = true;
        let mut matches = 0u64;
        for ((session, load), expect) in sessions.iter().zip(&loads).zip(&expected) {
            let delivered = drained_sorted(session);
            matches += delivered.len() as u64;
            if &delivered != expect {
                eprintln!(
                    "hot swap failed: {} diverged from the no-swap control \
                     ({} delivered vs {} expected)",
                    load.name,
                    delivered.len(),
                    expect.len()
                );
                identical = false;
                failures += 1;
            }
        }
        let m = server.metrics();
        if m.swaps_completed.get() != swaps as u64 {
            eprintln!(
                "hot swap failed: {} swap(s) performed but swaps_completed is {}",
                swaps,
                m.swaps_completed.get()
            );
            failures += 1;
        }
        let swapped_findings = server
            .findings()
            .by_rule(rap_serve::Rule::TenantSwapped)
            .len();
        if swapped_findings != swaps {
            eprintln!(
                "hot swap failed: {swaps} swap(s) performed but {swapped_findings} \
                 R005 finding(s) recorded"
            );
            failures += 1;
        }
        latencies.sort_by(f64::total_cmp);
        table.row([
            "serve".to_string(),
            staying.to_string(),
            swaps.to_string(),
            m.bytes_scanned.get().to_string(),
            matches.to_string(),
            f2(percentile(&latencies, 0.50)),
            f2(percentile(&latencies, 0.99)),
            drain_certified.to_string(),
            "0".to_string(),
            u64::from(identical).to_string(),
        ]);
        println!(
            "serve: {swaps} swap(s), p50 {:.2} ms, p99 {:.2} ms, staying identical: {}\n",
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
            identical
        );
    }

    // ---- Phase 2: sim-level execution against the certified bound.
    {
        let pipe = Pipeline::new(spec());
        let sim = Simulator::new(Machine::Rap);
        let stay_a = PatternSet::parse(&["harbor".to_string()]).expect("parses");
        let stay_b = PatternSet::parse(&["lantern".to_string()]).expect("parses");
        let legacy = PatternSet::parse(&["oldsig".to_string()]).expect("parses");
        let fresh = PatternSet::parse(&["newsig".to_string()]).expect("parses");
        let tenants = vec![
            ("alpha", &sim, &stay_a),
            ("beta", &sim, &stay_b),
            ("legacy", &sim, &legacy),
        ];
        let admission = pipe
            .admit(&tenants, &rap_pipeline::AdmitOptions::default())
            .expect("residents admit");
        assert!(admission.admitted(), "resident composition must admit");

        let input: Vec<u8> =
            b"harbor oldsig lantern harbor newsig lantern oldsig harbor newsig lantern".repeat(8);
        let swap_at = input.len() / 2;
        let t0 = Instant::now();
        let outcome = pipe
            .swap(
                &admission,
                "legacy",
                ("fresh", &sim, &fresh),
                &SwapOptions::default(),
            )
            .expect("swap analysis runs");
        let Some(plan) = &outcome.analysis.plan else {
            eprintln!("hot swap failed: sim-level swap did not certify");
            failures += 1;
            finish(&mut table, failures);
            return;
        };
        let resident = admission
            .analysis
            .composed
            .as_ref()
            .expect("admitted composition");
        let execution = rap_swap::execute(plan, resident, &input, swap_at, Machine::Rap, None);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        if execution.observed_drain_cycles > plan.drain.cycles {
            eprintln!(
                "hot swap failed: observed drain {} exceeds certified bound {}",
                execution.observed_drain_cycles, plan.drain.cycles
            );
            failures += 1;
        }
        // Staying tenants must be demux-identical to the unswapped run.
        let unswapped = admission
            .plan
            .as_ref()
            .expect("verified resident plan")
            .simulate_streaming(&input)
            .0
            .matches;
        let mut identical = true;
        for (name, observed) in &execution.staying {
            let idx = resident
                .tenants
                .iter()
                .position(|t| &t.name == name)
                .expect("staying tenant is resident");
            let expect = resident.tenant_matches(idx, &unswapped);
            if observed != &expect {
                eprintln!("hot swap failed: {name} diverged across the executed swap");
                identical = false;
                failures += 1;
            }
        }
        let matches: u64 = execution
            .staying
            .iter()
            .map(|(_, m)| m.len() as u64)
            .sum::<u64>()
            + execution.outgoing.len() as u64
            + execution.incoming.len() as u64;
        table.row([
            "execute".to_string(),
            "2".to_string(),
            "1".to_string(),
            input.len().to_string(),
            matches.to_string(),
            f2(wall_ms),
            f2(wall_ms),
            plan.drain.cycles.to_string(),
            execution.observed_drain_cycles.to_string(),
            u64::from(identical).to_string(),
        ]);
        println!(
            "execute: observed drain {} of {} certified cycle(s), staying identical: {}\n",
            execution.observed_drain_cycles, plan.drain.cycles, identical
        );
    }

    finish(&mut table, failures);
}

fn finish(table: &mut Table, failures: u64) {
    println!("{}", table.render());
    table.write_csv("hotswap");
    if failures > 0 {
        eprintln!("hot swap failed: {failures} invariant violation(s)");
        std::process::exit(2);
    }
    println!("hot swap clean: staying streams bit-identical, drains within certified bounds");
}
