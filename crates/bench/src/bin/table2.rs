//! Table 2 — NBVA-mode comparison (thin wrapper over
//! [`rap_bench::experiments::table2`]).

use rap_bench::{config_from_env, experiments, Pipeline};

fn main() {
    let pipe = Pipeline::new(config_from_env());
    experiments::table2(&pipe);
}
