//! Table 2 — NBVA-mode comparison (thin wrapper over
//! [`rap_bench::experiments::table2`]).

use rap_bench::{experiments, pipeline_from_env};

fn main() {
    let pipe = pipeline_from_env();
    experiments::table2(&pipe);
}
