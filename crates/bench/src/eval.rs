//! Workload materialization and per-machine evaluation, on top of the
//! staged [`rap_pipeline`] engine.
//!
//! This module is the harness-facing veneer: suite corpora come from the
//! process-wide memo (each corpus is generated, parsed, and synthesized
//! exactly once per process), per-cell evaluation goes through
//! [`Pipeline::eval`]'s typed compile → map → verify → simulate chain with
//! content-addressed plan caching, and failures surface as typed
//! [`EvalError`]s instead of panics, so one bad suite no longer aborts a
//! whole table run.

use rap_circuit::Machine;
use rap_compiler::{Compiler, CompilerConfig, Mode};
use rap_pipeline::{PatternSet, Pipeline};
use rap_regex::Regex;
use rap_sim::Simulator;
use rap_workloads::Suite;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

pub use rap_pipeline::{BenchConfig, EvalError, RunSummary, SuiteCorpus};

/// The memoized corpus for `(suite, cfg)` — patterns generated once,
/// parsed once, input synthesized once per process.
pub fn suite_corpus(suite: Suite, cfg: &BenchConfig) -> Arc<SuiteCorpus> {
    rap_pipeline::suite_corpus(suite, cfg).0
}

/// Parses the synthetic patterns of a suite (memoized; cloned out of the
/// shared corpus).
pub fn suite_regexes(suite: Suite, cfg: &BenchConfig) -> Vec<Regex> {
    suite_corpus(suite, cfg).regexes()
}

/// Generates the input stream for a suite (memoized; cloned out of the
/// shared corpus — the pattern corpus is *not* regenerated).
pub fn suite_input(suite: Suite, cfg: &BenchConfig) -> Vec<u8> {
    suite_corpus(suite, cfg).input().to_vec()
}

/// Builds a simulator with a suite's DSE-chosen knobs.
pub fn simulator_for(machine: Machine, suite: Suite) -> Simulator {
    Simulator::new(machine)
        .with_bv_depth(suite.chosen_bv_depth())
        .with_bin_size(suite.chosen_bin_size())
}

/// Evaluates one machine on a pattern set, optionally forcing a mode (the
/// RAP-NFA columns of Tables 2/3 force `Mode::Nfa`).
///
/// # Errors
///
/// Returns [`EvalError`] when a pattern fails to compile or the mapper
/// produces an illegal plan; the caller decides whether to skip the cell
/// or abort.
pub fn eval_machine(
    pipe: &Pipeline,
    machine: Machine,
    suite: Suite,
    patterns: &[Regex],
    input: &[u8],
    forced: Option<Mode>,
) -> Result<RunSummary, EvalError> {
    let pats = PatternSet::from_regexes(patterns);
    pipe.eval(machine, suite, &pats, input, forced)
}

/// Lints one suite's synthetic corpus on one machine: compiles with the
/// suite's DSE-chosen knobs, maps, and statically verifies the plan,
/// returning every finding (empty = provably legal, no advisories).
///
/// # Errors
///
/// Returns [`EvalError::Compile`] when the corpus fails to compile.
pub fn lint_suite(
    machine: Machine,
    suite: Suite,
    cfg: &BenchConfig,
) -> Result<rap_verify::Report, EvalError> {
    let sim = simulator_for(machine, suite);
    let corpus = suite_corpus(suite, cfg);
    let pats = PatternSet::from_regexes(&corpus.regexes());
    Ok(pats.compile(&sim, None)?.map(&sim).lint())
}

/// The decided-mode partition of a suite's patterns.
#[derive(Clone, Debug, Default)]
pub struct ModeSplit {
    /// Patterns the decision graph sends to basic NFA.
    pub nfa: Vec<Regex>,
    /// Patterns compiled to NBVA.
    pub nbva: Vec<Regex>,
    /// Patterns compiled to LNFA.
    pub lnfa: Vec<Regex>,
}

impl ModeSplit {
    /// Partitions patterns with the default decision graph.
    pub fn of(patterns: &[Regex]) -> ModeSplit {
        let compiler = Compiler::new(CompilerConfig::default());
        let mut split = ModeSplit::default();
        for re in patterns {
            match compiler.decide(re) {
                Mode::Nfa => split.nfa.push(re.clone()),
                Mode::Nbva => split.nbva.push(re.clone()),
                Mode::Lnfa => split.lnfa.push(re.clone()),
            }
        }
        split
    }
}

/// RAP evaluated per mode (the §5.5 system integration): each mode's
/// patterns run on their own arrays; NBVA arrays below 2 Gch/s are
/// replicated to share the workload (< 3% area overhead in the paper).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RapSystem {
    /// Per-mode summaries (NFA, NBVA, LNFA).
    pub nfa: RunSummary,
    /// NBVA summary *after* throughput replication.
    pub nbva: RunSummary,
    /// LNFA summary.
    pub lnfa: RunSummary,
}

impl RapSystem {
    /// Whole-system summary: energies/areas/states add; throughput is the
    /// slowest mode's (arrays run the same stream in parallel).
    pub fn total(&self) -> RunSummary {
        let parts = [self.nfa, self.nbva, self.lnfa];
        let active: Vec<&RunSummary> = parts.iter().filter(|p| p.states > 0).collect();
        let throughput = active
            .iter()
            .map(|p| p.throughput_gchps)
            .fold(f64::INFINITY, f64::min);
        let throughput = if active.is_empty() { 0.0 } else { throughput };
        let energy_uj: f64 = active.iter().map(|p| p.energy_uj).sum();
        let area_mm2: f64 = active.iter().map(|p| p.area_mm2).sum();
        let runtime_s = active
            .iter()
            .map(|p| {
                if p.power_w > 0.0 {
                    p.energy_uj * 1e-6 / p.power_w
                } else {
                    0.0
                }
            })
            .fold(0.0f64, f64::max);
        RunSummary {
            energy_uj,
            area_mm2,
            throughput_gchps: throughput,
            power_w: if runtime_s > 0.0 {
                energy_uj * 1e-6 / runtime_s
            } else {
                0.0
            },
            matches: active.iter().map(|p| p.matches).sum(),
            states: active.iter().map(|p| p.states).sum(),
        }
    }
}

/// Evaluates RAP with the full decision graph, one run per mode partition.
///
/// # Errors
///
/// Returns [`EvalError`] when any mode partition fails to compile or map.
pub fn eval_rap_by_mode(
    pipe: &Pipeline,
    suite: Suite,
    patterns: &[Regex],
    input: &[u8],
) -> Result<RapSystem, EvalError> {
    let split = ModeSplit::of(patterns);
    let run = |subset: &[Regex], forced: Mode| -> Result<RunSummary, EvalError> {
        if subset.is_empty() {
            return Ok(RunSummary::default());
        }
        eval_machine(pipe, Machine::Rap, suite, subset, input, Some(forced))
    };
    let nfa = run(&split.nfa, Mode::Nfa)?;
    let mut nbva = run(&split.nbva, Mode::Nbva)?;
    let lnfa = run(&split.lnfa, Mode::Lnfa)?;

    // §5.5 replication: bring NBVA throughput up to ≥ 2 Gch/s by assigning
    // additional arrays to share the stalling workload.
    if nbva.states > 0 && nbva.throughput_gchps > 0.0 && nbva.throughput_gchps < 2.0 {
        let factor = (2.0 / nbva.throughput_gchps).ceil();
        nbva.throughput_gchps = (nbva.throughput_gchps * factor).min(Machine::Rap.clock_hz() / 1e9);
        // The replicas are near-idle copies: small area overhead, same
        // total switching energy (the work is split, not duplicated).
        nbva.area_mm2 *= 1.0 + 0.03 * (factor - 1.0);
    }
    Ok(RapSystem { nfa, nbva, lnfa })
}

/// Maps `f` over `items` in parallel on a bounded worker pool (at least
/// two workers — the harness parallelizes across the seven suites,
/// matching the paper's multi-core experiment methodology).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    rap_pipeline::par_map(items, rap_pipeline::default_workers(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            patterns_per_suite: 12,
            input_len: 2_000,
            match_rate: 0.02,
            seed: 7,
        }
    }

    #[test]
    fn suite_materialization() {
        let cfg = tiny();
        let res = suite_regexes(Suite::Snort, &cfg);
        assert_eq!(res.len(), 12);
        let input = suite_input(Suite::Snort, &cfg);
        assert_eq!(input.len(), 2_000);
    }

    #[test]
    fn eval_machine_produces_sane_numbers() {
        let cfg = tiny();
        let pipe = Pipeline::new(cfg);
        let patterns = suite_regexes(Suite::SpamAssassin, &cfg);
        let input = suite_input(Suite::SpamAssassin, &cfg);
        for machine in Machine::all() {
            let s = eval_machine(&pipe, machine, Suite::SpamAssassin, &patterns, &input, None)
                .unwrap_or_else(|e| panic!("{machine}: {e}"));
            assert!(s.energy_uj > 0.0, "{machine}");
            assert!(s.area_mm2 > 0.0, "{machine}");
            assert!(s.throughput_gchps > 0.0, "{machine}");
            assert!(s.states > 0, "{machine}");
        }
    }

    #[test]
    fn rap_corpus_lints_clean() {
        let cfg = tiny();
        for suite in Suite::all() {
            let report = lint_suite(Machine::Rap, suite, &cfg).expect("corpus compiles");
            assert!(report.is_empty(), "{suite}: {report}");
        }
    }

    #[test]
    fn mode_split_partitions_everything() {
        let cfg = tiny();
        let patterns = suite_regexes(Suite::Snort, &cfg);
        let split = ModeSplit::of(&patterns);
        assert_eq!(
            split.nfa.len() + split.nbva.len() + split.lnfa.len(),
            patterns.len()
        );
    }

    #[test]
    fn rap_system_total_combines_modes() {
        let cfg = tiny();
        let pipe = Pipeline::new(cfg);
        let patterns = suite_regexes(Suite::Snort, &cfg);
        let input = suite_input(Suite::Snort, &cfg);
        let sys = eval_rap_by_mode(&pipe, Suite::Snort, &patterns, &input).expect("evaluates");
        let total = sys.total();
        assert!(total.energy_uj > 0.0);
        assert!(total.area_mm2 >= sys.nbva.area_mm2);
        // Replication guarantees ≥ 2 Gch/s system throughput (or the mode
        // was already faster).
        assert!(
            total.throughput_gchps >= 1.99,
            "throughput {}",
            total.throughput_gchps
        );
    }

    #[test]
    fn all_machines_report_identical_match_counts() {
        let cfg = tiny();
        let pipe = Pipeline::new(cfg);
        let patterns = suite_regexes(Suite::Yara, &cfg);
        let input = suite_input(Suite::Yara, &cfg);
        let counts: Vec<u64> = Machine::all()
            .iter()
            .map(|&m| {
                eval_machine(&pipe, m, Suite::Yara, &patterns, &input, None)
                    .expect("evaluates")
                    .matches
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn repeated_eval_hits_plan_cache() {
        let cfg = tiny();
        let pipe = Pipeline::new(cfg);
        let patterns = suite_regexes(Suite::ClamAv, &cfg);
        let input = suite_input(Suite::ClamAv, &cfg);
        let a = eval_machine(&pipe, Machine::Rap, Suite::ClamAv, &patterns, &input, None)
            .expect("evaluates");
        let b = eval_machine(&pipe, Machine::Rap, Suite::ClamAv, &patterns, &input, None)
            .expect("evaluates");
        assert_eq!(a, b);
        let report = pipe.report();
        assert_eq!(report.plan_cache.misses, 1, "{report}");
        assert_eq!(report.plan_cache.hits, 1, "{report}");
    }
}
