//! Workload materialization and per-machine evaluation.

use rap_circuit::Machine;
use rap_compiler::{Compiler, CompilerConfig, Mode};
use rap_regex::Regex;
use rap_sim::{RunResult, Simulator};
use rap_workloads::Suite;
use serde::{Deserialize, Serialize};

/// Harness scale knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Patterns generated per suite.
    pub patterns_per_suite: usize,
    /// Input stream length in bytes.
    pub input_len: usize,
    /// Fraction of stream bytes belonging to planted matches.
    pub match_rate: f64,
    /// RNG seed for workload synthesis.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            patterns_per_suite: 300,
            input_len: 100_000,
            match_rate: 0.02,
            seed: 42,
        }
    }
}

/// Aggregate numbers for one (machine, workload) run — one table cell row.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RunSummary {
    /// Total energy in microjoules.
    pub energy_uj: f64,
    /// Allocated area in mm².
    pub area_mm2: f64,
    /// Throughput in Gch/s.
    pub throughput_gchps: f64,
    /// Average power in watts.
    pub power_w: f64,
    /// Matches reported.
    pub matches: u64,
    /// Hardware states (STEs / chain positions) allocated.
    pub states: u64,
}

impl RunSummary {
    /// Energy efficiency in Gch/s/W.
    pub fn energy_efficiency(&self) -> f64 {
        if self.power_w == 0.0 {
            0.0
        } else {
            self.throughput_gchps / self.power_w
        }
    }

    /// Compute density in Gch/s/mm².
    pub fn compute_density(&self) -> f64 {
        if self.area_mm2 == 0.0 {
            0.0
        } else {
            self.throughput_gchps / self.area_mm2
        }
    }

    fn from_result(r: &RunResult, states: u64) -> RunSummary {
        RunSummary {
            energy_uj: r.metrics.energy_uj,
            area_mm2: r.metrics.area_mm2,
            throughput_gchps: r.metrics.throughput_gchps(),
            power_w: r.metrics.power_w(),
            matches: r.metrics.matches,
            states,
        }
    }
}

/// Parses the synthetic patterns of a suite.
pub fn suite_regexes(suite: Suite, cfg: &BenchConfig) -> Vec<Regex> {
    rap_workloads::generate_patterns(suite, cfg.patterns_per_suite, cfg.seed)
        .iter()
        .map(|p| rap_regex::parse(p).expect("generated patterns always parse"))
        .collect()
}

/// Generates the input stream for a suite.
pub fn suite_input(suite: Suite, cfg: &BenchConfig) -> Vec<u8> {
    let patterns = rap_workloads::generate_patterns(suite, cfg.patterns_per_suite, cfg.seed);
    rap_workloads::generate_input(&patterns, cfg.input_len, cfg.match_rate, cfg.seed)
}

/// Builds a simulator with a suite's DSE-chosen knobs.
pub fn simulator_for(machine: Machine, suite: Suite) -> Simulator {
    Simulator::new(machine)
        .with_bv_depth(suite.chosen_bv_depth())
        .with_bin_size(suite.chosen_bin_size())
}

/// Evaluates one machine on a pattern set, optionally forcing a mode (the
/// RAP-NFA columns of Tables 2/3 force `Mode::Nfa`).
pub fn eval_machine(
    machine: Machine,
    suite: Suite,
    patterns: &[Regex],
    input: &[u8],
    forced: Option<Mode>,
) -> RunSummary {
    let sim = simulator_for(machine, suite);
    let compiled = match forced {
        Some(mode) => sim.compile_forced(patterns, mode),
        None => sim.compile(patterns),
    }
    .unwrap_or_else(|e| panic!("{machine} compile failed: {e}"));
    let states: u64 = compiled.iter().map(|c| c.state_count()).sum();
    let mapping = sim.map(&compiled);
    let lint = sim.verify(&compiled, &mapping);
    assert!(
        lint.is_legal(),
        "{machine} produced an illegal mapping:\n{lint}"
    );
    let result = sim.simulate(&compiled, &mapping, input);
    RunSummary::from_result(&result, states)
}

/// Lints one suite's synthetic corpus on one machine: compiles with the
/// suite's DSE-chosen knobs, maps, and statically verifies the plan,
/// returning every finding (empty = provably legal, no advisories).
pub fn lint_suite(machine: Machine, suite: Suite, cfg: &BenchConfig) -> rap_verify::Report {
    let sim = simulator_for(machine, suite);
    let patterns = suite_regexes(suite, cfg);
    let compiled = sim
        .compile(&patterns)
        .unwrap_or_else(|e| panic!("{suite} corpus compile failed: {e}"));
    let mapping = sim.map(&compiled);
    sim.verify(&compiled, &mapping)
}

/// The decided-mode partition of a suite's patterns.
#[derive(Clone, Debug, Default)]
pub struct ModeSplit {
    /// Patterns the decision graph sends to basic NFA.
    pub nfa: Vec<Regex>,
    /// Patterns compiled to NBVA.
    pub nbva: Vec<Regex>,
    /// Patterns compiled to LNFA.
    pub lnfa: Vec<Regex>,
}

impl ModeSplit {
    /// Partitions patterns with the default decision graph.
    pub fn of(patterns: &[Regex]) -> ModeSplit {
        let compiler = Compiler::new(CompilerConfig::default());
        let mut split = ModeSplit::default();
        for re in patterns {
            match compiler.decide(re) {
                Mode::Nfa => split.nfa.push(re.clone()),
                Mode::Nbva => split.nbva.push(re.clone()),
                Mode::Lnfa => split.lnfa.push(re.clone()),
            }
        }
        split
    }
}

/// RAP evaluated per mode (the §5.5 system integration): each mode's
/// patterns run on their own arrays; NBVA arrays below 2 Gch/s are
/// replicated to share the workload (< 3% area overhead in the paper).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RapSystem {
    /// Per-mode summaries (NFA, NBVA, LNFA).
    pub nfa: RunSummary,
    /// NBVA summary *after* throughput replication.
    pub nbva: RunSummary,
    /// LNFA summary.
    pub lnfa: RunSummary,
}

impl RapSystem {
    /// Whole-system summary: energies/areas/states add; throughput is the
    /// slowest mode's (arrays run the same stream in parallel).
    pub fn total(&self) -> RunSummary {
        let parts = [self.nfa, self.nbva, self.lnfa];
        let active: Vec<&RunSummary> = parts.iter().filter(|p| p.states > 0).collect();
        let throughput = active
            .iter()
            .map(|p| p.throughput_gchps)
            .fold(f64::INFINITY, f64::min);
        let throughput = if active.is_empty() { 0.0 } else { throughput };
        let energy_uj: f64 = active.iter().map(|p| p.energy_uj).sum();
        let area_mm2: f64 = active.iter().map(|p| p.area_mm2).sum();
        let runtime_s = active
            .iter()
            .map(|p| {
                if p.power_w > 0.0 {
                    p.energy_uj * 1e-6 / p.power_w
                } else {
                    0.0
                }
            })
            .fold(0.0f64, f64::max);
        RunSummary {
            energy_uj,
            area_mm2,
            throughput_gchps: throughput,
            power_w: if runtime_s > 0.0 {
                energy_uj * 1e-6 / runtime_s
            } else {
                0.0
            },
            matches: active.iter().map(|p| p.matches).sum(),
            states: active.iter().map(|p| p.states).sum(),
        }
    }
}

/// Evaluates RAP with the full decision graph, one run per mode partition.
pub fn eval_rap_by_mode(suite: Suite, patterns: &[Regex], input: &[u8]) -> RapSystem {
    let split = ModeSplit::of(patterns);
    let run = |subset: &[Regex], forced: Mode| -> RunSummary {
        if subset.is_empty() {
            return RunSummary::default();
        }
        eval_machine(Machine::Rap, suite, subset, input, Some(forced))
    };
    let nfa = run(&split.nfa, Mode::Nfa);
    let mut nbva = run(&split.nbva, Mode::Nbva);
    let lnfa = run(&split.lnfa, Mode::Lnfa);

    // §5.5 replication: bring NBVA throughput up to ≥ 2 Gch/s by assigning
    // additional arrays to share the stalling workload.
    if nbva.states > 0 && nbva.throughput_gchps > 0.0 && nbva.throughput_gchps < 2.0 {
        let factor = (2.0 / nbva.throughput_gchps).ceil();
        nbva.throughput_gchps = (nbva.throughput_gchps * factor).min(Machine::Rap.clock_hz() / 1e9);
        // The replicas are near-idle copies: small area overhead, same
        // total switching energy (the work is split, not duplicated).
        nbva.area_mm2 *= 1.0 + 0.03 * (factor - 1.0);
    }
    RapSystem { nfa, nbva, lnfa }
}

/// Maps `f` over `items` in parallel (one scoped thread per item — the
/// harness parallelizes across the seven suites, matching the paper's
/// multi-core experiment methodology).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (slot, item) in out.iter_mut().zip(items) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(item));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            patterns_per_suite: 12,
            input_len: 2_000,
            match_rate: 0.02,
            seed: 7,
        }
    }

    #[test]
    fn suite_materialization() {
        let cfg = tiny();
        let res = suite_regexes(Suite::Snort, &cfg);
        assert_eq!(res.len(), 12);
        let input = suite_input(Suite::Snort, &cfg);
        assert_eq!(input.len(), 2_000);
    }

    #[test]
    fn eval_machine_produces_sane_numbers() {
        let cfg = tiny();
        let patterns = suite_regexes(Suite::SpamAssassin, &cfg);
        let input = suite_input(Suite::SpamAssassin, &cfg);
        for machine in Machine::all() {
            let s = eval_machine(machine, Suite::SpamAssassin, &patterns, &input, None);
            assert!(s.energy_uj > 0.0, "{machine}");
            assert!(s.area_mm2 > 0.0, "{machine}");
            assert!(s.throughput_gchps > 0.0, "{machine}");
            assert!(s.states > 0, "{machine}");
        }
    }

    #[test]
    fn rap_corpus_lints_clean() {
        let cfg = tiny();
        for suite in Suite::all() {
            let report = lint_suite(Machine::Rap, suite, &cfg);
            assert!(report.is_empty(), "{suite}: {report}");
        }
    }

    #[test]
    fn mode_split_partitions_everything() {
        let cfg = tiny();
        let patterns = suite_regexes(Suite::Snort, &cfg);
        let split = ModeSplit::of(&patterns);
        assert_eq!(
            split.nfa.len() + split.nbva.len() + split.lnfa.len(),
            patterns.len()
        );
    }

    #[test]
    fn rap_system_total_combines_modes() {
        let cfg = tiny();
        let patterns = suite_regexes(Suite::Snort, &cfg);
        let input = suite_input(Suite::Snort, &cfg);
        let sys = eval_rap_by_mode(Suite::Snort, &patterns, &input);
        let total = sys.total();
        assert!(total.energy_uj > 0.0);
        assert!(total.area_mm2 >= sys.nbva.area_mm2);
        // Replication guarantees ≥ 2 Gch/s system throughput (or the mode
        // was already faster).
        assert!(
            total.throughput_gchps >= 1.99,
            "throughput {}",
            total.throughput_gchps
        );
    }

    #[test]
    fn all_machines_report_identical_match_counts() {
        let cfg = tiny();
        let patterns = suite_regexes(Suite::Yara, &cfg);
        let input = suite_input(Suite::Yara, &cfg);
        let counts: Vec<u64> = Machine::all()
            .iter()
            .map(|&m| eval_machine(m, Suite::Yara, &patterns, &input, None).matches)
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
