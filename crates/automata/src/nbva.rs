//! Nondeterministic bit vector automata (NBVA, §2.1) and their reference
//! executor.
//!
//! An NBVA extends a homogeneous NFA with *bit-vector states*: a bounded
//! repetition of a single character class, `σ{m}` or `σ{0,k}`, is kept as
//! one control state carrying a bit vector of width m (resp. k) instead of
//! being unfolded into m control states. The configuration of a BV state is
//! the set of in-flight repetition counts: bit i set means "some matching
//! thread has consumed i+1 repetitions so far".
//!
//! The supported update actions mirror the hardware (§3.1):
//!
//! * entering the state performs `set1` (bit 0 := 1),
//! * a subsequent symbol matching σ performs `shft(v)` (counts advance;
//!   the top bit overflows away, which is the hardware's overflow check),
//! * successors observe the state through a read action — [`ReadAction::Exact`]
//!   (`r(m)`: bit m set) or [`ReadAction::All`] (`rAll`: any bit set).
//!
//! General patterns are normalized first: repetitions with non-class bodies
//! or no upper bound are unfolded, and `σ{m,n}` (0 < m < n) is split into
//! `σ{m}·σ{0,n−m}` exactly as the compiler does (§4.1).

use crate::bitvec::BitVec;
use crate::glushkov::{self, PosKind};
use crate::StateId;
use rap_regex::rewrite::{split_bounded, unfold_below_threshold};
use rap_regex::{CharClass, Regex};
use serde::{Deserialize, Serialize};

/// How successors (and the finalization function) observe a BV state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadAction {
    /// `r(m)`: the read succeeds when exactly m repetitions have been
    /// consumed by some thread (bit m, 1-indexed as in the paper).
    Exact(u32),
    /// `rAll`: the read succeeds when between 1 and `width` repetitions
    /// have been consumed by some thread.
    All,
}

/// The bit-vector role of a state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateKind {
    /// Ordinary control state (activation is a single bit).
    Plain,
    /// Bit-vector state tracking a bounded repetition.
    Bv {
        /// Bit-vector width w(q).
        width: u32,
        /// Read action exposed to successors.
        read: ReadAction,
    },
}

/// One NBVA state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NbvaState {
    /// Character class labeling every transition into this state.
    pub cc: CharClass,
    /// Plain or bit-vector role.
    pub kind: StateKind,
    /// Successor emission edges (BV self-advance is implicit, not listed).
    pub succ: Vec<StateId>,
    /// Whether a successful read/activation here reports a match.
    pub is_final: bool,
}

impl NbvaState {
    /// Bit-vector width (0 for plain states).
    pub fn width(&self) -> u32 {
        match self.kind {
            StateKind::Plain => 0,
            StateKind::Bv { width, .. } => width,
        }
    }
}

/// A nondeterministic bit vector automaton.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nbva {
    states: Vec<NbvaState>,
    initial: Vec<StateId>,
    matches_empty: bool,
    /// `^`: initial states arm only on the first symbol.
    anchored_start: bool,
    /// `$`: matches count only when they end at the stream's final symbol.
    anchored_end: bool,
}

impl Nbva {
    /// Builds the NBVA of `regex`, keeping single-class bounded repetitions
    /// whose upper bound exceeds `unfold_threshold` as bit-vector states
    /// (the compiler's unfolding rewriting, §4.1) and unfolding everything
    /// else.
    ///
    /// # Example
    ///
    /// ```
    /// use rap_regex::parse;
    /// use rap_automata::nbva::Nbva;
    ///
    /// // b(a{7}|c{5})b — Fig. 5 of the paper: 4 control states.
    /// let nbva = Nbva::from_regex(&parse("b(a{7}|c{5})b")?, 4);
    /// assert_eq!(nbva.len(), 4);
    /// assert_eq!(nbva.bv_state_count(), 2);
    /// # Ok::<(), rap_regex::ParseError>(())
    /// ```
    pub fn from_regex(regex: &Regex, unfold_threshold: u32) -> Nbva {
        let rewritten = split_bounded(&unfold_below_threshold(regex, unfold_threshold));
        let g = glushkov::construct(&rewritten, true);
        let mut states: Vec<NbvaState> = g
            .positions
            .iter()
            .zip(g.follow.iter())
            .map(|(p, follow)| {
                let kind = match p.kind {
                    PosKind::Plain => StateKind::Plain,
                    PosKind::BvExact { width } => StateKind::Bv {
                        width,
                        read: ReadAction::Exact(width),
                    },
                    PosKind::BvUpTo { width } => StateKind::Bv {
                        width,
                        read: ReadAction::All,
                    },
                };
                NbvaState {
                    cc: p.cc,
                    kind,
                    succ: follow.clone(),
                    is_final: false,
                }
            })
            .collect();
        for &f in &g.last {
            states[f as usize].is_final = true;
        }
        Nbva {
            states,
            initial: g.first,
            matches_empty: g.nullable,
            anchored_start: false,
            anchored_end: false,
        }
    }

    /// Builds the automaton of a parsed pattern, honouring its `^`/`$`
    /// anchors (see [`crate::nfa::Nfa::from_pattern`]).
    pub fn from_pattern(pattern: &rap_regex::Pattern, unfold_threshold: u32) -> Nbva {
        Nbva::from_regex(&pattern.regex, unfold_threshold)
            .with_anchors(pattern.anchored_start, pattern.anchored_end)
    }

    /// Assembles an automaton from explicit parts — the constructor used by
    /// static-analysis rewrites (dead-state pruning, equivalence merging)
    /// that must rebuild an [`Nbva`] after editing its state graph.
    /// Anchoring flags start unset; chain [`Nbva::with_anchors`] to restore
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if any initial id or successor id is out of range.
    pub fn from_parts(states: Vec<NbvaState>, initial: Vec<StateId>, matches_empty: bool) -> Nbva {
        let n = states.len();
        assert!(
            initial.iter().all(|&q| (q as usize) < n),
            "initial id out of range"
        );
        assert!(
            states
                .iter()
                .all(|s| s.succ.iter().all(|&q| (q as usize) < n)),
            "successor id out of range"
        );
        Nbva {
            states,
            initial,
            matches_empty,
            anchored_start: false,
            anchored_end: false,
        }
    }

    /// Sets the anchoring flags (builder style).
    #[must_use]
    pub fn with_anchors(mut self, start: bool, end: bool) -> Nbva {
        self.anchored_start = start;
        self.anchored_end = end;
        self
    }

    /// Whether `^` anchoring is set.
    pub fn anchored_start(&self) -> bool {
        self.anchored_start
    }

    /// Whether `$` anchoring is set.
    pub fn anchored_end(&self) -> bool {
        self.anchored_end
    }

    /// Number of control states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states, indexed by [`StateId`].
    pub fn states(&self) -> &[NbvaState] {
        &self.states
    }

    /// The always-available initial states.
    pub fn initial(&self) -> &[StateId] {
        &self.initial
    }

    /// Whether the language contains ε.
    pub fn matches_empty(&self) -> bool {
        self.matches_empty
    }

    /// Number of bit-vector states.
    pub fn bv_state_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s.kind, StateKind::Bv { .. }))
            .count()
    }

    /// Total bit-vector storage in bits.
    pub fn bv_total_bits(&self) -> u64 {
        self.states.iter().map(|s| u64::from(s.width())).sum()
    }

    /// Creates a fresh run.
    pub fn start(&self) -> NbvaRun<'_> {
        let bv_states: Vec<StateId> = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, StateKind::Bv { .. }))
            .map(|(q, _)| q as StateId)
            .collect();
        NbvaRun {
            nbva: self,
            active: BitVec::zeros(self.states.len()),
            vectors: self
                .states
                .iter()
                .map(|s| BitVec::zeros(s.width() as usize))
                .collect(),
            bv_states,
            incoming: BitVec::zeros(self.states.len()),
            scratch: Vec::new(),
            pos: 0,
        }
    }

    /// Offsets just past each match end in `input`.
    pub fn match_ends(&self, input: &[u8]) -> Vec<usize> {
        let mut run = self.start();
        let mut out = Vec::new();
        for (i, &b) in input.iter().enumerate() {
            if run.step(b) && (!self.anchored_end || i + 1 == input.len()) {
                out.push(i + 1);
            }
        }
        out
    }

    /// Whether any match occurs in `input`.
    pub fn is_match(&self, input: &[u8]) -> bool {
        let mut run = self.start();
        input.iter().any(|&b| run.step(b))
    }
}

/// An in-progress unanchored run over an [`Nbva`].
///
/// The configuration holds, per state, an activation bit (plain states) or
/// a bit vector of in-flight repetition counts (BV states).
#[derive(Clone, Debug)]
pub struct NbvaRun<'a> {
    nbva: &'a Nbva,
    /// Activation bits of plain states (ignored for BV states).
    active: BitVec,
    /// Bit vectors of BV states (zero-width for plain states).
    vectors: Vec<BitVec>,
    /// Ids of the BV states (they are processed every step).
    bv_states: Vec<StateId>,
    /// Reused incoming-candidate bitmap.
    incoming: BitVec,
    /// Reused candidate buffer (sparse stepping).
    scratch: Vec<StateId>,
    /// Symbols consumed so far (drives `^` anchoring).
    pos: u64,
}

impl NbvaRun<'_> {
    /// Consumes one input symbol; returns whether a match ends here.
    pub fn step(&mut self, byte: u8) -> bool {
        self.step_detailed(byte).matched
    }

    /// Consumes one input symbol and reports what happened — the hardware
    /// simulator uses [`StepInfo::bv_touched`] to decide whether the
    /// bit-vector-processing phase (and its stall) triggers this cycle.
    ///
    /// The step is sparse: work is proportional to the active plain states,
    /// their out-edges, and the (few) bit-vector states — not to the
    /// automaton size.
    pub fn step_detailed(&mut self, byte: u8) -> StepInfo {
        self.step_impl(byte, true)
    }

    /// Like [`NbvaRun::step_detailed`] but *without* re-arming the initial
    /// states: new matching threads start only through explicit
    /// [`NbvaRun::activate_plain`] injections. Prefilter-driven engines
    /// use this so a woken automaton goes back to sleep once its injected
    /// threads die, instead of being rekindled by every initial-class byte.
    pub fn step_anchored(&mut self, byte: u8) -> StepInfo {
        self.step_impl(byte, false)
    }

    fn step_impl(&mut self, byte: u8, arm_initial: bool) -> StepInfo {
        let nbva = self.nbva;
        // `incoming` marks states reachable this cycle: successors of
        // emitting states plus the always-available initial states. A
        // plain state emits while active; a BV state emits while its read
        // action succeeds.
        self.incoming.clear();
        self.scratch.clear();
        for p in self.active.iter_ones() {
            self.scratch.extend_from_slice(&nbva.states[p].succ);
        }
        for &q in &self.bv_states {
            let StateKind::Bv { read, .. } = nbva.states[q as usize].kind else {
                unreachable!("bv_states holds only BV ids")
            };
            if read_ok(&self.vectors[q as usize], read) {
                self.scratch
                    .extend_from_slice(&nbva.states[q as usize].succ);
            }
        }
        if arm_initial && (!nbva.anchored_start || self.pos == 0) {
            self.scratch.extend_from_slice(&nbva.initial);
        }
        self.pos += 1;
        for &q in &self.scratch {
            self.incoming.set(q as usize, true);
        }

        let mut matched = false;
        let mut bv_touched = false;
        // Plain-state updates: only candidates can turn on.
        self.active.clear();
        for &q in &self.scratch {
            let state = &nbva.states[q as usize];
            if matches!(state.kind, StateKind::Plain) && state.cc.contains(byte) {
                self.active.set(q as usize, true);
                matched |= state.is_final;
            }
        }
        // BV-state updates: every live or entered vector advances.
        for &q in &self.bv_states {
            let state = &nbva.states[q as usize];
            let StateKind::Bv { read, .. } = state.kind else {
                unreachable!("bv_states holds only BV ids")
            };
            let v = &mut self.vectors[q as usize];
            if state.cc.contains(byte) {
                let entering = self.incoming.get(q as usize);
                bv_touched |= v.any() || entering;
                // In-flight counts advance; overflow falls off the top
                // (the hardware's overflow check then disables the STE,
                // which here is just v == 0).
                v.shift_up();
                if entering {
                    v.set(0, true); // set1: a new count starts
                }
            } else {
                // Homogeneous semantics: no transition matches, so every
                // in-flight count dies.
                v.clear();
            }
            matched |= state.is_final && read_ok(v, read);
        }
        StepInfo {
            matched,
            bv_touched,
        }
    }

    /// Number of active plain states plus BV states with a non-zero vector.
    pub fn active_count(&self) -> u32 {
        let mut count = 0;
        for q in 0..self.nbva.states.len() {
            let on = match self.nbva.states[q].kind {
                StateKind::Plain => self.active.get(q),
                StateKind::Bv { .. } => self.vectors[q].any(),
            };
            count += u32::from(on);
        }
        count
    }

    /// The bit vector of state `q` (zero-width for plain states).
    pub fn vector(&self, q: StateId) -> &BitVec {
        &self.vectors[q as usize]
    }

    /// The activation bitmap of *plain* states (BV states track activity in
    /// their vectors; see [`NbvaRun::vector`]).
    pub fn plain_active_bits(&self) -> &BitVec {
        &self.active
    }

    /// Forces a plain state active, as if its character class had just
    /// matched — used by prefilter-driven engines that verify a literal
    /// prefix out of band and inject the post-prefix state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is a bit-vector state.
    pub fn activate_plain(&mut self, q: StateId) {
        assert!(
            matches!(self.nbva.states[q as usize].kind, StateKind::Plain),
            "state {q} is a bit-vector state"
        );
        self.active.set(q as usize, true);
    }

    /// Whether state `q` is active: plain states by activation bit, BV
    /// states by a non-zero vector.
    pub fn is_state_active(&self, q: StateId) -> bool {
        match self.nbva.states[q as usize].kind {
            StateKind::Plain => self.active.get(q as usize),
            StateKind::Bv { .. } => self.vectors[q as usize].any(),
        }
    }
}

/// What one [`NbvaRun::step_detailed`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepInfo {
    /// A match ended at this symbol.
    pub matched: bool,
    /// Some bit vector was entered or advanced — the hardware enters the
    /// bit-vector-processing phase this cycle (§3.1).
    pub bv_touched: bool,
}

fn read_ok(v: &BitVec, read: ReadAction) -> bool {
    match read {
        ReadAction::Exact(m) => v.get(m as usize - 1),
        ReadAction::All => v.any(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use rap_regex::parse;

    fn nbva(pattern: &str, threshold: u32) -> Nbva {
        Nbva::from_regex(&parse(pattern).expect("pattern parses"), threshold)
    }

    /// Differential check against the fully unfolded NFA on a fixed input.
    fn assert_matches_nfa(pattern: &str, input: &[u8]) {
        let re = parse(pattern).expect("pattern parses");
        let reference = Nfa::from_regex(&re).match_ends(input);
        let got = Nbva::from_regex(&re, 4).match_ends(input);
        assert_eq!(got, reference, "pattern {pattern} on {input:?}");
    }

    #[test]
    fn exact_repetition() {
        let a = nbva("c{5}", 4);
        assert_eq!(a.len(), 1);
        assert_eq!(a.bv_state_count(), 1);
        assert_eq!(a.match_ends(b"ccccc"), vec![5]);
        assert_eq!(a.match_ends(b"cccccc"), vec![5, 6]); // overlapping threads
        assert!(a.match_ends(b"cccc").is_empty());
    }

    #[test]
    fn repetition_with_prefix_and_suffix() {
        assert_matches_nfa("bc{5}d", b"bcccccd");
        assert_matches_nfa("bc{5}d", b"bccccd");
        assert_matches_nfa("bc{5}d", b"bccccccd");
        assert_matches_nfa("bc{5}d", b"bbcccccdd");
    }

    #[test]
    fn paper_example_2_2() {
        // a.*bc{5}: after 'a' anything, then b, then exactly 5 c's.
        assert_matches_nfa("a.*bc{5}", b"axxbccccc");
        assert_matches_nfa("a.*bc{5}", b"abcccccc");
        assert_matches_nfa("a.*bc{5}", b"abcccc");
    }

    #[test]
    fn paper_fig5_example() {
        // b(a{7}|c{5})b from Fig. 5.
        let a = nbva("b(a{7}|c{5})b", 4);
        assert_eq!(a.len(), 4);
        assert_eq!(a.match_ends(b"bcccccb"), vec![7]);
        assert_eq!(a.match_ends(b"baaaaaaab"), vec![9]);
        // 6 c's: the overflow check deactivates the BV (§3.1 Example 3.1).
        assert!(a.match_ends(b"bccccccb").is_empty());
        assert_matches_nfa("b(a{7}|c{5})b", b"bcccccb bbaaaaaaab bccccccb");
    }

    #[test]
    fn range_repetition_splits() {
        // b{10,48} → b{10}·b{0,38} (Example 4.2).
        let a = nbva("ab{10,48}c", 8);
        assert_eq!(a.len(), 4); // a, b{10}, b{0,38}, c
        for n in [9usize, 10, 11, 47, 48, 49] {
            let mut input = vec![b'a'];
            input.extend(std::iter::repeat_n(b'b', n));
            input.push(b'c');
            let expect = (10..=48).contains(&n);
            assert_eq!(!a.match_ends(&input).is_empty(), expect, "n={n}");
        }
    }

    #[test]
    fn upto_repetition() {
        assert_matches_nfa("xc{0,6}y", b"xy xcy xccccccy xcccccccy");
        assert_matches_nfa("xc{1,3}y", b"xy xcy xcccy xccccy");
    }

    #[test]
    fn small_bounds_unfold_to_plain_states() {
        let a = nbva("a{3}b", 4);
        assert_eq!(a.bv_state_count(), 0);
        assert_eq!(a.len(), 4); // aaa b
        assert_eq!(a.match_ends(b"aaab"), vec![4]);
    }

    #[test]
    fn complex_body_unfolds() {
        let a = nbva("(ab){6}", 4);
        assert_eq!(a.bv_state_count(), 0);
        assert_eq!(a.len(), 12);
        assert_matches_nfa("(ab){6}", b"abababababab");
    }

    #[test]
    fn unbounded_tail_unfolds() {
        assert_matches_nfa("f{2,}g", b"ffffg fg");
    }

    #[test]
    fn repeated_bv_under_plus() {
        // (c{5})+ — read success must restart the count via the star loop.
        let a = nbva("(c{5})+d", 4);
        assert_matches_nfa("(c{5})+d", b"cccccd");
        assert_matches_nfa("(c{5})+d", b"ccccccccccd");
        assert_matches_nfa("(c{5})+d", b"ccccccd");
        assert!(a.bv_state_count() == 1);
    }

    #[test]
    fn mismatch_clears_counts() {
        assert_matches_nfa("c{5}", b"cccXccccc");
        assert_matches_nfa("bc{5}d", b"bccXbcccccd");
    }

    #[test]
    fn overlapping_threads_tracked_in_one_vector() {
        // "cccccccc" with pattern bc{5}: entries at multiple offsets.
        assert_matches_nfa("bc{5}", b"bbccccccc");
    }

    #[test]
    fn bv_storage_accounting() {
        let a = nbva("ab{10,48}cd{34}ef{128}", 16);
        // d{34} and f{128} exact, b{10}+b{0,38} split.
        assert_eq!(a.bv_total_bits(), 10 + 38 + 34 + 128);
        assert_eq!(a.bv_state_count(), 4);
    }

    #[test]
    fn yara_style_pattern() {
        let re = r"AppPath=[C-Z]:\\\\[^\\\\]{1,64}\\.exe";
        assert_matches_nfa(re, br"AppPath=D:\\myprogram\.exe");
        assert_matches_nfa(re, br"AppPath=D:\\x\.exe");
    }

    #[test]
    fn empty_pattern_flag() {
        let a = Nbva::from_regex(&Regex::Empty, 4);
        assert!(a.matches_empty());
        assert!(a.is_empty());
    }

    #[test]
    fn active_count_counts_nonzero_vectors() {
        let a = nbva("c{5}", 4);
        let mut run = a.start();
        run.step(b'c');
        assert_eq!(run.active_count(), 1);
        run.step(b'x');
        assert_eq!(run.active_count(), 0);
    }
}
