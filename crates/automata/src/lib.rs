//! Automata models for the RAP (Reconfigurable Automata Processor)
//! reproduction.
//!
//! The paper (§2.1) executes regexes with three automata models, all of which
//! are implemented here together with software reference executors used as
//! ground truth by the hardware simulator's consistency checks:
//!
//! * [`nfa::Nfa`] — homogeneous NFA built with the Glushkov construction
//!   (every incoming transition of a state carries the same character class),
//! * [`nbva::Nbva`] — nondeterministic bit vector automata, where a control
//!   state may carry a bit vector tracking repetition counts of a bounded
//!   repetition,
//! * [`lnfa::Lnfa`] — linear NFA (a chain `q0 → q1 → … → qn−1`), executed
//!   with the Shift-And bit-parallel algorithm.
//!
//! All executors implement *unanchored, report-at-end-position* semantics:
//! matching starts at every input offset (initial states are re-activated on
//! every symbol, like the always-available initial STEs of AP-style
//! hardware) and a match is reported at the offset just past its final
//! symbol. This is the semantics of the in-memory automata processors the
//! paper builds on.
//!
//! # Example
//!
//! ```
//! use rap_regex::parse;
//! use rap_automata::nfa::Nfa;
//!
//! let nfa = Nfa::from_regex(&parse("a[bc]+d")?);
//! let ends = nfa.match_ends(b"xabcd--abd");
//! assert_eq!(ends, vec![5, 10]);
//! # Ok::<(), rap_regex::ParseError>(())
//! ```

pub mod bitvec;
mod glushkov;
pub mod lnfa;
pub mod nbva;
pub mod nca;
pub mod nfa;

/// Index of an automaton state.
pub type StateId = u32;
