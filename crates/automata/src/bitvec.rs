//! Dynamic fixed-width bit vectors.
//!
//! These model the bit vectors carried by NBVA states (§2.1) and the
//! `states`/`labels` masks of the Shift-And algorithm. Bit 0 is the
//! least-significant position; the paper's `shft(v)` (shift "left" in its
//! `v[1], …, v[n]` indexing) corresponds to [`BitVec::shift_up`] here: bit i
//! moves to bit i+1 and the top bit falls off.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-width vector of bits backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut bv = Self::zeros(len);
        for w in bv.words.iter_mut() {
            *w = u64::MAX;
        }
        bv.mask_tail();
        bv
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero width.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for width {}",
            self.len
        );
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for width {}",
            self.len
        );
        if value {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
    }

    /// The paper's `shft(v)`: every bit moves one position up (bit i → bit
    /// i+1); the highest bit is discarded (overflow) and bit 0 becomes 0.
    pub fn shift_up(&mut self) {
        let mut carry = 0u64;
        for w in self.words.iter_mut() {
            let new_carry = *w >> 63;
            *w = (*w << 1) | carry;
            carry = new_carry;
        }
        self.mask_tail();
    }

    /// In-place bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "width mismatch in or_assign");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    /// In-place bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "width mismatch in and_assign");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Zeroes the bits beyond `len` in the last word (kept as an internal
    /// invariant so `any`/`count_ones` are exact).
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl Default for BitVec {
    /// The zero-width vector.
    fn default() -> Self {
        BitVec::zeros(0)
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        // Most-significant bit first, matching the paper's notation.
        for i in (0..self.len).rev() {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert!(!z.any());
        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.any());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bv = BitVec::zeros(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            bv.set(i, true);
            assert!(bv.get(i), "bit {i}");
        }
        assert_eq!(bv.count_ones(), 8);
        bv.set(64, false);
        assert!(!bv.get(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bv = BitVec::zeros(8);
        let _ = bv.get(8);
    }

    #[test]
    fn shift_up_moves_bits_and_overflows() {
        // Paper example: shft(0010) = 0100 (bit 1 -> bit 2).
        let mut bv = BitVec::zeros(4);
        bv.set(1, true);
        bv.shift_up();
        assert!(bv.get(2));
        assert_eq!(bv.count_ones(), 1);
        // Shifting the top bit out empties the vector (overflow).
        bv.shift_up();
        assert!(bv.get(3));
        bv.shift_up();
        assert!(!bv.any(), "top bit must fall off");
    }

    #[test]
    fn shift_up_across_word_boundary() {
        let mut bv = BitVec::zeros(128);
        bv.set(63, true);
        bv.shift_up();
        assert!(bv.get(64));
        assert_eq!(bv.count_ones(), 1);
    }

    #[test]
    fn shift_up_width_not_multiple_of_64() {
        let mut bv = BitVec::zeros(65);
        bv.set(64, true);
        bv.shift_up();
        assert!(!bv.any());
    }

    #[test]
    fn or_and() {
        let mut a = BitVec::zeros(10);
        a.set(1, true);
        let mut b = BitVec::zeros(10);
        b.set(1, true);
        b.set(5, true);
        a.or_assign(&b);
        assert_eq!(a.count_ones(), 2);
        a.and_assign(&b);
        assert_eq!(a.count_ones(), 2);
        let mask = BitVec::zeros(10);
        a.and_assign(&mask);
        assert!(!a.any());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn or_width_mismatch_panics() {
        let mut a = BitVec::zeros(4);
        a.or_assign(&BitVec::zeros(5));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut bv = BitVec::zeros(200);
        for i in [3usize, 64, 199] {
            bv.set(i, true);
        }
        let v: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(v, vec![3, 64, 199]);
    }

    #[test]
    fn zero_width_vector() {
        let mut bv = BitVec::zeros(0);
        assert!(bv.is_empty());
        assert!(!bv.any());
        bv.shift_up(); // must not panic
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn debug_prints_msb_first() {
        let mut bv = BitVec::zeros(4);
        bv.set(0, true);
        assert_eq!(format!("{bv:?}"), "BitVec[4; 0001]");
    }
}
