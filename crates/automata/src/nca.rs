//! Nondeterministic counter automata (NCA) — the *counter-based*
//! alternative to bit vectors.
//!
//! §2.1 of the paper notes that bit vectors "correspond to sets of counter
//! values in the closely related model of nondeterministic counter
//! automata". Counter-extended processors (e.g. the counter modules of the
//! AP and eAP) track bounded repetitions with explicit counter registers
//! instead of RAP's bit vectors. This module implements that execution
//! model over the *same* automaton structure as [`crate::nbva::Nbva`]: a
//! counting state holds the multiset of in-flight repetition counts as a
//! sorted queue of birth times (so advancing all counters on a match is
//! O(1) — the classic offset trick), while the NBVA holds them as a bit
//! vector (so advancing is a shift).
//!
//! The two are language-equivalent by construction; the interesting
//! difference is cost: a bit vector costs O(width/64) per advance
//! regardless of how many threads are live, while a counter set costs
//! O(live threads) for reads/overflow regardless of the width — exactly
//! the trade-off the `ablation` bench measures and the paper's hardware
//! resolves in favor of bit vectors (they reuse the CAM; counters need
//! dedicated adders).

use crate::bitvec::BitVec;
use crate::nbva::{Nbva, ReadAction, StateKind};
use crate::StateId;
use std::collections::VecDeque;

/// The in-flight repetition counts of one counting state, as a queue of
/// birth steps (oldest first). A thread born at step `b` has consumed
/// `now − b` repetitions *after* the step that created it, i.e. its
/// counter value at step `t` is `t − b + 1`.
#[derive(Clone, Debug, Default)]
struct CounterSet {
    births: VecDeque<u64>,
}

impl CounterSet {
    fn clear(&mut self) {
        self.births.clear();
    }

    fn any(&self) -> bool {
        !self.births.is_empty()
    }

    /// Registers a new thread born at step `now` (idempotent per step;
    /// births arrive in increasing order).
    fn set1(&mut self, now: u64) {
        if self.births.back() != Some(&now) {
            self.births.push_back(now);
        }
    }

    /// Drops threads whose counter exceeded `width` by step `now`.
    fn expire(&mut self, width: u32, now: u64) {
        while let Some(&b) = self.births.front() {
            if now - b + 1 > u64::from(width) {
                self.births.pop_front();
            } else {
                break;
            }
        }
    }

    /// Whether some thread's counter equals `m` at step `now`.
    fn has_exact(&self, m: u32, now: u64) -> bool {
        // value = now − b + 1 = m  ⇔  b = now + 1 − m.
        let Some(target) = (now + 1).checked_sub(u64::from(m)) else {
            return false;
        };
        self.births.binary_search(&target).is_ok()
    }

    fn len(&self) -> usize {
        self.births.len()
    }
}

/// An in-progress unanchored run executing an [`Nbva`]'s semantics with
/// counter sets instead of bit vectors.
#[derive(Clone, Debug)]
pub struct NcaRun<'a> {
    nbva: &'a Nbva,
    active: BitVec,
    counters: Vec<CounterSet>,
    bv_states: Vec<StateId>,
    incoming: BitVec,
    scratch: Vec<StateId>,
    /// Steps consumed so far (the "now" of the counter sets).
    now: u64,
}

impl<'a> NcaRun<'a> {
    /// Creates a fresh run over an NBVA automaton.
    pub fn new(nbva: &'a Nbva) -> NcaRun<'a> {
        let bv_states: Vec<StateId> = nbva
            .states()
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, StateKind::Bv { .. }))
            .map(|(q, _)| q as StateId)
            .collect();
        NcaRun {
            nbva,
            active: BitVec::zeros(nbva.len()),
            counters: vec![CounterSet::default(); nbva.len()],
            bv_states,
            incoming: BitVec::zeros(nbva.len()),
            scratch: Vec::new(),
            now: 0,
        }
    }

    fn read_ok(&self, q: StateId, read: ReadAction, width: u32) -> bool {
        let set = &self.counters[q as usize];
        match read {
            ReadAction::Exact(m) => set.has_exact(m, self.now),
            ReadAction::All => {
                // Any live thread with value in 1..=width; expiry keeps the
                // set pruned, so liveness suffices.
                let _ = width;
                set.any()
            }
        }
    }

    /// Consumes one input symbol; returns whether a match ends here.
    pub fn step(&mut self, byte: u8) -> bool {
        let nbva = self.nbva;
        // Emission set from the current configuration (pre-step).
        self.incoming.clear();
        self.scratch.clear();
        for p in self.active.iter_ones() {
            self.scratch.extend_from_slice(&nbva.states()[p].succ);
        }
        for &q in &self.bv_states {
            let StateKind::Bv { width, read } = nbva.states()[q as usize].kind else {
                unreachable!("bv_states holds only counting ids")
            };
            if self.read_ok(q, read, width) {
                self.scratch
                    .extend_from_slice(&nbva.states()[q as usize].succ);
            }
        }
        self.scratch.extend_from_slice(nbva.initial());
        for &q in &self.scratch {
            self.incoming.set(q as usize, true);
        }

        self.now += 1;
        let mut matched = false;
        self.active.clear();
        for &q in &self.scratch {
            let state = &nbva.states()[q as usize];
            if matches!(state.kind, StateKind::Plain) && state.cc.contains(byte) {
                self.active.set(q as usize, true);
                matched |= state.is_final;
            }
        }
        for &q in &self.bv_states {
            let state = &nbva.states()[q as usize];
            let StateKind::Bv { width, read } = state.kind else {
                unreachable!("bv_states holds only counting ids")
            };
            let entering = self.incoming.get(q as usize);
            let set = &mut self.counters[q as usize];
            if state.cc.contains(byte) {
                // Counters advance implicitly (their value is now − birth
                // + 1); expired threads fall off, new threads are born.
                set.expire(width, self.now);
                if entering {
                    set.set1(self.now);
                }
            } else {
                // Homogeneous semantics: every in-flight count dies.
                set.clear();
            }
            matched |= state.is_final && self.read_ok(q, read, width);
        }
        matched
    }

    /// Offsets just past each match end in `input`.
    pub fn match_ends(nbva: &Nbva, input: &[u8]) -> Vec<usize> {
        let mut run = NcaRun::new(nbva);
        let mut out = Vec::new();
        for (i, &b) in input.iter().enumerate() {
            if run.step(b) {
                out.push(i + 1);
            }
        }
        out
    }

    /// Total live counters across counting states (the NCA's storage
    /// footprint right now, measured in counters).
    pub fn live_counters(&self) -> usize {
        self.counters.iter().map(CounterSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use rap_regex::parse;

    fn assert_equiv(pattern: &str, input: &[u8]) {
        let re = parse(pattern).expect("parses");
        let nbva = Nbva::from_regex(&re, 4);
        let expect = Nfa::from_regex(&re).match_ends(input);
        assert_eq!(nbva.match_ends(input), expect, "NBVA {pattern}");
        assert_eq!(NcaRun::match_ends(&nbva, input), expect, "NCA {pattern}");
    }

    #[test]
    fn exact_repetition() {
        assert_equiv("c{5}", b"ccccc cccccc cccc ccXccccc");
    }

    #[test]
    fn prefix_and_suffix() {
        assert_equiv("bc{5}d", b"bcccccd bccccd bccccccd bbcccccdd");
    }

    #[test]
    fn range_repetition() {
        assert_equiv("xc{2,6}y", b"xccy xcccccccy xccccccy xy xcy");
    }

    #[test]
    fn overlapping_threads() {
        assert_equiv("bc{5}", b"bbccccccc");
        assert_equiv("c{3}d", b"cccccccd");
    }

    #[test]
    fn fig5_example() {
        assert_equiv("b(a{7}|c{5})b", b"bcccccb baaaaaaab bccccccb");
    }

    #[test]
    fn plus_over_counting_state() {
        assert_equiv("(c{5})+d", b"cccccd ccccccccccd ccccccd");
    }

    #[test]
    fn live_counter_accounting() {
        // `cc{100}`: the always-armed initial `c` state re-enters the
        // counting state on every symbol, so a c-run of length n leaves
        // n − 1 staggered live counters.
        let re = parse("cc{100}").expect("parses");
        let nbva = Nbva::from_regex(&re, 4);
        let mut run = NcaRun::new(&nbva);
        for &b in b"ccccc".iter() {
            run.step(b);
        }
        assert_eq!(run.live_counters(), 4);
        // A mismatch kills them all.
        run.step(b'x');
        assert_eq!(run.live_counters(), 0);
    }
}
