//! Homogeneous NFA (§2.1) and its set-based reference executor.
//!
//! This is the ground-truth matcher of the repository: the hardware
//! simulator's results are differentially tested against it (the paper
//! performs the analogous consistency check against Hyperscan).

use crate::bitvec::BitVec;
use crate::glushkov::{self, PosKind};
use crate::StateId;
use rap_regex::rewrite::unfold_all;
use rap_regex::{CharClass, Regex};
use serde::{Deserialize, Serialize};

/// One NFA state: its character class and successors.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NfaState {
    /// Character class labeling every transition *into* this state
    /// (homogeneity).
    pub cc: CharClass,
    /// Successor state ids.
    pub succ: Vec<StateId>,
    /// Whether this state reports a match when active.
    pub is_final: bool,
}

/// A homogeneous nondeterministic finite automaton.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nfa {
    states: Vec<NfaState>,
    initial: Vec<StateId>,
    /// Whether the regex matches the empty string (reported at every offset
    /// under unanchored semantics, so executors expose it separately).
    matches_empty: bool,
    /// `^`: initial states arm only on the first symbol.
    anchored_start: bool,
    /// `$`: matches count only when they end at the stream's final symbol.
    anchored_end: bool,
}

impl Nfa {
    /// Builds the Glushkov automaton of `regex`. Bounded repetitions are
    /// fully unfolded first — this is exactly what the paper's basic-NFA
    /// baselines (CA, CAMA, and RAP's NFA mode) execute.
    ///
    /// # Example
    ///
    /// ```
    /// use rap_regex::parse;
    /// use rap_automata::nfa::Nfa;
    ///
    /// let nfa = Nfa::from_regex(&parse("a(.a){3}b")?);
    /// assert_eq!(nfa.len(), 8); // unfolded to a.a.a.ab
    /// # Ok::<(), rap_regex::ParseError>(())
    /// ```
    pub fn from_regex(regex: &Regex) -> Nfa {
        let unfolded = unfold_all(regex);
        let g = glushkov::construct(&unfolded, false);
        let mut states: Vec<NfaState> = g
            .positions
            .iter()
            .zip(g.follow.iter())
            .map(|(p, follow)| {
                debug_assert_eq!(p.kind, PosKind::Plain);
                NfaState {
                    cc: p.cc,
                    succ: follow.clone(),
                    is_final: false,
                }
            })
            .collect();
        for &f in &g.last {
            states[f as usize].is_final = true;
        }
        Nfa {
            states,
            initial: g.first,
            matches_empty: g.nullable,
            anchored_start: false,
            anchored_end: false,
        }
    }

    /// Builds the automaton of a parsed pattern, honouring its `^`/`$`
    /// anchors: `^` restricts thread starts to the first symbol, `$`
    /// restricts reports to matches ending at the stream's last symbol.
    ///
    /// # Example
    ///
    /// ```
    /// use rap_regex::parse_pattern;
    /// use rap_automata::nfa::Nfa;
    ///
    /// let nfa = Nfa::from_pattern(&parse_pattern("^ab")?);
    /// assert_eq!(nfa.match_ends(b"abab"), vec![2]); // only the anchored hit
    /// # Ok::<(), rap_regex::ParseError>(())
    /// ```
    pub fn from_pattern(pattern: &rap_regex::parser::Pattern) -> Nfa {
        Nfa::from_regex(&pattern.regex).with_anchors(pattern.anchored_start, pattern.anchored_end)
    }

    /// Assembles an automaton from explicit parts — the constructor used by
    /// static-analysis rewrites (dead-state pruning, equivalence merging)
    /// that must rebuild an [`Nfa`] after editing its state graph. Anchoring
    /// flags start unset; chain [`Nfa::with_anchors`] to restore them.
    ///
    /// # Panics
    ///
    /// Panics if any initial id or successor id is out of range.
    pub fn from_parts(states: Vec<NfaState>, initial: Vec<StateId>, matches_empty: bool) -> Nfa {
        let n = states.len();
        assert!(
            initial.iter().all(|&q| (q as usize) < n),
            "initial id out of range"
        );
        assert!(
            states
                .iter()
                .all(|s| s.succ.iter().all(|&q| (q as usize) < n)),
            "successor id out of range"
        );
        Nfa {
            states,
            initial,
            matches_empty,
            anchored_start: false,
            anchored_end: false,
        }
    }

    /// Sets the anchoring flags (builder style).
    #[must_use]
    pub fn with_anchors(mut self, start: bool, end: bool) -> Nfa {
        self.anchored_start = start;
        self.anchored_end = end;
        self
    }

    /// Whether `^` anchoring is set.
    pub fn anchored_start(&self) -> bool {
        self.anchored_start
    }

    /// Whether `$` anchoring is set.
    pub fn anchored_end(&self) -> bool {
        self.anchored_end
    }

    /// Number of states (STEs).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states, indexed by [`StateId`].
    pub fn states(&self) -> &[NfaState] {
        &self.states
    }

    /// The always-available initial states.
    pub fn initial(&self) -> &[StateId] {
        &self.initial
    }

    /// Whether the language contains ε.
    pub fn matches_empty(&self) -> bool {
        self.matches_empty
    }

    /// Whether the automaton is linear (a chain `q0 → q1 → … → qn−1`): one
    /// initial state, each state's only successor is the next one, and only
    /// the last state is final. Such automata are LNFAs (§2.1).
    pub fn is_linear(&self) -> bool {
        if self.states.is_empty() {
            return false;
        }
        if self.initial != [0] {
            return false;
        }
        let n = self.states.len();
        for (i, s) in self.states.iter().enumerate() {
            let expected: &[StateId] = if i + 1 < n { &[i as StateId + 1] } else { &[] };
            if s.succ != expected {
                return false;
            }
            if s.is_final != (i + 1 == n) {
                return false;
            }
        }
        true
    }

    /// Renders the automaton in Graphviz DOT syntax (homogeneous style:
    /// states carry their character class as in the paper's figures;
    /// initial states get an inbound arrow, finals a double circle).
    ///
    /// # Example
    ///
    /// ```
    /// use rap_regex::parse;
    /// use rap_automata::nfa::Nfa;
    ///
    /// let dot = Nfa::from_regex(&parse("ab")?).to_dot("ab");
    /// assert!(dot.contains("digraph"));
    /// assert!(dot.contains("q0 -> q1"));
    /// # Ok::<(), rap_regex::ParseError>(())
    /// ```
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", title.replace('"', "'"));
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle];");
        for (q, s) in self.states.iter().enumerate() {
            let shape = if s.is_final { "doublecircle" } else { "circle" };
            let label = format!("q{q}: {}", s.cc)
                .replace('\\', "\\\\")
                .replace('"', "\\\"");
            let _ = writeln!(out, "  q{q} [shape={shape}, label=\"{label}\"];");
        }
        for (i, &q) in self.initial.iter().enumerate() {
            let _ = writeln!(out, "  start{i} [shape=point];");
            let _ = writeln!(out, "  start{i} -> q{q};");
        }
        for (p, s) in self.states.iter().enumerate() {
            for &q in &s.succ {
                let _ = writeln!(out, "  q{p} -> q{q};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Creates a fresh run of the automaton.
    pub fn start(&self) -> NfaRun<'_> {
        NfaRun {
            nfa: self,
            active: BitVec::zeros(self.states.len()),
            scratch: Vec::new(),
            pos: 0,
        }
    }

    /// Convenience: feeds `input` and returns the offsets *just past* each
    /// matching position (a match ending at byte `i` reports `i + 1`).
    pub fn match_ends(&self, input: &[u8]) -> Vec<usize> {
        let mut run = self.start();
        let mut out = Vec::new();
        for (i, &b) in input.iter().enumerate() {
            if run.step(b) && (!self.anchored_end || i + 1 == input.len()) {
                out.push(i + 1);
            }
        }
        out
    }

    /// Convenience: whether any match occurs in `input`.
    pub fn is_match(&self, input: &[u8]) -> bool {
        let mut run = self.start();
        input.iter().any(|&b| run.step(b))
    }
}

/// An in-progress unanchored run over an [`Nfa`].
#[derive(Clone, Debug)]
pub struct NfaRun<'a> {
    nfa: &'a Nfa,
    active: BitVec,
    /// Reused candidate buffer (sparse stepping).
    scratch: Vec<StateId>,
    /// Symbols consumed so far (drives `^` anchoring).
    pos: u64,
}

impl NfaRun<'_> {
    /// Consumes one input symbol; returns whether a match ends here.
    ///
    /// Initial states are candidates on every symbol (the always-available
    /// initial STEs of AP-style processors), which yields unanchored
    /// semantics. The step is sparse: work is proportional to the active
    /// set and its out-edges, not to the automaton size.
    pub fn step(&mut self, byte: u8) -> bool {
        let nfa = self.nfa;
        // Gather candidates: successors of active states + initial states,
        // deduplicated through the `next` bitmap itself.
        let mut next = std::mem::take(&mut self.active);
        self.scratch.clear();
        let scratch = &mut self.scratch;
        for p in next.iter_ones() {
            scratch.extend_from_slice(&nfa.states[p].succ);
        }
        next.clear();
        // `^`-anchored automata arm their initial states only once.
        if !nfa.anchored_start || self.pos == 0 {
            scratch.extend_from_slice(&nfa.initial);
        }
        self.pos += 1;
        // State matching: available AND character class matches.
        let mut matched = false;
        for &q in scratch.iter() {
            let state = &nfa.states[q as usize];
            if state.cc.contains(byte) {
                next.set(q as usize, true);
                matched |= state.is_final;
            }
        }
        self.active = next;
        matched
    }

    /// Number of currently active states (used by energy models and tests).
    pub fn active_count(&self) -> u32 {
        self.active.count_ones()
    }

    /// The raw activation bitmap (bit q = state q active).
    pub fn active_bits(&self) -> &BitVec {
        &self.active
    }

    /// Whether state `q` is active.
    pub fn is_active(&self, q: StateId) -> bool {
        self.active.get(q as usize)
    }

    /// Forces state `q` active, as if its character class had just matched
    /// — used by prefilter-driven engines that verify a literal prefix out
    /// of band and inject the post-prefix state.
    pub fn activate(&mut self, q: StateId) {
        self.active.set(q as usize, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_regex::parse;

    fn nfa(pattern: &str) -> Nfa {
        Nfa::from_regex(&parse(pattern).expect("pattern parses"))
    }

    #[test]
    fn literal_matching() {
        let n = nfa("abc");
        assert_eq!(n.match_ends(b"abcabc"), vec![3, 6]);
        assert_eq!(n.match_ends(b"xxabcxx"), vec![5]);
        assert!(n.match_ends(b"ab").is_empty());
    }

    #[test]
    fn overlapping_matches() {
        let n = nfa("aa");
        assert_eq!(n.match_ends(b"aaaa"), vec![2, 3, 4]);
    }

    #[test]
    fn paper_example_2_1_semantics() {
        // a([bc]|b.*d) over "abzzd": matches "ab" at 2 and "abzzd" at 5.
        let n = nfa("a([bc]|b.*d)");
        assert_eq!(n.match_ends(b"abzzd"), vec![2, 5]);
        // "ac" matches via [bc].
        assert_eq!(n.match_ends(b"ac"), vec![2]);
    }

    #[test]
    fn unfolding_bounded_repetition() {
        // a(.a){3}b unfolds to 8 states (Fig. 3 of the paper).
        let n = nfa("a(.a){3}b");
        assert_eq!(n.len(), 8);
        assert_eq!(n.match_ends(b"axayazab"), vec![8]);
        assert!(n.match_ends(b"axayab").is_empty());
    }

    #[test]
    fn alternation_and_optional() {
        let n = nfa("ab?c");
        assert_eq!(n.match_ends(b"ac abc"), vec![2, 6]);
    }

    #[test]
    fn star_loop() {
        let n = nfa("ab*c");
        assert_eq!(n.match_ends(b"ac"), vec![2]);
        assert_eq!(n.match_ends(b"abbbc"), vec![5]);
        assert!(n.match_ends(b"abbb").is_empty());
    }

    #[test]
    fn dot_does_not_match_newline() {
        let n = nfa("a.c");
        assert!(n.match_ends(b"a\nc").is_empty());
        assert_eq!(n.match_ends(b"axc"), vec![3]);
    }

    #[test]
    fn empty_language_nullable_flag() {
        let n = Nfa::from_regex(&Regex::Empty);
        assert!(n.matches_empty());
        assert!(n.is_empty());
        assert!(n.match_ends(b"anything").is_empty());
    }

    #[test]
    fn linearity_detection() {
        assert!(nfa("abc").is_linear());
        assert!(nfa("a[bc]d").is_linear());
        assert!(!nfa("ab?c").is_linear()); // skip edge a->c breaks the chain
        assert!(!nfa("a|b").is_linear());
        assert!(!nfa("ab*c").is_linear());
        // A pure bounded repetition unfolds into a chain, which IS linear.
        assert!(nfa("a(.a){3}b").is_linear());
    }

    #[test]
    fn active_count_tracks_parallel_threads() {
        let n = nfa("a.{3}");
        let mut run = n.start();
        run.step(b'a');
        assert_eq!(run.active_count(), 1);
        run.step(b'a'); // both initial 'a' and '.' threads
        assert_eq!(run.active_count(), 2);
    }

    #[test]
    fn is_match_short_circuit() {
        let n = nfa("needle");
        assert!(n.is_match(b"say needle twice"));
        assert!(!n.is_match(b"nothing here"));
    }

    #[test]
    fn case_class_matching() {
        let n = nfa("[0-9]{2}");
        assert_eq!(n.match_ends(b"ab12cd345"), vec![4, 8, 9]);
    }
}
