//! Glushkov position automaton construction (shared by the NFA and NBVA
//! builders).
//!
//! The Glushkov construction (§2.1 of the paper) linearizes a regex into
//! *positions* — one per character-class occurrence — and computes the
//! classic `nullable` / `first` / `last` / `follow` sets. The resulting
//! automaton is ε-free and homogeneous: every transition entering position
//! `p` is labeled with `p`'s character class.
//!
//! The NBVA builder extends positions with bit-vector metadata: a bounded
//! repetition of a single character class, `σ{m,m}` or `σ{0,k}`, is kept as
//! *one* position whose `first`/`last` are itself and which follows itself
//! (the repetition count lives in the bit vector, not in extra control
//! states). Such a `σ{0,k}` position is *nullable*.

use crate::StateId;
use rap_regex::{CharClass, Regex};

/// Bit-vector role of a position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PosKind {
    /// Ordinary NFA position.
    Plain,
    /// Bit-vector position for `σ{m,m}`; emits when the m-th bit is set
    /// (the paper's `r(m)` read action).
    BvExact { width: u32 },
    /// Bit-vector position for `σ{0,k}`; emits when any bit is set (the
    /// paper's `rAll` read action). Nullable.
    BvUpTo { width: u32 },
}

/// A linearized position: its character class plus bit-vector role.
#[derive(Clone, Debug)]
pub(crate) struct Position {
    pub cc: CharClass,
    pub kind: PosKind,
}

/// The full result of the Glushkov construction.
#[derive(Clone, Debug)]
pub(crate) struct Glushkov {
    pub positions: Vec<Position>,
    pub nullable: bool,
    pub first: Vec<StateId>,
    pub last: Vec<StateId>,
    /// `follow[p]` — positions reachable from `p` in one step.
    pub follow: Vec<Vec<StateId>>,
}

/// Runs the construction. `allow_bv` controls whether single-class bounded
/// repetitions become bit-vector positions (NBVA) or are rejected with a
/// panic (NFA — the caller must unfold first).
///
/// # Panics
///
/// Panics if the regex contains a repetition shape the target model cannot
/// express (callers normalize with the `rap_regex::rewrite` passes first).
pub(crate) fn construct(regex: &Regex, allow_bv: bool) -> Glushkov {
    let mut b = Builder {
        positions: Vec::new(),
        follow: Vec::new(),
        allow_bv,
    };
    let f = b.walk(regex);
    Glushkov {
        positions: b.positions,
        nullable: f.nullable,
        first: f.first,
        last: f.last,
        follow: b.follow,
    }
}

/// Per-subexpression factors of the construction.
struct Factors {
    nullable: bool,
    first: Vec<StateId>,
    last: Vec<StateId>,
}

impl Factors {
    fn empty() -> Self {
        Factors {
            nullable: true,
            first: Vec::new(),
            last: Vec::new(),
        }
    }
}

struct Builder {
    positions: Vec<Position>,
    follow: Vec<Vec<StateId>>,
    allow_bv: bool,
}

impl Builder {
    fn add_position(&mut self, cc: CharClass, kind: PosKind) -> StateId {
        let id = self.positions.len() as StateId;
        self.positions.push(Position { cc, kind });
        self.follow.push(Vec::new());
        id
    }

    fn link(&mut self, from: &[StateId], to: &[StateId]) {
        for &p in from {
            let follow = &mut self.follow[p as usize];
            for &q in to {
                if !follow.contains(&q) {
                    follow.push(q);
                }
            }
        }
    }

    fn walk(&mut self, regex: &Regex) -> Factors {
        match regex {
            Regex::Empty => Factors::empty(),
            Regex::Class(cc) => {
                if cc.is_empty() {
                    // ∅ — matches nothing: no positions, not nullable.
                    return Factors {
                        nullable: false,
                        first: vec![],
                        last: vec![],
                    };
                }
                let id = self.add_position(*cc, PosKind::Plain);
                Factors {
                    nullable: false,
                    first: vec![id],
                    last: vec![id],
                }
            }
            Regex::Concat(parts) => {
                let mut acc = Factors::empty();
                for part in parts {
                    let f = self.walk(part);
                    self.link(&acc.last, &f.first);
                    let first = if acc.nullable {
                        union(&acc.first, &f.first)
                    } else {
                        acc.first
                    };
                    let last = if f.nullable {
                        union(&f.last, &acc.last)
                    } else {
                        f.last
                    };
                    acc = Factors {
                        nullable: acc.nullable && f.nullable,
                        first,
                        last,
                    };
                }
                acc
            }
            Regex::Alt(parts) => {
                let mut nullable = false;
                let mut first = Vec::new();
                let mut last = Vec::new();
                for part in parts {
                    let f = self.walk(part);
                    nullable |= f.nullable;
                    first = union(&first, &f.first);
                    last = union(&last, &f.last);
                }
                Factors {
                    nullable,
                    first,
                    last,
                }
            }
            Regex::Star(inner) => {
                let f = self.walk(inner);
                self.link(&f.last, &f.first);
                Factors {
                    nullable: true,
                    first: f.first,
                    last: f.last,
                }
            }
            Regex::Plus(inner) => {
                let f = self.walk(inner);
                self.link(&f.last, &f.first);
                Factors {
                    nullable: f.nullable,
                    first: f.first,
                    last: f.last,
                }
            }
            Regex::Opt(inner) => {
                let f = self.walk(inner);
                Factors {
                    nullable: true,
                    first: f.first,
                    last: f.last,
                }
            }
            Regex::Repeat { inner, min, max } => {
                let (cc, kind) = match (&**inner, min, max) {
                    (Regex::Class(cc), m, Some(n)) if self.allow_bv && *m == *n && *m >= 1 => {
                        (*cc, PosKind::BvExact { width: *m })
                    }
                    (Regex::Class(cc), 0, Some(n)) if self.allow_bv && *n >= 1 => {
                        (*cc, PosKind::BvUpTo { width: *n })
                    }
                    _ => panic!(
                        "Glushkov construction reached an unsupported repetition \
                         {regex}; normalize with rap_regex::rewrite first"
                    ),
                };
                let id = self.add_position(cc, kind);
                // No self-link here: the repetition count advances *inside*
                // the bit vector (the executor's implicit shift), not via a
                // control-state emission edge. A `follow` self-edge on a BV
                // position therefore always denotes an enclosing loop
                // (e.g. `(σ{m})+`) that restarts the count.
                Factors {
                    nullable: matches!(kind, PosKind::BvUpTo { .. }),
                    first: vec![id],
                    last: vec![id],
                }
            }
        }
    }
}

fn union(a: &[StateId], b: &[StateId]) -> Vec<StateId> {
    let mut out = a.to_vec();
    for &x in b {
        if !out.contains(&x) {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_regex::parse;

    fn g(pattern: &str) -> Glushkov {
        construct(&parse(pattern).expect("pattern parses"), false)
    }

    #[test]
    fn literal_chain() {
        let gl = g("abc");
        assert_eq!(gl.positions.len(), 3);
        assert_eq!(gl.first, vec![0]);
        assert_eq!(gl.last, vec![2]);
        assert_eq!(gl.follow[0], vec![1]);
        assert_eq!(gl.follow[1], vec![2]);
        assert!(gl.follow[2].is_empty());
        assert!(!gl.nullable);
    }

    #[test]
    fn paper_example_2_1() {
        // a([bc]|b.*d) — 5 positions; q1 and q4 are final.
        let gl = g("a([bc]|b.*d)");
        assert_eq!(gl.positions.len(), 5);
        assert_eq!(gl.first, vec![0]);
        let mut last = gl.last.clone();
        last.sort_unstable();
        assert_eq!(last, vec![1, 4]); // [bc] and d
                                      // b (position 2) loops through .* (position 3) to d (position 4).
        assert!(gl.follow[2].contains(&3));
        assert!(gl.follow[2].contains(&4));
        assert!(gl.follow[3].contains(&3));
        assert!(gl.follow[3].contains(&4));
    }

    #[test]
    fn star_loops_back() {
        let gl = g("a*");
        assert!(gl.nullable);
        assert_eq!(gl.follow[0], vec![0]);
        assert_eq!(gl.first, vec![0]);
        assert_eq!(gl.last, vec![0]);
    }

    #[test]
    fn nullable_concat_extends_first_and_last() {
        let gl = g("a?b");
        assert_eq!(gl.positions.len(), 2);
        let mut first = gl.first.clone();
        first.sort_unstable();
        assert_eq!(first, vec![0, 1]);
        assert_eq!(gl.last, vec![1]);
    }

    #[test]
    fn alternation_unions() {
        let gl = g("ab|cd");
        assert_eq!(gl.positions.len(), 4);
        let mut first = gl.first.clone();
        first.sort_unstable();
        assert_eq!(first, vec![0, 2]);
        let mut last = gl.last.clone();
        last.sort_unstable();
        assert_eq!(last, vec![1, 3]);
    }

    #[test]
    fn bv_positions_when_allowed() {
        let gl = construct(&parse("bc{5}d").expect("parses"), true);
        assert_eq!(gl.positions.len(), 3);
        assert_eq!(gl.positions[1].kind, PosKind::BvExact { width: 5 });
        // No self-loop: the count advances inside the bit vector.
        assert!(!gl.follow[1].contains(&1));
        assert!(gl.follow[1].contains(&2));
    }

    #[test]
    fn bv_upto_is_nullable() {
        let gl = construct(&parse("ac{0,3}d").expect("parses"), true);
        assert_eq!(gl.positions[1].kind, PosKind::BvUpTo { width: 3 });
        // a must reach both c{0,3} and d (zero-repetition path).
        assert!(gl.follow[0].contains(&1));
        assert!(gl.follow[0].contains(&2));
    }

    #[test]
    #[should_panic(expected = "unsupported repetition")]
    fn nfa_mode_rejects_repetitions() {
        let _ = g("a{5}");
    }

    #[test]
    fn empty_class_matches_nothing() {
        let gl = construct(&Regex::Class(CharClass::empty()), false);
        assert!(gl.positions.is_empty());
        assert!(!gl.nullable);
        assert!(gl.first.is_empty());
    }
}
