//! Linear NFA (LNFA) and the Shift-And executor (§2.1, Fig. 2).
//!
//! An LNFA is a homogeneous NFA whose states form a chain
//! `q0 → q1 → … → qn−1`. RAP's LNFA mode (and software matchers like
//! Hyperscan) execute such automata with the bit-parallel Shift-And
//! algorithm. Following §3.2, the hardware variant assumes a single initial
//! state `q0` and a single final state `qn−1`, so an [`Lnfa`] here is simply
//! a non-empty string of character classes; regexes with unions or optionals
//! are first rewritten into a *set* of LNFAs ([`Lnfa::from_regex`], §4.2).

use crate::bitvec::BitVec;
use rap_regex::rewrite::to_sequences;
use rap_regex::{CharClass, Regex};
use serde::{Deserialize, Serialize};

/// A linear NFA: a chain of character classes with one initial and one
/// final state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lnfa {
    classes: Vec<CharClass>,
}

/// The result of rewriting a regex for LNFA execution: a finite union of
/// chains, plus whether the original language contained ε (an empty chain).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LnfaSet {
    /// The chains; matching the original regex means matching any of them.
    pub lnfas: Vec<Lnfa>,
    /// Whether the regex also matched the empty string.
    pub matches_empty: bool,
}

impl Lnfa {
    /// Creates an LNFA from a chain of character classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty (ε is not an LNFA; see [`LnfaSet`]).
    pub fn new(classes: Vec<CharClass>) -> Lnfa {
        assert!(!classes.is_empty(), "an LNFA needs at least one state");
        Lnfa { classes }
    }

    /// Attempts the LNFA rewriting of §4.2: distributes union over
    /// concatenation and unfolds bounded repetitions, giving up (returning
    /// `None`) if the pattern has an unbounded loop or the expansion
    /// exceeds `state_budget` states.
    ///
    /// # Example
    ///
    /// ```
    /// use rap_regex::parse;
    /// use rap_automata::lnfa::Lnfa;
    ///
    /// // Example 4.4 of the paper: a(b{1,2}|c)e → abe | abbe | ace.
    /// let set = Lnfa::from_regex(&parse("a(b{1,2}|c)e")?, 64).expect("linearizable");
    /// assert_eq!(set.lnfas.len(), 3);
    /// # Ok::<(), rap_regex::ParseError>(())
    /// ```
    pub fn from_regex(regex: &Regex, state_budget: u64) -> Option<LnfaSet> {
        let seqs = to_sequences(regex, state_budget)?;
        let mut matches_empty = false;
        let mut lnfas = Vec::with_capacity(seqs.len());
        for s in seqs {
            if s.is_empty() {
                matches_empty = true;
            } else {
                lnfas.push(Lnfa { classes: s });
            }
        }
        Some(LnfaSet {
            lnfas,
            matches_empty,
        })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the chain is empty (never true for a constructed `Lnfa`).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The chain of character classes, `q0` first.
    pub fn classes(&self) -> &[CharClass] {
        &self.classes
    }

    /// Creates a fresh Shift-And run.
    pub fn start(&self) -> ShiftAndRun<'_> {
        ShiftAndRun {
            lnfa: self,
            states: BitVec::zeros(self.classes.len()),
        }
    }

    /// Offsets just past each match end in `input`.
    pub fn match_ends(&self, input: &[u8]) -> Vec<usize> {
        let mut run = self.start();
        let mut out = Vec::new();
        for (i, &b) in input.iter().enumerate() {
            if run.step(b) {
                out.push(i + 1);
            }
        }
        out
    }

    /// Whether any match occurs in `input`.
    pub fn is_match(&self, input: &[u8]) -> bool {
        let mut run = self.start();
        input.iter().any(|&b| run.step(b))
    }
}

/// An in-progress Shift-And run (the `states` register of Fig. 2).
///
/// Bit `i` set means state `q_i` is active. The software convention here is
/// LSB = `q0` with an *up* shift; the hardware of §3.2 uses the mirrored
/// MSB-first layout with a right shift — the two are isomorphic.
#[derive(Clone, Debug)]
pub struct ShiftAndRun<'a> {
    lnfa: &'a Lnfa,
    states: BitVec,
}

impl ShiftAndRun<'_> {
    /// Consumes one symbol; returns whether a match ends here.
    ///
    /// Implements `states = ((states << 1) | maskInitial) AND labels[b]`
    /// followed by the `maskFinal` test, computing `labels` from the stored
    /// character classes as the RAP hardware does (§3.2: "we compute labels
    /// from the STE CC instead of storing it directly").
    pub fn step(&mut self, byte: u8) -> bool {
        let n = self.lnfa.classes.len();
        self.states.shift_up();
        self.states.set(0, true); // unanchored: q0 is always available
        for (i, cc) in self.lnfa.classes.iter().enumerate() {
            if self.states.get(i) && !cc.contains(byte) {
                self.states.set(i, false);
            }
        }
        self.states.get(n - 1)
    }

    /// Number of active states.
    pub fn active_count(&self) -> u32 {
        self.states.count_ones()
    }

    /// Whether state `q_i` is active.
    pub fn is_active(&self, i: usize) -> bool {
        self.states.get(i)
    }

    /// The raw `states` register (bit i = state `q_i`).
    pub fn states(&self) -> &BitVec {
        &self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use rap_regex::parse;

    fn chain(pattern: &str) -> Lnfa {
        let set =
            Lnfa::from_regex(&parse(pattern).expect("parses"), 1 << 20).expect("linearizable");
        assert_eq!(set.lnfas.len(), 1, "{pattern} is a single chain");
        set.lnfas.into_iter().next().expect("one chain")
    }

    #[test]
    fn fig2_example() {
        // The paper's Fig. 6 LNFA a.[bc] over input "abc": match at 3.
        let l = chain("a.[bc]");
        assert_eq!(l.match_ends(b"abc"), vec![3]);
        assert!(l.match_ends(b"ab").is_empty());
    }

    #[test]
    fn literal_chain_matches() {
        let l = chain("abc");
        assert_eq!(l.match_ends(b"zabcabc"), vec![4, 7]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn overlapping_chains() {
        let l = chain("aa");
        assert_eq!(l.match_ends(b"aaa"), vec![2, 3]);
    }

    #[test]
    fn single_state_chain() {
        let l = chain("[xy]");
        assert_eq!(l.match_ends(b"axbyc"), vec![2, 4]);
    }

    #[test]
    fn agrees_with_nfa_on_linear_patterns() {
        for pattern in ["abc", "a.c", "[0-9][0-9][a-f]", "x.{3}y"] {
            let re = parse(pattern).expect("parses");
            let l_set = Lnfa::from_regex(&re, 1 << 20).expect("linearizable");
            let n = Nfa::from_regex(&re);
            let input = b"ab0c 19af x123y abc a.c xxxxy";
            let mut lnfa_ends: Vec<usize> = Vec::new();
            for (i, _) in input.iter().enumerate() {
                let end = i + 1;
                if l_set
                    .lnfas
                    .iter()
                    .any(|l| l.match_ends(&input[..end]).contains(&end))
                {
                    lnfa_ends.push(end);
                }
            }
            assert_eq!(lnfa_ends, n.match_ends(input), "{pattern}");
        }
    }

    #[test]
    fn rewriting_distributes_union() {
        let set = Lnfa::from_regex(&parse("a(b|c)d").expect("parses"), 64).expect("linearizable");
        assert_eq!(set.lnfas.len(), 2);
        assert!(set.lnfas.iter().all(|l| l.len() == 3));
        assert!(!set.matches_empty);
    }

    #[test]
    fn rewriting_rejects_loops() {
        assert!(Lnfa::from_regex(&parse("ab*c").expect("parses"), 64).is_none());
        assert!(Lnfa::from_regex(&parse("a+").expect("parses"), 64).is_none());
    }

    #[test]
    fn epsilon_reported_via_flag() {
        let set = Lnfa::from_regex(&parse("a?").expect("parses"), 64).expect("linearizable");
        assert!(set.matches_empty);
        assert_eq!(set.lnfas.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_chain_rejected() {
        let _ = Lnfa::new(vec![]);
    }

    #[test]
    fn active_count_reflects_threads() {
        let l = chain("aaa");
        let mut run = l.start();
        run.step(b'a');
        run.step(b'a');
        assert_eq!(run.active_count(), 2);
    }
}
