//! Property-based differential tests: the NBVA and LNFA executors must
//! agree with the fully unfolded Glushkov NFA, which serves as ground truth.

use proptest::prelude::*;
use rap_automata::lnfa::Lnfa;
use rap_automata::nbva::Nbva;
use rap_automata::nfa::Nfa;
use rap_regex::{CharClass, Regex};

/// Random regexes over {a, b, c} with bounded repetitions — the shapes the
/// NBVA compiler handles without unfolding.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::literal_byte(b'a')),
        Just(Regex::literal_byte(b'b')),
        Just(Regex::literal_byte(b'c')),
        Just(Regex::Class(CharClass::from_bytes([b'a', b'c']))),
        // Single-class bounded repetitions of width over the test threshold.
        (1u32..9, 0u32..6).prop_map(|(m, extra)| {
            Regex::repeat(Regex::literal_byte(b'c'), m, Some(m + extra))
        }),
        (1u32..9).prop_map(|n| Regex::repeat(
            Regex::Class(CharClass::from_bytes([b'a', b'b'])),
            0,
            Some(n)
        )),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::opt),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::star),
        ]
    })
}

/// Random inputs over the same alphabet (plus a rare out-of-alphabet byte).
fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            8 => Just(b'a'),
            8 => Just(b'b'),
            16 => Just(b'c'),
            1 => Just(b'x'),
        ],
        0..48,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// NBVA execution is equivalent to the unfolded NFA for every unfolding
    /// threshold.
    #[test]
    fn nbva_matches_unfolded_nfa(re in arb_regex(), input in arb_input(), t in 0u32..6) {
        let reference = Nfa::from_regex(&re).match_ends(&input);
        let nbva = Nbva::from_regex(&re, t);
        prop_assert_eq!(
            nbva.match_ends(&input),
            reference,
            "regex {} threshold {}",
            re,
            t
        );
    }

    /// The counter-set executor (NCA) is equivalent to both the bit-vector
    /// executor and the unfolded NFA.
    #[test]
    fn nca_matches_unfolded_nfa(re in arb_regex(), input in arb_input(), t in 0u32..6) {
        let reference = Nfa::from_regex(&re).match_ends(&input);
        let nbva = Nbva::from_regex(&re, t);
        prop_assert_eq!(
            rap_automata::nca::NcaRun::match_ends(&nbva, &input),
            reference,
            "regex {} threshold {}",
            re,
            t
        );
    }

    /// The LNFA rewriting (when it applies) preserves the language: the
    /// union of chains reports exactly the NFA's match ends.
    #[test]
    fn lnfa_set_matches_nfa(re in arb_regex(), input in arb_input()) {
        if let Some(set) = Lnfa::from_regex(&re, 2048) {
            let reference = Nfa::from_regex(&re).match_ends(&input);
            let mut runs: Vec<_> = set.lnfas.iter().map(|l| l.start()).collect();
            let mut got = Vec::new();
            for (i, &b) in input.iter().enumerate() {
                let mut any = false;
                for run in runs.iter_mut() {
                    any |= run.step(b);
                }
                if any {
                    got.push(i + 1);
                }
            }
            prop_assert_eq!(got, reference, "regex {}", re);
        }
    }

    /// Nullability flags agree across all three models.
    #[test]
    fn nullability_agrees(re in arb_regex()) {
        let nfa = Nfa::from_regex(&re);
        let nbva = Nbva::from_regex(&re, 3);
        prop_assert_eq!(nfa.matches_empty(), re.nullable());
        prop_assert_eq!(nbva.matches_empty(), re.nullable());
        if let Some(set) = Lnfa::from_regex(&re, 2048) {
            prop_assert_eq!(set.matches_empty, re.nullable());
        }
    }

    /// The NBVA never has more control states than the unfolded NFA, and
    /// compresses exactly when repetitions survive the threshold.
    #[test]
    fn nbva_state_compression(re in arb_regex(), t in 0u32..6) {
        let nfa = Nfa::from_regex(&re);
        let nbva = Nbva::from_regex(&re, t);
        prop_assert!(nbva.len() <= nfa.len());
    }
}
