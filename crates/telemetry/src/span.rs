//! Span-based structured timing for pipeline stages.
//!
//! A [`SpanTimer`] measures one wall-clock interval and records it (in
//! nanoseconds) into a [`Histogram`] when finished. Timings are
//! nondeterministic by nature, so they flow only into the metrics
//! registry / Prometheus snapshot — never into the replayable JSONL
//! event journal.

use std::time::Instant;

use crate::metrics::Histogram;

/// An in-flight timed span. Created by [`SpanTimer::start`]; records into
/// its histogram on [`SpanTimer::finish`] or on drop (whichever first).
#[derive(Debug)]
pub struct SpanTimer {
    hist: Histogram,
    started: Instant,
    done: bool,
}

impl SpanTimer {
    /// Starts timing a span that will record into `hist`.
    pub fn start(hist: Histogram) -> SpanTimer {
        SpanTimer {
            hist,
            started: Instant::now(),
            done: false,
        }
    }

    /// Stops the span and records the elapsed nanoseconds, returning them.
    pub fn finish(mut self) -> u64 {
        self.record()
    }

    fn record(&mut self) -> u64 {
        if self.done {
            return 0;
        }
        self.done = true;
        let ns = self.started.elapsed().as_nanos() as u64;
        self.hist.record(ns);
        ns
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.record();
    }
}

/// Times `f`, recording its wall-clock duration into `hist`.
pub fn time<T>(hist: &Histogram, f: impl FnOnce() -> T) -> T {
    let span = SpanTimer::start(hist.clone());
    let out = f();
    span.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn span_records_once() {
        let h = Registry::new().histogram("ns", &[]);
        let span = SpanTimer::start(h.clone());
        span.finish();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_records_on_drop() {
        let h = Registry::new().histogram("ns", &[]);
        drop(SpanTimer::start(h.clone()));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn time_returns_value() {
        let h = Registry::new().histogram("ns", &[]);
        let v = time(&h, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(h.count(), 1);
    }
}
