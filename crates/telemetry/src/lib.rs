//! # rap-telemetry — unified tracing, metrics, and cycle-level profiling
//!
//! The observability subsystem for the RAP reproduction. It has three
//! planes, all zero-cost when no [`Telemetry`] handle is attached:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]) —
//!   process-wide named counters and log2-bucketed histograms behind
//!   relaxed atomics. The pipeline's per-stage timings and cache
//!   hit/miss tallies live here, exported as a Prometheus-style text
//!   snapshot ([`Telemetry::prometheus`]).
//! * **Spans** ([`SpanTimer`], [`time`]) — wall-clock interval timing for
//!   pipeline stages, recorded into registry histograms. Timings are
//!   nondeterministic, so they stay out of the event journal.
//! * **Probes** ([`SimProbe`], [`ProbeEvent`]) — cycle-sampled simulator
//!   observations (active states, powered tiles, stalls, buffer
//!   occupancy) collected into bounded per-run ring buffers and flushed
//!   into a shared journal. Because every event is keyed by simulator
//!   cycle, a fixed-seed run replays to an identical JSONL trace
//!   ([`Telemetry::drain_jsonl`]).
//!
//! Enable via [`Telemetry::from_env`] (`RAP_TRACE=1`) or construct
//! explicitly and attach with `Simulator::with_telemetry` /
//! `Pipeline::with_telemetry`.

mod export;
mod metrics;
mod probe;
mod span;

pub use export::{snapshot_to_prometheus, traces_to_jsonl};
pub use metrics::{
    Counter, Gauge, Histogram, MetricSample, MetricValue, Registry, HISTOGRAM_BUCKETS,
};
pub use probe::{ProbeEvent, RunTrace, SimProbe};
pub use span::{time, SpanTimer};

use std::sync::{Arc, Mutex};

/// Tuning knobs for a [`Telemetry`] instance.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Cycle-sampling period for simulator probes: an `Array`/`Bank`
    /// sample is emitted every `sample_every` cycles.
    pub sample_every: u32,
    /// Per-run ring-buffer capacity; the oldest events are evicted (and
    /// counted) beyond this.
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            sample_every: 64,
            ring_capacity: 65_536,
        }
    }
}

/// The shared observability context: one metrics registry plus one event
/// journal. Cheap to clone behind an `Arc`; the simulator, pipeline,
/// bench harness, and CLI all hold the same instance.
#[derive(Debug)]
pub struct Telemetry {
    config: TelemetryConfig,
    registry: Registry,
    journal: Arc<Mutex<Vec<RunTrace>>>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// A telemetry context with the given knobs.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            config,
            registry: Registry::new(),
            journal: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Builds a context from the environment, or `None` when tracing is
    /// not requested. `RAP_TRACE=1` (or any value other than `0`/empty)
    /// enables it; `RAP_TRACE_SAMPLE` overrides the sampling period and
    /// `RAP_TRACE_RING` the ring capacity.
    pub fn from_env() -> Option<Arc<Telemetry>> {
        let on = std::env::var("RAP_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
        if !on {
            return None;
        }
        let mut config = TelemetryConfig::default();
        if let Ok(v) = std::env::var("RAP_TRACE_SAMPLE") {
            if let Ok(n) = v.parse::<u32>() {
                config.sample_every = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("RAP_TRACE_RING") {
            if let Ok(n) = v.parse::<usize>() {
                config.ring_capacity = n.max(1);
            }
        }
        Some(Arc::new(Telemetry::new(config)))
    }

    /// The configuration this context was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The metrics registry (clone is cheap and shares the cells).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Opens a probe for one simulator run; events flush into this
    /// context's journal when the probe finishes or is dropped.
    pub fn probe(&self, label: &str) -> SimProbe {
        SimProbe::new(
            label,
            self.config.ring_capacity,
            self.config.sample_every,
            Arc::clone(&self.journal),
        )
    }

    /// Takes all completed run traces out of the journal, sorted by run
    /// label (then original arrival order for equal labels) so that
    /// parallel-grid scheduling cannot perturb the export.
    pub fn drain_traces(&self) -> Vec<RunTrace> {
        let mut traces = match self.journal.lock() {
            Ok(mut journal) => std::mem::take(&mut *journal),
            Err(_) => Vec::new(),
        };
        traces.sort_by(|a, b| a.label.cmp(&b.label));
        traces
    }

    /// Number of completed run traces waiting in the journal.
    pub fn trace_count(&self) -> usize {
        self.journal.lock().map_or(0, |j| j.len())
    }

    /// Drains the journal and renders it as a JSONL trace (see
    /// [`traces_to_jsonl`]).
    pub fn drain_jsonl(&self) -> String {
        traces_to_jsonl(&self.drain_traces())
    }

    /// Renders the current metrics registry in the Prometheus text
    /// exposition format.
    pub fn prometheus(&self) -> String {
        snapshot_to_prometheus(&self.registry.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_roundtrip_through_journal() {
        let tel = Telemetry::default();
        let mut probe = tel.probe("b/run");
        probe.push(ProbeEvent::RunEnd {
            input_bytes: 4,
            cycles: 4,
            stall_cycles: 0,
            powered_tile_cycles: 8,
            matches: 0,
        });
        probe.finish();
        let mut probe = tel.probe("a/run");
        probe.push(ProbeEvent::RunEnd {
            input_bytes: 2,
            cycles: 2,
            stall_cycles: 0,
            powered_tile_cycles: 2,
            matches: 1,
        });
        probe.finish();
        assert_eq!(tel.trace_count(), 2);
        let traces = tel.drain_traces();
        // Sorted by label regardless of completion order.
        assert_eq!(traces[0].label, "a/run");
        assert_eq!(traces[1].label, "b/run");
        assert_eq!(tel.trace_count(), 0);
    }

    #[test]
    fn drain_jsonl_is_deterministic_for_same_events() {
        let render = || {
            let tel = Telemetry::default();
            for label in ["z", "m", "a"] {
                let mut probe = tel.probe(label);
                probe.push(ProbeEvent::Array {
                    cycle: 0,
                    array: 1,
                    active_states: 2,
                    powered_tiles: 2,
                    stalled: false,
                });
                probe.finish();
            }
            tel.drain_jsonl()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn config_defaults() {
        let tel = Telemetry::default();
        assert_eq!(tel.config().sample_every, 64);
        assert!(tel.config().ring_capacity > 0);
        assert_eq!(tel.probe("x").sample_every(), 64);
    }
}
