//! Exporters: JSONL trace files and a Prometheus-style text snapshot.
//!
//! JSON is hand-rolled here because the workspace's vendored `serde` is a
//! no-op marker-trait stub. The emitted JSON is deliberately minimal —
//! flat objects of string/integer/bool fields — and every field is
//! written in a fixed order so two identical journals render to
//! byte-identical files.

use std::fmt::Write as _;

use crate::metrics::{MetricSample, MetricValue};
use crate::probe::{ProbeEvent, RunTrace};

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one probe event as a single-line JSON object. Field order is
/// fixed: `event`, `run`, then the event's own fields in declaration
/// order.
fn event_json(label: &str, event: &ProbeEvent) -> String {
    let head = format!(
        "{{\"event\":\"{}\",\"run\":\"{}\"",
        event.kind(),
        json_escape(label)
    );
    match event {
        ProbeEvent::Array {
            cycle,
            array,
            active_states,
            powered_tiles,
            stalled,
        } => format!(
            "{head},\"cycle\":{cycle},\"array\":{array},\"active_states\":{active_states},\
             \"powered_tiles\":{powered_tiles},\"stalled\":{stalled}}}"
        ),
        ProbeEvent::Bank {
            cycle,
            min_consumed,
            max_consumed,
            input_fifo_bytes,
            output_fifo_records,
            interrupts,
        } => format!(
            "{head},\"cycle\":{cycle},\"min_consumed\":{min_consumed},\
             \"max_consumed\":{max_consumed},\"input_fifo_bytes\":{input_fifo_bytes},\
             \"output_fifo_records\":{output_fifo_records},\"interrupts\":{interrupts}}}"
        ),
        ProbeEvent::ArrayEnd {
            array,
            cycles,
            stall_cycles,
            powered_tile_cycles,
            matches,
        } => format!(
            "{head},\"array\":{array},\"cycles\":{cycles},\"stall_cycles\":{stall_cycles},\
             \"powered_tile_cycles\":{powered_tile_cycles},\"matches\":{matches}}}"
        ),
        ProbeEvent::RunEnd {
            input_bytes,
            cycles,
            stall_cycles,
            powered_tile_cycles,
            matches,
        } => format!(
            "{head},\"input_bytes\":{input_bytes},\"cycles\":{cycles},\
             \"stall_cycles\":{stall_cycles},\"powered_tile_cycles\":{powered_tile_cycles},\
             \"matches\":{matches}}}"
        ),
    }
}

/// Renders run traces as JSONL: one `run_start` line per trace (carrying
/// the drop count), then one line per event. Traces are rendered in the
/// caller-supplied order; [`crate::Telemetry::drain_traces`] sorts by
/// label so parallel-grid interleaving doesn't perturb the bytes.
pub fn traces_to_jsonl(traces: &[RunTrace]) -> String {
    let mut out = String::new();
    for trace in traces {
        let _ = writeln!(
            out,
            "{{\"event\":\"run_start\",\"run\":\"{}\",\"events\":{},\"dropped\":{}}}",
            json_escape(&trace.label),
            trace.events.len(),
            trace.dropped
        );
        for event in &trace.events {
            out.push_str(&event_json(&trace.label, event));
            out.push('\n');
        }
    }
    out
}

/// Renders label pairs as `{k="v",…}` (empty string when no labels).
fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", json_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", json_escape(&v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders a registry snapshot in the Prometheus text exposition format.
/// Counters and gauges become single samples; histograms become
/// cumulative `_bucket{le=…}` series plus `_sum` and `_count`.
pub fn snapshot_to_prometheus(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for sample in samples {
        if sample.name != last_name {
            let kind = match sample.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {kind}", sample.name);
            last_name = &sample.name;
        }
        match &sample.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {v}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
            }
            MetricValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                let mut cumulative = 0u64;
                for (bound, n) in buckets {
                    cumulative += n;
                    let le = if *bound == u64::MAX {
                        "+Inf".to_string()
                    } else {
                        bound.to_string()
                    };
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        sample.name,
                        label_block(&sample.labels, Some(("le", le)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {sum}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {count}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn jsonl_one_line_per_event_plus_header() {
        let trace = RunTrace {
            label: "rap/snort".to_string(),
            events: vec![
                ProbeEvent::Array {
                    cycle: 0,
                    array: 2,
                    active_states: 5,
                    powered_tiles: 3,
                    stalled: false,
                },
                ProbeEvent::RunEnd {
                    input_bytes: 100,
                    cycles: 104,
                    stall_cycles: 4,
                    powered_tile_cycles: 312,
                    matches: 1,
                },
            ],
            dropped: 0,
        };
        let jsonl = traces_to_jsonl(&[trace]);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"run_start\""));
        assert!(lines[0].contains("\"events\":2"));
        assert!(lines[1].contains("\"cycle\":0"));
        assert!(lines[1].contains("\"array\":2"));
        assert!(lines[2].contains("\"event\":\"run_end\""));
        assert!(lines[2].contains("\"powered_tile_cycles\":312"));
    }

    #[test]
    fn prometheus_renders_all_kinds() {
        let reg = Registry::new();
        reg.counter("rap_runs_total", &[("machine", "rap")]).add(3);
        reg.gauge("rap_workers", &[]).set(8);
        reg.histogram("rap_stage_ns", &[("stage", "compile")])
            .record(5);
        let text = snapshot_to_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE rap_runs_total counter"));
        assert!(text.contains("rap_runs_total{machine=\"rap\"} 3"));
        assert!(text.contains("rap_workers 8"));
        assert!(text.contains("# TYPE rap_stage_ns histogram"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("rap_stage_ns_sum{stage=\"compile\"} 5"));
        assert!(text.contains("rap_stage_ns_count{stage=\"compile\"} 1"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[]);
        h.record(1);
        h.record(2);
        let text = snapshot_to_prometheus(&reg.snapshot());
        // Bucket le="1" holds the value 1; le="3" adds the value 2.
        assert!(text.contains("h_bucket{le=\"1\"} 1"));
        assert!(text.contains("h_bucket{le=\"3\"} 2"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 2"));
    }
}
