//! The process-wide metrics registry: named counters, gauges, and
//! log-bucketed histograms behind atomics.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! of the registered cell; the hot path is a single relaxed atomic
//! operation with no lock. The registry's lock is taken only on
//! registration and on snapshot, so instrumented code registers its
//! handles once up front and updates them lock-free afterwards.
//!
//! Metric identity is `(name, sorted labels)`. Registering the same
//! identity twice returns the *same* cell, which is what lets independent
//! components (pipeline stages, simulator runs) accumulate into shared
//! totals.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets a [`Histogram`] keeps. Bucket 0 holds zeros,
/// bucket `i` (1 ≤ i < 31) holds values in `[2^(i-1), 2^i)`, and the last
/// bucket holds everything else (+Inf in the Prometheus rendering).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins (or max-retaining) instantaneous value.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water-mark use).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared state of one histogram.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A log2-bucketed histogram of `u64` observations (durations in
/// nanoseconds, occupancies, cycle counts, …).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

/// The bucket index a value falls into.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        // floor(log2(v)) + 1, clamped into the fixed bucket array.
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum of every recorded observation.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket `(inclusive upper bound, count)` pairs; the last bucket's
    /// bound is `u64::MAX` (rendered as `+Inf` by the Prometheus exporter).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .map(|i| {
                let bound = match i {
                    0 => 0,
                    i if i < HISTOGRAM_BUCKETS - 1 => (1u64 << i) - 1,
                    _ => u64::MAX,
                };
                (bound, self.0.buckets[i].load(Ordering::Relaxed))
            })
            .collect()
    }
}

/// What kind of metric a registered cell is.
#[derive(Clone, Debug)]
pub(crate) enum MetricCell {
    /// Monotonic counter.
    Counter(Counter),
    /// Instantaneous gauge.
    Gauge(Gauge),
    /// Log-bucketed histogram.
    Histogram(Histogram),
}

impl MetricCell {
    fn kind(&self) -> &'static str {
        match self {
            MetricCell::Counter(_) => "counter",
            MetricCell::Gauge(_) => "gauge",
            MetricCell::Histogram(_) => "histogram",
        }
    }
}

/// Metric identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MetricKey {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// One metric's identity and current value, as read by a snapshot.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: MetricValue,
}

/// A snapshotted metric value.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram: per-bucket `(upper bound, count)`, total sum, and count.
    Histogram {
        /// `(inclusive upper bound, cumulative-free count)` per bucket.
        buckets: Vec<(u64, u64)>,
        /// Sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// A shareable registry of named metrics. Cloning shares the same
/// underlying cells.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    cells: Arc<Mutex<BTreeMap<MetricKey, MetricCell>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn cell(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricCell,
    ) -> MetricCell {
        let key = MetricKey::new(name, labels);
        let mut cells = self.cells.lock().expect("registry lock poisoned");
        cells.entry(key).or_insert_with(make).clone()
    }

    /// Registers (or recalls) a counter.
    ///
    /// # Panics
    ///
    /// Panics if the same `(name, labels)` was registered as a different
    /// metric kind — that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.cell(name, labels, || {
            MetricCell::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            MetricCell::Counter(c) => c,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or recalls) a gauge.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind mismatch, as for [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.cell(name, labels, || {
            MetricCell::Gauge(Gauge(Arc::new(AtomicU64::new(0))))
        }) {
            MetricCell::Gauge(g) => g,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or recalls) a histogram.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind mismatch, as for [`Registry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.cell(name, labels, || {
            MetricCell::Histogram(Histogram(Arc::new(HistogramCore::new())))
        }) {
            MetricCell::Histogram(h) => h,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Reads every registered metric, sorted by `(name, labels)` so the
    /// output order is deterministic.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let cells = self.cells.lock().expect("registry lock poisoned");
        cells
            .iter()
            .map(|(key, cell)| MetricSample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match cell {
                    MetricCell::Counter(c) => MetricValue::Counter(c.get()),
                    MetricCell::Gauge(g) => MetricValue::Gauge(g.get()),
                    MetricCell::Histogram(h) => MetricValue::Histogram {
                        buckets: h.buckets(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let reg = Registry::new();
        let a = reg.counter("events", &[("kind", "x")]);
        let b = reg.counter("events", &[("kind", "x")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        // Different labels are a different cell.
        assert_eq!(reg.counter("events", &[("kind", "y")]).get(), 0);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = Registry::new().gauge("workers", &[]);
        g.set(4);
        g.set_max(2);
        assert_eq!(g.get(), 4);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let h = Registry::new().histogram("ns", &[]);
        h.record(0);
        h.record(3);
        h.record(3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 6);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        let buckets = h.buckets();
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[2], (3, 2));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("m", &[]);
        let _ = reg.gauge("m", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b_metric", &[]).inc();
        reg.gauge("a_metric", &[]).set(7);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a_metric");
        assert_eq!(snap[1].name, "b_metric");
        assert!(matches!(snap[0].value, MetricValue::Gauge(7)));
        assert!(matches!(snap[1].value, MetricValue::Counter(1)));
    }
}
