//! Cycle-sampled simulator probes and the bounded event journal.
//!
//! A [`SimProbe`] is handed to one simulator run. The hot loop pushes
//! [`ProbeEvent`]s into a per-run bounded ring buffer (dropping the
//! oldest events and counting the drops when full); when the run
//! finishes — explicitly via [`SimProbe::finish`] or implicitly on drop —
//! the whole batch is flushed as one [`RunTrace`] into the shared
//! journal. Per-run batching keeps traces contiguous even when the
//! pipeline's parallel evaluation grid interleaves many runs.
//!
//! Every event is keyed by simulator *cycle*, not wall-clock time, so a
//! fixed-seed run produces the identical journal every time — the
//! property the JSONL exporter's replayability contract rests on.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One cycle-keyed observation from the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProbeEvent {
    /// Periodic sample of one array's activity.
    Array {
        /// Simulator cycle the sample was taken at.
        cycle: u64,
        /// Index of the array within the mapping.
        array: u32,
        /// Automaton states active at this cycle.
        active_states: u64,
        /// Tiles drawing power at this cycle.
        powered_tiles: u64,
        /// Whether the array was in an NBVA bit-vector stall phase.
        stalled: bool,
    },
    /// Periodic sample of the §3.3 bank buffer hierarchy.
    Bank {
        /// Simulator cycle the sample was taken at.
        cycle: u64,
        /// Slowest lane's consumed-offset (window low edge).
        min_consumed: u64,
        /// Fastest lane's consumed-offset (window high edge).
        max_consumed: u64,
        /// Total bytes queued across per-array input FIFOs.
        input_fifo_bytes: u64,
        /// Total match records queued across output buffers.
        output_fifo_records: u64,
        /// Host interrupts raised so far.
        interrupts: u64,
    },
    /// Summary emitted when one array finishes its input.
    ArrayEnd {
        /// Index of the array within the mapping.
        array: u32,
        /// Total cycles the array ran (input length + stalls).
        cycles: u64,
        /// NBVA bit-vector-processing stall cycles.
        stall_cycles: u64,
        /// Accumulated powered tile-cycles.
        powered_tile_cycles: u64,
        /// Matches the array reported.
        matches: u64,
    },
    /// Summary emitted when the whole run finishes.
    RunEnd {
        /// Bytes of input consumed.
        input_bytes: u64,
        /// Whole-run cycle count (slowest array / bank drain).
        cycles: u64,
        /// Total stall cycles across arrays.
        stall_cycles: u64,
        /// Total powered tile-cycles across arrays.
        powered_tile_cycles: u64,
        /// Total matches reported.
        matches: u64,
    },
}

impl ProbeEvent {
    /// The event's kind tag, as used in the JSONL `"event"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            ProbeEvent::Array { .. } => "array",
            ProbeEvent::Bank { .. } => "bank",
            ProbeEvent::ArrayEnd { .. } => "array_end",
            ProbeEvent::RunEnd { .. } => "run_end",
        }
    }
}

/// The completed trace of one simulator run.
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// Caller-supplied run label, e.g. `"rap/snort"`.
    pub label: String,
    /// Events in emission order (cycle-monotonic per array).
    pub events: Vec<ProbeEvent>,
    /// Events discarded because the ring buffer was full.
    pub dropped: u64,
}

impl RunTrace {
    /// Peak sampled `active_states` per array, as `(array, peak)` pairs in
    /// array order. Used to cross-validate the static worst-case bounds:
    /// every observed peak must stay at or below its array's bound.
    pub fn peak_active_states(&self) -> Vec<(u32, u64)> {
        let mut peaks: Vec<(u32, u64)> = Vec::new();
        for event in &self.events {
            if let ProbeEvent::Array {
                array,
                active_states,
                ..
            } = event
            {
                match peaks.iter_mut().find(|(a, _)| a == array) {
                    Some((_, peak)) => *peak = (*peak).max(*active_states),
                    None => peaks.push((*array, *active_states)),
                }
            }
        }
        peaks.sort_unstable_by_key(|&(a, _)| a);
        peaks
    }

    /// Largest sampled bank-level input-FIFO occupancy, in bytes.
    pub fn peak_input_fifo_bytes(&self) -> u64 {
        self.bank_peak(|e| {
            if let ProbeEvent::Bank {
                input_fifo_bytes, ..
            } = e
            {
                Some(*input_fifo_bytes)
            } else {
                None
            }
        })
    }

    /// Largest sampled output-buffer occupancy, in match records.
    pub fn peak_output_fifo_records(&self) -> u64 {
        self.bank_peak(|e| {
            if let ProbeEvent::Bank {
                output_fifo_records,
                ..
            } = e
            {
                Some(*output_fifo_records)
            } else {
                None
            }
        })
    }

    /// Largest sampled consumed-byte skew between the fastest and slowest
    /// lane.
    pub fn peak_skew(&self) -> u64 {
        self.bank_peak(|e| {
            if let ProbeEvent::Bank {
                min_consumed,
                max_consumed,
                ..
            } = e
            {
                Some(max_consumed - min_consumed)
            } else {
                None
            }
        })
    }

    fn bank_peak(&self, field: impl Fn(&ProbeEvent) -> Option<u64>) -> u64 {
        self.events.iter().filter_map(field).max().unwrap_or(0)
    }
}

/// The shared journal completed run traces are flushed into.
pub(crate) type Journal = Arc<Mutex<Vec<RunTrace>>>;

/// A bounded event buffer for one simulator run. See the module docs for
/// the batching/flush contract.
#[derive(Debug)]
pub struct SimProbe {
    label: String,
    events: VecDeque<ProbeEvent>,
    capacity: usize,
    dropped: u64,
    sample_every: u32,
    sink: Journal,
    flushed: bool,
}

impl SimProbe {
    pub(crate) fn new(label: &str, capacity: usize, sample_every: u32, sink: Journal) -> SimProbe {
        SimProbe {
            label: label.to_string(),
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            dropped: 0,
            sample_every: sample_every.max(1),
            sink,
            flushed: false,
        }
    }

    /// The cycle-sampling period: hot loops should emit an `Array`/`Bank`
    /// sample when `cycle % sample_every() == 0`.
    pub fn sample_every(&self) -> u32 {
        self.sample_every
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: ProbeEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events buffered so far (before flush).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flushes the buffered batch into the journal as one [`RunTrace`].
    /// Dropping an unfinished probe flushes too; `finish` just makes the
    /// run boundary explicit.
    pub fn finish(mut self) {
        self.flush();
    }

    fn flush(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        let trace = RunTrace {
            label: std::mem::take(&mut self.label),
            events: std::mem::take(&mut self.events).into(),
            dropped: self.dropped,
        };
        if let Ok(mut journal) = self.sink.lock() {
            journal.push(trace);
        }
    }
}

impl Drop for SimProbe {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal() -> Journal {
        Arc::new(Mutex::new(Vec::new()))
    }

    fn sample(cycle: u64) -> ProbeEvent {
        ProbeEvent::Array {
            cycle,
            array: 0,
            active_states: 1,
            powered_tiles: 1,
            stalled: false,
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let sink = journal();
        let mut probe = SimProbe::new("t", 2, 1, sink.clone());
        probe.push(sample(0));
        probe.push(sample(1));
        probe.push(sample(2));
        assert_eq!(probe.len(), 2);
        assert_eq!(probe.dropped(), 1);
        probe.finish();
        let traces = sink.lock().unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].dropped, 1);
        // Oldest event was evicted; cycles 1 and 2 remain.
        assert_eq!(traces[0].events, vec![sample(1), sample(2)]);
    }

    #[test]
    fn drop_flushes_unfinished_probe() {
        let sink = journal();
        {
            let mut probe = SimProbe::new("t", 8, 1, sink.clone());
            probe.push(sample(0));
        }
        assert_eq!(sink.lock().unwrap().len(), 1);
    }

    #[test]
    fn finish_flushes_exactly_once() {
        let sink = journal();
        let probe = SimProbe::new("t", 8, 4, sink.clone());
        assert_eq!(probe.sample_every(), 4);
        probe.finish();
        assert_eq!(sink.lock().unwrap().len(), 1);
    }
}
