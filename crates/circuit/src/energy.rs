//! Energy accounting.
//!
//! The simulator charges every micro-operation (CAM search, switch
//! traversal, controller tick, wire toggle, …) to an [`EnergyMeter`], which
//! keeps per-category subtotals so the evaluation can report breakdowns
//! like Fig. 11 of the paper.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Energy categories used by the simulators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// CAM searches during state matching.
    StateMatch,
    /// Local switch traversals during state transition.
    LocalSwitch,
    /// Global switch traversals during state transition.
    GlobalSwitch,
    /// Global wires between tiles/arrays.
    Wire,
    /// Bit-vector processing phase (reads, routing, actions, write-back).
    BitVector,
    /// Local and global controllers.
    Controller,
    /// Input/output buffering.
    Buffer,
    /// Static leakage integrated over the run time.
    Leakage,
}

impl Category {
    /// All categories, in report order.
    pub fn all() -> [Category; 8] {
        [
            Category::StateMatch,
            Category::LocalSwitch,
            Category::GlobalSwitch,
            Category::Wire,
            Category::BitVector,
            Category::Controller,
            Category::Buffer,
            Category::Leakage,
        ]
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::StateMatch => "state-match",
            Category::LocalSwitch => "local-switch",
            Category::GlobalSwitch => "global-switch",
            Category::Wire => "wire",
            Category::BitVector => "bit-vector",
            Category::Controller => "controller",
            Category::Buffer => "buffer",
            Category::Leakage => "leakage",
        };
        f.write_str(s)
    }
}

/// Accumulates picojoule charges by category.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    by_category: BTreeMap<Category, f64>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `pj` picojoules to `category`.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite charges (a sign of a modeling bug).
    pub fn charge(&mut self, category: Category, pj: f64) {
        assert!(
            pj.is_finite() && pj >= 0.0,
            "invalid energy charge {pj} pJ to {category}"
        );
        *self.by_category.entry(category).or_insert(0.0) += pj;
    }

    /// Subtotal of one category, in picojoules.
    pub fn category_pj(&self, category: Category) -> f64 {
        self.by_category.get(&category).copied().unwrap_or(0.0)
    }

    /// Total across categories, in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.by_category.values().sum()
    }

    /// Total in microjoules (the unit of Tables 2 and 3).
    pub fn total_uj(&self) -> f64 {
        self.total_pj() * 1e-6
    }

    /// Adds every subtotal of `other` into `self`.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (&cat, &pj) in &other.by_category {
            *self.by_category.entry(cat).or_insert(0.0) += pj;
        }
    }

    /// Iterates over `(category, picojoules)` pairs in report order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, f64)> + '_ {
        self.by_category.iter().map(|(&c, &e)| (c, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = EnergyMeter::new();
        m.charge(Category::StateMatch, 4.0);
        m.charge(Category::StateMatch, 4.0);
        m.charge(Category::LocalSwitch, 1.5);
        assert_eq!(m.category_pj(Category::StateMatch), 8.0);
        assert_eq!(m.category_pj(Category::LocalSwitch), 1.5);
        assert_eq!(m.category_pj(Category::Wire), 0.0);
        assert!((m.total_pj() - 9.5).abs() < 1e-12);
    }

    #[test]
    fn uj_conversion() {
        let mut m = EnergyMeter::new();
        m.charge(Category::BitVector, 2_000_000.0);
        assert!((m.total_uj() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_categories() {
        let mut a = EnergyMeter::new();
        a.charge(Category::Wire, 1.0);
        let mut b = EnergyMeter::new();
        b.charge(Category::Wire, 2.0);
        b.charge(Category::Leakage, 5.0);
        a.merge(&b);
        assert_eq!(a.category_pj(Category::Wire), 3.0);
        assert_eq!(a.category_pj(Category::Leakage), 5.0);
    }

    #[test]
    #[should_panic(expected = "invalid energy charge")]
    fn negative_charge_panics() {
        EnergyMeter::new().charge(Category::Buffer, -1.0);
    }

    #[test]
    fn iter_in_order() {
        let mut m = EnergyMeter::new();
        m.charge(Category::Leakage, 1.0);
        m.charge(Category::StateMatch, 1.0);
        let cats: Vec<Category> = m.iter().map(|(c, _)| c).collect();
        assert_eq!(cats, vec![Category::StateMatch, Category::Leakage]);
    }
}
