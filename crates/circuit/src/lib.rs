//! 28nm circuit-level cost models for the RAP reproduction.
//!
//! The paper evaluates RAP and the baseline automata processors with
//! SPICE-calibrated models of the memory macros and synthesized controllers
//! (Table 1). We cannot rerun SPICE, but the published table *is* the
//! circuit model the authors' simulator consumes, so this crate encodes it
//! directly:
//!
//! | Type | Size | Energy (pJ) | Delay (ps) | Area (µm²) | Leakage (µA) |
//! |---|---|---|---|---|---|
//! | 8T SRAM | 128×128 | 1–14 | 298 | 5655 | 57 |
//! | 8T SRAM | 256×256 | 2–55 | 410 | 18153 | 228 |
//! | 8T CAM | 32×128 | 4 | 325 | 2626 | 14 |
//! | Local controller | — | 2 | 90 | 2900 | 18 |
//! | Global controller | — | 2 | 400 | 1400 | 9 |
//! | Global wire | 1 mm | 0.07 | 66 | 50 | — |
//!
//! Energies with a range scale linearly with the access *activity* (the
//! fraction of rows/columns toggling), which is how sparse switch traversals
//! cost less than dense ones.

pub mod energy;
pub mod metrics;
pub mod models;

pub use energy::EnergyMeter;
pub use metrics::Metrics;
pub use models::{ComponentModel, Machine};
