//! The Table 1 component models and per-machine clock parameters.

use serde::{Deserialize, Serialize};

/// Nominal supply voltage used to convert leakage current to leakage power
/// (typical for TSMC 28nm HPC logic).
pub const VDD_V: f64 = 0.9;

/// A circuit component model: access energy (as a min–max range scaled by
/// activity), critical-path delay, layout area, and leakage current.
///
/// `Deserialize` is deliberately absent: the `&'static str` name only
/// exists as a compile-time table entry, so models are serialized (for
/// reports) but never read back from bytes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct ComponentModel {
    /// Human-readable name (matches Table 1).
    pub name: &'static str,
    /// Minimum access energy in picojoules (idle-ish access).
    pub energy_pj_min: f64,
    /// Maximum access energy in picojoules (fully active access).
    pub energy_pj_max: f64,
    /// Access delay in picoseconds.
    pub delay_ps: f64,
    /// Area in square micrometers.
    pub area_um2: f64,
    /// Leakage current in microamperes.
    pub leakage_ua: f64,
}

impl ComponentModel {
    /// Access energy (pJ) for a given activity factor in `[0, 1]` —
    /// the fraction of the macro's rows/columns that toggle.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]` or NaN.
    pub fn access_energy_pj(&self, activity: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity {activity} out of range for {}",
            self.name
        );
        self.energy_pj_min + (self.energy_pj_max - self.energy_pj_min) * activity
    }

    /// Leakage power in watts (I·V at the nominal supply).
    pub fn leakage_w(&self) -> f64 {
        self.leakage_ua * 1e-6 * VDD_V
    }

    /// Area in square millimeters.
    pub fn area_mm2(&self) -> f64 {
        self.area_um2 * 1e-6
    }
}

/// 8T SRAM, 128×128 — used as the local FCB switch of every machine.
pub const SRAM_128X128: ComponentModel = ComponentModel {
    name: "8T SRAM 128x128",
    energy_pj_min: 1.0,
    energy_pj_max: 14.0,
    delay_ps: 298.0,
    area_um2: 5655.0,
    leakage_ua: 57.0,
};

/// 8T SRAM, 256×256 — used as the global FCB switch of an array.
pub const SRAM_256X256: ComponentModel = ComponentModel {
    name: "8T SRAM 256x256",
    energy_pj_min: 2.0,
    energy_pj_max: 55.0,
    delay_ps: 410.0,
    area_um2: 18153.0,
    leakage_ua: 228.0,
};

/// 8T CAM, 32×128 — the state-matching macro of a tile (also holds the bit
/// vectors in NBVA mode).
pub const CAM_32X128: ComponentModel = ComponentModel {
    name: "8T CAM 32x128",
    energy_pj_min: 4.0,
    energy_pj_max: 4.0,
    delay_ps: 325.0,
    area_um2: 2626.0,
    leakage_ua: 14.0,
};

/// Per-tile local controller (RAP's reconfiguration overhead).
pub const LOCAL_CONTROLLER: ComponentModel = ComponentModel {
    name: "Local controller",
    energy_pj_min: 2.0,
    energy_pj_max: 2.0,
    delay_ps: 90.0,
    area_um2: 2900.0,
    leakage_ua: 18.0,
};

/// Per-array global controller.
pub const GLOBAL_CONTROLLER: ComponentModel = ComponentModel {
    name: "Global controller",
    energy_pj_min: 2.0,
    energy_pj_max: 2.0,
    delay_ps: 400.0,
    area_um2: 1400.0,
    leakage_ua: 9.0,
};

/// Global wire, per millimeter (estimate from the CA paper).
pub const GLOBAL_WIRE_MM: ComponentModel = ComponentModel {
    name: "Global wire 1mm",
    energy_pj_min: 0.07,
    energy_pj_max: 0.07,
    delay_ps: 66.0,
    area_um2: 50.0,
    leakage_ua: 0.0,
};

/// The automata-processor machines evaluated in the paper (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Machine {
    /// RAP — this paper's reconfigurable processor.
    Rap,
    /// CAMA (HPCA'22) — CAM-based state matching, NFA only.
    Cama,
    /// BVAP (ASPLOS'24) — CAMA plus fixed bit-vector modules.
    Bvap,
    /// CA, the Cache Automaton (MICRO'17) — SRAM-based state matching.
    Ca,
}

impl Machine {
    /// Clock frequency in hertz.
    ///
    /// RAP's 2.08 GHz comes from its 436.1 ps critical pipeline stage plus a
    /// 10% margin (§5.2); CAMA/CA report 2.14/1.82 GHz in their papers;
    /// BVAP's effective clock is 2.0 GHz (its LNFA-free throughput in
    /// Table 3).
    pub fn clock_hz(self) -> f64 {
        match self {
            Machine::Rap => 2.08e9,
            Machine::Cama => 2.14e9,
            Machine::Bvap => 2.00e9,
            Machine::Ca => 1.82e9,
        }
    }

    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Machine::Rap => "RAP",
            Machine::Cama => "CAMA",
            Machine::Bvap => "BVAP",
            Machine::Ca => "CA",
        }
    }

    /// All machines, RAP first (the tables' baseline ordering).
    pub fn all() -> [Machine; 4] {
        [Machine::Rap, Machine::Cama, Machine::Bvap, Machine::Ca]
    }
}

impl std::fmt::Display for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_encoded() {
        assert_eq!(SRAM_128X128.energy_pj_min, 1.0);
        assert_eq!(SRAM_128X128.energy_pj_max, 14.0);
        assert_eq!(SRAM_256X256.area_um2, 18153.0);
        assert_eq!(CAM_32X128.delay_ps, 325.0);
        assert_eq!(LOCAL_CONTROLLER.area_um2, 2900.0);
        assert_eq!(GLOBAL_CONTROLLER.leakage_ua, 9.0);
        assert_eq!(GLOBAL_WIRE_MM.energy_pj_max, 0.07);
    }

    #[test]
    fn activity_scales_energy() {
        assert_eq!(SRAM_128X128.access_energy_pj(0.0), 1.0);
        assert_eq!(SRAM_128X128.access_energy_pj(1.0), 14.0);
        let mid = SRAM_128X128.access_energy_pj(0.5);
        assert!((mid - 7.5).abs() < 1e-12);
        // Fixed-energy components ignore activity.
        assert_eq!(CAM_32X128.access_energy_pj(0.3), 4.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn activity_out_of_range_panics() {
        let _ = SRAM_128X128.access_energy_pj(1.5);
    }

    #[test]
    fn leakage_power_conversion() {
        // 57 µA at 0.9 V = 51.3 µW.
        let w = SRAM_128X128.leakage_w();
        assert!((w - 51.3e-6).abs() < 1e-12);
    }

    #[test]
    fn area_conversion() {
        assert!((SRAM_256X256.area_mm2() - 0.018153).abs() < 1e-12);
    }

    #[test]
    fn machine_clocks_match_paper() {
        assert_eq!(Machine::Rap.clock_hz(), 2.08e9);
        assert_eq!(Machine::Cama.clock_hz(), 2.14e9);
        assert_eq!(Machine::Ca.clock_hz(), 1.82e9);
        assert_eq!(Machine::Bvap.clock_hz(), 2.0e9);
    }

    #[test]
    fn machine_display_names() {
        let names: Vec<&str> = Machine::all().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["RAP", "CAMA", "BVAP", "CA"]);
        assert_eq!(Machine::Rap.to_string(), "RAP");
    }
}
