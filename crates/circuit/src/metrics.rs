//! System-level metrics (§5.2): throughput, power, energy efficiency
//! (throughput per watt) and compute density (throughput per unit area).

use serde::{Deserialize, Serialize};

/// Aggregate results of one simulated run of a machine on a workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Input symbols consumed.
    pub input_chars: u64,
    /// Clock cycles elapsed (≥ `input_chars` when bit-vector phases stall).
    pub cycles: u64,
    /// Clock frequency in hertz.
    pub clock_hz: f64,
    /// Total dynamic + leakage energy in microjoules.
    pub energy_uj: f64,
    /// Allocated hardware area in square millimeters.
    pub area_mm2: f64,
    /// Matches reported.
    pub matches: u64,
}

impl Metrics {
    /// Wall-clock run time in seconds.
    pub fn runtime_s(&self) -> f64 {
        self.cycles as f64 / self.clock_hz
    }

    /// Throughput in gigacharacters per second (the paper's Gch/s).
    pub fn throughput_gchps(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let chars_per_s = self.input_chars as f64 / self.runtime_s();
        chars_per_s / 1e9
    }

    /// Average power in watts (total energy over run time).
    pub fn power_w(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.energy_uj * 1e-6 / self.runtime_s()
    }

    /// Energy efficiency: throughput per watt (Gch/s/W).
    pub fn energy_efficiency(&self) -> f64 {
        let p = self.power_w();
        if p == 0.0 {
            return 0.0;
        }
        self.throughput_gchps() / p
    }

    /// Compute density: throughput per unit area (Gch/s/mm²).
    pub fn compute_density(&self) -> f64 {
        if self.area_mm2 == 0.0 {
            return 0.0;
        }
        self.throughput_gchps() / self.area_mm2
    }

    /// Sums two runs that share the hardware over the same input (e.g. the
    /// per-array contributions of one bank): energies and areas add, cycles
    /// take the maximum (arrays run in parallel), input chars must agree.
    pub fn combine_parallel(&self, other: &Metrics) -> Metrics {
        assert_eq!(
            self.clock_hz, other.clock_hz,
            "cannot combine runs at different clocks"
        );
        Metrics {
            input_chars: self.input_chars.max(other.input_chars),
            cycles: self.cycles.max(other.cycles),
            clock_hz: self.clock_hz,
            energy_uj: self.energy_uj + other.energy_uj,
            area_mm2: self.area_mm2 + other.area_mm2,
            matches: self.matches + other.matches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Metrics {
        Metrics {
            input_chars: 100_000,
            cycles: 100_000,
            clock_hz: 2.08e9,
            energy_uj: 188.0,
            area_mm2: 3.67,
            matches: 12,
        }
    }

    #[test]
    fn throughput_no_stalls_equals_clock() {
        // One char per cycle → throughput equals the clock in Gch/s.
        assert!((m().throughput_gchps() - 2.08).abs() < 1e-9);
    }

    #[test]
    fn throughput_with_stalls_degrades() {
        let mut x = m();
        x.cycles = 200_000; // every char costs 2 cycles
        assert!((x.throughput_gchps() - 1.04).abs() < 1e-9);
    }

    #[test]
    fn power_and_efficiency() {
        let x = m();
        // runtime = 1e5 / 2.08e9 s ≈ 48.08 µs; 188 µJ / 48.08 µs ≈ 3.91 W.
        let p = x.power_w();
        assert!((p - 3.9104).abs() < 1e-3, "{p}");
        let eff = x.energy_efficiency();
        assert!((eff - x.throughput_gchps() / p).abs() < 1e-12);
    }

    #[test]
    fn compute_density() {
        let x = m();
        assert!((x.compute_density() - 2.08 / 3.67).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_safe() {
        let x = Metrics::default();
        assert_eq!(x.throughput_gchps(), 0.0);
        assert_eq!(x.power_w(), 0.0);
        assert_eq!(x.energy_efficiency(), 0.0);
        assert_eq!(x.compute_density(), 0.0);
    }

    #[test]
    fn combine_parallel_adds_energy_maxes_cycles() {
        let a = m();
        let mut b = m();
        b.cycles = 150_000;
        b.energy_uj = 12.0;
        b.area_mm2 = 1.0;
        let c = a.combine_parallel(&b);
        assert_eq!(c.cycles, 150_000);
        assert!((c.energy_uj - 200.0).abs() < 1e-12);
        assert!((c.area_mm2 - 4.67).abs() < 1e-12);
        assert_eq!(c.matches, 24);
    }

    #[test]
    #[should_panic(expected = "different clocks")]
    fn combine_clock_mismatch_panics() {
        let a = m();
        let mut b = m();
        b.clock_hz = 1.0e9;
        let _ = a.combine_parallel(&b);
    }
}
