//! End-to-end service tests: demux fidelity against solo streaming runs,
//! certified backpressure, graceful drain, warm-start registration, and
//! the framed TCP protocol.

use std::sync::Arc;

use rap_pipeline::{BenchConfig, PatternSet, Pipeline, Stage, StoreConfig};
use rap_serve::{Client, RegisterReply, SendOutcome, ServeConfig, ServeError, Server};
use rap_sim::MatchEvent;
use rap_telemetry::Telemetry;

fn small_spec() -> BenchConfig {
    BenchConfig {
        patterns_per_suite: 4,
        input_len: 512,
        match_rate: 0.02,
        seed: 11,
    }
}

fn server(shards: usize, queue_pages: u64) -> Server {
    let config = ServeConfig {
        shards,
        queue_pages,
        ..ServeConfig::default()
    };
    Server::new(Pipeline::new(small_spec()), config)
}

fn patterns(sources: &[&str]) -> PatternSet {
    let sources: Vec<String> = sources.iter().map(|s| (*s).to_string()).collect();
    PatternSet::parse(&sources).expect("parses")
}

/// Reference semantics: one solo whole-input streaming run.
fn solo_matches(server: &Server, set: &PatternSet, input: &[u8]) -> Vec<MatchEvent> {
    let sim = rap_sim::Simulator::new(server.config().machine);
    let plan = server.pipeline().plan(&sim, set, None).expect("plans");
    plan.simulate_streaming(input).0.matches
}

#[test]
fn chunked_sessions_match_solo_streaming_runs() {
    let server = server(2, 8);
    let tenants: Vec<(&str, PatternSet, Vec<u8>)> = vec![
        (
            "ids",
            patterns(&["ab{4,8}c", "evil"]),
            b"xx evil abbbbbc evil yy".repeat(9),
        ),
        (
            "av",
            patterns(&["virus", "x.?y"]),
            b"virus xay xy virus zz".repeat(11),
        ),
        (
            "dpi",
            patterns(&["hel+o", "world"]),
            b"hello wooo helllo world".repeat(7),
        ),
        (
            "bio",
            patterns(&["gat+aca"]),
            b"ggattacagattttacaccc".repeat(13),
        ),
    ];
    let sessions: Vec<_> = tenants
        .iter()
        .map(|(name, set, _)| server.register(name, set).expect("admits"))
        .collect();
    // Both shards must be exercised.
    let shards: std::collections::BTreeSet<usize> = sessions.iter().map(|s| s.shard()).collect();
    assert_eq!(shards.len(), 2, "tenants should spread across shards");
    // Interleave chunk delivery round-robin with uneven chunk sizes.
    let mut cursors = vec![0usize; tenants.len()];
    let sizes = [7usize, 31, 3, 64, 13];
    let mut round = 0usize;
    loop {
        let mut progressed = false;
        for (i, (_, _, input)) in tenants.iter().enumerate() {
            let at = cursors[i];
            if at >= input.len() {
                continue;
            }
            let len = sizes[(round + i) % sizes.len()].min(input.len() - at);
            let mut outcome = sessions[i].send(&input[at..at + len]).expect("open");
            while outcome == SendOutcome::Shed {
                sessions[i].wait_idle();
                outcome = sessions[i].send(&input[at..at + len]).expect("open");
            }
            cursors[i] = at + len;
            progressed = true;
        }
        round += 1;
        if !progressed {
            break;
        }
    }
    for (i, (_, set, input)) in tenants.iter().enumerate() {
        sessions[i].finish();
        let mut delivered = sessions[i].drain();
        delivered.sort_unstable_by_key(|m| (m.end, m.pattern));
        delivered.dedup();
        let expected = solo_matches(&server, set, input);
        assert_eq!(delivered, expected, "tenant {} diverged from solo run", i);
        assert!(!expected.is_empty(), "tenant {} workload must match", i);
    }
    assert_eq!(server.active_sessions(), 0);
}

#[test]
fn anchored_end_matches_only_surface_at_finish() {
    let server = server(1, 8);
    let set = patterns(&["abc$"]);
    let session = server.register("anchored", &set).expect("admits");
    session.send(b"zzabc").expect("open");
    session.wait_idle();
    assert!(
        session.drain().is_empty(),
        "a $-anchored match must not surface mid-stream"
    );
    session.send(b"zabc").expect("open");
    session.finish();
    let events = session.drain();
    assert_eq!(
        events,
        vec![MatchEvent { pattern: 0, end: 9 }],
        "only the end-of-stream occurrence survives"
    );
}

#[test]
fn oversized_chunks_shed_with_backpressure_finding_first() {
    // One page over one bank: the certified intake budget is the bank's
    // ping-pong window (2 × 128 bytes).
    let server = server(1, 1);
    let set = patterns(&["needle"]);
    let session = server.register("burst", &set).expect("admits");
    let big = vec![b'x'; 4096];
    let outcome = session.send(&big).expect("open");
    assert_eq!(outcome, SendOutcome::Shed, "chunk over budget must shed");
    let stats = session.stats();
    assert_eq!(stats.chunks_shed, 1);
    assert!(stats.backpressure_events >= 1);
    let findings = server.findings();
    assert!(
        !findings
            .by_rule(rap_serve::Rule::SessionBackpressure)
            .is_empty(),
        "shed without a backpressure finding"
    );
    assert!(!findings.by_rule(rap_serve::Rule::ChunkShed).is_empty());
    assert!(server.metrics().chunks_shed.get() >= 1);
    assert!(server.metrics().backpressure_events.get() >= 1);
    // Within budget still flows.
    let ok = session.send(b"say needle twice").expect("open");
    assert_ne!(ok, SendOutcome::Shed);
    session.finish();
    assert_eq!(session.drain().len(), 1);
}

#[test]
fn duplicate_tenant_names_are_refused() {
    let server = server(2, 8);
    let set = patterns(&["abc"]);
    let _first = server.register("twin", &set).expect("admits");
    match server.register("twin", &set) {
        Err(ServeError::DuplicateTenant(name)) => assert_eq!(name, "twin"),
        Err(other) => panic!("expected duplicate refusal, got {other:?}"),
        Ok(_) => panic!("expected duplicate refusal, got an admitted session"),
    }
    assert_eq!(server.metrics().sessions_rejected.get(), 1);
}

#[test]
fn dropping_a_session_drains_gracefully() {
    let server = server(1, 8);
    let set = patterns(&["drop"]);
    {
        let session = server.register("ephemeral", &set).expect("admits");
        session.send(b"xx drop yy").expect("open");
        // No finish: the handle simply goes away.
    }
    // The worker processes the queued finish job shortly.
    for _ in 0..200 {
        if server.active_sessions() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(server.active_sessions(), 0, "drop must release the slot");
    let findings = server.findings();
    assert!(
        !findings.by_rule(rap_serve::Rule::SessionDrained).is_empty(),
        "graceful drain must be recorded"
    );
}

#[test]
fn telemetry_counters_track_the_ops_surface() {
    let telemetry = Arc::new(Telemetry::default());
    let pipeline = Pipeline::new(small_spec()).with_telemetry(Arc::clone(&telemetry));
    let server = Server::new(
        pipeline,
        ServeConfig {
            shards: 1,
            queue_pages: 8,
            ..ServeConfig::default()
        },
    );
    let set = patterns(&["tick"]);
    let session = server.register("ops", &set).expect("admits");
    assert_eq!(server.metrics().sessions_active.get(), 1);
    session.send(b"a tick b tick").expect("open");
    session.finish();
    let delivered = session.drain().len() as u64;
    assert_eq!(delivered, 2);
    assert_eq!(server.metrics().matches_delivered.get(), delivered);
    assert_eq!(server.metrics().bytes_scanned.get(), 13);
    assert_eq!(server.metrics().sessions_active.get(), 0);
    let prom = server.prometheus();
    for metric in [
        "rap_serve_sessions_active",
        "rap_serve_bytes_scanned_total",
        "rap_serve_matches_delivered_total",
        "rap_serve_backpressure_events_total",
        "rap_serve_chunk_scan_ns",
        "rap_sim_output_fifo_hwm_records",
    ] {
        assert!(prom.contains(metric), "{metric} missing from exposition");
    }
}

#[test]
fn warm_registration_compiles_nothing() {
    let dir = std::env::temp_dir().join(format!(
        "rap-serve-store-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let set = patterns(&["warm{2,5}start", "again"]);
    {
        let pipeline = Pipeline::new(small_spec())
            .with_store(StoreConfig::at(&dir))
            .expect("store opens");
        let cold = Server::new(
            pipeline,
            ServeConfig {
                shards: 1,
                ..ServeConfig::default()
            },
        );
        let session = cold.register("tenant", &set).expect("admits");
        session.finish();
        assert!(cold.pipeline().report().patterns_compiled > 0);
    }
    let pipeline = Pipeline::new(small_spec())
        .with_store(StoreConfig::at(&dir))
        .expect("store opens");
    let warm = Server::new(
        pipeline,
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    );
    let session = warm.register("tenant", &set).expect("admits");
    session.send(b"warmmmstart again").expect("open");
    session.finish();
    assert_eq!(session.drain().len(), 2);
    let report = warm.pipeline().report();
    assert_eq!(
        report.patterns_compiled, 0,
        "warm registration must not compile"
    );
    assert_eq!(report.stage_secs(Stage::Compile), 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_selection_breaks_ties_toward_the_lowest_id() {
    let server = server(3, 8);
    let a = server
        .register("first", &patterns(&["aaa"]))
        .expect("admits");
    let b = server
        .register("second", &patterns(&["bbb"]))
        .expect("admits");
    let c = server
        .register("third", &patterns(&["ccc"]))
        .expect("admits");
    // Every shard starts empty; the deterministic tie-break fills them
    // in ascending id order.
    assert_eq!(
        (a.shard(), b.shard(), c.shard()),
        (0, 1, 2),
        "least-loaded ties must resolve to the lowest shard id"
    );
    // A fourth tenant wraps back to the (again tied) lowest id.
    let d = server
        .register("fourth", &patterns(&["ddd"]))
        .expect("admits");
    assert_eq!(d.shard(), 0);
}

#[test]
fn hot_swap_replaces_a_tenant_while_the_other_keeps_streaming() {
    let server = server(1, 8);
    let stay_set = patterns(&["needle"]);
    let out_set = patterns(&["haystack"]);
    let stay = server.register("stay", &stay_set).expect("admits");
    let out = server.register("legacy", &out_set).expect("admits");
    assert_eq!(stay.shard(), out.shard());

    stay.send(b"a needle here").expect("open");
    out.send(b"one haystack").expect("open");
    out.wait_idle();
    let pre_out = out.drain();
    assert_eq!(pre_out.len(), 1, "outgoing tenant matched pre-swap");

    let in_set = patterns(&["beacon"]);
    let (incoming, plan) = server
        .swap_tenant(&out, "modern", &in_set)
        .expect("certifies");
    assert_eq!(plan.outgoing, "legacy");
    assert_eq!(plan.incoming, "modern");
    assert!(plan.drain.cycles > 0);
    assert_eq!(incoming.shard(), stay.shard(), "swap stays on the shard");

    // The staying session never stopped: it scans across the swap.
    stay.send(b" and a needle there").expect("open");
    stay.wait_idle();
    // The replacement streams into the freed footprint.
    incoming.send(b"lit a beacon").expect("open");
    incoming.finish();
    assert_eq!(incoming.drain().len(), 1);
    stay.finish();
    assert_eq!(
        stay.drain().len(),
        2,
        "staying tenant delivers matches from before and after the swap"
    );

    let findings = server.findings();
    assert!(
        !findings.by_rule(rap_serve::Rule::SessionDrained).is_empty(),
        "the outgoing session must drain gracefully (R004)"
    );
    assert!(
        !findings.by_rule(rap_serve::Rule::TenantSwapped).is_empty(),
        "the swap must be recorded (R005)"
    );
    assert_eq!(server.metrics().swaps_completed.get(), 1);
    assert_eq!(server.metrics().swaps_rejected.get(), 0);
    // The outgoing session is closed; its name is free again.
    assert!(
        out.send(b"more").is_err(),
        "outgoing session must be closed"
    );
    drop(server.register("legacy", &out_set).expect("slot was freed"));
}

#[test]
fn rejected_swap_leaves_the_outgoing_session_streaming() {
    let server = server(1, 8);
    // Unbounded span: the drain bound cannot be certified (Q005).
    let out_set = patterns(&["begin.*end"]);
    let out = server.register("cyclic", &out_set).expect("admits");
    let in_set = patterns(&["safe"]);
    match server.swap_tenant(&out, "replacement", &in_set) {
        Err(ServeError::SwapRejected(analysis)) => {
            assert!(!analysis.certified());
            assert!(
                !analysis
                    .report
                    .by_rule(rap_swap::Rule::DrainUnbounded)
                    .is_empty(),
                "unbounded outgoing span must raise Q005"
            );
        }
        Err(other) => panic!("expected a swap rejection, got {other:?}"),
        Ok(_) => panic!("expected a swap rejection, got a certificate"),
    }
    assert_eq!(server.metrics().swaps_rejected.get(), 1);
    assert_eq!(server.metrics().swaps_completed.get(), 0);
    // The refusal left the outgoing session untouched and streaming.
    out.send(b"begin middle end").expect("still open");
    out.finish();
    assert_eq!(out.drain().len(), 1);
}

#[test]
fn mid_stream_disconnect_drains_within_budget_and_frees_the_slot() {
    let server = server(1, 8);
    let set = patterns(&["target"]);
    {
        let session = server.register("flaky", &set).expect("admits");
        session.send(b"a target mid-stream").expect("open");
        // Disconnect: the handle is dropped with bytes still in flight.
    }
    for _ in 0..200 {
        if server.active_sessions() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(server.active_sessions(), 0, "drop must release the slot");
    let findings = server.findings();
    assert!(
        !findings.by_rule(rap_serve::Rule::SessionDrained).is_empty(),
        "mid-stream disconnect must drain gracefully (R004)"
    );
    // The freed composition resources admit a re-registration under the
    // same name, and the recycled session scans normally.
    let revived = server.register("flaky", &set).expect("slot was freed");
    revived.send(b"second target").expect("open");
    revived.finish();
    assert_eq!(revived.drain().len(), 1);
}

#[test]
fn framed_swap_hands_the_connection_to_the_replacement() {
    let mut server = server(1, 8);
    let addr = server.listen("127.0.0.1:0").expect("binds");
    let mut client = Client::connect(addr).expect("connects");
    match client
        .register("legacy", &["oldsig".to_string()])
        .expect("io")
    {
        RegisterReply::Accepted(_) => {}
        RegisterReply::Rejected(body) => panic!("rejected: {body}"),
    }
    let (_, events) = client.send_chunk(b"nothing of note").expect("io");
    assert!(events.is_empty());
    let (_, events) = client.send_chunk(b" an oldsig though").expect("io");
    assert_eq!(events.len(), 1, "outgoing tenant matches pre-swap");

    let (reply, residual) = client.swap("modern", &["newsig".to_string()]).expect("io");
    match reply {
        RegisterReply::Accepted(text) => {
            assert!(text.starts_with("shard="), "{text}");
            assert!(text.contains("drain_cycles="), "{text}");
        }
        RegisterReply::Rejected(body) => panic!("swap rejected: {body}"),
    }
    assert!(
        residual.is_empty(),
        "already-delivered events must not replay at the swap"
    );
    // The connection now speaks for the replacement tenant.
    let (_, events) = client.send_chunk(b"a newsig lands").expect("io");
    assert_eq!(events, vec![MatchEvent { pattern: 0, end: 8 }]);
    let final_events = client.finish().expect("io");
    assert!(final_events.is_empty());
    server.shutdown();
}

#[test]
fn framed_swap_rejection_keeps_the_old_session_usable() {
    let mut server = server(1, 8);
    let addr = server.listen("127.0.0.1:0").expect("binds");
    let mut client = Client::connect(addr).expect("connects");
    match client
        .register("cyclic", &["begin.*end".to_string()])
        .expect("io")
    {
        RegisterReply::Accepted(_) => {}
        RegisterReply::Rejected(body) => panic!("rejected: {body}"),
    }
    let (reply, residual) = client
        .swap("replacement", &["safe".to_string()])
        .expect("io");
    match reply {
        RegisterReply::Rejected(body) => {
            assert!(body.contains("Q005"), "Q findings must travel: {body}")
        }
        RegisterReply::Accepted(text) => panic!("unbounded swap certified: {text}"),
    }
    assert!(residual.is_empty());
    let (_, events) = client.send_chunk(b"begin middle end").expect("io");
    assert_eq!(events.len(), 1, "old session must keep streaming");
    server.shutdown();
}

#[test]
fn framed_tcp_protocol_round_trips() {
    let mut server = server(2, 8);
    let addr = server.listen("127.0.0.1:0").expect("binds");
    let mut client = Client::connect(addr).expect("connects");
    let sources = vec!["ping".to_string(), "pong$".to_string()];
    match client.register("remote", &sources).expect("io") {
        RegisterReply::Accepted(reply) => assert!(reply.starts_with("shard=")),
        RegisterReply::Rejected(body) => panic!("rejected: {body}"),
    }
    let (outcome, events) = client.send_chunk(b"a ping b").expect("io");
    assert_ne!(outcome, SendOutcome::Shed);
    assert_eq!(events, vec![MatchEvent { pattern: 0, end: 6 }]);
    let (_, events) = client.send_chunk(b" pong").expect("io");
    assert!(events.is_empty(), "$-anchored match must wait for FINISH");
    let final_events = client.finish().expect("io");
    assert_eq!(
        final_events,
        vec![MatchEvent {
            pattern: 1,
            end: 13
        }]
    );
    // A second connection with a clashing name is refused at the
    // protocol level once the first is still... the first finished, so
    // the name is free again and re-registration succeeds.
    let mut second = Client::connect(addr).expect("connects");
    match second.register("remote", &sources).expect("io") {
        RegisterReply::Accepted(_) => {}
        RegisterReply::Rejected(body) => panic!("name should be free after drain: {body}"),
    }
    server.shutdown();
}
