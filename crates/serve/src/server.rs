//! The sharded scan service: registration through the pipeline's admit
//! stage, thread-per-shard scan workers, and certified backpressure.
//!
//! Each shard owns one certified [`ComposedPlan`] covering its resident
//! tenants. Registration re-runs admission over the residents plus the
//! newcomer (warm-started from the pipeline's caches and persistent
//! store, so a known pattern set performs zero compile-stage work); a
//! refusal leaves the previous composition untouched. Scan jobs re-run
//! `simulate_streaming` over each session's retained window and demux
//! per-tenant events through [`ComposedPlan::tenant_matches`].

use std::collections::VecDeque;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rap_admit::{AdmissionAnalysis, AdmitOptions, ComposedPlan};
use rap_bound::BoundOptions;
use rap_diag::Location;
use rap_pipeline::{PatternSet, Pipeline, VerifiedPlan};
use rap_sim::{max_match_span, MatchEvent, Simulator};
use rap_telemetry::Telemetry;

use crate::config::ServeConfig;
use crate::metrics::ServeMetrics;
use crate::rules::{Report, Rule};
use crate::session::{Session, SessionInner};

/// A service failure surfaced to the caller.
#[derive(Debug)]
pub enum ServeError {
    /// The admission analyzer refused the proposed composition; the
    /// analysis carries the refusing S-rule findings.
    Rejected(Box<AdmissionAnalysis>),
    /// The hot-swap analyzer refused the proposed replacement; the
    /// analysis carries the refusing Q-rule findings. The outgoing
    /// session is untouched.
    SwapRejected(Box<rap_swap::SwapAnalysis>),
    /// A tenant with this name is already resident.
    DuplicateTenant(String),
    /// The session was already finished or drained.
    SessionClosed,
    /// A pipeline stage failed while building the tenant's plan.
    Pipeline(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected(analysis) => write!(
                f,
                "admission rejected the composition ({} finding(s))",
                analysis.report.len()
            ),
            ServeError::SwapRejected(analysis) => write!(
                f,
                "hot swap rejected ({} finding(s))",
                analysis.report.len()
            ),
            ServeError::DuplicateTenant(name) => {
                write!(f, "tenant {name:?} is already registered")
            }
            ServeError::SessionClosed => write!(f, "session already finished"),
            ServeError::Pipeline(message) => write!(f, "pipeline failure: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One shard's current certified composition and its derived budgets.
pub(crate) struct Tenancy {
    /// The verified composed plan the scan plane executes.
    pub plan: Arc<VerifiedPlan>,
    /// The demux certificate (per-tenant pattern ranges).
    pub composed: ComposedPlan,
    /// Per-session intake budget in bytes: `queue_pages` ping-pong bank
    /// input windows per fabric bank.
    pub input_budget: u64,
    /// Per-session event-queue budget in records: `queue_pages` times
    /// the B002 worst-case output-records occupancy.
    pub events_budget: u64,
    /// Banks in the certified fabric — the geometry hot-swap analysis
    /// must be pinned to (a swap may not grow the scanning fabric).
    pub banks: u32,
}

/// A tenant resident on a shard (control-plane view).
pub(crate) struct ResidentTenant {
    pub name: String,
    pub patterns: PatternSet,
}

/// The control-plane state of one shard, guarded by its mutex.
pub(crate) struct Residency {
    pub tenants: Vec<ResidentTenant>,
    pub tenancy: Option<Arc<Tenancy>>,
}

/// Work items for a shard's scan thread.
pub(crate) enum Job {
    /// Re-scan a session's window (coalesced if already caught up).
    Scan(Arc<SessionInner>),
    /// Final scan, then release the tenant's slot and recompose.
    Finish(Arc<SessionInner>),
    /// Exit the worker loop.
    Shutdown,
}

/// One shard: a job queue plus the residency it scans for.
pub(crate) struct ShardInner {
    pub id: usize,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    pub residency: Mutex<Residency>,
}

impl ShardInner {
    fn new(id: usize) -> ShardInner {
        ShardInner {
            id,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            residency: Mutex::new(Residency {
                tenants: Vec::new(),
                tenancy: None,
            }),
        }
    }

    pub fn enqueue(&self, job: Job) {
        self.queue
            .lock()
            .expect("shard queue poisoned")
            .push_back(job);
        self.ready.notify_one();
    }

    fn next_job(&self) -> Job {
        let mut queue = self.queue.lock().expect("shard queue poisoned");
        loop {
            if let Some(job) = queue.pop_front() {
                return job;
            }
            queue = self.ready.wait(queue).expect("shard queue poisoned");
        }
    }

    /// Snapshot of the current certified tenancy (momentary lock; never
    /// held together with a session lock).
    pub fn tenancy(&self) -> Option<Arc<Tenancy>> {
        self.residency
            .lock()
            .expect("shard residency poisoned")
            .tenancy
            .clone()
    }
}

/// State shared between the server handle, sessions, and workers.
pub(crate) struct Shared {
    pub pipeline: Arc<Pipeline>,
    pub config: ServeConfig,
    pub telemetry: Arc<Telemetry>,
    pub metrics: ServeMetrics,
    pub findings: Mutex<Report>,
    pub shards: Vec<Arc<ShardInner>>,
    pub active: AtomicU64,
    pub stopping: AtomicBool,
    /// Serializes registrations so duplicate-name checks and shard
    /// selection never need to hold two residency locks at once.
    registration: Mutex<()>,
}

impl Shared {
    pub fn finding(&self, rule: Rule, message: String) {
        self.findings.lock().expect("findings lock poisoned").push(
            rule,
            rule.severity(),
            Location::default(),
            message,
        );
    }

    fn simulator(&self) -> Simulator {
        Simulator::new(self.config.machine)
    }

    /// The least-loaded shard by resident tenant count, ties broken
    /// deterministically toward the lowest shard id (so identical
    /// registration sequences always produce identical placements).
    fn shard_for_new_session(&self) -> Arc<ShardInner> {
        Arc::clone(
            self.shards
                .iter()
                .min_by_key(|shard| {
                    let residents = shard
                        .residency
                        .lock()
                        .expect("shard residency poisoned")
                        .tenants
                        .len();
                    (residents, shard.id)
                })
                .expect("server has at least one shard"),
        )
    }

    /// Re-runs admission over a shard's residents. Replaces the tenancy
    /// only on success; a refusal or stage failure leaves the previous
    /// certified composition (and its running sessions) untouched.
    fn recompose(&self, residency: &mut Residency) -> Result<(), ServeError> {
        if residency.tenants.is_empty() {
            residency.tenancy = None;
            return Ok(());
        }
        let sim = self.simulator();
        let tenants: Vec<(&str, &Simulator, &PatternSet)> = residency
            .tenants
            .iter()
            .map(|t| (t.name.as_str(), &sim, &t.patterns))
            .collect();
        let admission = self
            .pipeline
            .admit(&tenants, &AdmitOptions::default())
            .map_err(|e| ServeError::Pipeline(e.to_string()))?;
        let Some(plan) = admission.plan.clone() else {
            return Err(ServeError::Rejected(Box::new(admission.analysis)));
        };
        let composed = admission
            .analysis
            .composed
            .clone()
            .expect("admitted composition carries a certificate");
        // Certified budgets, not ad-hoc constants: the intake side is
        // sized in ping-pong bank input windows (§3.3 geometry), the
        // event side in B002 worst-case output-records occupancy.
        let patterns: Vec<rap_regex::Pattern> = composed
            .tenants
            .iter()
            .flat_map(|summary| {
                residency
                    .tenants
                    .iter()
                    .find(|t| t.name == summary.name)
                    .expect("composed tenant is resident")
                    .patterns
                    .parsed()
                    .iter()
                    .cloned()
            })
            .collect();
        let bounds = rap_bound::analyze_bounds(
            plan.compiled().images(),
            &patterns,
            plan.mapping(),
            &BoundOptions::bounds_only(),
        );
        let window = 2 * u64::from(plan.mapping().config.arch.bank_input_entries);
        let input_budget =
            (self.config.queue_pages * u64::from(admission.analysis.banks) * window).max(1);
        let events_budget = (self.config.queue_pages * bounds.bank.output_fifo_records).max(1);
        residency.tenancy = Some(Arc::new(Tenancy {
            plan,
            composed,
            input_budget,
            events_budget,
            banks: admission.analysis.banks,
        }));
        Ok(())
    }

    /// Whether any shard hosts a tenant under `name` (momentary
    /// single-shard locks; callers must not hold a residency lock).
    fn name_taken(&self, name: &str) -> bool {
        self.shards.iter().any(|shard| {
            shard
                .residency
                .lock()
                .expect("shard residency poisoned")
                .tenants
                .iter()
                .any(|t| t.name == name)
        })
    }

    /// Registers a tenant on the least-loaded shard.
    pub(crate) fn register(
        self: &Arc<Shared>,
        name: &str,
        patterns: &PatternSet,
    ) -> Result<Session, ServeError> {
        let start = Instant::now();
        if patterns.is_empty() {
            self.metrics.sessions_rejected.inc();
            return Err(ServeError::Pipeline("empty pattern set".to_string()));
        }
        let _serial = self
            .registration
            .lock()
            .expect("registration lock poisoned");
        if self.name_taken(name) {
            self.metrics.sessions_rejected.inc();
            return Err(ServeError::DuplicateTenant(name.to_string()));
        }
        let shard = self.shard_for_new_session();
        self.register_on_shard(name, patterns, &shard, start)
    }

    /// Registration core: admits `name` onto `shard` and builds its
    /// session. The caller holds the registration lock and has already
    /// checked for duplicate names.
    fn register_on_shard(
        self: &Arc<Shared>,
        name: &str,
        patterns: &PatternSet,
        shard: &Arc<ShardInner>,
        start: Instant,
    ) -> Result<Session, ServeError> {
        let resident_count = {
            let mut residency = shard.residency.lock().expect("shard residency poisoned");
            residency.tenants.push(ResidentTenant {
                name: name.to_string(),
                patterns: patterns.clone(),
            });
            if let Err(error) = self.recompose(&mut residency) {
                residency.tenants.pop();
                self.metrics.sessions_rejected.inc();
                if let ServeError::Rejected(analysis) = &error {
                    self.finding(
                        Rule::AdmissionRejected,
                        format!(
                            "tenant {name:?} refused on shard {}: {} error finding(s)",
                            shard.id,
                            analysis.report.errors().count()
                        ),
                    );
                }
                return Err(error);
            }
            residency.tenants.len()
        };
        // Solo plan (cache-shared with the admission run above) for the
        // session's anchoring flags and certified match span.
        let sim = self.simulator();
        let solo = self
            .pipeline
            .plan(&sim, patterns, None)
            .map_err(|e| ServeError::Pipeline(e.to_string()))?;
        let images = solo.compiled().images();
        let anchored_end: Vec<bool> = images.iter().map(|img| img.anchored_end()).collect();
        let anchored_start = images.iter().any(|img| img.anchored_start());
        let span = max_match_span(images);
        let inner = Arc::new(SessionInner::new(
            name,
            Arc::clone(shard),
            anchored_end,
            anchored_start,
            span,
        ));
        self.metrics.sessions_admitted.inc();
        let active = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.sessions_active.set(active);
        self.metrics
            .shard_sessions(shard.id)
            .set(resident_count as u64);
        self.metrics
            .register_ns
            .record(start.elapsed().as_nanos() as u64);
        Ok(Session::new(inner, Arc::clone(self)))
    }

    /// Hot-swaps a resident tenant: statically certifies replacing the
    /// `outgoing` session's tenant with `name`/`patterns` on the same
    /// shard (Q001–Q008), then — only if certified — drains the
    /// outgoing session and registers the replacement into the freed
    /// footprint. Every other session keeps scanning throughout; a
    /// refusal leaves the outgoing session untouched and streaming.
    pub(crate) fn swap_tenant(
        self: &Arc<Shared>,
        outgoing: &Session,
        name: &str,
        patterns: &PatternSet,
    ) -> Result<(Session, Box<rap_swap::ReconfigPlan>), ServeError> {
        let start = Instant::now();
        if patterns.is_empty() {
            self.metrics.swaps_rejected.inc();
            return Err(ServeError::Pipeline("empty pattern set".to_string()));
        }
        let _serial = self
            .registration
            .lock()
            .expect("registration lock poisoned");
        if self.name_taken(name) {
            self.metrics.swaps_rejected.inc();
            return Err(ServeError::DuplicateTenant(name.to_string()));
        }
        let shard = Arc::clone(&outgoing.inner().shard);
        let outgoing_name = outgoing.tenant().to_string();
        let Some(tenancy) = shard.tenancy() else {
            self.metrics.swaps_rejected.inc();
            return Err(ServeError::Pipeline(
                "shard has no certified composition".to_string(),
            ));
        };
        // Static safety analysis first — no state is mutated until the
        // certificate is in hand.
        let sim = self.simulator();
        let solo = self
            .pipeline
            .plan(&sim, patterns, None)
            .map_err(|e| ServeError::Pipeline(e.to_string()))?;
        let incoming = rap_swap::Tenant {
            name,
            images: solo.compiled().images(),
            patterns: patterns.parsed(),
            mapping: solo.mapping(),
            match_base: None,
            slot: None,
        };
        let arch = tenancy.plan.mapping().config.arch;
        let analysis = rap_swap::analyze_swap(
            &tenancy.composed,
            &outgoing_name,
            &incoming,
            &arch,
            &rap_swap::SwapOptions {
                banks: Some(tenancy.banks),
                bv_column_budget: None,
            },
        );
        let Some(plan) = analysis.plan.clone() else {
            self.metrics.swaps_rejected.inc();
            self.finding(
                Rule::AdmissionRejected,
                format!(
                    "hot swap {outgoing_name:?} -> {name:?} refused on shard {}: {} error finding(s)",
                    shard.id,
                    analysis.report.errors().count()
                ),
            );
            self.metrics
                .swap_ns
                .record(start.elapsed().as_nanos() as u64);
            return Err(ServeError::SwapRejected(Box::new(analysis)));
        };
        // Spend the certificate: drain ONLY the outgoing session (its
        // final scan covers every accepted byte, bounded by the
        // certified drain window), then attach the replacement to the
        // freed footprint. Staying sessions never stop scanning.
        outgoing.finish();
        let session = self.register_on_shard(name, patterns, &shard, Instant::now())?;
        self.metrics.swaps_completed.inc();
        self.metrics
            .swap_ns
            .record(start.elapsed().as_nanos() as u64);
        self.finding(
            Rule::TenantSwapped,
            format!(
                "tenant {outgoing_name:?} hot-swapped for {name:?} on shard {} \
                 (certified drain bound {} cycle(s), reconfig {} cycle(s))",
                shard.id, plan.drain.cycles, plan.cost.cycles
            ),
        );
        Ok((session, Box::new(plan)))
    }
}

/// The multi-tenant streaming scan service.
///
/// In-process producers use [`Server::register`] and the returned
/// [`Session`]; network producers use [`Server::listen`] and the framed
/// protocol in the `net` module. Dropping the server shuts it down
/// (sessions should be finished first).
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    stop_accepting: Arc<AtomicBool>,
    addr: Option<SocketAddr>,
}

impl Server {
    /// Spawns the shard workers over `pipeline`. The pipeline's attached
    /// telemetry (or a fresh default) becomes the ops surface.
    pub fn new(pipeline: Pipeline, config: ServeConfig) -> Server {
        let telemetry = pipeline
            .telemetry()
            .map_or_else(|| Arc::new(Telemetry::default()), Arc::clone);
        let metrics = ServeMetrics::on(telemetry.registry());
        let shards: Vec<Arc<ShardInner>> = (0..config.shards.max(1))
            .map(|id| Arc::new(ShardInner::new(id)))
            .collect();
        let shared = Arc::new(Shared {
            pipeline: Arc::new(pipeline),
            config,
            telemetry,
            metrics,
            findings: Mutex::new(Report::default()),
            shards,
            active: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            registration: Mutex::new(()),
        });
        let workers = shared
            .shards
            .iter()
            .map(|shard| {
                let shared = Arc::clone(&shared);
                let shard = Arc::clone(shard);
                std::thread::Builder::new()
                    .name(format!("rap-serve-shard-{}", shard.id))
                    .spawn(move || worker(&shared, &shard))
                    .expect("spawn shard worker")
            })
            .collect();
        Server {
            shared,
            workers,
            acceptor: None,
            stop_accepting: Arc::new(AtomicBool::new(false)),
            addr: None,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// The pipeline backing registrations.
    pub fn pipeline(&self) -> &Pipeline {
        &self.shared.pipeline
    }

    /// The telemetry hub carrying the `rap_serve_*` registry cells.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// Handles to the service's registry cells.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Snapshot of the R-rule findings accumulated so far.
    pub fn findings(&self) -> Report {
        self.shared
            .findings
            .lock()
            .expect("findings lock poisoned")
            .clone()
    }

    /// Sessions currently registered.
    pub fn active_sessions(&self) -> u64 {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Renders the full registry in Prometheus exposition format.
    pub fn prometheus(&self) -> String {
        self.shared.telemetry.prometheus()
    }

    /// Registers a tenant and returns its streaming session.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when admission cannot certify the
    /// composition, [`ServeError::DuplicateTenant`] on a name clash,
    /// [`ServeError::Pipeline`] when a stage fails.
    pub fn register(&self, name: &str, patterns: &PatternSet) -> Result<Session, ServeError> {
        self.shared.register(name, patterns)
    }

    /// Hot-swaps a resident tenant: statically certifies replacing the
    /// `outgoing` session's tenant with the `name`/`patterns`
    /// replacement on the same shard, and only then drains the outgoing
    /// session (within its certified drain bound) and registers the
    /// replacement into the freed footprint. Every other session keeps
    /// scanning throughout. Returns the replacement's session and the
    /// certified [`rap_swap::ReconfigPlan`].
    ///
    /// # Errors
    ///
    /// [`ServeError::SwapRejected`] with the Q-rule findings when the
    /// swap cannot be certified (the outgoing session is untouched),
    /// [`ServeError::DuplicateTenant`] on a name clash,
    /// [`ServeError::Pipeline`] when a stage fails.
    pub fn swap_tenant(
        &self,
        outgoing: &Session,
        name: &str,
        patterns: &PatternSet,
    ) -> Result<(Session, Box<rap_swap::ReconfigPlan>), ServeError> {
        self.shared.swap_tenant(outgoing, name, patterns)
    }

    /// Parses `sources` and registers the tenant.
    ///
    /// # Errors
    ///
    /// As [`Server::register`], plus [`ServeError::Pipeline`] on parse
    /// failure.
    pub fn register_sources(&self, name: &str, sources: &[String]) -> Result<Session, ServeError> {
        let patterns =
            PatternSet::parse(sources).map_err(|e| ServeError::Pipeline(e.to_string()))?;
        self.register(name, &patterns)
    }

    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts accepting framed
    /// protocol connections; returns the bound address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    pub fn listen(&mut self, addr: &str) -> std::io::Result<SocketAddr> {
        let (handle, local) = crate::net::spawn_acceptor(
            Arc::clone(&self.shared),
            Arc::clone(&self.stop_accepting),
            addr,
        )?;
        self.acceptor = Some(handle);
        self.addr = Some(local);
        Ok(local)
    }

    /// The bound listen address, when [`Server::listen`] was called.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Stops accepting, drains the shard queues, and joins every
    /// worker. Called automatically on drop; idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stopping.store(true, Ordering::Relaxed);
        self.stop_accepting.store(true, Ordering::Relaxed);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for shard in &self.shared.shards {
            shard.enqueue(Job::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One shard's scan loop.
fn worker(shared: &Arc<Shared>, shard: &Arc<ShardInner>) {
    loop {
        match shard.next_job() {
            Job::Shutdown => break,
            Job::Scan(session) => scan(shared, shard, &session, false),
            Job::Finish(session) => {
                scan(shared, shard, &session, true);
                release(shared, shard, &session);
            }
        }
    }
    // Unblock any session still waiting after shutdown.
    let mut queue = shard.queue.lock().expect("shard queue poisoned");
    while let Some(job) = queue.pop_front() {
        if let Job::Scan(session) | Job::Finish(session) = job {
            let mut st = session.lock();
            st.drained = true;
            session.cv.notify_all();
        }
    }
}

struct Snapshot {
    window: Vec<u8>,
    trim: usize,
    global_len: usize,
    scanned_len: usize,
    watermark: usize,
}

/// Re-scans a session's retained window through the shard's composed
/// plan and delivers the fresh demuxed events. `fin` runs the final
/// scan, which additionally delivers `$`-anchored matches.
fn scan(shared: &Arc<Shared>, shard: &Arc<ShardInner>, session: &Arc<SessionInner>, fin: bool) {
    let snapshot = {
        let st = session.lock();
        if st.drained {
            return;
        }
        let caught_up = st.scanned_len == st.global_len;
        // Coalesce: a queued scan whose bytes were already covered by a
        // later batch is a no-op. The final scan still runs when any
        // pattern is `$`-anchored (those matches only surface at EOS).
        let has_anchored_end = session.anchored_end.iter().any(|&a| a);
        if caught_up && !(fin && has_anchored_end && st.global_len > 0) {
            return;
        }
        Snapshot {
            window: st.history.clone(),
            trim: st.trim,
            global_len: st.global_len,
            scanned_len: st.scanned_len,
            watermark: st.watermark,
        }
    };
    let Some(tenancy) = shard.tenancy() else {
        // No certified composition (pathological mid-teardown state):
        // mark the bytes covered so waiters make progress.
        let mut st = session.lock();
        st.scanned_len = st.global_len;
        session.cv.notify_all();
        return;
    };
    let Some(index) = tenancy
        .composed
        .tenants
        .iter()
        .position(|t| t.name == session.name)
    else {
        let mut st = session.lock();
        st.scanned_len = st.global_len;
        session.cv.notify_all();
        return;
    };
    let start = Instant::now();
    let (result, stats) = tenancy.plan.simulate_streaming(&snapshot.window);
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    // Demux, globalize, and keep only events past the delivery
    // watermark. `$`-anchored matches survive the simulator only at
    // window end; they are deferred to the final scan, where the window
    // end is the true end of stream.
    let mine = tenancy.composed.tenant_matches(index, &result.matches);
    let fresh: Vec<MatchEvent> = mine
        .into_iter()
        .filter_map(|m| {
            let end = m.end + snapshot.trim;
            let anchored = session.anchored_end[m.pattern];
            let deliver = if fin {
                end > snapshot.watermark || anchored
            } else {
                end > snapshot.watermark && !anchored
            };
            deliver.then_some(MatchEvent {
                pattern: m.pattern,
                end,
            })
        })
        .collect();
    let bytes_delta = (snapshot.global_len - snapshot.scanned_len) as u64;
    let over_events_budget = {
        let mut st = session.lock();
        st.events.extend(fresh.iter().copied());
        st.watermark = snapshot.global_len;
        st.scanned_len = st.scanned_len.max(snapshot.global_len);
        st.stats.bytes_scanned += bytes_delta;
        st.stats.scans += 1;
        st.stats.matches_delivered += fresh.len() as u64;
        st.stats.output_interrupts += stats.output_interrupts;
        // Trim the retained window to the certified match span. Only
        // sound when the span is finite and no pattern is `^`-anchored
        // (anchored matches depend on absolute position, not content).
        if !session.anchored_start {
            if let Some(span) = session.span {
                let keep_from = snapshot.global_len.saturating_sub(span);
                let cut = keep_from.saturating_sub(st.trim);
                if cut > 0 {
                    st.history.drain(..cut);
                    st.trim += cut;
                }
            }
        }
        let over = st.events.len() as u64 > tenancy.events_budget;
        let first = over && !st.flagged.backpressure;
        if over {
            st.stats.backpressure_events += 1;
            st.flagged.backpressure = true;
        }
        session.cv.notify_all();
        first
    };
    if over_events_budget {
        shared.metrics.backpressure_events.inc();
        shared.finding(
            Rule::SessionBackpressure,
            format!(
                "tenant {:?} exceeded its certified event-queue budget ({} records)",
                session.name, tenancy.events_budget
            ),
        );
    }
    shared.metrics.bytes_scanned.add(bytes_delta);
    shared.metrics.shard_bytes(shard.id).add(bytes_delta);
    shared.metrics.chunks_scanned.inc();
    shared.metrics.matches_delivered.add(fresh.len() as u64);
    shared
        .metrics
        .tenant_matches(&session.name)
        .add(fresh.len() as u64);
    shared.metrics.scan_ns.record(elapsed_ns);
    rap_sim::record_bank_stats(&shared.telemetry, shared.config.machine, &stats);
}

/// Releases a drained session's slot and recomposes the remainder.
/// The slot is released *before* `drained` is signalled, so a producer
/// unblocked by [`Session::finish`] can immediately re-register the name.
fn release(shared: &Arc<Shared>, shard: &Arc<ShardInner>, session: &Arc<SessionInner>) {
    if session.lock().drained {
        return;
    }
    let remaining = {
        let mut residency = shard.residency.lock().expect("shard residency poisoned");
        residency.tenants.retain(|t| t.name != session.name);
        if let Err(error) = shared.recompose(&mut residency) {
            // Keep the departing composition: the remaining sessions'
            // demux ranges stay valid, the departed arrays just idle.
            shared.finding(
                Rule::AdmissionRejected,
                format!(
                    "recomposition after tenant {:?} drained failed on shard {}: {error}",
                    session.name, shard.id
                ),
            );
        }
        residency.tenants.len()
    };
    let active = shared.active.fetch_sub(1, Ordering::Relaxed) - 1;
    shared.metrics.sessions_active.set(active);
    shared
        .metrics
        .shard_sessions(shard.id)
        .set(remaining as u64);
    {
        let mut st = session.lock();
        st.drained = true;
        session.cv.notify_all();
    }
    shared.finding(
        Rule::SessionDrained,
        format!(
            "tenant {:?} drained gracefully from shard {}",
            session.name, shard.id
        ),
    );
}
