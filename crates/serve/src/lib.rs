//! # rap-serve — multi-tenant streaming scan service
//!
//! The paper's fabric (§3.3) is built for always-on streaming
//! inspection: ping-pong bank input pages feed per-array FIFOs, and
//! match reports ride output FIFOs back to the host over interrupts.
//! This crate puts a service on top of the reproduction's modeled
//! fabric: a sharded, thread-per-shard scan plane plus a software
//! control plane that admits, schedules, and demultiplexes many
//! concurrent tenant streams.
//!
//! The design follows the software–hardware split end to end:
//!
//! - **Registration** runs the full pipeline (compile → analyze → map →
//!   verify → bound → admit), warm-started from the in-memory caches
//!   and the persistent tiered store — a known pattern set performs
//!   zero compile-stage work.
//! - **Placement** lands each tenant on the least-loaded shard; the
//!   shard's residents share one certified [`rap_admit::ComposedPlan`],
//!   re-admitted on every join and leave.
//! - **Streaming** re-scans each session's retained window through
//!   `simulate_streaming` and demuxes per-tenant events through the
//!   composition certificate's pattern ranges — never by inspecting
//!   another tenant's traffic.
//! - **Backpressure** budgets come from certified quantities (the bank
//!   ping-pong input window and `rap-bound`'s B002 worst-case output
//!   occupancy), scaled by [`ServeConfig::queue_pages`] — not from
//!   ad-hoc constants.
//! - **Telemetry** is the ops surface: `rap_serve_*` counters, gauges,
//!   and latency histograms land in the shared registry and export
//!   through the existing Prometheus/JSONL paths.
//!
//! Producers are either in-process ([`Server::register`] →
//! [`Session`]) or remote over a framed `std::net` TCP protocol
//! ([`Server::listen`] + [`Client`]); no async runtime is involved.
//!
//! ```
//! use rap_pipeline::{BenchConfig, PatternSet, Pipeline};
//! use rap_serve::{ServeConfig, Server};
//!
//! let server = Server::new(Pipeline::new(BenchConfig::default()), ServeConfig::default());
//! let patterns = PatternSet::parse(&["abc".to_string()]).unwrap();
//! let session = server.register("tenant-a", &patterns).unwrap();
//! session.send(b"xxabcxx").unwrap();
//! session.finish();
//! let events = session.drain();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].end, 5);
//! ```

mod config;
mod metrics;
mod net;
mod rules;
mod server;
mod session;

pub use config::ServeConfig;
pub use metrics::ServeMetrics;
pub use net::{
    Client, RegisterReply, OP_ACCEPTED, OP_ACK, OP_BYE, OP_CHUNK, OP_EVENTS, OP_FINISH,
    OP_REGISTER, OP_REJECTED, OP_SWAP,
};
pub use rules::{Report, Rule};
pub use server::{ServeError, Server};
pub use session::{SendOutcome, Session, SessionStats};
