//! The framed TCP protocol: one connection is one tenant session.
//!
//! Frame layout: a 1-byte opcode followed by a 4-byte big-endian
//! payload length and the payload. Client→server opcodes: `REGISTER`
//! (tenant name on the first line, one pattern per following line),
//! `CHUNK` (raw input bytes), `FINISH`. Server→client: `ACCEPTED`
//! (`shard=<n>`), `REJECTED` (findings JSON), `ACK` (one status byte:
//! 0 accepted, 1 backpressured, 2 shed) followed by an `EVENTS` frame
//! (12-byte records: u32 pattern, u64 global end offset), and `BYE`
//! after the final `EVENTS`.
//!
//! Chunk handling is synchronous: the server scans to idle before
//! acknowledging, so one connection observes the same semantics as a
//! solo in-process [`Session`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rap_sim::MatchEvent;

use crate::server::{ServeError, Shared};
use crate::session::{SendOutcome, Session};

/// Client→server: register a tenant (name line + pattern lines).
pub const OP_REGISTER: u8 = 0x01;
/// Client→server: stream one input chunk.
pub const OP_CHUNK: u8 = 0x02;
/// Client→server: end of stream; run the final scan.
pub const OP_FINISH: u8 = 0x03;
/// Client→server: hot-swap this connection's tenant for a replacement
/// (same payload shape as `REGISTER`: name line + pattern lines). On
/// certification the server drains the outgoing tenant, replies with
/// its residual `EVENTS` and an `ACCEPTED`
/// (`shard=<n> drain_cycles=<d>`), and the connection continues as the
/// replacement's session. A refusal replies `REJECTED` (Q-rule
/// findings JSON) and leaves the outgoing session streaming.
pub const OP_SWAP: u8 = 0x04;
/// Server→client: registration accepted (`shard=<n>`).
pub const OP_ACCEPTED: u8 = 0x81;
/// Server→client: registration refused (findings JSON payload).
pub const OP_REJECTED: u8 = 0x82;
/// Server→client: demuxed match events (12-byte records).
pub const OP_EVENTS: u8 = 0x83;
/// Server→client: chunk verdict (one status byte).
pub const OP_ACK: u8 = 0x84;
/// Server→client: drain complete; the connection closes next.
pub const OP_BYE: u8 = 0x85;

/// Frame size cap: rejects runaway length prefixes before allocating.
const MAX_FRAME: usize = 64 << 20;

pub(crate) fn write_frame(w: &mut impl Write, op: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&[op])?;
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

pub(crate) fn read_frame(r: &mut impl Read) -> std::io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame over size cap",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((header[0], payload))
}

pub(crate) fn encode_events(events: &[MatchEvent]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(events.len() * 12);
    for event in events {
        payload.extend_from_slice(&(event.pattern as u32).to_be_bytes());
        payload.extend_from_slice(&(event.end as u64).to_be_bytes());
    }
    payload
}

pub(crate) fn decode_events(payload: &[u8]) -> Vec<MatchEvent> {
    payload
        .chunks_exact(12)
        .map(|record| MatchEvent {
            pattern: u32::from_be_bytes([record[0], record[1], record[2], record[3]]) as usize,
            end: u64::from_be_bytes([
                record[4], record[5], record[6], record[7], record[8], record[9], record[10],
                record[11],
            ]) as usize,
        })
        .collect()
}

fn status_byte(outcome: SendOutcome) -> u8 {
    match outcome {
        SendOutcome::Accepted => 0,
        SendOutcome::Backpressured => 1,
        SendOutcome::Shed => 2,
    }
}

/// Serves one connection; the session (if registered) drains on return.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let mut session: Option<Session> = None;
    while let Ok((op, payload)) = read_frame(&mut stream) {
        match op {
            OP_REGISTER if session.is_none() => {
                let text = String::from_utf8_lossy(&payload);
                let mut lines = text.lines();
                let name = lines.next().unwrap_or_default().trim().to_string();
                let sources: Vec<String> = lines
                    .filter(|l| !l.trim().is_empty())
                    .map(str::to_string)
                    .collect();
                let registered = rap_pipeline::PatternSet::parse(&sources)
                    .map_err(|e| ServeError::Pipeline(e.to_string()))
                    .and_then(|patterns| shared.register(&name, &patterns));
                match registered {
                    Ok(s) => {
                        let reply = format!("shard={}", s.shard());
                        session = Some(s);
                        if write_frame(&mut stream, OP_ACCEPTED, reply.as_bytes()).is_err() {
                            break;
                        }
                    }
                    Err(ServeError::Rejected(analysis)) => {
                        let _ = write_frame(
                            &mut stream,
                            OP_REJECTED,
                            analysis.report.to_json().as_bytes(),
                        );
                        break;
                    }
                    Err(error) => {
                        let body = format!("{{\"error\":{:?}}}", error.to_string());
                        let _ = write_frame(&mut stream, OP_REJECTED, body.as_bytes());
                        break;
                    }
                }
            }
            OP_CHUNK => {
                let Some(s) = &session else { break };
                let Ok(outcome) = s.send(&payload) else {
                    break;
                };
                s.wait_idle();
                let events = s.drain();
                if write_frame(&mut stream, OP_ACK, &[status_byte(outcome)]).is_err()
                    || write_frame(&mut stream, OP_EVENTS, &encode_events(&events)).is_err()
                {
                    break;
                }
            }
            OP_SWAP => {
                let Some(s) = session.take() else { break };
                let text = String::from_utf8_lossy(&payload);
                let mut lines = text.lines();
                let name = lines.next().unwrap_or_default().trim().to_string();
                let sources: Vec<String> = lines
                    .filter(|l| !l.trim().is_empty())
                    .map(str::to_string)
                    .collect();
                let swapped = rap_pipeline::PatternSet::parse(&sources)
                    .map_err(|e| ServeError::Pipeline(e.to_string()))
                    .and_then(|patterns| shared.swap_tenant(&s, &name, &patterns));
                match swapped {
                    Ok((replacement, plan)) => {
                        // The outgoing tenant drained inside swap_tenant;
                        // ship its residual events before the handover.
                        let events = s.drain();
                        drop(s);
                        let reply = format!(
                            "shard={} drain_cycles={}",
                            replacement.shard(),
                            plan.drain.cycles
                        );
                        session = Some(replacement);
                        if write_frame(&mut stream, OP_EVENTS, &encode_events(&events)).is_err()
                            || write_frame(&mut stream, OP_ACCEPTED, reply.as_bytes()).is_err()
                        {
                            break;
                        }
                    }
                    Err(error) => {
                        // Refusals leave the outgoing session streaming.
                        session = Some(s);
                        let body = match &error {
                            ServeError::SwapRejected(analysis) => analysis.report.to_json(),
                            other => format!("{{\"error\":{:?}}}", other.to_string()),
                        };
                        if write_frame(&mut stream, OP_REJECTED, body.as_bytes()).is_err() {
                            break;
                        }
                    }
                }
            }
            OP_FINISH => {
                if let Some(s) = &session {
                    s.finish();
                    let events = s.drain();
                    let _ = write_frame(&mut stream, OP_EVENTS, &encode_events(&events));
                    let _ = write_frame(&mut stream, OP_BYE, &[]);
                }
                break;
            }
            _ => break,
        }
    }
    // Dropping the session (if any) enqueues the graceful drain.
    drop(session);
}

/// Binds `addr` and spawns the nonblocking accept loop.
pub(crate) fn spawn_acceptor(
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    addr: &str,
) -> std::io::Result<(JoinHandle<()>, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("rap-serve-accept".to_string())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let shared = Arc::clone(&shared);
                        // Detached: a handler blocked in read_frame on a
                        // still-open idle client must not wedge shutdown.
                        // Its session (if any) drains via the Drop path.
                        std::thread::spawn(move || {
                            handle_connection(&shared, stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        })?;
    Ok((handle, local))
}

/// A minimal blocking client for the framed protocol, used by the CLI
/// `--connect` mode and the integration tests.
pub struct Client {
    stream: TcpStream,
}

/// The server's answer to a registration frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegisterReply {
    /// Admitted; the payload names the hosting shard.
    Accepted(String),
    /// Refused; the payload is the findings JSON (or an error object).
    Rejected(String),
}

impl Client {
    /// Connects to a serving address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Registers a tenant.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a protocol-level refusal is the `Ok`
    /// [`RegisterReply::Rejected`] variant.
    pub fn register(&mut self, name: &str, patterns: &[String]) -> std::io::Result<RegisterReply> {
        let mut body = String::new();
        body.push_str(name);
        for pattern in patterns {
            body.push('\n');
            body.push_str(pattern);
        }
        write_frame(&mut self.stream, OP_REGISTER, body.as_bytes())?;
        let (op, payload) = read_frame(&mut self.stream)?;
        let text = String::from_utf8_lossy(&payload).to_string();
        Ok(match op {
            OP_ACCEPTED => RegisterReply::Accepted(text),
            _ => RegisterReply::Rejected(text),
        })
    }

    /// Streams one chunk; returns the budget verdict and any match
    /// events delivered by the synchronous scan.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_chunk(&mut self, chunk: &[u8]) -> std::io::Result<(SendOutcome, Vec<MatchEvent>)> {
        write_frame(&mut self.stream, OP_CHUNK, chunk)?;
        let (op, status) = read_frame(&mut self.stream)?;
        if op != OP_ACK || status.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "expected ACK",
            ));
        }
        let outcome = match status[0] {
            0 => SendOutcome::Accepted,
            1 => SendOutcome::Backpressured,
            _ => SendOutcome::Shed,
        };
        let (op, payload) = read_frame(&mut self.stream)?;
        if op != OP_EVENTS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "expected EVENTS",
            ));
        }
        Ok((outcome, decode_events(&payload)))
    }

    /// Hot-swaps this connection's tenant for `name`/`patterns`.
    /// Returns the outgoing tenant's residual match events and the
    /// server's verdict: [`RegisterReply::Accepted`] carries
    /// `shard=<n> drain_cycles=<d>` and the connection continues as the
    /// replacement's session; [`RegisterReply::Rejected`] carries the
    /// Q-rule findings JSON and the outgoing session keeps streaming.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn swap(
        &mut self,
        name: &str,
        patterns: &[String],
    ) -> std::io::Result<(RegisterReply, Vec<MatchEvent>)> {
        let mut body = String::new();
        body.push_str(name);
        for pattern in patterns {
            body.push('\n');
            body.push_str(pattern);
        }
        write_frame(&mut self.stream, OP_SWAP, body.as_bytes())?;
        let (op, payload) = read_frame(&mut self.stream)?;
        if op == OP_REJECTED {
            let text = String::from_utf8_lossy(&payload).to_string();
            return Ok((RegisterReply::Rejected(text), Vec::new()));
        }
        if op != OP_EVENTS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "expected EVENTS or REJECTED",
            ));
        }
        let events = decode_events(&payload);
        let (op, payload) = read_frame(&mut self.stream)?;
        let text = String::from_utf8_lossy(&payload).to_string();
        Ok(match op {
            OP_ACCEPTED => (RegisterReply::Accepted(text), events),
            _ => (RegisterReply::Rejected(text), events),
        })
    }

    /// Ends the stream; returns the final (including `$`-anchored)
    /// match events.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn finish(&mut self) -> std::io::Result<Vec<MatchEvent>> {
        write_frame(&mut self.stream, OP_FINISH, &[])?;
        let (op, payload) = read_frame(&mut self.stream)?;
        if op != OP_EVENTS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "expected EVENTS",
            ));
        }
        let events = decode_events(&payload);
        let _ = read_frame(&mut self.stream); // BYE
        Ok(events)
    }
}
