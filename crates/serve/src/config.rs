//! Service configuration and the `RAP_SERVE_*` environment knobs.

use rap_circuit::Machine;

/// Tuning knobs for a [`crate::Server`].
///
/// Budgets are expressed in *pages* of the certified per-composition
/// quantities (the bank ping-pong input window and the B002 worst-case
/// output-records occupancy), never in ad-hoc byte counts: resizing the
/// modeled hardware rescales every threshold automatically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker shards. Each shard owns one certified composition and one
    /// scan thread; registrations land on the least-loaded shard.
    pub shards: usize,
    /// Multiplier applied to the certified per-composition queue
    /// quantities to size the per-session intake and event budgets.
    pub queue_pages: u64,
    /// The machine every tenant's plan targets.
    pub machine: Machine,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: 2,
            queue_pages: 8,
            machine: Machine::Rap,
        }
    }
}

impl ServeConfig {
    /// Reads `RAP_SERVE_SHARDS` and `RAP_SERVE_QUEUE_PAGES` over the
    /// defaults. Unset or unparsable values keep the default.
    pub fn from_env() -> ServeConfig {
        let defaults = ServeConfig::default();
        ServeConfig {
            shards: env_num("RAP_SERVE_SHARDS", defaults.shards as u64).max(1) as usize,
            queue_pages: env_num("RAP_SERVE_QUEUE_PAGES", defaults.queue_pages).max(1),
            machine: defaults.machine,
        }
    }
}

fn env_num(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
