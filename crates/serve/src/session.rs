//! In-process tenant sessions: bounded intake, match-event delivery,
//! and graceful drain.
//!
//! A [`Session`] is the producer side of one tenant stream. Chunks are
//! appended to a retained history window under the session lock; the
//! shard worker re-scans the window through the composed plan and
//! delivers the demuxed, globalized match events back into the
//! session's event queue. Both directions are budgeted by quantities
//! certified at admission time (see `Tenancy` in the server module).

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use rap_sim::MatchEvent;

use crate::rules::Rule;
use crate::server::{Job, ServeError, ShardInner, Shared};

/// The producer-visible outcome of one [`Session::send`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// The chunk was queued within budget.
    Accepted,
    /// The chunk was queued, but the session crossed half its certified
    /// intake budget: the producer should slow down.
    Backpressured,
    /// The chunk was rejected — accepting it would exceed the certified
    /// intake budget. Nothing was queued; retry after the shard catches
    /// up (e.g. after [`Session::wait_idle`]).
    Shed,
}

/// Per-session counters, snapshot by [`Session::stats`].
#[derive(Clone, Debug, Default)]
pub struct SessionStats {
    /// Chunks accepted into the stream.
    pub chunks_sent: u64,
    /// Chunks rejected over the intake budget.
    pub chunks_shed: u64,
    /// Backpressure signals raised for this session.
    pub backpressure_events: u64,
    /// Bytes accepted into the stream.
    pub bytes_sent: u64,
    /// Bytes the scan plane has consumed so far.
    pub bytes_scanned: u64,
    /// Scan batches executed on this session's behalf.
    pub scans: u64,
    /// Match events delivered to this session's queue.
    pub matches_delivered: u64,
    /// Host output interrupts raised by the bank model while scanning
    /// this session's batches.
    pub output_interrupts: u64,
}

/// Mutable stream state, guarded by the session mutex.
pub(crate) struct StreamState {
    /// Retained input window; global offset of `history[0]` is `trim`.
    pub history: Vec<u8>,
    /// Global offset of the first retained byte.
    pub trim: usize,
    /// Total bytes accepted (global stream length).
    pub global_len: usize,
    /// Bytes covered by completed scans.
    pub scanned_len: usize,
    /// Delivery watermark: events ending at or before this global
    /// offset have already been delivered.
    pub watermark: usize,
    /// Delivered-but-undrained match events (global `end` offsets).
    pub events: VecDeque<MatchEvent>,
    /// Session counters.
    pub stats: SessionStats,
    /// The producer called `finish` (or dropped the handle).
    pub finished: bool,
    /// The worker completed the final scan and released the slot.
    pub drained: bool,
    /// Which once-per-session findings were already recorded.
    pub flagged: Flagged,
}

/// Once-per-session finding latches (each rule reports at most once).
#[derive(Default)]
pub(crate) struct Flagged {
    /// An R002 finding was already recorded for this session.
    pub backpressure: bool,
    /// An R003 finding was already recorded for this session.
    pub shed: bool,
}

impl StreamState {
    fn new() -> StreamState {
        StreamState {
            history: Vec::new(),
            trim: 0,
            global_len: 0,
            scanned_len: 0,
            watermark: 0,
            events: VecDeque::new(),
            stats: SessionStats::default(),
            finished: false,
            drained: false,
            flagged: Flagged::default(),
        }
    }

    /// Bytes accepted but not yet scanned.
    pub fn pending(&self) -> usize {
        self.global_len - self.scanned_len
    }
}

/// Shared session core; the worker holds clones via scan jobs.
pub(crate) struct SessionInner {
    /// Tenant name (unique on the shard).
    pub name: String,
    /// The hosting shard.
    pub shard: Arc<ShardInner>,
    /// Per-pattern `$`-anchoring: such matches are only valid at end of
    /// stream, so delivery defers them to the final scan.
    pub anchored_end: Vec<bool>,
    /// Whether any pattern is `^`-anchored (disables window trimming —
    /// anchored matches are position-dependent, not content-determined).
    pub anchored_start: bool,
    /// Certified match-span bound; `None` (cyclic automaton) disables
    /// window trimming.
    pub span: Option<usize>,
    /// Stream state.
    pub state: Mutex<StreamState>,
    /// Signalled on scan completion and drain.
    pub cv: Condvar,
}

impl SessionInner {
    pub fn new(
        name: &str,
        shard: Arc<ShardInner>,
        anchored_end: Vec<bool>,
        anchored_start: bool,
        span: Option<usize>,
    ) -> SessionInner {
        SessionInner {
            name: name.to_string(),
            shard,
            anchored_end,
            anchored_start,
            span,
            state: Mutex::new(StreamState::new()),
            cv: Condvar::new(),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, StreamState> {
        self.state.lock().expect("session lock poisoned")
    }
}

/// A registered tenant's streaming handle.
///
/// Dropping the handle without calling [`Session::finish`] still drains
/// gracefully: a finish job is enqueued and the worker scans every
/// accepted byte before releasing the tenant's slot.
pub struct Session {
    inner: Arc<SessionInner>,
    shared: Arc<Shared>,
}

impl Session {
    pub(crate) fn new(inner: Arc<SessionInner>, shared: Arc<Shared>) -> Session {
        Session { inner, shared }
    }

    /// The shared session core (for the server's swap path).
    pub(crate) fn inner(&self) -> &Arc<SessionInner> {
        &self.inner
    }

    /// The tenant name this session registered under.
    pub fn tenant(&self) -> &str {
        &self.inner.name
    }

    /// The shard hosting this session.
    pub fn shard(&self) -> usize {
        self.inner.shard.id
    }

    /// Bytes accepted but not yet scanned.
    pub fn pending_bytes(&self) -> usize {
        self.inner.lock().pending()
    }

    /// Streams one chunk. Returns the budget verdict; `Shed` means the
    /// chunk was **not** queued and should be retried after the shard
    /// catches up.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionClosed`] once `finish` was called or the
    /// handle's drain began.
    pub fn send(&self, chunk: &[u8]) -> Result<SendOutcome, ServeError> {
        if chunk.is_empty() {
            return Ok(SendOutcome::Accepted);
        }
        let budget = self
            .inner
            .shard
            .tenancy()
            .map_or(0, |t| t.input_budget as usize);
        let (outcome, first_backpressure, first_shed) = {
            let mut st = self.inner.lock();
            if st.finished || st.drained {
                return Err(ServeError::SessionClosed);
            }
            if st.pending() + chunk.len() > budget {
                st.stats.chunks_shed += 1;
                st.stats.backpressure_events += 1;
                let first_bp = !st.flagged.backpressure;
                let first_shed = !st.flagged.shed;
                st.flagged.backpressure = true;
                st.flagged.shed = true;
                (SendOutcome::Shed, first_bp, first_shed)
            } else {
                st.history.extend_from_slice(chunk);
                st.global_len += chunk.len();
                st.stats.chunks_sent += 1;
                st.stats.bytes_sent += chunk.len() as u64;
                if st.pending() * 2 > budget {
                    st.stats.backpressure_events += 1;
                    let first_bp = !st.flagged.backpressure;
                    st.flagged.backpressure = true;
                    (SendOutcome::Backpressured, first_bp, false)
                } else {
                    (SendOutcome::Accepted, false, false)
                }
            }
        };
        // Findings and global counters happen outside the session lock.
        // A shed always records its R002 first, so "shed without a
        // backpressure finding" is impossible by construction.
        if first_backpressure {
            self.shared.finding(
                Rule::SessionBackpressure,
                format!(
                    "tenant {:?} crossed its certified intake budget band ({budget} bytes)",
                    self.inner.name
                ),
            );
        }
        if first_shed {
            self.shared.finding(
                Rule::ChunkShed,
                format!(
                    "tenant {:?} shed a {}-byte chunk over its certified intake budget ({budget} bytes)",
                    self.inner.name,
                    chunk.len()
                ),
            );
        }
        match outcome {
            SendOutcome::Shed => {
                self.shared.metrics.chunks_shed.inc();
                self.shared.metrics.backpressure_events.inc();
            }
            SendOutcome::Backpressured => {
                self.shared.metrics.backpressure_events.inc();
                self.inner.shard.enqueue(Job::Scan(Arc::clone(&self.inner)));
            }
            SendOutcome::Accepted => {
                self.inner.shard.enqueue(Job::Scan(Arc::clone(&self.inner)));
            }
        }
        Ok(outcome)
    }

    /// Removes and returns every delivered-but-undrained match event.
    /// Events carry **global** stream offsets in [`MatchEvent::end`]
    /// and the tenant's own pattern indices.
    pub fn drain(&self) -> Vec<MatchEvent> {
        self.inner.lock().events.drain(..).collect()
    }

    /// Blocks until every accepted byte has been scanned (or the
    /// session drained, or the server began shutting down).
    pub fn wait_idle(&self) {
        let mut st = self.inner.lock();
        while st.scanned_len < st.global_len && !st.drained {
            if self.shared.stopping.load(Ordering::Relaxed) {
                return;
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .expect("session lock poisoned");
            st = guard;
        }
    }

    /// Ends the stream: runs the final scan (delivering `$`-anchored
    /// matches), releases the tenant's slot, and blocks until the drain
    /// completes. Idempotent.
    pub fn finish(&self) {
        let enqueue = {
            let mut st = self.inner.lock();
            if st.drained {
                return;
            }
            let first = !st.finished;
            st.finished = true;
            first
        };
        if enqueue {
            self.inner
                .shard
                .enqueue(Job::Finish(Arc::clone(&self.inner)));
        }
        let mut st = self.inner.lock();
        while !st.drained {
            if self.shared.stopping.load(Ordering::Relaxed) {
                st.drained = true;
                self.inner.cv.notify_all();
                break;
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .expect("session lock poisoned");
            st = guard;
        }
    }

    /// Snapshot of this session's counters.
    pub fn stats(&self) -> SessionStats {
        self.inner.lock().stats.clone()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Graceful drain on disconnect: enqueue (never block) the final
        // scan + slot release if `finish` was not already called.
        let enqueue = {
            let mut st = self.inner.lock();
            let first = !st.finished && !st.drained;
            st.finished = true;
            first
        };
        if enqueue {
            self.inner
                .shard
                .enqueue(Job::Finish(Arc::clone(&self.inner)));
        }
    }
}
