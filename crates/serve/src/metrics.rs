//! The `rap_serve_*` ops surface.
//!
//! Every cell lives in the server's [`Registry`], so the existing
//! Prometheus and JSONL exporters pick the service up without changes.
//! Global (unlabeled) cells are the source of truth for totals; the
//! per-shard and per-tenant labeled series exist for operators slicing
//! the same quantities.

use rap_telemetry::{Counter, Gauge, Histogram, Registry};

/// Handles to the service's registry cells.
///
/// Cells are shared interior-mutable handles (`Arc` inside), so cloning
/// this struct clones cheap references to the same counters.
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// `rap_serve_sessions_active`: sessions currently registered.
    pub sessions_active: Gauge,
    /// `rap_serve_sessions_total{verdict="admitted"}`.
    pub sessions_admitted: Counter,
    /// `rap_serve_sessions_total{verdict="rejected"}`.
    pub sessions_rejected: Counter,
    /// `rap_serve_bytes_scanned_total`: bytes the scan plane consumed.
    pub bytes_scanned: Counter,
    /// `rap_serve_matches_delivered_total`: demuxed events handed to
    /// tenants.
    pub matches_delivered: Counter,
    /// `rap_serve_backpressure_events_total`: times a producer was told
    /// to slow down (budget half-crossings and sheds both count).
    pub backpressure_events: Counter,
    /// `rap_serve_chunks_scanned_total`: scan batches executed.
    pub chunks_scanned: Counter,
    /// `rap_serve_chunks_shed_total`: chunks rejected over budget.
    pub chunks_shed: Counter,
    /// `rap_serve_chunk_scan_ns`: per-batch scan latency histogram.
    pub scan_ns: Histogram,
    /// `rap_serve_register_ns`: registration (admission) latency.
    pub register_ns: Histogram,
    /// `rap_serve_swaps_total{verdict="completed"}`: certified hot
    /// swaps executed (outgoing drained, replacement attached).
    pub swaps_completed: Counter,
    /// `rap_serve_swaps_total{verdict="rejected"}`: hot swaps refused
    /// by the Q-rule analyzer.
    pub swaps_rejected: Counter,
    /// `rap_serve_swap_ns`: end-to-end hot-swap latency (analysis +
    /// drain + re-registration).
    pub swap_ns: Histogram,
    registry: Registry,
}

impl ServeMetrics {
    /// Registers (or recalls — cell identity is name + labels) the
    /// service's cells on `registry`.
    pub fn on(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            sessions_active: registry.gauge("rap_serve_sessions_active", &[]),
            sessions_admitted: registry
                .counter("rap_serve_sessions_total", &[("verdict", "admitted")]),
            sessions_rejected: registry
                .counter("rap_serve_sessions_total", &[("verdict", "rejected")]),
            bytes_scanned: registry.counter("rap_serve_bytes_scanned_total", &[]),
            matches_delivered: registry.counter("rap_serve_matches_delivered_total", &[]),
            backpressure_events: registry.counter("rap_serve_backpressure_events_total", &[]),
            chunks_scanned: registry.counter("rap_serve_chunks_scanned_total", &[]),
            chunks_shed: registry.counter("rap_serve_chunks_shed_total", &[]),
            scan_ns: registry.histogram("rap_serve_chunk_scan_ns", &[]),
            register_ns: registry.histogram("rap_serve_register_ns", &[]),
            swaps_completed: registry.counter("rap_serve_swaps_total", &[("verdict", "completed")]),
            swaps_rejected: registry.counter("rap_serve_swaps_total", &[("verdict", "rejected")]),
            swap_ns: registry.histogram("rap_serve_swap_ns", &[]),
            registry: registry.clone(),
        }
    }

    /// Per-shard slice of `rap_serve_bytes_scanned_total`.
    pub(crate) fn shard_bytes(&self, shard: usize) -> Counter {
        self.registry.counter(
            "rap_serve_shard_bytes_scanned_total",
            &[("shard", &shard.to_string())],
        )
    }

    /// Per-shard slice of `rap_serve_sessions_active`.
    pub(crate) fn shard_sessions(&self, shard: usize) -> Gauge {
        self.registry.gauge(
            "rap_serve_shard_sessions_active",
            &[("shard", &shard.to_string())],
        )
    }

    /// Per-tenant slice of `rap_serve_matches_delivered_total`.
    pub(crate) fn tenant_matches(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "rap_serve_tenant_matches_delivered_total",
            &[("tenant", tenant)],
        )
    }
}
