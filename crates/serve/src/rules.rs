//! The R (runtime service) finding family.
//!
//! Where the V/A/B/C/S families judge artifacts before any byte is
//! scanned, the R family records what actually happened while the
//! service ran: refused registrations, certified-budget pressure, shed
//! chunks, and graceful drains. A server accumulates one [`Report`]
//! over its lifetime; `Server::findings` snapshots it.

use rap_diag::{RuleCode, Severity};

/// Runtime verdicts emitted by the streaming scan service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// R001: a tenant's registration was refused — the admission
    /// analyzer could not certify the proposed co-residency (the
    /// refusing S-rule findings travel in the returned analysis).
    AdmissionRejected,
    /// R002: a session crossed half of a certified queue budget; the
    /// producer was told to slow down before anything was lost.
    SessionBackpressure,
    /// R003: a chunk was rejected because accepting it would exceed the
    /// session's certified intake budget. The chunk was not queued; no
    /// partial scan happened.
    ChunkShed,
    /// R004: a session disconnected, its queue was drained to the last
    /// accepted byte, and its arrays were released by recomposition.
    SessionDrained,
    /// R005: a resident tenant was hot-swapped — the outgoing session
    /// drained under its certified Q-rule drain bound and the
    /// replacement attached to the freed footprint while every other
    /// session kept scanning.
    TenantSwapped,
}

impl Rule {
    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            Rule::AdmissionRejected => "R001-admission-rejected",
            Rule::SessionBackpressure => "R002-session-backpressure",
            Rule::ChunkShed => "R003-chunk-shed",
            Rule::SessionDrained => "R004-session-drained",
            Rule::TenantSwapped => "R005-tenant-swapped",
        }
    }

    /// The fixed severity of this rule's findings.
    pub fn severity(self) -> Severity {
        match self {
            Rule::AdmissionRejected | Rule::ChunkShed => Severity::Error,
            Rule::SessionBackpressure => Severity::Warning,
            Rule::SessionDrained | Rule::TenantSwapped => Severity::Info,
        }
    }

    /// Every rule, in code order.
    pub fn all() -> [Rule; 5] {
        [
            Rule::AdmissionRejected,
            Rule::SessionBackpressure,
            Rule::ChunkShed,
            Rule::SessionDrained,
            Rule::TenantSwapped,
        ]
    }
}

impl RuleCode for Rule {
    fn code(&self) -> &'static str {
        Rule::code(*self)
    }
}

/// A report of R-rule findings accumulated by a running server.
pub type Report = rap_diag::Report<Rule>;
