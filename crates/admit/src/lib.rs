//! `rap-admit` — static multi-tenant composition and interference
//! analyzer.
//!
//! A RAP fabric is reconfigurable per array, which only pays off if
//! independently built plans can *share* it: `rap-serve`-style
//! multi-tenancy and live rule-set hot-swap both need a static answer to
//! "can these N verified plans co-reside without colliding?". This crate
//! is that answer. It takes N tenants — each a name plus the compiled
//! images, source patterns, and verified [`Mapping`] of one plan — and an
//! [`ArchConfig`] describing the shared fabric, assigns every tenant
//! array an exclusive slot, sums the per-tenant worst-case bounds from
//! `rap-bound` against the fabric's shared capacities, and either
//! certifies a conflict-free [`ComposedPlan`] or explains the conflict
//! through the shared `rap-diag` schema:
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `S001-placement-overlap` | error | tenants collide on array slots, exceed the fabric, or disagree on geometry |
//! | `S002-bank-oversubscribed` | error | a shared bank's worst-case match burst exceeds its total output FIFO capacity |
//! | `S003-fanin-over-budget` | error | a shared bank's summed global-switch fan-in exceeds its port budget |
//! | `S004-bv-columns-exhausted` | error | summed counter/BV columns exceed the fabric budget |
//! | `S005-output-overcommit` | warning | a shared bank's burst overruns the shared output buffer into lane FIFOs |
//! | `S006-match-id-collision` | error | tenant names or match-ID ranges are not disjoint |
//! | `S007-reconfig-infeasible` | warning | a tenant cannot be hot-swapped while the others keep scanning |
//! | `S008-prefix-overlap` | warning | two tenants can report a match at the same input position (opt-in probe) |
//!
//! The certificate is *sound by construction*: slots are exclusive, so a
//! composed plan runs every tenant's arrays bit-identically to its solo
//! plan over the same stream, and every summed budget is a sum of
//! `rap-bound` certified worst cases — the companion cross-validation
//! tests use the traced simulator as an oracle. S008 reuses the exact
//! product construction of `rap-analyze::soundness` pair-wise across
//! tenants ([`rap_analyze::check_overlap`]) to find streams on which two
//! tenants report simultaneously — legal, but an ambiguity worth
//! surfacing when tenants share a demultiplexed match stream.

use rap_analyze::{check_overlap, Overlap, SoundnessConfig};
use rap_arch::config::ArchConfig;
use rap_bound::{analyze_bounds, BoundAnalysis, BoundOptions};
use rap_compiler::Compiled;
use rap_diag::{Location, RuleCode, Severity};
use rap_mapper::{ArrayKind, ArrayPlan, MapperConfig, Mapping};
use rap_regex::Pattern;
use rap_sim::MatchEvent;

/// The admission report type.
pub type Report = rap_diag::Report<Rule>;

/// The admission rules (`S` series; `V` = verifier, `A` = analyzer,
/// `B` = bounds, `C` = cache). Codes are stable and append-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// S001: tenants collide on array slots, exceed the fabric's
    /// capacity, or were mapped for a different geometry.
    PlacementOverlap,
    /// S002: a bank shared by two or more tenants has worst-case
    /// simultaneous match records exceeding the total output FIFO
    /// capacity (lane FIFOs + bank buffer). Banks held by one tenant are
    /// exempt — their load is the tenant's own verified solo behaviour.
    BankOversubscribed,
    /// S003: a bank shared by two or more tenants has summed per-tile
    /// global-switch fan-in exceeding the bank's port budget
    /// (single-tenant banks are exempt, as for S002).
    FaninOverBudget,
    /// S004: summed counter/BV columns across tenants exceed the fabric
    /// column budget.
    BvColumnsExhausted,
    /// S005: a shared bank's worst-case burst overruns the bank output
    /// buffer and spills into per-lane FIFOs (backpressure risk;
    /// single-tenant banks are exempt, as for S002).
    OutputOvercommit,
    /// S006: tenant names or match-ID ranges are not pairwise disjoint.
    MatchIdCollision,
    /// S007: a tenant's arrays cannot be reconfigured while the other
    /// tenants keep scanning (no free slots to stage the swap).
    ReconfigInfeasible,
    /// S008: two tenants can report a match ending at the same input
    /// position (exact cross-tenant product construction, opt-in).
    PrefixOverlap,
}

impl Rule {
    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            Rule::PlacementOverlap => "S001-placement-overlap",
            Rule::BankOversubscribed => "S002-bank-oversubscribed",
            Rule::FaninOverBudget => "S003-fanin-over-budget",
            Rule::BvColumnsExhausted => "S004-bv-columns-exhausted",
            Rule::OutputOvercommit => "S005-output-overcommit",
            Rule::MatchIdCollision => "S006-match-id-collision",
            Rule::ReconfigInfeasible => "S007-reconfig-infeasible",
            Rule::PrefixOverlap => "S008-prefix-overlap",
        }
    }

    /// The fixed severity of this rule's findings.
    pub fn severity(self) -> Severity {
        match self {
            Rule::PlacementOverlap
            | Rule::BankOversubscribed
            | Rule::FaninOverBudget
            | Rule::BvColumnsExhausted
            | Rule::MatchIdCollision => Severity::Error,
            Rule::OutputOvercommit | Rule::ReconfigInfeasible | Rule::PrefixOverlap => {
                Severity::Warning
            }
        }
    }

    /// Every rule, in code order.
    pub fn all() -> [Rule; 8] {
        [
            Rule::PlacementOverlap,
            Rule::BankOversubscribed,
            Rule::FaninOverBudget,
            Rule::BvColumnsExhausted,
            Rule::OutputOvercommit,
            Rule::MatchIdCollision,
            Rule::ReconfigInfeasible,
            Rule::PrefixOverlap,
        ]
    }
}

impl RuleCode for Rule {
    fn code(&self) -> &'static str {
        Rule::code(*self)
    }
}

/// Admission knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmitOptions {
    /// Banks in the shared fabric. `None` auto-sizes the smallest fabric
    /// that fits every tenant array (a lone well-formed tenant always
    /// admits); `Some(n)` fixes the fabric so over-subscription can be
    /// detected.
    pub banks: Option<u32>,
    /// Fabric-wide budget of CAM columns available to counter bit
    /// vectors. `None` uses the fabric's full column capacity.
    pub bv_column_budget: Option<u64>,
    /// Budget for the opt-in S008 cross-tenant overlap probe, applied
    /// per cross-tenant image pair. `None` skips the probe.
    pub overlap: Option<SoundnessConfig>,
    /// Check S007 hot-swap feasibility (on by default; it only warns).
    pub reconfig: bool,
}

impl Default for AdmitOptions {
    fn default() -> Self {
        AdmitOptions {
            banks: None,
            bv_column_budget: None,
            overlap: None,
            reconfig: true,
        }
    }
}

/// One tenant of a proposed composition: a verified plan's parts, all
/// borrowed. `images`, `patterns`, and `mapping` must come from one
/// compile/map run (index-aligned `pattern` fields), as produced by the
/// pipeline's `VerifiedPlan`.
#[derive(Clone, Copy, Debug)]
pub struct Tenant<'a> {
    /// Display name; also the tenant's identity (must be unique).
    pub name: &'a str,
    /// Compiled images, indexed by pattern.
    pub images: &'a [Compiled],
    /// Source patterns, index-aligned with `images`.
    pub patterns: &'a [Pattern],
    /// The tenant's verified solo mapping.
    pub mapping: &'a Mapping,
    /// First match ID of the tenant's namespace; `None` assigns the
    /// composed pattern offset (disjoint by construction).
    pub match_base: Option<u64>,
    /// First fabric slot to claim (contiguous); `None` first-fits.
    pub slot: Option<u32>,
}

/// What the analyzer decided about one tenant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSummary {
    /// The tenant's name.
    pub name: String,
    /// Patterns the tenant carries.
    pub patterns: usize,
    /// Arrays the tenant occupies.
    pub arrays: usize,
    /// Half-open pattern-index range inside the composed plan.
    pub pattern_range: (usize, usize),
    /// Half-open match-ID range `[base, base + patterns)`.
    pub match_ids: (u64, u64),
    /// Fabric slots assigned to the tenant's arrays.
    pub slots: Vec<u32>,
    /// Whether the tenant can be reconfigured while the others scan.
    pub hot_swappable: bool,
}

/// Worst-case load of one bank of the composed fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BankLoad {
    /// Bank index.
    pub bank: u32,
    /// Occupied lanes.
    pub lanes: u32,
    /// Worst-case match records generated in one cycle (summed tenant
    /// reporter bounds).
    pub burst_records: u64,
    /// Total output FIFO capacity: lane FIFOs plus the bank buffer.
    pub capacity_records: u64,
    /// Summed peak per-tile global-switch fan-in of resident arrays.
    pub fanin: u64,
    /// The bank's global-port budget.
    pub fanin_budget: u64,
}

/// A certified conflict-free composition: one merged workload whose
/// arrays are the tenants' arrays in slot order, with pattern indices
/// offset into a shared namespace. Because slots are exclusive and
/// arrays run independently, each tenant's matches in the composed run
/// are bit-identical to its solo run over the same stream.
#[derive(Clone, Debug)]
pub struct ComposedPlan {
    /// Every tenant's images, concatenated in canonical (name) order.
    pub images: Vec<Compiled>,
    /// The merged mapping over the shared pattern namespace.
    pub mapping: Mapping,
    /// Per-tenant summaries (canonical order), for demultiplexing.
    pub tenants: Vec<TenantSummary>,
}

impl ComposedPlan {
    /// Extracts one tenant's matches from a composed run, re-indexed to
    /// the tenant's own pattern namespace.
    ///
    /// # Panics
    ///
    /// Panics when `tenant` is out of range.
    pub fn tenant_matches(&self, tenant: usize, matches: &[MatchEvent]) -> Vec<MatchEvent> {
        let (lo, hi) = self.tenants[tenant].pattern_range;
        matches
            .iter()
            .filter(|m| m.pattern >= lo && m.pattern < hi)
            .map(|m| MatchEvent {
                pattern: m.pattern - lo,
                end: m.end,
            })
            .collect()
    }
}

/// Everything the admission analyzer produces.
#[derive(Clone, Debug)]
pub struct AdmissionAnalysis {
    /// The S-rule findings.
    pub report: Report,
    /// Per-tenant decisions, in canonical (name) order.
    pub tenants: Vec<TenantSummary>,
    /// Banks in the (possibly auto-sized) fabric.
    pub banks: u32,
    /// Array slots in the fabric (`banks × arrays_per_bank`).
    pub slots: u32,
    /// Arrays requested across all tenants.
    pub total_arrays: u32,
    /// Worst-case per-bank loads.
    pub bank_loads: Vec<BankLoad>,
    /// Counter/BV columns requested across all tenants.
    pub bv_columns: u64,
    /// The fabric's BV column budget the request was checked against.
    pub bv_budget: u64,
    /// Joint configurations explored by the opt-in S008 probe.
    pub overlap_explored: u64,
    /// The certificate: present exactly when no error was found.
    pub composed: Option<ComposedPlan>,
}

impl AdmissionAnalysis {
    /// Whether the composition was certified.
    pub fn admitted(&self) -> bool {
        self.composed.is_some()
    }
}

/// Rewrites one array plan's pattern indices into the composed
/// namespace.
fn offset_array(plan: &ArrayPlan, offset: usize) -> ArrayPlan {
    let mut out = plan.clone();
    match &mut out.kind {
        ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } => {
            for p in placements {
                p.pattern += offset;
            }
        }
        ArrayKind::Lnfa { bins } => {
            for bin in bins {
                for m in &mut bin.members {
                    m.pattern += offset;
                }
            }
        }
    }
    out
}

/// Counter/BV columns one tenant's images occupy.
fn bv_columns(images: &[Compiled]) -> u64 {
    images
        .iter()
        .filter_map(|image| match image {
            Compiled::Nbva(c) => Some(
                c.bv_allocs
                    .iter()
                    .flatten()
                    .map(|a| u64::from(a.columns))
                    .sum::<u64>(),
            ),
            Compiled::Nfa(_) | Compiled::Lnfa(_) => None,
        })
        .sum()
}

/// Statically analyzes whether `tenants` can co-reside on one fabric of
/// `arch`-shaped banks, and certifies the composition when they can.
///
/// Tenants are canonicalized by name before any derived assignment
/// (pattern offsets, slots, auto match-ID bases), so any permutation of
/// the same tenant set yields the same findings, summaries, and
/// certificate.
///
/// # Panics
///
/// Panics when `tenants` is empty, or when a tenant's mapping references
/// pattern indices outside its images (a plan not produced for that
/// workload — the same contract as [`rap_bound::analyze_bounds`]).
pub fn admit(
    tenants: &[Tenant<'_>],
    arch: &ArchConfig,
    options: &AdmitOptions,
) -> AdmissionAnalysis {
    assert!(!tenants.is_empty(), "admission needs at least one tenant");
    let mut report = Report::default();

    // Canonical order: by name, stably.
    let mut order: Vec<usize> = (0..tenants.len()).collect();
    order.sort_by(|&x, &y| tenants[x].name.cmp(tenants[y].name));
    let ordered: Vec<&Tenant<'_>> = order.iter().map(|&i| &tenants[i]).collect();

    // S006a: names are the tenants' identity; duplicates make match
    // streams un-demultiplexable (adjacent check suffices once sorted).
    for w in ordered.windows(2) {
        if w[0].name == w[1].name {
            report.push(
                Rule::MatchIdCollision,
                Rule::MatchIdCollision.severity(),
                Location::default(),
                format!("duplicate tenant name {:?}", w[0].name),
            );
        }
    }

    // S001a: every tenant must have been mapped for the shared geometry.
    for tenant in &ordered {
        if tenant.mapping.config.arch != *arch {
            report.push(
                Rule::PlacementOverlap,
                Rule::PlacementOverlap.severity(),
                Location::default(),
                format!(
                    "tenant {:?} was mapped for a different array geometry \
                     than the shared fabric",
                    tenant.name
                ),
            );
        }
    }
    let bvm = ordered[0].mapping.config.bvm;
    if ordered.iter().any(|t| t.mapping.config.bvm != bvm) {
        report.push(
            Rule::PlacementOverlap,
            Rule::PlacementOverlap.severity(),
            Location::default(),
            "tenants were mapped with different bit-vector-module configurations".to_string(),
        );
    }

    // Per-tenant certified bounds (B-rules run solo; admission only sums
    // them against the shared capacities).
    let bounds: Vec<BoundAnalysis> = ordered
        .iter()
        .map(|t| {
            analyze_bounds(
                t.images,
                t.patterns,
                t.mapping,
                &BoundOptions::bounds_only(),
            )
        })
        .collect();

    // Fabric sizing.
    let apb = arch.arrays_per_bank.max(1);
    let total_arrays: u32 = ordered.iter().map(|t| t.mapping.arrays.len() as u32).sum();
    let banks = options
        .banks
        .unwrap_or_else(|| total_arrays.div_ceil(apb).max(1));
    let slot_count = banks * apb;

    // Slot assignment: explicit contiguous claims first, then first-fit,
    // both in canonical order.
    let mut occupancy: Vec<Option<(usize, usize)>> = vec![None; slot_count as usize];
    let mut assigned: Vec<Vec<u32>> = vec![Vec::new(); ordered.len()];
    for (c, tenant) in ordered.iter().enumerate() {
        let Some(base) = tenant.slot else { continue };
        for a in 0..tenant.mapping.arrays.len() {
            let slot = base + a as u32;
            let Some(cell) = occupancy.get_mut(slot as usize) else {
                report.push(
                    Rule::PlacementOverlap,
                    Rule::PlacementOverlap.severity(),
                    Location::array(a),
                    format!(
                        "tenant {:?} claims slot {slot} outside the \
                         {slot_count}-slot fabric",
                        tenant.name
                    ),
                );
                continue;
            };
            match cell {
                Some((other, _)) => {
                    let other_name = ordered[*other].name;
                    report.push(
                        Rule::PlacementOverlap,
                        Rule::PlacementOverlap.severity(),
                        Location::array(a),
                        format!(
                            "tenant {:?} claims slot {slot} already held by \
                             tenant {other_name:?}",
                            tenant.name
                        ),
                    );
                }
                None => {
                    *cell = Some((c, a));
                    assigned[c].push(slot);
                }
            }
        }
    }
    let mut cursor = 0usize;
    let mut exhausted = false;
    for (c, tenant) in ordered.iter().enumerate() {
        if tenant.slot.is_some() {
            continue;
        }
        for a in 0..tenant.mapping.arrays.len() {
            while cursor < occupancy.len() && occupancy[cursor].is_some() {
                cursor += 1;
            }
            if cursor >= occupancy.len() {
                exhausted = true;
                break;
            }
            occupancy[cursor] = Some((c, a));
            assigned[c].push(cursor as u32);
        }
    }
    if exhausted {
        report.push(
            Rule::PlacementOverlap,
            Rule::PlacementOverlap.severity(),
            Location::default(),
            format!(
                "{total_arrays} arrays across {} tenant(s) exceed the \
                 {slot_count} slot(s) of the {banks}-bank fabric",
                ordered.len()
            ),
        );
    }

    // Per-bank shared-capacity checks over the certified solo bounds.
    // Only banks hosting arrays of two or more tenants are checked: a
    // single-tenant bank reproduces exactly the load the tenant's own
    // verified, bounded solo plan already exhibits, so flagging it here
    // would reject plans that are legal on their own (the CA baseline's
    // huge force-NFA arrays, for instance). Admission findings are about
    // *interference*, and a bank no one shares has none.
    let mut bank_loads = Vec::with_capacity(banks as usize);
    for bank in 0..banks {
        let lo = (bank * apb) as usize;
        let hi = ((bank + 1) * apb) as usize;
        let mut lanes = 0u32;
        let mut burst = 0u64;
        let mut fanin = 0u64;
        let mut residents: Vec<usize> = Vec::new();
        for (c, a) in occupancy[lo..hi.min(occupancy.len())].iter().flatten() {
            lanes += 1;
            let bound = &bounds[*c].arrays[*a];
            burst += bound.reporters;
            fanin += u64::from(bound.peak_fanin);
            if !residents.contains(c) {
                residents.push(*c);
            }
        }
        let shared = residents.len() > 1;
        let capacity = u64::from(lanes) * u64::from(arch.array_output_entries)
            + u64::from(arch.bank_output_entries);
        let fanin_budget = u64::from(apb) * u64::from(arch.global_ports_per_tile);
        if shared && burst > capacity {
            report.push(
                Rule::BankOversubscribed,
                Rule::BankOversubscribed.severity(),
                Location::default(),
                format!(
                    "bank {bank}: worst-case burst of {burst} match \
                     record(s) exceeds the {capacity}-record output \
                     capacity ({lanes} lane FIFO(s) + bank buffer)"
                ),
            );
        } else if shared && burst > u64::from(arch.bank_output_entries) {
            report.push(
                Rule::OutputOvercommit,
                Rule::OutputOvercommit.severity(),
                Location::default(),
                format!(
                    "bank {bank}: worst-case burst of {burst} match \
                     record(s) overruns the {}-record bank buffer into \
                     lane FIFOs (backpressure risk)",
                    arch.bank_output_entries
                ),
            );
        }
        if shared && fanin_budget > 0 && fanin > fanin_budget {
            report.push(
                Rule::FaninOverBudget,
                Rule::FaninOverBudget.severity(),
                Location::default(),
                format!(
                    "bank {bank}: summed global-switch fan-in {fanin} \
                     exceeds the {fanin_budget}-port bank budget"
                ),
            );
        }
        bank_loads.push(BankLoad {
            bank,
            lanes,
            burst_records: burst,
            capacity_records: capacity,
            fanin,
            fanin_budget,
        });
    }

    // S004: summed counter/BV columns against the fabric budget.
    let total_bv: u64 = ordered.iter().map(|t| bv_columns(t.images)).sum();
    let bv_budget = options.bv_column_budget.unwrap_or_else(|| {
        u64::from(slot_count) * u64::from(arch.tiles_per_array) * u64::from(arch.tile_columns)
    });
    if total_bv > bv_budget {
        report.push(
            Rule::BvColumnsExhausted,
            Rule::BvColumnsExhausted.severity(),
            Location::default(),
            format!(
                "tenants request {total_bv} counter/BV column(s) but the \
                 fabric budget is {bv_budget}"
            ),
        );
    }

    // Pattern offsets and match-ID namespaces (canonical order).
    let mut offsets = Vec::with_capacity(ordered.len());
    let mut offset = 0usize;
    for tenant in &ordered {
        offsets.push(offset);
        offset += tenant.images.len();
    }
    let ranges: Vec<(u64, u64)> = ordered
        .iter()
        .zip(&offsets)
        .map(|(t, &off)| {
            let base = t.match_base.unwrap_or(off as u64);
            (base, base + t.images.len() as u64)
        })
        .collect();
    for i in 0..ranges.len() {
        for j in i + 1..ranges.len() {
            if ranges[i].0 < ranges[j].1 && ranges[j].0 < ranges[i].1 {
                report.push(
                    Rule::MatchIdCollision,
                    Rule::MatchIdCollision.severity(),
                    Location::default(),
                    format!(
                        "match-ID ranges of tenants {:?} [{}, {}) and {:?} \
                         [{}, {}) overlap",
                        ordered[i].name,
                        ranges[i].0,
                        ranges[i].1,
                        ordered[j].name,
                        ranges[j].0,
                        ranges[j].1
                    ),
                );
            }
        }
    }

    // S007: a tenant hot-swaps by staging its next plan in free slots
    // while the current one keeps scanning, then flipping — infeasible
    // when fewer slots are free than the tenant occupies.
    let free = u64::from(slot_count) - occupancy.iter().flatten().count() as u64;
    let mut hot = Vec::with_capacity(ordered.len());
    for tenant in &ordered {
        let needs = tenant.mapping.arrays.len() as u64;
        let swappable = needs <= free;
        if options.reconfig && !swappable {
            report.push(
                Rule::ReconfigInfeasible,
                Rule::ReconfigInfeasible.severity(),
                Location::default(),
                format!(
                    "tenant {:?} needs {needs} free array(s) to hot-swap \
                     but the fabric has {free}: reconfiguration must stop \
                     the stream",
                    tenant.name
                ),
            );
        }
        hot.push(swappable);
    }

    // S008 (opt-in): exact cross-tenant simultaneity probe.
    let mut overlap_explored = 0u64;
    if let Some(cfg) = &options.overlap {
        for i in 0..ordered.len() {
            for j in i + 1..ordered.len() {
                for (a, img_a) in ordered[i].images.iter().enumerate() {
                    for (b, img_b) in ordered[j].images.iter().enumerate() {
                        let verdict = check_overlap(img_a, img_b, cfg);
                        overlap_explored += verdict.explored() as u64;
                        if let Overlap::Simultaneous { input, .. } = verdict {
                            let preview: String =
                                String::from_utf8_lossy(&input).chars().take(32).collect();
                            report.push(
                                Rule::PrefixOverlap,
                                Rule::PrefixOverlap.severity(),
                                Location::of_pattern(offsets[i] + a),
                                format!(
                                    "tenants {:?} (pattern {a}) and {:?} \
                                     (pattern {b}) both report at the end \
                                     of {preview:?}: simultaneous matches \
                                     are possible",
                                    ordered[i].name, ordered[j].name
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    // Summaries, in canonical order.
    let tenants_out: Vec<TenantSummary> = ordered
        .iter()
        .enumerate()
        .map(|(c, t)| TenantSummary {
            name: t.name.to_string(),
            patterns: t.images.len(),
            arrays: t.mapping.arrays.len(),
            pattern_range: (offsets[c], offsets[c] + t.images.len()),
            match_ids: ranges[c],
            slots: assigned[c].clone(),
            hot_swappable: hot[c],
        })
        .collect();

    // The certificate: merge in slot order, offsetting pattern indices.
    let composed = if report.is_legal() {
        let images: Vec<Compiled> = ordered
            .iter()
            .flat_map(|t| t.images.iter().cloned())
            .collect();
        let arrays: Vec<ArrayPlan> = occupancy
            .iter()
            .flatten()
            .map(|&(c, a)| offset_array(&ordered[c].mapping.arrays[a], offsets[c]))
            .collect();
        let config = MapperConfig {
            arch: *arch,
            bin_size: ordered
                .iter()
                .map(|t| t.mapping.config.bin_size)
                .max()
                .unwrap_or(arch.max_bin_size),
            bvm,
            validate: false,
        };
        Some(ComposedPlan {
            images,
            mapping: Mapping { arrays, config },
            tenants: tenants_out.clone(),
        })
    } else {
        None
    };

    AdmissionAnalysis {
        report,
        tenants: tenants_out,
        banks,
        slots: slot_count,
        total_arrays,
        bank_loads,
        bv_columns: total_bv,
        bv_budget,
        overlap_explored,
        composed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_circuit::Machine;
    use rap_compiler::{Compiler, CompilerConfig};
    use rap_mapper::map_workload;

    fn plan(sources: &[&str], config: &MapperConfig) -> (Vec<Compiled>, Vec<Pattern>, Mapping) {
        let compiler = Compiler::new(CompilerConfig::default());
        let patterns: Vec<Pattern> = sources
            .iter()
            .map(|s| rap_regex::parse_pattern(s).expect("parses"))
            .collect();
        let images: Vec<Compiled> = patterns
            .iter()
            .map(|p| compiler.compile_anchored(p).expect("compiles"))
            .collect();
        let mapping = map_workload(&images, config);
        (images, patterns, mapping)
    }

    struct Owned {
        name: String,
        images: Vec<Compiled>,
        patterns: Vec<Pattern>,
        mapping: Mapping,
    }

    fn owned(name: &str, sources: &[&str], config: &MapperConfig) -> Owned {
        let (images, patterns, mapping) = plan(sources, config);
        Owned {
            name: name.to_string(),
            images,
            patterns,
            mapping,
        }
    }

    fn view(o: &Owned) -> Tenant<'_> {
        Tenant {
            name: &o.name,
            images: &o.images,
            patterns: &o.patterns,
            mapping: &o.mapping,
            match_base: None,
            slot: None,
        }
    }

    #[test]
    fn rule_codes_are_stable() {
        let codes: Vec<&str> = Rule::all().iter().map(|r| r.code()).collect();
        assert_eq!(codes[0], "S001-placement-overlap");
        assert_eq!(codes.len(), 8);
        for w in codes.windows(2) {
            assert!(w[0] < w[1], "codes out of order: {w:?}");
        }
    }

    #[test]
    fn single_tenant_auto_sizes_and_admits() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["abc", "a[bc]{2,4}d", "hello|world"], &config);
        let analysis = admit(&[view(&a)], &config.arch, &AdmitOptions::default());
        assert!(analysis.report.is_legal(), "{}", analysis.report);
        assert!(analysis.admitted());
        assert_eq!(analysis.banks, 1);
        assert_eq!(analysis.tenants.len(), 1);
        assert_eq!(analysis.tenants[0].arrays, a.mapping.arrays.len());
        let composed = analysis.composed.expect("certified");
        assert_eq!(composed.mapping.arrays.len(), a.mapping.arrays.len());
        assert_eq!(composed.images.len(), a.images.len());
    }

    #[test]
    fn composed_runs_match_solo_runs() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["needle", "b{3,9}c"], &config);
        let b = owned("bravo", &["haystack", "ne+dle"], &config);
        let analysis = admit(
            &[view(&a), view(&b)],
            &config.arch,
            &AdmitOptions::default(),
        );
        let composed = analysis.composed.expect("certified");

        let input = b"a needle in the haystack needle neeeedle bbbbc".to_vec();
        let run = rap_sim::simulate(&composed.images, &composed.mapping, &input, Machine::Rap);
        for (c, o) in [&a, &b].into_iter().enumerate() {
            let solo = rap_sim::simulate(&o.images, &o.mapping, &input, Machine::Rap);
            assert_eq!(
                composed.tenant_matches(c, &run.matches),
                solo.matches,
                "tenant {}",
                o.name
            );
        }
    }

    #[test]
    fn admission_is_order_insensitive() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["abc", "xy+z"], &config);
        let b = owned("bravo", &["foo", "ba[rz]"], &config);
        let fwd = admit(
            &[view(&a), view(&b)],
            &config.arch,
            &AdmitOptions::default(),
        );
        let rev = admit(
            &[view(&b), view(&a)],
            &config.arch,
            &AdmitOptions::default(),
        );
        assert_eq!(fwd.tenants, rev.tenants);
        assert_eq!(fwd.admitted(), rev.admitted());
        let (f, r) = (fwd.composed.expect("fwd"), rev.composed.expect("rev"));
        assert_eq!(f.mapping, r.mapping);
        assert_eq!(f.images.len(), r.images.len());
    }

    #[test]
    fn over_capacity_fixed_fabric_is_rejected() {
        let config = MapperConfig::default();
        let tenants: Vec<Owned> = (0..5)
            .map(|i| owned(&format!("t{i}"), &["abc", "a[bc]{2,4}d"], &config))
            .collect();
        let views: Vec<Tenant<'_>> = tenants.iter().map(view).collect();
        let options = AdmitOptions {
            banks: Some(1),
            ..AdmitOptions::default()
        };
        let analysis = admit(&views, &config.arch, &options);
        assert!(!analysis.admitted());
        assert!(!analysis.report.by_rule(Rule::PlacementOverlap).is_empty());
    }

    #[test]
    fn explicit_slot_conflicts_are_rejected() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["abc"], &config);
        let b = owned("bravo", &["def"], &config);
        let mut va = view(&a);
        let mut vb = view(&b);
        va.slot = Some(0);
        vb.slot = Some(0);
        let analysis = admit(&[va, vb], &config.arch, &AdmitOptions::default());
        assert!(!analysis.admitted());
        assert!(!analysis.report.by_rule(Rule::PlacementOverlap).is_empty());
    }

    #[test]
    fn match_id_collisions_are_rejected() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["abc", "def"], &config);
        let b = owned("bravo", &["ghi"], &config);
        let mut vb = view(&b);
        vb.match_base = Some(1); // collides with alpha's auto range [0, 2)
        let analysis = admit(&[view(&a), vb], &config.arch, &AdmitOptions::default());
        assert!(!analysis.admitted());
        assert!(!analysis.report.by_rule(Rule::MatchIdCollision).is_empty());

        let dup = admit(
            &[view(&a), view(&a)],
            &config.arch,
            &AdmitOptions::default(),
        );
        assert!(!dup.admitted());
        assert!(!dup.report.by_rule(Rule::MatchIdCollision).is_empty());
    }

    #[test]
    fn bv_budget_exhaustion_is_rejected() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["a[bc]{2,24}d"], &config);
        assert!(bv_columns(&a.images) > 0, "workload allocates BV columns");
        let options = AdmitOptions {
            bv_column_budget: Some(0),
            ..AdmitOptions::default()
        };
        let analysis = admit(&[view(&a)], &config.arch, &options);
        assert!(!analysis.admitted());
        assert!(!analysis.report.by_rule(Rule::BvColumnsExhausted).is_empty());
        assert_eq!(analysis.bv_budget, 0);
        assert_eq!(analysis.bv_columns, bv_columns(&a.images));
    }

    #[test]
    fn bank_oversubscription_severity_tracks_capacity() {
        // A bank buffer of 1 record and no lane FIFOs: two reporting
        // tenants over-subscribe the bank outright (S002).
        let tight = MapperConfig {
            arch: ArchConfig {
                bank_output_entries: 1,
                array_output_entries: 0,
                ..ArchConfig::default()
            },
            ..MapperConfig::default()
        };
        let a = owned("alpha", &["abc"], &tight);
        let b = owned("bravo", &["def"], &tight);
        let analysis = admit(&[view(&a), view(&b)], &tight.arch, &AdmitOptions::default());
        assert!(!analysis.admitted());
        assert!(!analysis.report.by_rule(Rule::BankOversubscribed).is_empty());

        // With 2-record lane FIFOs the burst fits the total capacity but
        // still overruns the 1-record bank buffer: S005 warning only.
        let loose = MapperConfig {
            arch: ArchConfig {
                array_output_entries: 2,
                ..tight.arch
            },
            ..tight
        };
        let a = owned("alpha", &["abc"], &loose);
        let b = owned("bravo", &["def"], &loose);
        let analysis = admit(&[view(&a), view(&b)], &loose.arch, &AdmitOptions::default());
        assert!(analysis.admitted(), "{}", analysis.report);
        assert!(!analysis.report.by_rule(Rule::OutputOvercommit).is_empty());
        assert!(analysis.report.by_rule(Rule::BankOversubscribed).is_empty());
    }

    #[test]
    fn single_tenant_banks_are_exempt_from_interference_rules() {
        // The same tight fabric that rejects two co-resident tenants
        // (see bank_oversubscription_severity_tracks_capacity) must
        // admit either tenant alone: a bank nobody shares reproduces the
        // tenant's own verified solo behaviour, and admission findings
        // are about interference, not re-litigating solo legality.
        let tight = MapperConfig {
            arch: ArchConfig {
                bank_output_entries: 1,
                array_output_entries: 0,
                ..ArchConfig::default()
            },
            ..MapperConfig::default()
        };
        let a = owned("alpha", &["abc", "needle"], &tight);
        let analysis = admit(&[view(&a)], &tight.arch, &AdmitOptions::default());
        assert!(analysis.report.is_legal(), "{}", analysis.report);
        assert!(analysis.admitted());
        // The loads are still reported, just not flagged.
        assert!(analysis.bank_loads.iter().any(|b| b.burst_records > 0));
    }

    #[test]
    fn exact_fit_fabric_warns_on_reconfiguration() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["abc", "a[bc]{2,4}d"], &config);
        let arrays = a.mapping.arrays.len() as u32;
        let banks = arrays.div_ceil(config.arch.arrays_per_bank).max(1);
        let exact = AdmitOptions {
            banks: Some(banks),
            ..AdmitOptions::default()
        };
        let analysis = admit(&[view(&a)], &config.arch, &exact);
        // Auto-sizing picks the same bank count, so free slots may still
        // exist; only assert consistency between the flag and findings.
        let warned = !analysis.report.by_rule(Rule::ReconfigInfeasible).is_empty();
        assert_eq!(analysis.tenants[0].hot_swappable, !warned);

        let roomy = AdmitOptions {
            banks: Some(banks + 1),
            ..AdmitOptions::default()
        };
        let analysis = admit(&[view(&a)], &config.arch, &roomy);
        assert!(analysis.tenants[0].hot_swappable);
        assert!(analysis.report.by_rule(Rule::ReconfigInfeasible).is_empty());
    }

    #[test]
    fn overlap_probe_is_opt_in_and_finds_witnesses() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["abc"], &config);
        let b = owned("bravo", &["bc"], &config);

        let quiet = admit(
            &[view(&a), view(&b)],
            &config.arch,
            &AdmitOptions::default(),
        );
        assert!(quiet.report.by_rule(Rule::PrefixOverlap).is_empty());
        assert_eq!(quiet.overlap_explored, 0);

        let probing = AdmitOptions {
            overlap: Some(SoundnessConfig::default()),
            ..AdmitOptions::default()
        };
        let analysis = admit(&[view(&a), view(&b)], &config.arch, &probing);
        assert!(!analysis.report.by_rule(Rule::PrefixOverlap).is_empty());
        assert!(analysis.overlap_explored > 0);
        // A warning, not an error: the composition still admits.
        assert!(analysis.admitted());
    }
}
