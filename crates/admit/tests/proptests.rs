//! Property tests for the admission analyzer's two central contracts:
//!
//! * **Order-insensitivity** — the verdict, the findings, the fabric
//!   sizing, and the per-tenant decisions depend on the *set* of
//!   tenants, never on the order they were submitted in (the pipeline
//!   relies on this for its order-insensitive composition cache key).
//! * **Behaviour preservation** — whenever a composition is certified,
//!   simulating the composed plan and demultiplexing each tenant's
//!   matches yields exactly that tenant's solo-run matches over the
//!   same input. The certificate is checked here against the
//!   cycle-accurate simulator on random workloads and streams.

use proptest::prelude::*;
use rap_admit::{admit, AdmitOptions, Rule, Tenant};
use rap_arch::config::ArchConfig;
use rap_circuit::Machine;
use rap_compiler::{Compiled, Compiler, CompilerConfig};
use rap_mapper::{map_workload, MapperConfig, Mapping};
use rap_regex::Pattern;

/// One tenant's owned plan parts.
struct Owned {
    name: String,
    images: Vec<Compiled>,
    patterns: Vec<Pattern>,
    mapping: Mapping,
}

fn owned(name: String, sources: &[&str]) -> Owned {
    let compiler = Compiler::new(CompilerConfig::default());
    let patterns: Vec<Pattern> = sources
        .iter()
        .map(|s| rap_regex::parse_pattern(s).expect("pool patterns parse"))
        .collect();
    let images: Vec<Compiled> = patterns
        .iter()
        .map(|p| compiler.compile_anchored(p).expect("pool patterns compile"))
        .collect();
    let mapping = map_workload(&images, &MapperConfig::default());
    Owned {
        name,
        images,
        patterns,
        mapping,
    }
}

fn view(o: &Owned) -> Tenant<'_> {
    Tenant {
        name: &o.name,
        images: &o.images,
        patterns: &o.patterns,
        mapping: &o.mapping,
        match_base: None,
        slot: None,
    }
}

/// A small pool of compile-safe sources covering all three modes.
const POOL: [&str; 8] = [
    "abc", "a[ab]c", "ab", "ba+c", "c{3,9}a", "a.{2,6}b", "cab", "b[abc]a",
];

/// A tenant is 1–3 patterns drawn from the pool.
fn arb_sources() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..POOL.len(), 1..4)
}

/// 2–4 tenants plus a rotation/reversal describing a resubmission order.
fn arb_tenancy() -> impl Strategy<Value = (Vec<Vec<usize>>, usize, bool)> {
    (
        prop::collection::vec(arb_sources(), 2..5),
        0..4usize,
        any::<bool>(),
    )
}

fn build(tenancies: &[Vec<usize>]) -> Vec<Owned> {
    tenancies
        .iter()
        .enumerate()
        .map(|(i, picks)| {
            let sources: Vec<&str> = picks.iter().map(|&p| POOL[p]).collect();
            // Names deliberately sort differently from insertion order.
            owned(format!("tenant-{}", (b'z' - i as u8) as char), &sources)
        })
        .collect()
}

fn finding_counts(report: &rap_admit::Report) -> Vec<usize> {
    Rule::all()
        .iter()
        .map(|&r| report.by_rule(r).len())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Admission verdicts, findings, fabric sizing, and tenant summaries
    /// are invariant under resubmission order.
    #[test]
    fn admission_is_order_insensitive(
        tenancy in arb_tenancy(),
        fixed_banks in prop_oneof![Just(None), (1u32..4).prop_map(Some)],
    ) {
        let (tenancies, rot, rev) = tenancy;
        let arch = ArchConfig::default();
        let options = AdmitOptions {
            banks: fixed_banks,
            ..AdmitOptions::default()
        };
        let solos = build(&tenancies);
        let mut views: Vec<Tenant<'_>> = solos.iter().map(view).collect();
        let reference = admit(&views, &arch, &options);

        let turns = rot % views.len();
        views.rotate_left(turns);
        if rev {
            views.reverse();
        }
        let permuted = admit(&views, &arch, &options);

        prop_assert_eq!(reference.admitted(), permuted.admitted());
        prop_assert_eq!(&reference.tenants, &permuted.tenants);
        prop_assert_eq!(reference.banks, permuted.banks);
        prop_assert_eq!(reference.slots, permuted.slots);
        prop_assert_eq!(reference.total_arrays, permuted.total_arrays);
        prop_assert_eq!(reference.bv_columns, permuted.bv_columns);
        prop_assert_eq!(&reference.bank_loads, &permuted.bank_loads);
        prop_assert_eq!(
            finding_counts(&reference.report),
            finding_counts(&permuted.report)
        );
    }

    /// Every certified composition preserves per-tenant behaviour: the
    /// composed run's demultiplexed matches equal the solo runs' matches
    /// over the same random stream.
    #[test]
    fn certified_compositions_match_solo_runs(
        tenancy in arb_tenancy(),
        input in prop::collection::vec(
            prop_oneof![4 => Just(b'a'), 4 => Just(b'b'), 4 => Just(b'c'), 1 => Just(b'x')],
            0..120,
        ),
    ) {
        let (tenancies, _, _) = tenancy;
        let arch = ArchConfig::default();
        let solos = build(&tenancies);
        let views: Vec<Tenant<'_>> = solos.iter().map(view).collect();
        let analysis = admit(&views, &arch, &AdmitOptions::default());
        // Auto-sized fabrics always admit disjoint-by-construction
        // tenants drawn from the compile-safe pool.
        let composed = analysis.composed.as_ref().expect("auto fabric admits");
        let merged = rap_sim::simulate(&composed.images, &composed.mapping, &input, Machine::Rap);
        for (idx, summary) in composed.tenants.iter().enumerate() {
            let tenant = solos
                .iter()
                .find(|o| o.name == summary.name)
                .expect("summary names a tenant");
            let solo = rap_sim::simulate(&tenant.images, &tenant.mapping, &input, Machine::Rap);
            prop_assert_eq!(
                composed.tenant_matches(idx, &merged.matches),
                solo.matches,
                "tenant {} diverges from its solo run",
                summary.name
            );
        }
    }
}
