//! Property tests for the hardware building blocks: encodings must be
//! exact for arbitrary classes, and the structural CAM/crossbar models
//! must agree with their specs.

use proptest::prelude::*;
use rap_arch::cam::Cam;
use rap_arch::config::ArchConfig;
use rap_arch::encoding::{encode_class, one_hot, one_hot_matches, product_cover, single_code};
use rap_arch::fcb::Crossbar;
use rap_automata::bitvec::BitVec;
use rap_regex::CharClass;

fn arb_class() -> impl Strategy<Value = CharClass> {
    prop_oneof![
        // Arbitrary sparse sets.
        prop::collection::vec(any::<u8>(), 0..24).prop_map(CharClass::from_bytes),
        // Ranges.
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| { CharClass::range(a.min(b), a.max(b)) }),
        // Complements of small sets.
        prop::collection::vec(any::<u8>(), 1..6)
            .prop_map(|v| CharClass::from_bytes(v).complement()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The product-term cover is exact and disjoint for every class.
    #[test]
    fn product_cover_is_exact_partition(cc in arb_class()) {
        let terms = product_cover(&cc);
        for b in 0..=255u8 {
            let hits = terms.iter().filter(|t| t.matches(b)).count();
            prop_assert_eq!(hits > 0, cc.contains(b), "byte {:#04x}", b);
            prop_assert!(hits <= 1, "byte {:#04x} in {} terms", b, hits);
        }
    }

    /// The two-term column codes cover exactly the class.
    #[test]
    fn column_codes_are_exact(cc in arb_class()) {
        let codes = encode_class(&cc);
        for b in 0..=255u8 {
            prop_assert_eq!(
                codes.iter().any(|c| c.matches(b)),
                cc.contains(b),
                "byte {:#04x}", b
            );
        }
        prop_assert_eq!(codes.len(), product_cover(&cc).len().div_ceil(2));
    }

    /// A single code, when it exists, round-trips through `to_class`.
    #[test]
    fn single_code_roundtrip(cc in arb_class()) {
        if let Some(code) = single_code(&cc) {
            prop_assert_eq!(code.to_class(), cc);
        }
    }

    /// The one-hot switch image matches exactly the class.
    #[test]
    fn one_hot_is_exact(cc in arb_class()) {
        let image = one_hot(&cc);
        for b in 0..=255u8 {
            prop_assert_eq!(one_hot_matches(&image, b), cc.contains(b), "byte {:#04x}", b);
        }
    }

    /// A CAM programmed with a class's codes reports a column hit iff the
    /// byte is in the class (the OR across an STE's columns).
    #[test]
    fn cam_search_implements_membership(cc in arb_class(), probe in any::<u8>()) {
        let codes = encode_class(&cc);
        prop_assume!(codes.len() <= 128);
        let mut cam = Cam::new(&ArchConfig::default());
        for (i, code) in codes.iter().enumerate() {
            cam.program_code(i, *code);
        }
        let hits = cam.search(probe);
        prop_assert_eq!(hits.any(), cc.contains(probe));
    }

    /// Crossbar routing is exactly boolean matrix-vector product.
    #[test]
    fn crossbar_route_is_matrix_product(
        points in prop::collection::vec((0usize..32, 0usize..32), 0..64),
        inputs in prop::collection::vec(0usize..32, 0..16),
    ) {
        let mut xbar = Crossbar::square(32);
        for &(r, c) in &points {
            xbar.set(r, c);
        }
        let mut input = BitVec::zeros(32);
        for &c in &inputs {
            input.set(c, true);
        }
        let out = xbar.route(&input);
        for r in 0..32 {
            let expect = points
                .iter()
                .any(|&(pr, pc)| pr == r && inputs.contains(&pc));
            prop_assert_eq!(out.get(r), expect, "row {}", r);
        }
    }
}
