//! Hardware fabric of the RAP reproduction (§3 of the paper).
//!
//! This crate models the *structure* of the RAP hierarchy — bank → array →
//! tile — and the circuit-level building blocks the three execution modes
//! reconfigure:
//!
//! * [`config::ArchConfig`] — every architectural parameter of §3.3 (tile
//!   geometry, array/bank fan-out, buffer depths, ring width, …),
//! * [`encoding`] — the character-class encodings: the 32-bit per-column
//!   CAM code (a product of high-/low-nibble sets, standing in for CAMA's
//!   multi-zero prefix scheme) and the 256-bit one-hot code used when LNFAs
//!   fall back to the local switch,
//! * [`cam::Cam`] — the 32×128 8T-CAM of a tile, searchable per symbol and
//!   reusable as bit-vector storage in NBVA mode (unified memory, §3.1),
//! * [`fcb::Crossbar`] — the fully-connected local (128×128) and global
//!   (256×256) switches,
//! * [`buffers`] — the two-level input/output buffering of §3.3.

pub mod buffers;
pub mod cam;
pub mod config;
pub mod encoding;
pub mod fcb;
