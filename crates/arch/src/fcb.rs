//! Fully-connected crossbar (FCB) switches.
//!
//! A crossbar routes an *input vector* (the active vector after state
//! matching) to an *output vector*: output row r is the OR of all input
//! columns c whose crosspoint (r, c) is programmed — exactly the
//! state-transition aggregation of §2.2. RAP reuses sub-regions of the same
//! matrix to encode BV actions (§3.1): `copy` programs a diagonal, `shift`
//! programs an off-diagonal, `set1` routes an initial-vector column.

use rap_automata::bitvec::BitVec;
use serde::{Deserialize, Serialize};

/// An `outputs × inputs` crossbar of programmable crosspoints.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossbar {
    inputs: usize,
    /// One row per output, each a bitmap over inputs.
    rows: Vec<BitVec>,
}

impl Crossbar {
    /// Creates an empty (all-zero) `n × n` crossbar.
    pub fn square(n: usize) -> Crossbar {
        Crossbar {
            inputs: n,
            rows: (0..n).map(|_| BitVec::zeros(n)).collect(),
        }
    }

    /// Number of input columns.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output rows.
    pub fn outputs(&self) -> usize {
        self.rows.len()
    }

    /// Programs the crosspoint routing input `col` to output `row`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize) {
        self.rows[row].set(col, true);
    }

    /// Whether the crosspoint is programmed.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.rows[row].get(col)
    }

    /// Programs a `copy` action region: the diagonal of the square block
    /// with top-left corner (row0, col0) and the given side length.
    pub fn program_copy(&mut self, row0: usize, col0: usize, len: usize) {
        for k in 0..len {
            self.set(row0 + k, col0 + k);
        }
    }

    /// Programs a `shift` action region: input bit k routes to output bit
    /// k+1 within the block; the top bit is dropped (overflow) and bit 0 of
    /// the output is left to the `set1`/auxiliary path.
    pub fn program_shift(&mut self, row0: usize, col0: usize, len: usize) {
        for k in 0..len.saturating_sub(1) {
            self.set(row0 + k + 1, col0 + k);
        }
    }

    /// Routes an input vector: output r = OR of programmed inputs.
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from [`Crossbar::inputs`].
    pub fn route(&self, input: &BitVec) -> BitVec {
        assert_eq!(input.len(), self.inputs, "input width mismatch");
        let mut out = BitVec::zeros(self.rows.len());
        for (r, row) in self.rows.iter().enumerate() {
            // OR-aggregation per output row.
            let mut hit = false;
            for c in row.iter_ones() {
                if input.get(c) {
                    hit = true;
                    break;
                }
            }
            out.set(r, hit);
        }
        out
    }

    /// Number of programmed crosspoints.
    pub fn programmed_points(&self) -> u64 {
        self.rows.iter().map(|r| u64::from(r.count_ones())).sum()
    }

    /// Fraction of programmed crosspoints — the switch *sparsity* the paper
    /// exploits (LNFAs use < 5% of an FCB).
    pub fn density(&self) -> f64 {
        let total = (self.inputs * self.rows.len()) as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.programmed_points() as f64 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(n: usize, ones: &[usize]) -> BitVec {
        let mut v = BitVec::zeros(n);
        for &i in ones {
            v.set(i, true);
        }
        v
    }

    #[test]
    fn routing_ors_inputs() {
        let mut x = Crossbar::square(8);
        x.set(3, 0);
        x.set(3, 1);
        x.set(5, 2);
        let out = x.route(&bv(8, &[0]));
        assert!(out.get(3) && !out.get(5));
        let out = x.route(&bv(8, &[1, 2]));
        assert!(out.get(3) && out.get(5));
        let out = x.route(&bv(8, &[4]));
        assert!(!out.any());
    }

    #[test]
    fn copy_region_is_identity() {
        let mut x = Crossbar::square(8);
        x.program_copy(4, 0, 4);
        let out = x.route(&bv(8, &[0, 2]));
        assert!(out.get(4) && out.get(6));
        assert_eq!(out.count_ones(), 2);
    }

    #[test]
    fn shift_region_moves_bits_up() {
        // Fig. 5's shift encoding: input bit k → output bit k+1.
        let mut x = Crossbar::square(8);
        x.program_shift(0, 0, 4);
        let out = x.route(&bv(8, &[0, 2]));
        assert!(out.get(1) && out.get(3));
        assert_eq!(out.count_ones(), 2);
        // Top bit overflows away.
        let out = x.route(&bv(8, &[3]));
        assert!(!out.any());
    }

    #[test]
    fn density_counts_points() {
        let mut x = Crossbar::square(4);
        assert_eq!(x.density(), 0.0);
        x.program_copy(0, 0, 4);
        assert_eq!(x.programmed_points(), 4);
        assert!((x.density() - 4.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn route_width_checked() {
        let x = Crossbar::square(4);
        let _ = x.route(&BitVec::zeros(5));
    }

    #[test]
    fn linear_chain_density_is_sparse() {
        // An LNFA chain programs n−1 points of an n² switch (< 1% at 128).
        let mut x = Crossbar::square(128);
        x.program_shift(0, 0, 128);
        assert!(x.density() < 0.01);
    }
}
