//! The two-level input/output buffering of §3.3.
//!
//! Each bank has a ping-pong input buffer (one page fills from DMA while
//! the other drains into the arrays) and a ping-pong output buffer; each
//! array has small input/output FIFOs that decouple it from the bank when
//! NBVA stalls desynchronize the arrays.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded FIFO.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fifo<T> {
    capacity: usize,
    items: VecDeque<T>,
}

impl<T> Fifo<T> {
    /// Creates an empty FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Fifo<T> {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            capacity,
            items: VecDeque::with_capacity(capacity),
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is full.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Enqueues an item; returns it back on overflow (caller must stall).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }
}

/// A ping-pong (double) buffer: the *fill* page accepts writes while the
/// *drain* page serves reads; [`PingPong::swap`] exchanges them when the
/// drain page empties (hiding DMA latency, §3.3).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PingPong<T> {
    page_capacity: usize,
    fill: VecDeque<T>,
    drain: VecDeque<T>,
}

impl<T> PingPong<T> {
    /// Creates an empty ping-pong buffer with `page_capacity` entries per
    /// page.
    ///
    /// # Panics
    ///
    /// Panics if `page_capacity` is zero.
    pub fn new(page_capacity: usize) -> PingPong<T> {
        assert!(page_capacity > 0, "page capacity must be positive");
        PingPong {
            page_capacity,
            fill: VecDeque::with_capacity(page_capacity),
            drain: VecDeque::with_capacity(page_capacity),
        }
    }

    /// Entries per page.
    pub fn page_capacity(&self) -> usize {
        self.page_capacity
    }

    /// Writes into the fill page; returns the item on overflow.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.fill.len() == self.page_capacity {
            Err(item)
        } else {
            self.fill.push_back(item);
            Ok(())
        }
    }

    /// Reads from the drain page, swapping pages first if the drain page is
    /// exhausted.
    pub fn pop(&mut self) -> Option<T> {
        if self.drain.is_empty() {
            self.swap();
        }
        self.drain.pop_front()
    }

    /// Exchanges the fill and drain pages.
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.fill, &mut self.drain);
    }

    /// Total buffered items across both pages.
    pub fn len(&self) -> usize {
        self.fill.len() + self.drain.len()
    }

    /// Whether both pages are empty.
    pub fn is_empty(&self) -> bool {
        self.fill.is_empty() && self.drain.is_empty()
    }

    /// Whether the fill page is full (producer must stall until a swap).
    pub fn fill_full(&self) -> bool {
        self.fill.len() == self.page_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let mut f = Fifo::new(2);
        assert!(f.push(1).is_ok());
        assert!(f.push(2).is_ok());
        assert_eq!(f.push(3), Err(3));
        assert!(f.is_full());
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.front(), Some(&2));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn fifo_zero_capacity_rejected() {
        let _: Fifo<u8> = Fifo::new(0);
    }

    #[test]
    fn pingpong_swaps_when_drained() {
        let mut pp = PingPong::new(2);
        assert!(pp.push(1).is_ok());
        assert!(pp.push(2).is_ok());
        assert!(pp.fill_full());
        // First pop swaps pages, exposing 1 and 2; fill page is free again.
        assert_eq!(pp.pop(), Some(1));
        assert!(!pp.fill_full());
        assert!(pp.push(3).is_ok());
        assert_eq!(pp.pop(), Some(2));
        assert_eq!(pp.pop(), Some(3));
        assert_eq!(pp.pop(), None);
        assert!(pp.is_empty());
    }

    #[test]
    fn pingpong_overflow_reports_item() {
        let mut pp = PingPong::new(1);
        assert!(pp.push(1).is_ok());
        assert_eq!(pp.push(2), Err(2));
        assert_eq!(pp.len(), 1);
    }
}
