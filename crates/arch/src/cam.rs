//! Structural model of the 32×128 8T-CAM of a tile (§3.1).
//!
//! The same macro serves two roles, selected per column by the BV-mask:
//!
//! * **CC columns** store a 32-bit [`CcCode`] and participate in state
//!   matching: a search with an input byte returns the set of matching
//!   columns.
//! * **BV columns** store bit-vector words (one bit per row) and are read
//!   and written row-wise during the bit-vector-processing phase.

use crate::config::ArchConfig;
use crate::encoding::CcCode;
use rap_automata::bitvec::BitVec;
use serde::{Deserialize, Serialize};

/// Content of one CAM column.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Column {
    /// Not allocated.
    Unused,
    /// State-matching column holding a character-class code.
    Code(CcCode),
    /// Bit-vector storage column (`cam_rows` bits, row 0 first).
    Bv(BitVec),
}

/// A tile's CAM: `rows × columns` 8T cells.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cam {
    rows: u32,
    columns: Vec<Column>,
}

impl Cam {
    /// Creates an empty CAM with the given config's geometry.
    pub fn new(config: &ArchConfig) -> Cam {
        Cam {
            rows: config.cam_rows,
            columns: vec![Column::Unused; config.tile_columns as usize],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether no column is allocated.
    pub fn is_empty(&self) -> bool {
        self.columns.iter().all(|c| matches!(c, Column::Unused))
    }

    /// The column contents.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Programs column `col` with a character-class code.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or already allocated.
    pub fn program_code(&mut self, col: usize, code: CcCode) {
        assert!(
            matches!(self.columns[col], Column::Unused),
            "column {col} already allocated"
        );
        self.columns[col] = Column::Code(code);
    }

    /// Allocates column `col` as bit-vector storage (all zeros).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or already allocated.
    pub fn program_bv(&mut self, col: usize) {
        assert!(
            matches!(self.columns[col], Column::Unused),
            "column {col} already allocated"
        );
        self.columns[col] = Column::Bv(BitVec::zeros(self.rows as usize));
    }

    /// The BV-mask: a bitmap over columns marking bit-vector storage
    /// (§3.1 — "a bitmap that designates the storage type of each CAM
    /// column").
    pub fn bv_mask(&self) -> BitVec {
        let mut mask = BitVec::zeros(self.columns.len());
        for (i, c) in self.columns.iter().enumerate() {
            if matches!(c, Column::Bv(_)) {
                mask.set(i, true);
            }
        }
        mask
    }

    /// State matching: searches every CC column against an input byte and
    /// returns the per-column match vector (BV/unused columns report 0 —
    /// only CC columns are activated, §3.1).
    pub fn search(&self, byte: u8) -> BitVec {
        let mut out = BitVec::zeros(self.columns.len());
        for (i, c) in self.columns.iter().enumerate() {
            if let Column::Code(code) = c {
                if code.matches(byte) {
                    out.set(i, true);
                }
            }
        }
        out
    }

    /// Reads one BV word: the bits of row `row` across columns
    /// `cols.start..cols.end` (which must all be BV columns).
    ///
    /// # Panics
    ///
    /// Panics if the range touches a non-BV column or `row` is out of range.
    pub fn read_bv_word(&self, cols: std::ops::Range<usize>, row: u32) -> BitVec {
        assert!(row < self.rows, "row {row} out of range");
        let mut word = BitVec::zeros(cols.len());
        for (k, col) in cols.enumerate() {
            match &self.columns[col] {
                Column::Bv(bits) => word.set(k, bits.get(row as usize)),
                other => panic!("column {col} is not BV storage: {other:?}"),
            }
        }
        word
    }

    /// Writes one BV word back (inverse of [`Cam::read_bv_word`]).
    ///
    /// # Panics
    ///
    /// Panics if the range touches a non-BV column or `row` is out of range.
    pub fn write_bv_word(&mut self, cols: std::ops::Range<usize>, row: u32, word: &BitVec) {
        assert!(row < self.rows, "row {row} out of range");
        assert_eq!(word.len(), cols.len(), "word width mismatch");
        for (k, col) in cols.enumerate() {
            match &mut self.columns[col] {
                Column::Bv(bits) => bits.set(row as usize, word.get(k)),
                other => panic!("column {col} is not BV storage: {other:?}"),
            }
        }
    }

    /// Number of allocated CC columns.
    pub fn code_columns(&self) -> u32 {
        self.columns
            .iter()
            .filter(|c| matches!(c, Column::Code(_)))
            .count() as u32
    }

    /// Number of allocated BV columns.
    pub fn bv_columns(&self) -> u32 {
        self.columns
            .iter()
            .filter(|c| matches!(c, Column::Bv(_)))
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{encode_class, single_code};
    use rap_regex::CharClass;

    fn cam() -> Cam {
        Cam::new(&ArchConfig::default())
    }

    #[test]
    fn geometry() {
        let c = cam();
        assert_eq!(c.rows(), 32);
        assert_eq!(c.len(), 128);
        assert!(c.is_empty());
    }

    #[test]
    fn search_matches_programmed_codes() {
        let mut c = cam();
        c.program_code(0, single_code(&CharClass::single(b'a')).expect("fits"));
        c.program_code(5, single_code(&CharClass::digit()).expect("fits"));
        let hits = c.search(b'a');
        assert!(hits.get(0));
        assert!(!hits.get(5));
        let hits = c.search(b'7');
        assert!(!hits.get(0));
        assert!(hits.get(5));
        assert_eq!(c.code_columns(), 2);
    }

    #[test]
    fn multi_column_class() {
        let mut c = cam();
        // \w needs four product terms = two CAM columns.
        let codes = encode_class(&CharClass::word());
        assert_eq!(codes.len(), 2);
        for (i, code) in codes.iter().enumerate() {
            c.program_code(i, *code);
        }
        // Every word byte matches at least one of the two columns; the OR
        // across an STE's columns is the class membership.
        for b in [b'a', b'Z', b'5', b'_'] {
            assert!(c.search(b).count_ones() >= 1, "byte {b}");
        }
        // '{' (0x7b) matches neither.
        assert_eq!(c.search(b'{').count_ones(), 0);
    }

    #[test]
    fn bv_mask_and_word_io() {
        let mut c = cam();
        c.program_bv(10);
        c.program_bv(11);
        let mask = c.bv_mask();
        assert!(mask.get(10) && mask.get(11) && !mask.get(9));
        assert_eq!(c.bv_columns(), 2);

        let mut word = BitVec::zeros(2);
        word.set(0, true);
        c.write_bv_word(10..12, 3, &word);
        let back = c.read_bv_word(10..12, 3);
        assert_eq!(back, word);
        // Other rows untouched.
        assert!(!c.read_bv_word(10..12, 4).any());
    }

    #[test]
    fn bv_columns_do_not_match_searches() {
        let mut c = cam();
        c.program_bv(0);
        // Even with bits set, BV columns never participate in search.
        let mut word = BitVec::zeros(1);
        word.set(0, true);
        c.write_bv_word(0..1, 0, &word);
        for b in [0u8, b'a', 0xff] {
            assert_eq!(c.search(b).count_ones(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_allocation_panics() {
        let mut c = cam();
        c.program_bv(0);
        c.program_code(0, single_code(&CharClass::single(b'a')).expect("fits"));
    }

    #[test]
    #[should_panic(expected = "not BV storage")]
    fn reading_code_column_as_bv_panics() {
        let mut c = cam();
        c.program_code(0, single_code(&CharClass::single(b'a')).expect("fits"));
        let _ = c.read_bv_word(0..1, 0);
    }
}
