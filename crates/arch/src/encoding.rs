//! Character-class encodings for CAM-based state matching.
//!
//! **32-bit per-column code.** The tile CAM has 32 rows; an input byte
//! activates two "low-nibble" rows and two "high-nibble" rows (one pair per
//! 16-row half). A column stores two *product terms* — each a 16-bit
//! high-nibble mask plus a 16-bit low-nibble mask packed into the 32 cells
//! with the multi-zero prefix trick of CAMA — and matches when either term
//! matches. An arbitrary character class is therefore encoded as a union of
//! `highs × lows` products, **two products per CAM column**: literal bytes,
//! digit classes, `.`, `[a-z]`-style ranges and small alternations all fit
//! a single column (the paper's "84% of LNFAs are single-code" regime),
//! while complex classes like `\w` spill over several columns.
//!
//! **One-hot code.** LNFAs whose classes do not fit a single 32-bit code
//! are matched in the 128×128 local switch instead (§3.2): each class
//! occupies two 128-bit switch columns; the input byte's MSB selects the
//! column and its low 7 bits one-hot-activate a row.

use rap_regex::CharClass;
use serde::{Deserialize, Serialize};

/// One product term: the set `highs × lows` of nibble sets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProductTerm {
    /// Bit i set ⇔ high nibble i is in the set.
    pub hi_mask: u16,
    /// Bit i set ⇔ low nibble i is in the set.
    pub lo_mask: u16,
}

impl ProductTerm {
    /// Whether the term matches a byte.
    #[inline]
    pub fn matches(&self, byte: u8) -> bool {
        let hi = byte >> 4;
        let lo = byte & 0x0f;
        self.hi_mask & (1 << hi) != 0 && self.lo_mask & (1 << lo) != 0
    }

    /// Whether the term is empty.
    pub fn is_empty(&self) -> bool {
        self.hi_mask == 0 || self.lo_mask == 0
    }
}

/// A 32-bit CAM column code: up to two product terms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CcCode {
    /// The two product terms (either may be empty).
    pub terms: [ProductTerm; 2],
}

impl CcCode {
    /// A code holding a single product term.
    pub fn single(term: ProductTerm) -> CcCode {
        CcCode {
            terms: [term, ProductTerm::default()],
        }
    }

    /// A code holding two product terms.
    pub fn pair(a: ProductTerm, b: ProductTerm) -> CcCode {
        CcCode { terms: [a, b] }
    }

    /// Whether the code matches an input byte.
    #[inline]
    pub fn matches(&self, byte: u8) -> bool {
        self.terms[0].matches(byte) || self.terms[1].matches(byte)
    }

    /// The character class this single code matches.
    pub fn to_class(self) -> CharClass {
        let mut cc = CharClass::empty();
        for term in self.terms {
            for hi in 0..16u8 {
                if term.hi_mask & (1 << hi) == 0 {
                    continue;
                }
                for lo in 0..16u8 {
                    if term.lo_mask & (1 << lo) != 0 {
                        cc.insert((hi << 4) | lo);
                    }
                }
            }
        }
        cc
    }
}

/// The canonical product-term cover of a class: high nibbles sharing an
/// identical low-nibble set form one term. Terms are disjoint and their
/// union is exactly `cc`.
pub fn product_cover(cc: &CharClass) -> Vec<ProductTerm> {
    let mut lo_sets = [0u16; 16];
    for b in cc.iter() {
        lo_sets[(b >> 4) as usize] |= 1 << (b & 0x0f);
    }
    let mut terms: Vec<ProductTerm> = Vec::new();
    for (hi, &lo) in lo_sets.iter().enumerate() {
        if lo == 0 {
            continue;
        }
        if let Some(term) = terms.iter_mut().find(|t| t.lo_mask == lo) {
            term.hi_mask |= 1 << hi;
        } else {
            terms.push(ProductTerm {
                hi_mask: 1 << hi,
                lo_mask: lo,
            });
        }
    }
    terms
}

/// Encodes a character class as CAM column codes, two product terms per
/// column. Returns an empty vector for the empty class.
///
/// # Example
///
/// ```
/// use rap_arch::encoding::encode_class;
/// use rap_regex::CharClass;
///
/// assert_eq!(encode_class(&CharClass::single(b'a')).len(), 1);
/// assert_eq!(encode_class(&CharClass::range(b'a', b'z')).len(), 1);
/// assert_eq!(encode_class(&CharClass::word()).len(), 2);
/// ```
pub fn encode_class(cc: &CharClass) -> Vec<CcCode> {
    let terms = product_cover(cc);
    terms
        .chunks(2)
        .map(|pair| match pair {
            [a] => CcCode::single(*a),
            [a, b] => CcCode::pair(*a, *b),
            _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
        })
        .collect()
}

/// Number of CAM columns a class occupies.
pub fn column_count(cc: &CharClass) -> u32 {
    product_cover(cc).len().div_ceil(2) as u32
}

/// Encodes a class into a single 32-bit code if possible — the §3.2
/// requirement for executing an LNFA inside the CAM ("all CCs in an LNFA
/// mapped to the CAM must be encodable within a single 32-bit code"; 84%
/// of LNFAs qualify in the paper's benchmarks).
pub fn single_code(cc: &CharClass) -> Option<CcCode> {
    if cc.is_empty() {
        return None;
    }
    let codes = encode_class(cc);
    match codes.as_slice() {
        [one] => Some(*one),
        _ => None,
    }
}

/// The 256-bit one-hot image of a class, split into the two 128-bit local
/// switch columns of §3.2: `[0]` covers bytes 0–127 (MSB = 0), `[1]` covers
/// bytes 128–255. Each half is two `u64` words, least-significant bit =
/// lowest byte of the half.
pub fn one_hot(cc: &CharClass) -> [[u64; 2]; 2] {
    let mut halves = [[0u64; 2]; 2];
    for b in cc.iter() {
        let half = (b >> 7) as usize;
        let idx = (b & 0x7f) as usize;
        halves[half][idx / 64] |= 1 << (idx % 64);
    }
    halves
}

/// Whether a one-hot image matches a byte.
pub fn one_hot_matches(image: &[[u64; 2]; 2], byte: u8) -> bool {
    let half = (byte >> 7) as usize;
    let idx = (byte & 0x7f) as usize;
    image[half][idx / 64] & (1 << (idx % 64)) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_cover_exact(cc: &CharClass) {
        let codes = encode_class(cc);
        for b in 0..=255u8 {
            let covered = codes.iter().any(|c| c.matches(b));
            assert_eq!(covered, cc.contains(b), "byte {b:#04x}");
        }
    }

    #[test]
    fn exact_cover_for_common_classes() {
        for cc in [
            CharClass::single(b'a'),
            CharClass::digit(),
            CharClass::word(),
            CharClass::space(),
            CharClass::dot(),
            CharClass::any(),
            CharClass::range(b'a', b'z'),
            CharClass::range(0x00, 0xff),
            CharClass::from_bytes([0x00, 0x7f, 0x80, 0xff]),
            CharClass::single(b'\\').complement(),
            CharClass::from_bytes(*b"ILVF"), // PROSITE-style amino set
        ] {
            assert_cover_exact(&cc);
        }
    }

    #[test]
    fn single_code_classes() {
        assert!(single_code(&CharClass::single(b'x')).is_some());
        assert!(single_code(&CharClass::digit()).is_some());
        assert!(single_code(&CharClass::any()).is_some());
        assert!(single_code(&CharClass::dot()).is_some());
        // [a-z] spans two product terms but fits one two-term code.
        assert!(single_code(&CharClass::range(b'a', b'z')).is_some());
        // Amino alternations fit one code too.
        assert!(single_code(&CharClass::from_bytes(*b"ILVF")).is_some());
        // \w needs four terms = two columns.
        assert!(single_code(&CharClass::word()).is_none());
        assert!(single_code(&CharClass::empty()).is_none());
    }

    #[test]
    fn column_counts() {
        assert_eq!(column_count(&CharClass::single(b'a')), 1);
        assert_eq!(column_count(&CharClass::any()), 1);
        assert_eq!(column_count(&CharClass::dot()), 1);
        assert_eq!(column_count(&CharClass::range(b'a', b'z')), 1);
        assert_eq!(column_count(&CharClass::word()), 2);
        assert_eq!(column_count(&CharClass::empty()), 0);
        // Six distinct lo-sets → six terms → three columns.
        let weird = CharClass::from_bytes([0x05, 0x16, 0x27, 0x38, 0x49, 0x5a]);
        assert_eq!(product_cover(&weird).len(), 6);
        assert_eq!(column_count(&weird), 3);
    }

    #[test]
    fn grouping_merges_identical_lo_sets() {
        // [A-Oa-o]: high nibbles 4 and 6 share lo set 1..15 → one term.
        let cc = CharClass::range(b'A', b'O').union(&CharClass::range(b'a', b'o'));
        assert_eq!(product_cover(&cc).len(), 1);
        assert_eq!(column_count(&cc), 1);
    }

    #[test]
    fn code_roundtrip_through_class() {
        for cc in [CharClass::digit(), CharClass::range(b'a', b'z')] {
            let code = single_code(&cc).expect("fits one code");
            assert_eq!(code.to_class(), cc);
        }
    }

    #[test]
    fn one_hot_roundtrip() {
        let cc = CharClass::from_bytes([0x00, 0x41, 0x7f, 0x80, 0xfe]);
        let image = one_hot(&cc);
        for b in 0..=255u8 {
            assert_eq!(one_hot_matches(&image, b), cc.contains(b), "byte {b:#04x}");
        }
    }

    #[test]
    fn one_hot_half_selection() {
        let image = one_hot(&CharClass::single(0x80));
        assert_eq!(image[0], [0, 0]);
        assert_eq!(image[1], [1, 0]);
    }
}
