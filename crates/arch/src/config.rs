//! Architectural parameters of the RAP hierarchy (§3.3).

use serde::{Deserialize, Serialize};

/// An out-of-range BV depth passed to [`ArchConfig::try_bv_columns`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BvDepthError {
    /// The rejected depth.
    pub depth: u32,
    /// The CAM depth bounding it.
    pub cam_rows: u32,
}

impl std::fmt::Display for BvDepthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BV depth {} outside 1..={}", self.depth, self.cam_rows)
    }
}

impl std::error::Error for BvDepthError {}

/// All sizing parameters of a RAP bank. [`ArchConfig::default`] returns the
/// paper's configuration; the design-space-exploration benches vary the
/// user-controlled knobs (BV depth and bin size live in the compiler/mapper,
/// not here, because they are per-workload).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// CAM rows per tile (32).
    pub cam_rows: u32,
    /// CAM / local-switch columns per tile — the STE capacity (128).
    pub tile_columns: u32,
    /// Tiles per array (16).
    pub tiles_per_array: u32,
    /// Arrays per bank (4).
    pub arrays_per_bank: u32,
    /// Global-switch ports per tile. The paper quotes a 256×256 global FCB
    /// for 16 tiles; we allocate 256/16 = 16 ports per tile (see DESIGN.md
    /// §2 for the discrepancy with the "32 STEs" figure in the text).
    pub global_ports_per_tile: u32,
    /// Maximum number of LNFAs per bin (32), which fixes the ring width.
    pub max_bin_size: u32,
    /// Width of the inter-tile ring used by LNFA global routing (64 bits).
    pub ring_width_bits: u32,
    /// Bank input ping-pong buffer entries (128).
    pub bank_input_entries: u32,
    /// Array input FIFO entries (8).
    pub array_input_entries: u32,
    /// Bank output ping-pong buffer entries (64).
    pub bank_output_entries: u32,
    /// Array output FIFO entries (2).
    pub array_output_entries: u32,
    /// Average wire length tile→global switch, in millimeters.
    pub tile_wire_mm: f64,
    /// Average ring-hop wire length, in millimeters.
    pub ring_hop_mm: f64,
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig {
            cam_rows: 32,
            tile_columns: 128,
            tiles_per_array: 16,
            arrays_per_bank: 4,
            global_ports_per_tile: 16,
            max_bin_size: 32,
            ring_width_bits: 64,
            bank_input_entries: 128,
            array_input_entries: 8,
            bank_output_entries: 64,
            array_output_entries: 2,
            tile_wire_mm: 0.5,
            ring_hop_mm: 0.1,
        }
    }
}

impl ArchConfig {
    /// STE capacity of an array (2048 in the paper: 16 tiles × 128).
    pub fn states_per_array(&self) -> u32 {
        self.tiles_per_array * self.tile_columns
    }

    /// Maximum size of a single bit vector in bits: all columns but one
    /// (one column must keep the repetition's character class) times the
    /// CAM depth — 4064 bits in the paper.
    pub fn max_bv_bits(&self) -> u32 {
        (self.tile_columns - 1) * self.cam_rows
    }

    /// Columns a bit vector of `bits` occupies at BV depth `depth`
    /// (row-first mapping, §3.1), or a [`BvDepthError`] when the depth is
    /// zero or exceeds the CAM depth.
    ///
    /// # Errors
    ///
    /// Returns [`BvDepthError`] when `depth` is outside `1..=cam_rows`.
    pub fn try_bv_columns(&self, bits: u32, depth: u32) -> Result<u32, BvDepthError> {
        if depth < 1 || depth > self.cam_rows {
            return Err(BvDepthError {
                depth,
                cam_rows: self.cam_rows,
            });
        }
        Ok(bits.div_ceil(depth))
    }

    /// Columns a bit vector of `bits` occupies at BV depth `depth`
    /// (row-first mapping, §3.1).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds the CAM depth. Production
    /// callers should prefer [`ArchConfig::try_bv_columns`] and surface the
    /// error; this variant remains for tests and quick experiments.
    pub fn bv_columns(&self, bits: u32, depth: u32) -> u32 {
        self.try_bv_columns(bits, depth)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Upper bound on the STE count a regex may use after unfolding in NBVA
    /// mode (64528 in the paper — each of the 127 usable column groups can
    /// compress `cam_rows` states, plus the CC column itself... the paper
    /// derives 4064 × 15 + remainder; we expose the same headline figure as
    /// a capacity check: states representable in one array).
    pub fn max_nbva_unfolded_states(&self) -> u64 {
        // One tile holds up to (tile_columns - 1) BV columns × cam_rows
        // unfolded states plus its CC column; an array has tiles_per_array
        // tiles, but BVs cannot span tiles, so the bound per regex is the
        // array capacity with every tile maxed out.
        u64::from(self.max_bv_bits()) * u64::from(self.tiles_per_array)
            - u64::from(self.tiles_per_array - 1) * u64::from(self.cam_rows)
    }

    /// Ring hops between two tile indices on the LNFA ring (shortest
    /// direction on the ring of `tiles_per_array` tiles).
    pub fn ring_hops(&self, from_tile: u32, to_tile: u32) -> u32 {
        let n = self.tiles_per_array;
        assert!(from_tile < n && to_tile < n, "tile index out of range");
        let d = from_tile.abs_diff(to_tile);
        d.min(n - d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ArchConfig::default();
        assert_eq!(c.cam_rows, 32);
        assert_eq!(c.tile_columns, 128);
        assert_eq!(c.tiles_per_array, 16);
        assert_eq!(c.arrays_per_bank, 4);
        assert_eq!(c.states_per_array(), 2048);
        assert_eq!(c.max_bv_bits(), 4064);
        assert_eq!(c.max_bin_size, 32);
        assert_eq!(c.ring_width_bits, 64);
    }

    #[test]
    fn bv_columns_row_first() {
        let c = ArchConfig::default();
        // Example 4.2: d{34} at depth 16 → width 3? No: 34/16 = 2.125 → 3?
        // The paper uses width 2 by rewriting d{34} into d{32}dd first; the
        // raw column count for 34 bits at depth 16 is 3.
        assert_eq!(c.bv_columns(34, 16), 3);
        assert_eq!(c.bv_columns(32, 16), 2);
        // Example 4.3: a{1024} at depth 4 → 256 columns.
        assert_eq!(c.bv_columns(1024, 4), 256);
        // Example from §4.1: f{128} at depth 16 → width 8.
        assert_eq!(c.bv_columns(128, 16), 8);
        // Fig. 5: a{7} at depth 4 → 2 columns.
        assert_eq!(c.bv_columns(7, 4), 2);
    }

    #[test]
    #[should_panic(expected = "BV depth")]
    fn bv_depth_validated() {
        let _ = ArchConfig::default().bv_columns(16, 64);
    }

    #[test]
    fn try_bv_columns_reports_bad_depths() {
        let c = ArchConfig::default();
        assert_eq!(c.try_bv_columns(34, 16), Ok(3));
        let err = c.try_bv_columns(16, 64).expect_err("64 > cam_rows");
        assert_eq!(
            err,
            BvDepthError {
                depth: 64,
                cam_rows: c.cam_rows
            }
        );
        assert_eq!(err.to_string(), "BV depth 64 outside 1..=32");
        assert!(c.try_bv_columns(16, 0).is_err());
    }

    #[test]
    fn ring_distance_wraps() {
        let c = ArchConfig::default();
        assert_eq!(c.ring_hops(0, 1), 1);
        assert_eq!(c.ring_hops(0, 15), 1); // wraps around
        assert_eq!(c.ring_hops(2, 10), 8);
        assert_eq!(c.ring_hops(5, 5), 0);
    }

    #[test]
    fn nbva_capacity_scale() {
        // The paper quotes "regexes with at most 64528 STEs after unfolding".
        let c = ArchConfig::default();
        let cap = c.max_nbva_unfolded_states();
        assert_eq!(cap, 64544); // 4064×16 − 15×32; within 0.03% of the paper
    }
}
