//! Random pattern fragment builders shared by the suite generators.

use rand::rngs::StdRng;
use rand::RngExt;

/// A random lowercase literal of `lo..=hi` characters.
pub(crate) fn literal(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    let len = rng.random_range(lo..=hi);
    (0..len)
        .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
        .collect()
}

/// A random single-symbol class in PCRE syntax, weighted toward the shapes
/// real rulesets use. `multi_code` classes (like `[a-z]`) need several CAM
/// columns; when `false` only single-code classes are produced.
pub(crate) fn char_class(rng: &mut StdRng, multi_code: bool) -> String {
    let choices_single: &[&str] = &["\\d", "[0-7]", "[abc]", "x", "q", "[89]"];
    let choices_multi: &[&str] = &["[a-z]", "[A-Z]", "\\w", ".", "[a-f0-9]", "[^\\n]"];
    if multi_code && rng.random_bool(0.5) {
        choices_multi[rng.random_range(0..choices_multi.len())].to_string()
    } else {
        choices_single[rng.random_range(0..choices_single.len())].to_string()
    }
}

/// An amino-acid alternation class like `[ILVF]` (PROSITE motifs).
pub(crate) fn amino_class(rng: &mut StdRng) -> String {
    const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
    let k = rng.random_range(2..=4);
    let mut set: Vec<u8> = Vec::with_capacity(k);
    while set.len() < k {
        let a = AMINO[rng.random_range(0..AMINO.len())];
        if !set.contains(&a) {
            set.push(a);
        }
    }
    format!(
        "[{}]",
        String::from_utf8(set).expect("amino letters are ascii")
    )
}

/// A bounded repetition `cc{m[,n]}` with bounds drawn from `lo..=hi`.
/// About half are exact (`{n}`) and half are ranges (`{m,n}`).
pub(crate) fn bounded_rep(rng: &mut StdRng, lo: u32, hi: u32) -> String {
    let cc = char_class(rng, false);
    let n = rng.random_range(lo..=hi);
    if rng.random_bool(0.5) || n <= lo + 1 {
        format!("{cc}{{{n}}}")
    } else {
        let m = rng.random_range(lo.min(n - 1)..n);
        format!("{cc}{{{m},{n}}}")
    }
}

/// A small alternation of literals, e.g. `(cat|dog)`.
pub(crate) fn union(rng: &mut StdRng) -> String {
    let a = literal(rng, 1, 3);
    let b = literal(rng, 1, 3);
    format!("({a}|{b})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn fragments_parse() {
        let mut r = rng();
        for _ in 0..200 {
            for frag in [
                literal(&mut r, 2, 8),
                char_class(&mut r, true),
                amino_class(&mut r),
                bounded_rep(&mut r, 5, 200),
                union(&mut r),
            ] {
                rap_regex::parse(&frag).unwrap_or_else(|e| panic!("fragment {frag:?} failed: {e}"));
            }
        }
    }

    #[test]
    fn literal_length_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let s = literal(&mut r, 3, 6);
            assert!((3..=6).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn bounded_rep_bounds_in_range() {
        let mut r = rng();
        for _ in 0..100 {
            let s = bounded_rep(&mut r, 10, 20);
            let re = rap_regex::parse(&s).expect("parses");
            let reps = rap_regex::analysis::bounded_repetitions(&re);
            assert_eq!(reps.len(), 1);
            let n = reps[0].max.expect("bounded");
            assert!((10..=20).contains(&n), "{s}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(literal(&mut a, 2, 8), literal(&mut b, 2, 8));
        assert_eq!(bounded_rep(&mut a, 5, 50), bounded_rep(&mut b, 5, 50));
    }
}
