//! ANMLZoo-like suites for the FPGA comparison (Table 4).
//!
//! The paper evaluates RAP against hAP on five ANMLZoo benchmarks. ANMLZoo
//! ships pre-unfolded automata, so — except for ClamAV — these synthetic
//! stand-ins contain no large bounded repetitions; they are dominated by
//! literal chains and general NFA structure.

use crate::builder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ANMLZoo benchmarks of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnmlZoo {
    /// Brill tagging rules: long literal phrases.
    Brill,
    /// ClamAV signatures: the only suite with large bounded repetitions.
    ClamAv,
    /// Dotstar: literal segments joined by `.*` gaps.
    Dotstar,
    /// PowerEN: complex synthetic NFA rules.
    PowerEn,
    /// Snort signatures.
    Snort,
}

impl AnmlZoo {
    /// All benchmarks in Table 4's row order.
    pub fn all() -> [AnmlZoo; 5] {
        [
            AnmlZoo::Brill,
            AnmlZoo::ClamAv,
            AnmlZoo::Dotstar,
            AnmlZoo::PowerEn,
            AnmlZoo::Snort,
        ]
    }

    /// Display name matching Table 4.
    pub fn name(self) -> &'static str {
        match self {
            AnmlZoo::Brill => "Brill",
            AnmlZoo::ClamAv => "ClamAV",
            AnmlZoo::Dotstar => "Dotstar",
            AnmlZoo::PowerEn => "PowerEN",
            AnmlZoo::Snort => "Snort",
        }
    }

    /// hAP's published power in watts (Table 4) — quoted, not simulated.
    pub fn hap_power_w(self) -> f64 {
        match self {
            AnmlZoo::Brill => 1.56,
            AnmlZoo::ClamAv => 1.42,
            AnmlZoo::Dotstar => 1.47,
            AnmlZoo::PowerEn => 1.52,
            AnmlZoo::Snort => 1.41,
        }
    }

    /// hAP's published throughput in Gch/s (Table 4).
    pub fn hap_throughput_gchps(self) -> f64 {
        match self {
            AnmlZoo::Snort => 0.15,
            _ => 0.18,
        }
    }

    /// Generates `n` patterns for this benchmark, deterministic in `seed`.
    pub fn generate(self, n: usize, seed: u64) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(seed ^ (self.name().len() as u64) << 24);
        (0..n).map(|_| self.pattern(&mut rng)).collect()
    }

    fn pattern(self, rng: &mut StdRng) -> String {
        match self {
            AnmlZoo::Brill => {
                // Phrase rules: two or three words with single spaces.
                let words = rng.random_range(2..4u8);
                let mut out = builder::literal(rng, 3, 7);
                for _ in 1..words {
                    out.push(' ');
                    out.push_str(&builder::literal(rng, 3, 7));
                }
                out
            }
            AnmlZoo::ClamAv => {
                let prefix = builder::literal(rng, 4, 8);
                let rep = builder::bounded_rep(rng, 64, 512);
                let suffix = builder::literal(rng, 3, 6);
                format!("{prefix}{rep}{suffix}")
            }
            AnmlZoo::Dotstar => {
                let parts = rng.random_range(2..4u8);
                let mut out = builder::literal(rng, 3, 6);
                for _ in 1..parts {
                    out.push_str(".*");
                    out.push_str(&builder::literal(rng, 3, 6));
                }
                out
            }
            AnmlZoo::PowerEn => {
                format!(
                    "{}({}|{}{}*){}",
                    builder::literal(rng, 2, 4),
                    builder::literal(rng, 2, 3),
                    builder::char_class(rng, true),
                    builder::char_class(rng, true),
                    builder::literal(rng, 2, 4),
                )
            }
            AnmlZoo::Snort => {
                let prefix = builder::literal(rng, 3, 6);
                if rng.random_bool(0.4) {
                    format!("{prefix}{}", builder::bounded_rep(rng, 12, 64))
                } else {
                    format!("{prefix}.*{}", builder::literal(rng, 3, 6))
                }
            }
        }
    }
}

impl fmt::Display for AnmlZoo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_compiler::{Compiler, CompilerConfig, Mode};

    #[test]
    fn patterns_parse_and_compile() {
        let compiler = Compiler::new(CompilerConfig::default());
        for suite in AnmlZoo::all() {
            for p in suite.generate(40, 13) {
                let re = rap_regex::parse(&p).unwrap_or_else(|e| panic!("{p}: {e}"));
                compiler
                    .compile(&re)
                    .unwrap_or_else(|e| panic!("{suite}: {p}: {e}"));
            }
        }
    }

    #[test]
    fn only_clamav_keeps_large_repetitions() {
        let compiler = Compiler::new(CompilerConfig::default());
        for suite in AnmlZoo::all() {
            let nbva = suite
                .generate(100, 21)
                .iter()
                .filter(|p| {
                    let re = rap_regex::parse(p).expect("parses");
                    compiler.decide(&re) == Mode::Nbva
                })
                .count();
            if suite == AnmlZoo::ClamAv {
                assert!(nbva > 80, "{suite}: {nbva} NBVA patterns");
            } else if suite == AnmlZoo::Snort {
                assert!(nbva > 10, "{suite}: {nbva}");
            } else {
                assert_eq!(nbva, 0, "{suite} must have no large repetitions");
            }
        }
    }

    #[test]
    fn published_hap_numbers() {
        assert_eq!(AnmlZoo::Brill.hap_power_w(), 1.56);
        assert_eq!(AnmlZoo::Snort.hap_throughput_gchps(), 0.15);
        assert_eq!(AnmlZoo::Dotstar.hap_throughput_gchps(), 0.18);
    }

    #[test]
    fn deterministic() {
        assert_eq!(AnmlZoo::Brill.generate(5, 1), AnmlZoo::Brill.generate(5, 1));
    }
}
