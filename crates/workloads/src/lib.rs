//! Synthetic workload generators for the RAP reproduction.
//!
//! The paper evaluates on seven suites of real rulesets (Snort, Suricata,
//! Prosite, Yara, ClamAV, SpamAssassin, RegexLib — >20,000 regexes from a
//! Zenodo artifact) plus ANMLZoo for the FPGA comparison. Those corpora are
//! not redistributable here, so this crate synthesizes suites whose
//! *structural mix* matches Fig. 1 of the paper: the fraction of patterns
//! that compile to NFA/NBVA/LNFA, the magnitude of bounded-repetition
//! bounds, and the pattern-length distributions are tuned per suite (see
//! [`Suite::profile`]). The compiler/mapper/simulator code paths exercised
//! are identical to the real rulesets'.
//!
//! # Example
//!
//! ```
//! use rap_workloads::{Suite, generate_patterns, generate_input};
//!
//! let patterns = generate_patterns(Suite::ClamAv, 50, 7);
//! assert_eq!(patterns.len(), 50);
//! let input = generate_input(&patterns, 10_000, 0.02, 7);
//! assert_eq!(input.len(), 10_000);
//! ```

pub mod anmlzoo;
mod builder;
mod input;
mod suites;

pub use input::{generate_input, sample_match};
pub use suites::{generate_patterns, ModeMix, Suite, SuiteProfile};
