//! Input-stream synthesis: background traffic with planted matches at a
//! controlled rate (the paper's streams keep match rates below 10%, §3.3).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rap_regex::{parse, Regex};

/// Draws one string from the language of `regex` (unbounded loops take 0–2
/// iterations). Used to plant true matches into synthetic streams.
pub fn sample_match(regex: &Regex, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::new();
    emit(regex, rng, &mut out);
    out
}

fn emit(regex: &Regex, rng: &mut StdRng, out: &mut Vec<u8>) {
    match regex {
        Regex::Empty => {}
        Regex::Class(cc) => {
            // Pick a uniformly random member byte.
            let n = cc.len();
            assert!(n > 0, "cannot sample from the empty class");
            let k = rng.random_range(0..n);
            let byte = cc.iter().nth(k as usize).expect("index within class size");
            out.push(byte);
        }
        Regex::Concat(parts) => {
            for p in parts {
                emit(p, rng, out);
            }
        }
        Regex::Alt(parts) => {
            let pick = rng.random_range(0..parts.len());
            emit(&parts[pick], rng, out);
        }
        Regex::Star(inner) => {
            for _ in 0..rng.random_range(0..3u8) {
                emit(inner, rng, out);
            }
        }
        Regex::Plus(inner) => {
            for _ in 0..rng.random_range(1..4u8) {
                emit(inner, rng, out);
            }
        }
        Regex::Opt(inner) => {
            if rng.random_bool(0.5) {
                emit(inner, rng, out);
            }
        }
        Regex::Repeat { inner, min, max } => {
            let hi = max.unwrap_or(min + 2);
            let k = rng.random_range(*min..=hi);
            for _ in 0..k {
                emit(inner, rng, out);
            }
        }
    }
}

/// Generates a `len`-byte stream of printable background bytes with
/// occurrences of the given patterns planted so that roughly
/// `match_rate × len` *bytes* belong to planted matches (the paper's
/// streams keep match rates below 10%; long signatures therefore occur
/// proportionally less often than short ones). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if a pattern fails to parse (the caller generated them).
pub fn generate_input(patterns: &[String], len: usize, match_rate: f64, seed: u64) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&match_rate), "match rate out of range");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let regexes: Vec<Regex> = patterns
        .iter()
        .map(|p| parse(p).unwrap_or_else(|e| panic!("workload pattern {p:?}: {e}")))
        .collect();
    // Byte-budgeted planting: the probability of *starting* a plant at a
    // given position is scaled by the mean planted length so that planted
    // bytes — not planted events — make up `match_rate` of the stream.
    let avg_len = {
        let mut total = 0usize;
        let mut count = 0usize;
        for re in &regexes {
            for _ in 0..8 {
                total += sample_match(re, &mut rng).len();
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            (total as f64 / count as f64).max(1.0)
        }
    };
    let p_start = (match_rate / avg_len).min(0.5);
    let mut out = Vec::with_capacity(len + 64);
    while out.len() < len {
        if !regexes.is_empty() && rng.random_bool(p_start) {
            let pick = rng.random_range(0..regexes.len());
            let planted = sample_match(&regexes[pick], &mut rng);
            out.extend_from_slice(&planted);
        } else {
            // Background byte: printable ASCII, space-heavy like text/traffic.
            let b = if rng.random_bool(0.15) {
                b' '
            } else {
                rng.random_range(0x21..0x7f)
            };
            out.push(b);
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_automata::nfa::Nfa;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn sampled_strings_match_their_pattern() {
        let mut r = rng();
        for pattern in [
            "abc",
            "a[bc]d",
            "x{3,7}",
            "a(b|c)*d",
            "p.{2,5}q",
            "(ab){2}c?",
            "m+n",
        ] {
            let re = parse(pattern).expect("parses");
            let nfa = Nfa::from_regex(&re);
            for _ in 0..50 {
                let s = sample_match(&re, &mut r);
                if s.is_empty() {
                    assert!(re.nullable(), "{pattern} produced ε but is not nullable");
                    continue;
                }
                let ends = nfa.match_ends(&s);
                assert!(
                    ends.contains(&s.len()),
                    "{pattern}: sampled {s:?} does not match to the end"
                );
            }
        }
    }

    #[test]
    fn input_length_exact() {
        let patterns = vec!["abc".to_string()];
        for len in [0usize, 1, 100, 4096] {
            assert_eq!(generate_input(&patterns, len, 0.01, 5).len(), len);
        }
    }

    #[test]
    fn input_deterministic() {
        let patterns = vec!["abc".to_string(), "x{4}".to_string()];
        assert_eq!(
            generate_input(&patterns, 1000, 0.02, 9),
            generate_input(&patterns, 1000, 0.02, 9)
        );
    }

    #[test]
    fn planted_matches_appear() {
        let patterns = vec!["zqzqzq".to_string()];
        let input = generate_input(&patterns, 20_000, 0.05, 1);
        let nfa = Nfa::from_regex(&parse("zqzqzq").expect("parses"));
        assert!(
            !nfa.match_ends(&input).is_empty(),
            "no planted matches found at 5% rate"
        );
    }

    #[test]
    fn zero_rate_means_background_only() {
        // With match_rate 0 and a pattern using bytes outside the printable
        // background (newline), no match can occur.
        let patterns = vec!["\\n\\n".to_string()];
        let input = generate_input(&patterns, 5_000, 0.0, 2);
        assert!(!input.contains(&b'\n'));
    }

    #[test]
    #[should_panic(expected = "match rate out of range")]
    fn bad_rate_panics() {
        let _ = generate_input(&[], 10, 1.5, 0);
    }
}
