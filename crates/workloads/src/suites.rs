//! The seven benchmark suites and their structural profiles (Fig. 1).

use crate::builder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven real-world suites of §5.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// User-input validation patterns (regexlib.com) — NFA-dominated.
    RegexLib,
    /// Spam-detection rules — LNFA-majority with small bounded repetitions.
    SpamAssassin,
    /// Network-intrusion signatures — mixed NFA/NBVA.
    Snort,
    /// Network-intrusion signatures — mixed NFA/NBVA.
    Suricata,
    /// Protein motifs (PROSITE) — LNFA-majority, no NBVA.
    Prosite,
    /// Malware-hunting rules — NBVA-dominated with medium bounds.
    Yara,
    /// Antivirus signatures — NBVA-dominated with large bounds.
    ClamAv,
}

impl Suite {
    /// All suites in the paper's table order.
    pub fn all() -> [Suite; 7] {
        [
            Suite::RegexLib,
            Suite::SpamAssassin,
            Suite::Snort,
            Suite::Suricata,
            Suite::Prosite,
            Suite::Yara,
            Suite::ClamAv,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Suite::RegexLib => "RegexLib",
            Suite::SpamAssassin => "SpamAssassin",
            Suite::Snort => "Snort",
            Suite::Suricata => "Suricata",
            Suite::Prosite => "Prosite",
            Suite::Yara => "Yara",
            Suite::ClamAv => "ClamAV",
        }
    }

    /// The structural profile used by the generator.
    pub fn profile(self) -> SuiteProfile {
        match self {
            // Mostly complex validation patterns with loops/unions that
            // only a general NFA handles; few and small repetitions.
            Suite::RegexLib => SuiteProfile {
                mix: ModeMix {
                    nfa: 0.65,
                    nbva: 0.10,
                    lnfa: 0.25,
                },
                bound_lo: 8,
                bound_hi: 24,
                chain_lo: 6,
                chain_hi: 20,
                amino: false,
                complex_class_rate: 0.05,
                bv_depth: 4,
                bin_size: 16,
            },
            // Spam phrases: long literal chains; repetitions are small
            // (`.{1,8}`-style gaps).
            Suite::SpamAssassin => SuiteProfile {
                mix: ModeMix {
                    nfa: 0.15,
                    nbva: 0.25,
                    lnfa: 0.60,
                },
                bound_lo: 6,
                bound_hi: 16,
                chain_lo: 12,
                chain_hi: 40,
                amino: false,
                complex_class_rate: 0.02,
                bv_depth: 4,
                bin_size: 16,
            },
            Suite::Snort => SuiteProfile {
                mix: ModeMix {
                    nfa: 0.35,
                    nbva: 0.45,
                    lnfa: 0.20,
                },
                bound_lo: 16,
                bound_hi: 96,
                chain_lo: 12,
                chain_hi: 40,
                amino: false,
                complex_class_rate: 0.02,
                bv_depth: 8,
                bin_size: 16,
            },
            Suite::Suricata => SuiteProfile {
                mix: ModeMix {
                    nfa: 0.35,
                    nbva: 0.45,
                    lnfa: 0.20,
                },
                bound_lo: 16,
                bound_hi: 96,
                chain_lo: 12,
                chain_hi: 40,
                amino: false,
                complex_class_rate: 0.02,
                bv_depth: 8,
                bin_size: 16,
            },
            // Motifs: chains of amino-acid classes; no bounded repetitions
            // survive to NBVA ("No regex has been compiled to NBVA in
            // Prosite", §5.3).
            Suite::Prosite => SuiteProfile {
                mix: ModeMix {
                    nfa: 0.25,
                    nbva: 0.0,
                    lnfa: 0.75,
                },
                bound_lo: 0,
                bound_hi: 0,
                chain_lo: 8,
                chain_hi: 24,
                amino: true,
                complex_class_rate: 0.0,
                bv_depth: 4,
                bin_size: 32,
            },
            // `AppPath=[C-Z]:\\…{1,64}`-style rules: NBVA-heavy with
            // medium bounds and complex prefixes.
            Suite::Yara => SuiteProfile {
                mix: ModeMix {
                    nfa: 0.15,
                    nbva: 0.60,
                    lnfa: 0.25,
                },
                bound_lo: 32,
                bound_hi: 160,
                chain_lo: 16,
                chain_hi: 60,
                amino: false,
                complex_class_rate: 0.005,
                bv_depth: 16,
                bin_size: 8,
            },
            // Virus signatures with very large gaps: >80% NBVA, bounds in
            // the hundreds to thousands.
            Suite::ClamAv => SuiteProfile {
                mix: ModeMix {
                    nfa: 0.10,
                    nbva: 0.85,
                    lnfa: 0.05,
                },
                bound_lo: 128,
                bound_hi: 1200,
                chain_lo: 30,
                chain_hi: 120,
                amino: false,
                complex_class_rate: 0.0,
                bv_depth: 32,
                bin_size: 4,
            },
        }
    }

    /// The DSE-chosen BV depth for this suite (Fig. 10(a), red labels).
    pub fn chosen_bv_depth(self) -> u32 {
        self.profile().bv_depth
    }

    /// The DSE-chosen bin size for this suite (Fig. 10(b), red labels).
    pub fn chosen_bin_size(self) -> u32 {
        self.profile().bin_size
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Target fraction of patterns per compiled mode (sums to 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModeMix {
    /// Fraction compiling to basic NFA.
    pub nfa: f64,
    /// Fraction compiling to NBVA.
    pub nbva: f64,
    /// Fraction compiling to LNFA.
    pub lnfa: f64,
}

/// Generator knobs for one suite.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuiteProfile {
    /// Target mode mix (Fig. 1).
    pub mix: ModeMix,
    /// Smallest bounded-repetition bound.
    pub bound_lo: u32,
    /// Largest bounded-repetition bound.
    pub bound_hi: u32,
    /// Shortest chain length for LNFA-target patterns.
    pub chain_lo: usize,
    /// Longest chain length.
    pub chain_hi: usize,
    /// Use amino-acid classes (PROSITE style).
    pub amino: bool,
    /// Probability that a chain position is a complex (multi-code) class
    /// like `\w`, which forces the whole chain onto the one-hot
    /// local-switch path. Real virus/malware literals are hex strings
    /// (zero), while validation patterns use richer classes.
    pub complex_class_rate: f64,
    /// Depth chosen by the design-space exploration (Fig. 10(a)).
    pub bv_depth: u32,
    /// Bin size chosen by the design-space exploration (Fig. 10(b)).
    pub bin_size: u32,
}

/// Generates `n` pattern strings for a suite, deterministically from
/// `seed`.
pub fn generate_patterns(suite: Suite, n: usize, seed: u64) -> Vec<String> {
    let profile = suite.profile();
    // Mix the suite into the seed so different suites diverge even with
    // the same seed.
    let mut rng = StdRng::seed_from_u64(
        seed ^ (suite.name().len() as u64) << 32 ^ suite.name().bytes().map(u64::from).sum::<u64>(),
    );
    (0..n)
        .map(|_| {
            let roll: f64 = rng.random();
            if roll < profile.mix.nbva {
                nbva_pattern(&mut rng, &profile)
            } else if roll < profile.mix.nbva + profile.mix.lnfa {
                lnfa_pattern(&mut rng, &profile)
            } else {
                nfa_pattern(&mut rng, &profile)
            }
        })
        .collect()
}

/// A pattern that keeps a bounded repetition above the unfolding threshold:
/// literal prefix + `cc{bound}` + literal suffix. The literals scale with
/// the suite's signature length — real ClamAV/Yara rules are long hex or
/// string literals separated by gaps, so the repetition is only part of
/// the pattern, which keeps the NBVA compression ratio in the single
/// digits rather than ∝ the bound.
fn nbva_pattern(rng: &mut StdRng, profile: &SuiteProfile) -> String {
    let lit_lo = (profile.chain_lo / 3).max(3);
    let lit_hi = (profile.chain_hi / 3).max(lit_lo + 2);
    let prefix = builder::literal(rng, lit_lo, lit_hi);
    let rep = builder::bounded_rep(rng, profile.bound_lo.max(6), profile.bound_hi.max(8));
    let mut pattern = format!("{prefix}{rep}");
    if rng.random_bool(0.7) {
        pattern.push_str(&builder::literal(rng, lit_lo, lit_hi));
    }
    if rng.random_bool(0.3) {
        // A second, smaller repetition (Snort/ClamAV often chain gaps).
        let rep2 = builder::bounded_rep(rng, 6, profile.bound_lo.max(10));
        pattern.push_str(&rep2);
        pattern.push_str(&builder::literal(rng, lit_lo, lit_hi));
    }
    pattern
}

/// A chain of classes/literals that linearizes: pure class chains, plus an
/// occasional small union that the §4.2 rewriting distributes.
fn lnfa_pattern(rng: &mut StdRng, profile: &SuiteProfile) -> String {
    let len = rng.random_range(profile.chain_lo..=profile.chain_hi);
    let mut out = String::new();
    let mut emitted = 0;
    while emitted < len {
        if profile.amino {
            if rng.random_bool(0.6) {
                out.push_str(&builder::amino_class(rng));
            } else {
                out.push((b'A' + rng.random_range(0..20u8)) as char);
            }
            emitted += 1;
        } else if rng.random_bool(0.8) {
            let lit = builder::literal(rng, 1, 3);
            emitted += lit.len();
            out.push_str(&lit);
        } else if rng.random_bool(profile.complex_class_rate.min(1.0)) {
            // A multi-code class: the chain will take the one-hot path.
            out.push_str("\\w");
            emitted += 1;
        } else {
            // Single-code classes (the 84% regime of §3.2).
            const SINGLE: &[&str] = &["[a-z]", "[A-Z]", ".", "[0-9a-f]", "\\d", "[^\\n]", "[abc]"];
            out.push_str(SINGLE[rng.random_range(0..SINGLE.len())]);
            emitted += 1;
        }
    }
    // A small union rewrites into 2 chains (still comfortably under the
    // 2× budget for these lengths).
    if !profile.amino && rng.random_bool(0.1) && len >= 6 {
        out.push_str(&builder::union(rng));
    }
    out
}

/// A pattern needing general NFA execution: unbounded loops and unions of
/// unequal shapes.
fn nfa_pattern(rng: &mut StdRng, profile: &SuiteProfile) -> String {
    let head = builder::literal(rng, 2, 5);
    let tail = builder::literal(rng, 2, 5);
    match rng.random_range(0..4u8) {
        0 => format!("{head}.*{tail}"),
        1 => format!(
            "{head}({tail}|{}.*{}){}",
            builder::literal(rng, 1, 3),
            builder::literal(rng, 1, 2),
            builder::literal(rng, 1, 3)
        ),
        2 => format!("{head}{}+{tail}", builder::char_class(rng, true)),
        _ => {
            let k = if profile.amino {
                3
            } else {
                rng.random_range(2..4)
            };
            let mid: String = (0..k).map(|_| builder::char_class(rng, true)).collect();
            format!("{head}{mid}*{tail}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_compiler::{Compiler, CompilerConfig, Mode};

    fn mode_counts(suite: Suite, n: usize) -> (usize, usize, usize) {
        let compiler = Compiler::new(CompilerConfig::default());
        let mut counts = (0usize, 0usize, 0usize);
        for p in generate_patterns(suite, n, 1234) {
            let re = rap_regex::parse(&p).unwrap_or_else(|e| panic!("{p}: {e}"));
            match compiler.decide(&re) {
                Mode::Nfa => counts.0 += 1,
                Mode::Nbva => counts.1 += 1,
                Mode::Lnfa => counts.2 += 1,
            }
        }
        counts
    }

    #[test]
    fn all_patterns_parse_and_compile() {
        let compiler = Compiler::new(CompilerConfig::default());
        for suite in Suite::all() {
            for p in generate_patterns(suite, 60, 7) {
                let re = rap_regex::parse(&p).unwrap_or_else(|e| panic!("{p}: {e}"));
                compiler
                    .compile(&re)
                    .unwrap_or_else(|e| panic!("{suite}: {p}: {e}"));
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(
            generate_patterns(Suite::Snort, 20, 5),
            generate_patterns(Suite::Snort, 20, 5)
        );
        assert_ne!(
            generate_patterns(Suite::Snort, 20, 5),
            generate_patterns(Suite::Snort, 20, 6)
        );
    }

    #[test]
    fn suites_differ_for_same_seed() {
        assert_ne!(
            generate_patterns(Suite::Snort, 10, 5),
            generate_patterns(Suite::Yara, 10, 5)
        );
    }

    #[test]
    fn clamav_is_nbva_dominated() {
        let (_, nbva, _) = mode_counts(Suite::ClamAv, 300);
        assert!(
            nbva as f64 / 300.0 > 0.75,
            "NBVA fraction {}",
            nbva as f64 / 300.0
        );
    }

    #[test]
    fn prosite_has_no_nbva_and_lnfa_majority() {
        let (_, nbva, lnfa) = mode_counts(Suite::Prosite, 300);
        assert_eq!(nbva, 0, "Prosite must not produce NBVA patterns");
        assert!(
            lnfa as f64 / 300.0 > 0.55,
            "LNFA fraction {}",
            lnfa as f64 / 300.0
        );
    }

    #[test]
    fn regexlib_is_nfa_majority() {
        let (nfa, _, _) = mode_counts(Suite::RegexLib, 300);
        assert!(
            nfa as f64 / 300.0 > 0.5,
            "NFA fraction {}",
            nfa as f64 / 300.0
        );
    }

    #[test]
    fn spamassassin_is_lnfa_majority() {
        let (_, _, lnfa) = mode_counts(Suite::SpamAssassin, 300);
        assert!(
            lnfa as f64 / 300.0 > 0.45,
            "LNFA fraction {}",
            lnfa as f64 / 300.0
        );
    }

    #[test]
    fn clamav_bounds_are_large() {
        let patterns = generate_patterns(Suite::ClamAv, 100, 3);
        let mut max_bound = 0;
        for p in &patterns {
            let re = rap_regex::parse(p).expect("parses");
            if let Some(b) = rap_regex::analysis::max_bound(&re) {
                max_bound = max_bound.max(b);
            }
        }
        assert!(max_bound > 500, "largest ClamAV bound {max_bound}");
    }

    #[test]
    fn suite_names_and_order() {
        let names: Vec<&str> = Suite::all().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "RegexLib",
                "SpamAssassin",
                "Snort",
                "Suricata",
                "Prosite",
                "Yara",
                "ClamAV"
            ]
        );
    }
}
