//! Differential testing of the hardware simulators against the software
//! NFA interpreter — the §5.2 consistency check, fuzzed.

use proptest::prelude::*;
use rap_automata::nfa::Nfa;
use rap_circuit::Machine;
use rap_regex::{CharClass, Regex};
use rap_sim::{MatchEvent, Simulator};

/// Random pattern sets that exercise all three RAP modes.
fn arb_pattern() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::literal_byte(b'a')),
        Just(Regex::literal_byte(b'b')),
        Just(Regex::literal_byte(b'c')),
        Just(Regex::Class(CharClass::from_bytes([b'a', b'b']))),
        (5u32..40).prop_map(|n| Regex::repeat(Regex::literal_byte(b'c'), n, Some(n))),
        (1u32..20, 1u32..20)
            .prop_map(|(m, k)| { Regex::repeat(Regex::literal_byte(b'b'), m, Some(m + k)) }),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::opt),
            inner.prop_map(Regex::star),
        ]
    })
    // Stateless patterns (ε-only) do not compile to hardware.
    .prop_filter("needs at least one state", |re| re.unfolded_size() > 0)
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            6 => Just(b'a'),
            6 => Just(b'b'),
            12 => Just(b'c'),
            1 => Just(b'x'),
        ],
        0..120,
    )
}

fn reference(patterns: &[Regex], input: &[u8]) -> Vec<MatchEvent> {
    let mut out = Vec::new();
    for (i, re) in patterns.iter().enumerate() {
        for end in Nfa::from_regex(re).match_ends(input) {
            out.push(MatchEvent { pattern: i, end });
        }
    }
    out.sort_unstable_by_key(|m| (m.end, m.pattern));
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every machine reports exactly the software interpreter's matches on
    /// random multi-pattern workloads.
    #[test]
    fn machines_match_ground_truth(
        patterns in prop::collection::vec(arb_pattern(), 1..5),
        input in arb_input(),
        machine_idx in 0usize..4,
    ) {
        let machine = Machine::all()[machine_idx];
        let sim = Simulator::new(machine);
        // Oversized random patterns may legitimately exceed one array.
        let Ok(result) = sim.run(&patterns, &input) else {
            return Ok(());
        };
        let expect = reference(&patterns, &input);
        prop_assert_eq!(
            result.matches, expect,
            "machine {} on {:?}",
            machine,
            patterns.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    /// Cycle count is input length plus stalls, and only NBVA-capable
    /// machines ever stall.
    #[test]
    fn cycle_accounting_is_consistent(
        patterns in prop::collection::vec(arb_pattern(), 1..4),
        input in arb_input(),
    ) {
        for machine in Machine::all() {
            let sim = Simulator::new(machine);
            let Ok(result) = sim.run(&patterns, &input) else { return Ok(()) };
            prop_assert!(result.metrics.cycles >= input.len() as u64);
            if matches!(machine, Machine::Ca | Machine::Cama) {
                prop_assert_eq!(result.stall_cycles, 0, "machine {}", machine);
                prop_assert_eq!(result.metrics.cycles, input.len() as u64);
            }
        }
    }

    /// Energy and area are positive whenever work is done, and RAP's
    /// automatic mode choice never loses matches relative to forcing NFA.
    #[test]
    fn rap_auto_equals_forced_nfa(
        patterns in prop::collection::vec(arb_pattern(), 1..4),
        input in arb_input(),
    ) {
        let sim = Simulator::new(Machine::Rap);
        let Ok(auto) = sim.run(&patterns, &input) else { return Ok(()) };
        let Ok(compiled) = sim.compile_forced(&patterns, rap_compiler::Mode::Nfa) else {
            return Ok(());
        };
        let mapping = sim.map(&compiled);
        let forced = sim.simulate(&compiled, &mapping, &input);
        prop_assert_eq!(auto.matches, forced.matches);
        if !input.is_empty() {
            prop_assert!(auto.metrics.energy_uj > 0.0);
            prop_assert!(auto.metrics.area_mm2 > 0.0);
        }
    }
}
