//! Bank-level streaming simulation: the two-level buffer hierarchy of
//! §3.3, cycle-interleaved across arrays.
//!
//! The batch [`crate::simulate`] entry point runs each array to completion
//! independently (correct for completion time, since arrays are decoupled
//! and the bank finishes with its slowest array). This module simulates
//! the hierarchy explicitly, cycle by cycle:
//!
//! * a **bank input ping-pong buffer** (2 × 128 entries) fed by DMA — an
//!   array can only read bytes inside the bank window, and a page is
//!   recycled only once *every* array has consumed it, so a stalling NBVA
//!   array eventually back-pressures the fast arrays;
//! * per-array **8-entry input FIFOs** refilled by the polling arbiter
//!   (one byte per array per cycle) that hide short bit-vector phases;
//! * per-array **2-entry output FIFOs** draining into the **64-entry bank
//!   output buffer**; when it fills, an interrupt asks the host CPU to
//!   collect the reports (§3.3).
//!
//! The result carries the same [`RunResult`] as the batch path (byte-
//! identical matches) plus [`BankStats`] — stalls, starvation, buffer
//! occupancy, interrupts — for studying the buffering itself.

use crate::array::{build_array, ArraySim};
use crate::cost::CostModel;
use crate::result::{MatchEvent, RunResult};
use rap_arch::buffers::Fifo;
use rap_arch::config::ArchConfig;
use rap_circuit::energy::Category;
use rap_circuit::{EnergyMeter, Machine, Metrics};
use rap_compiler::Compiled;
use rap_mapper::Mapping;
use rap_telemetry::{ProbeEvent, Telemetry};

/// Buffer-hierarchy statistics from one streaming run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Cycles each array spent in bit-vector-processing stalls.
    pub stall_cycles: Vec<u64>,
    /// Cycles each array spent starved (input FIFO empty because the bank
    /// window was held back by a slower array or the stream ended).
    pub starved_cycles: Vec<u64>,
    /// Largest observed skew in consumed bytes between the fastest and
    /// slowest array.
    pub max_skew: usize,
    /// Host interrupts raised by a full bank output buffer.
    pub output_interrupts: u64,
    /// Match reports that waited in a full array output FIFO (backpressure
    /// events; the report is delayed, never lost).
    pub output_backpressure: u64,
    /// High-water mark of bytes resident across all array input FIFOs in
    /// any one cycle.
    pub max_input_fifo_bytes: u64,
    /// High-water mark of match records resident across array output
    /// FIFOs plus the bank output buffer in any one cycle.
    pub max_output_fifo_records: u64,
}

/// Per-array streaming state.
struct ArrayLane<'a> {
    sim: Box<dyn ArraySim + 'a>,
    input_fifo: Fifo<(usize, u8)>,
    output_fifo: Fifo<MatchEvent>,
    /// Next input byte index the arbiter will fetch for this lane.
    fetch_pos: usize,
    /// Bytes consumed by the array so far.
    consumed: usize,
    stalled_cycles: u64,
    starved_cycles: u64,
    /// Match reports this lane has generated (pre-dedup, pre-anchoring).
    produced: u64,
    /// Matches produced this cycle, en route to the output FIFO.
    pending: Vec<MatchEvent>,
}

/// Streams `input` through the bank buffer hierarchy.
///
/// The mapping must have passed the verify gate, exactly as for the batch
/// [`crate::simulate`] entry point; debug builds assert this at the door.
///
/// Matches are byte-identical to [`crate::simulate`]; cycle counts include
/// the buffering effects (they are ≥ the batch path's for the same
/// workload).
pub fn simulate_streaming(
    compiled: &[Compiled],
    mapping: &Mapping,
    input: &[u8],
    machine: Machine,
) -> (RunResult, BankStats) {
    simulate_streaming_inner(compiled, mapping, input, machine, None)
}

/// Like [`simulate_streaming`], with cycle-sampled probe events (per-lane
/// array samples plus bank window/FIFO occupancy) and run totals recorded
/// into `telemetry` under `label`. Tracing only observes: the returned
/// result and stats are identical to the untraced path's.
pub fn simulate_streaming_traced(
    compiled: &[Compiled],
    mapping: &Mapping,
    input: &[u8],
    machine: Machine,
    telemetry: &Telemetry,
    label: &str,
) -> (RunResult, BankStats) {
    simulate_streaming_inner(compiled, mapping, input, machine, Some((telemetry, label)))
}

fn simulate_streaming_inner(
    compiled: &[Compiled],
    mapping: &Mapping,
    input: &[u8],
    machine: Machine,
    telemetry: Option<(&Telemetry, &str)>,
) -> (RunResult, BankStats) {
    crate::debug_assert_verified(compiled, mapping);
    let arch = ArchConfig::default();
    let cost = CostModel::for_machine(machine);
    let mut meter = EnergyMeter::new();
    let mut lanes: Vec<ArrayLane<'_>> = mapping
        .arrays
        .iter()
        .map(|plan| ArrayLane {
            sim: build_array(compiled, plan, &cost),
            input_fifo: Fifo::new(arch.array_input_entries as usize),
            output_fifo: Fifo::new(arch.array_output_entries as usize),
            fetch_pos: 0,
            consumed: 0,
            stalled_cycles: 0,
            starved_cycles: 0,
            produced: 0,
            pending: Vec::new(),
        })
        .collect();
    let window = 2 * arch.bank_input_entries as usize; // ping-pong pages
    let mut bank_output: Fifo<MatchEvent> = Fifo::new(arch.bank_output_entries as usize);
    let mut collected: Vec<MatchEvent> = Vec::new();
    let mut cycles: u64 = 0;
    let mut interrupts: u64 = 0;
    let mut backpressure: u64 = 0;
    let mut max_skew = 0usize;
    let mut max_input_fifo_bytes = 0u64;
    let mut max_output_fifo_records = 0u64;
    let mut probe = telemetry.map(|(tel, label)| tel.probe(label));

    let done = |lanes: &[ArrayLane<'_>]| {
        lanes
            .iter()
            .all(|l| l.consumed == input.len() && !l.sim.stalled())
    };

    while !lanes.is_empty() && !done(&lanes) {
        cycles += 1;
        // The bank window: DMA cannot recycle a page until every array has
        // drained it, so the slowest lane bounds everyone's fetch range.
        let min_consumed = lanes.iter().map(|l| l.consumed).min().unwrap_or(0);
        let max_consumed = lanes.iter().map(|l| l.consumed).max().unwrap_or(0);
        max_skew = max_skew.max(max_consumed - min_consumed);
        let fetch_limit = (min_consumed + window).min(input.len());

        if let Some(probe) = probe.as_mut() {
            if (cycles - 1).is_multiple_of(u64::from(probe.sample_every())) {
                probe.push(ProbeEvent::Bank {
                    cycle: cycles - 1,
                    min_consumed: min_consumed as u64,
                    max_consumed: max_consumed as u64,
                    input_fifo_bytes: lanes.iter().map(|l| l.input_fifo.len() as u64).sum(),
                    output_fifo_records: lanes
                        .iter()
                        .map(|l| l.output_fifo.len() as u64)
                        .sum::<u64>()
                        + bank_output.len() as u64,
                    interrupts,
                });
                for (index, lane) in lanes.iter().enumerate() {
                    let obs = lane.sim.observe();
                    probe.push(ProbeEvent::Array {
                        cycle: cycles - 1,
                        array: index as u32,
                        active_states: obs.active_states,
                        powered_tiles: obs.powered_tiles,
                        stalled: lane.sim.stalled(),
                    });
                }
            }
        }

        for lane in lanes.iter_mut() {
            // Polling arbiter: one byte per lane per cycle into its FIFO.
            if !lane.input_fifo.is_full() && lane.fetch_pos < fetch_limit {
                lane.input_fifo
                    .push((lane.fetch_pos, input[lane.fetch_pos]))
                    .unwrap_or_else(|_| unreachable!("checked not full"));
                lane.fetch_pos += 1;
            }
            // Array cycle.
            let pending_before = lane.pending.len();
            if lane.sim.stalled() {
                lane.sim
                    .tick(None, lane.consumed, &mut meter, &mut lane.pending);
                lane.stalled_cycles += 1;
            } else if let Some(&(offset, byte)) = lane.input_fifo.front() {
                lane.input_fifo.pop();
                lane.sim
                    .tick(Some(byte), offset, &mut meter, &mut lane.pending);
                lane.consumed = offset + 1;
            } else if lane.consumed < input.len() {
                lane.starved_cycles += 1;
            }
            lane.produced += (lane.pending.len() - pending_before) as u64;
            // Reports: pending → array output FIFO (2-deep).
            while let Some(&event) = lane.pending.first() {
                match lane.output_fifo.push(event) {
                    Ok(()) => {
                        lane.pending.remove(0);
                    }
                    Err(_) => {
                        backpressure += 1;
                        break;
                    }
                }
            }
        }
        // Bus: one report per lane per cycle into the bank output buffer.
        for lane in lanes.iter_mut() {
            if let Some(event) = lane.output_fifo.pop() {
                if bank_output.is_full() {
                    // Interrupt: the host drains the whole buffer (§3.3).
                    interrupts += 1;
                    while let Some(e) = bank_output.pop() {
                        collected.push(e);
                    }
                }
                bank_output
                    .push(event)
                    .unwrap_or_else(|_| unreachable!("just drained"));
                meter.charge(Category::Buffer, cost.buffer_pj);
            }
        }
        // FIFO high-water marks, under the same occupancy definitions as
        // the cycle-sampled probe above (but tracked every cycle).
        let input_occupancy: u64 = lanes.iter().map(|l| l.input_fifo.len() as u64).sum();
        let output_occupancy: u64 = lanes
            .iter()
            .map(|l| l.output_fifo.len() as u64)
            .sum::<u64>()
            + bank_output.len() as u64;
        max_input_fifo_bytes = max_input_fifo_bytes.max(input_occupancy);
        max_output_fifo_records = max_output_fifo_records.max(output_occupancy);
    }
    // Final drain.
    for lane in lanes.iter_mut() {
        collected.append(&mut lane.pending);
        while let Some(e) = lane.output_fifo.pop() {
            collected.push(e);
        }
    }
    while let Some(e) = bank_output.pop() {
        collected.push(e);
    }
    collected.sort_unstable_by_key(|m| (m.end, m.pattern));
    collected.dedup();
    // `$`-anchored patterns report only at the stream's end.
    collected.retain(|m| !compiled[m.pattern].anchored_end() || m.end == input.len());

    // Leakage, as in the batch path.
    let runtime_s = cycles as f64 / cost.clock_hz;
    let powered: u64 = lanes.iter().map(|l| l.sim.powered_tile_cycles()).sum();
    let mut leak_w = cost.bank_overhead_leak_w(mapping.arrays.len() as u32);
    leak_w += cost.array_leak_w * mapping.arrays.len() as f64;
    let tile_leak_j = cost.tile_leak_w * (powered as f64 / cost.clock_hz);
    meter.charge(Category::Leakage, (leak_w * runtime_s + tile_leak_j) * 1e12);

    let stats = BankStats {
        stall_cycles: lanes.iter().map(|l| l.stalled_cycles).collect(),
        starved_cycles: lanes.iter().map(|l| l.starved_cycles).collect(),
        max_skew,
        output_interrupts: interrupts,
        output_backpressure: backpressure,
        max_input_fifo_bytes,
        max_output_fifo_records,
    };
    let metrics = Metrics {
        input_chars: input.len() as u64,
        cycles,
        clock_hz: cost.clock_hz,
        energy_uj: meter.total_uj(),
        area_mm2: cost.area_mm2(mapping),
        matches: collected.len() as u64,
    };
    let result = RunResult {
        machine,
        metrics,
        energy: meter,
        matches: collected,
        stall_cycles: stats.stall_cycles.iter().sum(),
    };
    if let Some(mut probe) = probe {
        for (index, lane) in lanes.iter().enumerate() {
            probe.push(ProbeEvent::ArrayEnd {
                array: index as u32,
                // A lane is busy for each consumed byte plus each stall
                // cycle; starved cycles are idle waiting, not work.
                cycles: lane.consumed as u64 + lane.stalled_cycles,
                stall_cycles: lane.stalled_cycles,
                powered_tile_cycles: lane.sim.powered_tile_cycles(),
                matches: lane.produced,
            });
        }
        probe.push(ProbeEvent::RunEnd {
            input_bytes: input.len() as u64,
            cycles,
            stall_cycles: result.stall_cycles,
            powered_tile_cycles: powered,
            matches: result.metrics.matches,
        });
        probe.finish();
    }
    if let Some((tel, _)) = telemetry {
        crate::record_run_metrics(tel, &result, powered);
        crate::record_bank_stats(tel, machine, &stats);
    }
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use rap_regex::Regex;

    fn regexes(patterns: &[&str]) -> Vec<Regex> {
        patterns
            .iter()
            .map(|p| rap_regex::parse(p).expect("parses"))
            .collect()
    }

    fn run_both(
        patterns: &[&str],
        input: &[u8],
        machine: Machine,
    ) -> (RunResult, RunResult, BankStats) {
        let sim = Simulator::new(machine);
        let res = regexes(patterns);
        let compiled = sim.compile(&res).expect("compiles");
        let mapping = sim.map(&compiled);
        let batch = sim.simulate(&compiled, &mapping, input);
        let (streaming, stats) = simulate_streaming(&compiled, &mapping, input, machine);
        (batch, streaming, stats)
    }

    #[test]
    fn streaming_matches_equal_batch_matches() {
        let patterns = ["ab{10,30}c", "hello", "x.*yz", "m{8}"];
        let input = b"hello abbbbbbbbbbbc xqqyz mmmmmmmm hello".repeat(10);
        for machine in Machine::all() {
            let (batch, streaming, _) = run_both(&patterns, &input, machine);
            assert_eq!(streaming.matches, batch.matches, "{machine}");
        }
    }

    #[test]
    fn streaming_cycles_cover_batch_cycles() {
        let patterns = ["ab{10,30}c", "hello"];
        let input = b"ab hello abbbbbbbbbbbc ".repeat(20);
        let (batch, streaming, _) = run_both(&patterns, &input, Machine::Rap);
        assert!(
            streaming.metrics.cycles >= batch.metrics.cycles,
            "streaming {} < batch {}",
            streaming.metrics.cycles,
            batch.metrics.cycles
        );
    }

    #[test]
    fn fifos_hide_short_stalls() {
        // A lightly-stalling NBVA workload: the 8-entry FIFO absorbs the
        // skew, so the LNFA array never starves more than briefly.
        let patterns = ["ab{8,16}c", "hello world"];
        let input = b"hello world abbbbbbbbbc xxxxxxxxxxxxxxxxxxxxxxx".repeat(20);
        let (_, streaming, stats) = run_both(&patterns, &input, Machine::Rap);
        assert_eq!(stats.stall_cycles.len(), 2);
        assert!(
            stats.max_skew <= 2 * 128,
            "skew {} exceeds the window",
            stats.max_skew
        );
        assert!(streaming.metrics.cycles >= input.len() as u64);
    }

    #[test]
    fn heavy_stalling_backpressures_fast_arrays() {
        // An NBVA array stalling on nearly every byte drags the bank
        // window, so the LNFA lane shows starvation.
        let patterns = ["ab{30,90}c", "zzz"];
        let input = b"ab".repeat(2_000);
        let (_, _, stats) = run_both(&patterns, &input, Machine::Rap);
        let total_starved: u64 = stats.starved_cycles.iter().sum();
        assert!(
            total_starved > 0,
            "expected starvation from window coupling"
        );
    }

    #[test]
    fn output_interrupts_fire_on_match_floods() {
        // Every byte matches: the 64-entry output buffer must overflow into
        // host interrupts.
        let patterns = ["[ab]"];
        let input = b"ab".repeat(500);
        let (_, streaming, stats) = run_both(&patterns, &input, Machine::Rap);
        assert_eq!(streaming.matches.len(), 1000);
        assert!(
            stats.output_interrupts > 0,
            "expected interrupts: {stats:?}"
        );
    }

    #[test]
    fn empty_workload_is_safe() {
        let sim = Simulator::new(Machine::Rap);
        let compiled = sim.compile(&[]).expect("compiles");
        let mapping = sim.map(&compiled);
        let (r, stats) = simulate_streaming(&compiled, &mapping, b"abc", Machine::Rap);
        assert_eq!(r.metrics.cycles, 0);
        assert!(r.matches.is_empty());
        assert_eq!(stats.max_skew, 0);
    }
}
