//! Cycle-accurate simulation of RAP and the baseline automata processors.
//!
//! The methodology follows §5.2 of the paper: a dataflow-driven cycle
//! simulator executes the mapped automata against real input streams,
//! charging every micro-operation (CAM search, switch traversal, bit-vector
//! pipeline step, controller tick, wire toggle, leakage) to the circuit
//! models of Table 1. The same simulator runs all four machines:
//!
//! * **RAP** — NFA, NBVA and LNFA tiles with reconfiguration (this paper),
//! * **CAMA** — CAM-based state matching, NFA only (HPCA'22),
//! * **BVAP** — CAMA plus fixed per-tile bit-vector modules (ASPLOS'24),
//! * **CA** — SRAM-based Cache Automaton, NFA only (MICRO'17).
//!
//! # Example
//!
//! ```
//! use rap_circuit::Machine;
//! use rap_sim::Simulator;
//!
//! let sim = Simulator::new(Machine::Rap);
//! let patterns = vec!["ab{20}c".to_string(), "hello".to_string()];
//! let result = sim.run_patterns(&patterns, b"xxhelloxx")?;
//! assert_eq!(result.matches.len(), 1);
//! assert!(result.metrics.throughput_gchps() > 0.0);
//! # Ok::<(), rap_sim::SimError>(())
//! ```

mod array;
pub mod bank;
mod cost;
pub mod reconfig;
pub mod replicate;
mod result;

pub use bank::{simulate_streaming, simulate_streaming_traced, BankStats};
pub use cost::CostModel;
pub use reconfig::{extract_arrays, pick_quiescence, simulate_hot_swap, Extraction, HotSwapRun};
pub use replicate::{max_match_span, simulate_replicated, ReplicatedRun};
pub use result::{MatchEvent, RunResult};

use rap_circuit::energy::Category;
use rap_circuit::{EnergyMeter, Machine, Metrics};
use rap_compiler::{CompileError, Compiled, Compiler, CompilerConfig, Mode};
use rap_mapper::{map_workload, MapperConfig, Mapping};
use rap_regex::Regex;
use rap_telemetry::{ProbeEvent, Telemetry};
use std::fmt;
use std::sync::Arc;

/// Error produced by the end-to-end [`Simulator`] entry points.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A pattern failed to compile.
    Compile {
        /// Index of the offending pattern.
        pattern: usize,
        /// The underlying error.
        error: CompileError,
    },
    /// The mapping plan violates a hardware legality invariant; the
    /// simulator refuses to execute it. The report lists every violation.
    IllegalMapping {
        /// The verifier's findings.
        report: rap_verify::Report,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Compile { pattern, error } => {
                write!(f, "pattern #{pattern}: {error}")
            }
            SimError::IllegalMapping { report } => {
                write!(
                    f,
                    "mapping is illegal ({} findings):\n{report}",
                    report.len()
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// End-to-end driver: compiles a pattern set for one machine, maps it, and
/// simulates it over an input stream.
#[derive(Clone, Debug)]
pub struct Simulator {
    /// The machine being modeled.
    pub machine: Machine,
    /// Compiler knobs (unfold threshold, BV depth, …).
    pub compiler: CompilerConfig,
    /// Mapper knobs (bin size, BVM geometry, …).
    pub mapper: MapperConfig,
    /// Attached observability context, if any. `None` (the default) keeps
    /// simulation on the probe-free fast path; attaching one only
    /// *observes* runs — cycles, energy, and matches are unchanged.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl Simulator {
    /// Creates a simulator for `machine` with paper-default parameters.
    /// BVAP automatically gets its fixed BVM geometry and BV-width cap.
    pub fn new(machine: Machine) -> Simulator {
        let mut compiler = CompilerConfig::default();
        let mut mapper = MapperConfig::default();
        if machine == Machine::Bvap {
            let bvm = rap_mapper::plan::BvmConfig::default();
            mapper.bvm = Some(bvm);
            compiler.bv_bits_cap = Some(bvm.slot_bits * bvm.slots_per_tile);
        }
        Simulator {
            machine,
            compiler,
            mapper,
            telemetry: None,
        }
    }

    /// Attaches an observability context: subsequent simulations emit
    /// cycle-sampled probe events into its journal and accumulate run
    /// totals in its metrics registry.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Simulator {
        self.telemetry = Some(telemetry);
        self
    }

    /// Sets the BV depth (RAP's Fig. 10(a) knob).
    #[must_use]
    pub fn with_bv_depth(mut self, depth: u32) -> Simulator {
        self.compiler.bv_depth = depth;
        self
    }

    /// Sets the LNFA bin size (RAP's Fig. 10(b) knob).
    #[must_use]
    pub fn with_bin_size(mut self, bin: u32) -> Simulator {
        self.mapper.bin_size = bin;
        self
    }

    /// Compiles patterns according to the machine's native capabilities:
    /// RAP uses the full decision graph; BVAP supports NBVA and NFA (its
    /// LNFA-decided patterns run as NFAs); CA and CAMA unfold everything to
    /// basic NFAs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Compile`] for the first pattern that fails.
    pub fn compile(&self, regexes: &[Regex]) -> Result<Vec<Compiled>, SimError> {
        let patterns: Vec<rap_regex::Pattern> = regexes
            .iter()
            .map(|re| rap_regex::Pattern {
                regex: re.clone(),
                anchored_start: false,
                anchored_end: false,
            })
            .collect();
        self.compile_parsed(&patterns)
    }

    /// Like [`Simulator::compile`] but over parsed patterns, honouring
    /// their `^`/`$` anchors (anchored patterns skip LNFA mode; the flags
    /// travel in the NFA/NBVA image).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Compile`] for the first pattern that fails.
    pub fn compile_parsed(
        &self,
        patterns: &[rap_regex::Pattern],
    ) -> Result<Vec<Compiled>, SimError> {
        let compiler = Compiler::new(self.compiler);
        patterns
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let result = match self.machine {
                    Machine::Rap => compiler.compile_anchored(p),
                    Machine::Ca | Machine::Cama => compiler
                        .compile_with_mode(&p.regex, Mode::Nfa)
                        .map(|c| c.with_anchors(p.anchored_start, p.anchored_end)),
                    Machine::Bvap => {
                        let mode = match compiler.decide(&p.regex) {
                            Mode::Nbva => Mode::Nbva,
                            _ => Mode::Nfa,
                        };
                        compiler
                            .compile_with_mode(&p.regex, mode)
                            .map(|c| c.with_anchors(p.anchored_start, p.anchored_end))
                    }
                };
                result.map_err(|error| SimError::Compile { pattern: i, error })
            })
            .collect()
    }

    /// Compiles every pattern in a forced mode (used for the RAP-NFA
    /// columns of Tables 2 and 3).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Compile`] for the first pattern that fails.
    pub fn compile_forced(&self, regexes: &[Regex], mode: Mode) -> Result<Vec<Compiled>, SimError> {
        let compiler = Compiler::new(self.compiler);
        regexes
            .iter()
            .enumerate()
            .map(|(i, re)| {
                compiler
                    .compile_with_mode(re, mode)
                    .map_err(|error| SimError::Compile { pattern: i, error })
            })
            .collect()
    }

    /// Maps a compiled workload onto arrays.
    pub fn map(&self, compiled: &[Compiled]) -> Mapping {
        map_workload(compiled, &self.mapper)
    }

    /// Statically verifies a mapping against this simulator's target
    /// architecture (see [`rap_verify::verify`]).
    pub fn verify(&self, compiled: &[Compiled], mapping: &Mapping) -> rap_verify::Report {
        rap_verify::verify(compiled, mapping, &self.mapper.arch)
    }

    /// Verifies and maps in one step, refusing illegal plans.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::IllegalMapping`] when the produced plan fails
    /// the static legality checks.
    pub fn map_verified(&self, compiled: &[Compiled]) -> Result<Mapping, SimError> {
        let mapping = self.map(compiled);
        let report = self.verify(compiled, &mapping);
        if report.is_legal() {
            Ok(mapping)
        } else {
            Err(SimError::IllegalMapping { report })
        }
    }

    /// Simulates a mapped workload over `input`. The mapping must have
    /// passed the verify gate (see [`simulate`]). When telemetry is
    /// attached the run is traced under the machine's name as label.
    pub fn simulate(&self, compiled: &[Compiled], mapping: &Mapping, input: &[u8]) -> RunResult {
        match &self.telemetry {
            Some(tel) => {
                let label = self.machine.to_string();
                simulate_traced(compiled, mapping, input, self.machine, tel, &label)
            }
            None => simulate(compiled, mapping, input, self.machine),
        }
    }

    /// Streams `input` through the §3.3 bank buffer hierarchy (ping-pong
    /// input buffer, per-array FIFOs, output buffers with host
    /// interrupts), returning buffer statistics alongside the run result.
    /// The mapping must have passed the verify gate, exactly as for
    /// [`Simulator::simulate`]. When telemetry is attached the run is
    /// traced under the machine's name as label.
    pub fn simulate_streaming(
        &self,
        compiled: &[Compiled],
        mapping: &Mapping,
        input: &[u8],
    ) -> (RunResult, BankStats) {
        match &self.telemetry {
            Some(tel) => {
                let label = self.machine.to_string();
                bank::simulate_streaming_traced(compiled, mapping, input, self.machine, tel, &label)
            }
            None => bank::simulate_streaming(compiled, mapping, input, self.machine),
        }
    }

    /// Convenience: compile (native modes) + map + verify + simulate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Compile`] when a pattern fails to compile and
    /// [`SimError::IllegalMapping`] when the plan fails verification.
    pub fn run(&self, regexes: &[Regex], input: &[u8]) -> Result<RunResult, SimError> {
        let compiled = self.compile(regexes)?;
        let mapping = self.map_verified(&compiled)?;
        Ok(self.simulate(&compiled, &mapping, input))
    }

    /// Convenience over pattern strings.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Compile`] on parse or compile failures and
    /// [`SimError::IllegalMapping`] when the plan fails verification.
    pub fn run_patterns(&self, patterns: &[String], input: &[u8]) -> Result<RunResult, SimError> {
        let parsed: Vec<rap_regex::Pattern> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| {
                rap_regex::parse_pattern(p).map_err(|e| SimError::Compile {
                    pattern: i,
                    error: CompileError::Parse(e),
                })
            })
            .collect::<Result<_, _>>()?;
        let compiled = self.compile_parsed(&parsed)?;
        let mapping = self.map_verified(&compiled)?;
        Ok(self.simulate(&compiled, &mapping, input))
    }
}

/// Debug-build consistency check shared by the batch ([`simulate`]) and
/// streaming ([`bank::simulate_streaming`]) entry points: both execute
/// only mappings that passed the static verify gate, and debug builds
/// re-verify at the door. The checked `run`/`run_patterns`/`map_verified`
/// entry points enforce the gate in release builds too.
pub(crate) fn debug_assert_verified(compiled: &[Compiled], mapping: &Mapping) {
    #[cfg(debug_assertions)]
    {
        let report = rap_verify::verify(compiled, mapping, &mapping.config.arch);
        debug_assert!(
            report.is_legal(),
            "illegal mapping reached the simulator:\n{report}"
        );
    }
    #[cfg(not(debug_assertions))]
    let _ = (compiled, mapping);
}

/// Simulates a mapped workload over an input stream on one machine.
///
/// The mapping must have passed the verify gate ([`Simulator::map_verified`]
/// or [`rap_verify::verify`]); debug builds assert this at the door.
///
/// Arrays run in parallel on the same stream; an array in NBVA mode stalls
/// independently during bit-vector-processing phases, and the two-level
/// buffering of §3.3 decouples the arrays, so the bank finishes when its
/// slowest array does.
pub fn simulate(
    compiled: &[Compiled],
    mapping: &Mapping,
    input: &[u8],
    machine: Machine,
) -> RunResult {
    simulate_inner(compiled, mapping, input, machine, None)
}

/// Like [`simulate`], with cycle-sampled probe events and run totals
/// recorded into `telemetry` under `label`. Tracing only observes: the
/// returned result is identical to the untraced path's.
pub fn simulate_traced(
    compiled: &[Compiled],
    mapping: &Mapping,
    input: &[u8],
    machine: Machine,
    telemetry: &Telemetry,
    label: &str,
) -> RunResult {
    simulate_inner(compiled, mapping, input, machine, Some((telemetry, label)))
}

/// Records one finished run's totals into the telemetry registry, labeled
/// by machine. Shared by the batch and streaming paths.
pub(crate) fn record_run_metrics(telemetry: &Telemetry, result: &RunResult, powered: u64) {
    let machine = result.machine.to_string();
    let labels: [(&str, &str); 1] = [("machine", &machine)];
    let reg = telemetry.registry();
    reg.counter("rap_sim_runs_total", &labels).inc();
    reg.counter("rap_sim_input_bytes_total", &labels)
        .add(result.metrics.input_chars);
    reg.counter("rap_sim_cycles_total", &labels)
        .add(result.metrics.cycles);
    reg.counter("rap_sim_stall_cycles_total", &labels)
        .add(result.stall_cycles);
    reg.counter("rap_sim_powered_tile_cycles_total", &labels)
        .add(powered);
    reg.counter("rap_sim_matches_total", &labels)
        .add(result.metrics.matches);
}

/// Records one streaming run's buffer-hierarchy stats into the telemetry
/// registry, labeled by machine: output interrupts and backpressure as
/// counters, FIFO high-water marks as max-tracking gauges. This is the
/// Prometheus-visible face of [`BankStats`] — the scan service reads it
/// as its backpressure signal.
pub fn record_bank_stats(telemetry: &Telemetry, machine: Machine, stats: &BankStats) {
    let machine = machine.to_string();
    let labels: [(&str, &str); 1] = [("machine", &machine)];
    let reg = telemetry.registry();
    reg.counter("rap_sim_output_interrupts_total", &labels)
        .add(stats.output_interrupts);
    reg.counter("rap_sim_output_backpressure_total", &labels)
        .add(stats.output_backpressure);
    reg.gauge("rap_sim_input_fifo_hwm_bytes", &labels)
        .set_max(stats.max_input_fifo_bytes);
    reg.gauge("rap_sim_output_fifo_hwm_records", &labels)
        .set_max(stats.max_output_fifo_records);
    reg.gauge("rap_sim_bank_skew_hwm_bytes", &labels)
        .set_max(stats.max_skew as u64);
}

fn simulate_inner(
    compiled: &[Compiled],
    mapping: &Mapping,
    input: &[u8],
    machine: Machine,
    telemetry: Option<(&Telemetry, &str)>,
) -> RunResult {
    debug_assert_verified(compiled, mapping);
    let cost = CostModel::for_machine(machine);
    let mut meter = EnergyMeter::new();
    let mut matches: Vec<MatchEvent> = Vec::new();
    let mut max_cycles: u64 = input.len() as u64;
    let mut stall_cycles: u64 = 0;
    let mut powered_tile_cycles: u64 = 0;
    let mut probe = telemetry.map(|(tel, label)| tel.probe(label));

    for (index, plan) in mapping.arrays.iter().enumerate() {
        let mut sim = array::build_array(compiled, plan, &cost);
        let outcome = array::run_array(
            sim.as_mut(),
            input,
            &mut meter,
            probe.as_mut().map(|p| (p, index as u32)),
        );
        stall_cycles += outcome.cycles.saturating_sub(input.len() as u64);
        max_cycles = max_cycles.max(outcome.cycles);
        powered_tile_cycles += outcome.powered_tile_cycles;
        matches.extend(outcome.matches);
    }

    // Deduplicate (pattern, end) pairs: a pattern split into several LNFA
    // chains may report the same end offset from more than one chain.
    matches.sort_unstable_by_key(|m| (m.end, m.pattern));
    matches.dedup();
    // `$`-anchored patterns report only at the stream's end.
    matches.retain(|m| !compiled[m.pattern].anchored_end() || m.end == input.len());

    // Static leakage: power-gated tiles leak ~nothing, so tile leakage
    // integrates over *powered* tile-cycles; the array overheads (global
    // switch/controller) and bank I/O stay on for the whole run.
    let runtime_s = max_cycles as f64 / cost.clock_hz;
    let mut leak_w = cost.bank_overhead_leak_w(mapping.arrays.len() as u32);
    leak_w += cost.array_leak_w * mapping.arrays.len() as f64;
    let tile_leak_j = cost.tile_leak_w * (powered_tile_cycles as f64 / cost.clock_hz);
    meter.charge(Category::Leakage, (leak_w * runtime_s + tile_leak_j) * 1e12);

    let metrics = Metrics {
        input_chars: input.len() as u64,
        cycles: max_cycles,
        clock_hz: cost.clock_hz,
        energy_uj: meter.total_uj(),
        area_mm2: cost.area_mm2(mapping),
        matches: matches.len() as u64,
    };
    let result = RunResult {
        machine,
        metrics,
        energy: meter,
        matches,
        stall_cycles,
    };
    if let Some(mut probe) = probe {
        probe.push(ProbeEvent::RunEnd {
            input_bytes: input.len() as u64,
            cycles: max_cycles,
            stall_cycles,
            powered_tile_cycles,
            matches: result.metrics.matches,
        });
        probe.finish();
    }
    if let Some((tel, _)) = telemetry {
        record_run_metrics(tel, &result, powered_tile_cycles);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_automata::nfa::Nfa;
    use rap_regex::parse;

    fn regexes(patterns: &[&str]) -> Vec<Regex> {
        patterns.iter().map(|p| parse(p).expect("parses")).collect()
    }

    /// Reference match set from the software NFA interpreter.
    fn reference(patterns: &[&str], input: &[u8]) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        for (i, p) in patterns.iter().enumerate() {
            let nfa = Nfa::from_regex(&parse(p).expect("parses"));
            for end in nfa.match_ends(input) {
                out.push(MatchEvent { pattern: i, end });
            }
        }
        out.sort_unstable_by_key(|m| (m.end, m.pattern));
        out
    }

    /// Every machine must report exactly the ground-truth match set — the
    /// consistency check of §5.2.
    #[test]
    fn all_machines_agree_with_software_matcher() {
        let patterns = ["ab{12}c", "hello", "a[bc].d", "x.*yz", "n(o|p)q", "c{5,9}d"];
        let input = b"abbbbbbbbbbbbc hello axbcd xqqyz nopq npq ccccccd hello";
        let expect = reference(&patterns, input);
        for machine in Machine::all() {
            let sim = Simulator::new(machine);
            let result = sim
                .run(&regexes(&patterns), input)
                .unwrap_or_else(|e| panic!("{machine}: {e}"));
            assert_eq!(result.matches, expect, "machine {machine}");
        }
    }

    #[test]
    fn rap_nbva_stalls_reduce_throughput() {
        let sim = Simulator::new(Machine::Rap).with_bv_depth(8);
        // Repetition pattern on an input that keeps the BV active.
        let result = sim
            .run(&regexes(&["ab{40}c"]), &b"ab".repeat(200))
            .expect("runs");
        assert!(result.stall_cycles > 0, "expected BV-phase stalls");
        assert!(result.metrics.throughput_gchps() < 2.08);
    }

    #[test]
    fn nfa_mode_never_stalls() {
        let sim = Simulator::new(Machine::Cama);
        let result = sim
            .run(&regexes(&["ab{40}c", "xyz"]), &b"ab".repeat(200))
            .expect("runs");
        assert_eq!(result.stall_cycles, 0);
        assert!((result.metrics.throughput_gchps() - 2.14).abs() < 1e-6);
    }

    #[test]
    fn nbva_mode_uses_less_area_than_unfolded_nfa() {
        let patterns = regexes(&["ab{200}c", "pq{150}r"]);
        // Mostly-miss traffic with occasional prefix hits: the realistic
        // low-BV-activation regime the paper's benchmarks exhibit (a
        // pathological stream like "ababab…" would stall every other
        // cycle and burn leakage during the stalls instead).
        let input = b"the quick brown fox jumps over ab the lazy dog ".repeat(10);
        let rap = Simulator::new(Machine::Rap);
        let auto = rap.run(&patterns, &input).expect("auto runs");
        let compiled = rap.compile_forced(&patterns, Mode::Nfa).expect("compiles");
        let mapping = rap.map(&compiled);
        let forced = rap.simulate(&compiled, &mapping, &input);
        assert!(
            auto.metrics.area_mm2 < forced.metrics.area_mm2,
            "NBVA {} < NFA {}",
            auto.metrics.area_mm2,
            forced.metrics.area_mm2
        );
        assert!(auto.metrics.energy_uj < forced.metrics.energy_uj);
    }

    #[test]
    fn lnfa_mode_saves_energy_over_nfa_mode() {
        let patterns = regexes(&["abcdefgh", "ijklmnop", "qrstuvwx", "yz012345"]);
        let input: Vec<u8> = b"the quick brown fox jumps over the lazy dog ".repeat(20);
        let rap = Simulator::new(Machine::Rap);
        let auto = rap.run(&patterns, &input).expect("auto runs");
        let compiled = rap.compile_forced(&patterns, Mode::Nfa).expect("compiles");
        let mapping = rap.map(&compiled);
        let forced = rap.simulate(&compiled, &mapping, &input);
        assert!(
            auto.metrics.energy_uj < forced.metrics.energy_uj,
            "LNFA {} < NFA {}",
            auto.metrics.energy_uj,
            forced.metrics.energy_uj
        );
    }

    #[test]
    fn bvap_charges_bvm_area_even_without_bvs() {
        // A pure-literal workload: BVAP still pays for its add-on modules.
        let patterns = regexes(&["abcdef", "ghijkl"]);
        let input = b"abcdefghijkl".repeat(5);
        let bvap = Simulator::new(Machine::Bvap)
            .run(&patterns, &input)
            .expect("runs");
        let cama = Simulator::new(Machine::Cama)
            .run(&patterns, &input)
            .expect("runs");
        assert!(bvap.metrics.area_mm2 > cama.metrics.area_mm2);
    }

    #[test]
    fn empty_input_is_safe() {
        let sim = Simulator::new(Machine::Rap);
        let result = sim.run(&regexes(&["abc"]), b"").expect("runs");
        assert_eq!(result.metrics.cycles, 0);
        assert!(result.matches.is_empty());
        assert_eq!(result.metrics.throughput_gchps(), 0.0);
    }

    #[test]
    fn compile_error_reports_pattern_index() {
        let sim = Simulator::new(Machine::Rap);
        let err = sim
            .run_patterns(&["ok".to_string(), "(broken".to_string()], b"x")
            .expect_err("second pattern is malformed");
        match err {
            SimError::Compile { pattern, .. } => assert_eq!(pattern, 1),
            other @ SimError::IllegalMapping { .. } => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn energy_breakdown_has_expected_categories() {
        let sim = Simulator::new(Machine::Rap);
        let result = sim
            .run(
                &regexes(&["ab{30}c", "hello", "wxyz"]),
                &b"hello ab world".repeat(30),
            )
            .expect("runs");
        assert!(result.energy.category_pj(Category::StateMatch) > 0.0);
        assert!(result.energy.category_pj(Category::Leakage) > 0.0);
        assert!(result.energy.category_pj(Category::Controller) > 0.0);
    }
}
