//! Per-machine cost models, assembled from the Table 1 circuit components.
//!
//! All four machines share the same CAM/SRAM macros and the same mapper, so
//! their differences reduce to which components a tile contains and how
//! each micro-operation is charged:
//!
//! | | state matching | local ctrl | BV storage | clock |
//! |---|---|---|---|---|
//! | RAP | 8T-CAM, 4 pJ | yes (reconfig) | unified in CAM | 2.08 GHz |
//! | CAMA | 8T-CAM, 4 pJ | no | — | 2.14 GHz |
//! | BVAP | 8T-CAM, 4 pJ | no | fixed BVM add-on | 2.00 GHz |
//! | CA | SRAM sense, 2 pJ | no | — | 1.82 GHz |
//!
//! CA trades a lower matching energy for a much larger tile (SRAM matching
//! arrays plus full crossbars), which is exactly the energy-vs-area split
//! Tables 2/3 report.

use rap_circuit::models::{
    ComponentModel, Machine, CAM_32X128, GLOBAL_CONTROLLER, GLOBAL_WIRE_MM, LOCAL_CONTROLLER,
    SRAM_128X128, SRAM_256X256,
};
use rap_mapper::Mapping;

/// Aggregated per-machine costs used by the array simulators.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// The machine.
    pub machine: Machine,
    /// Clock frequency in hertz.
    pub clock_hz: f64,
    /// Tile area in µm² (memory macros + per-tile control).
    pub tile_area_um2: f64,
    /// Per-array overhead area in µm² (global switch, controller, wires).
    pub array_area_um2: f64,
    /// Per-bank overhead area in µm² (I/O buffers), amortized per 4 arrays.
    pub bank_area_um2: f64,
    /// State-matching energy per active tile per cycle (pJ).
    pub match_pj: f64,
    /// Local-switch traversal model (activity-scaled).
    pub local_switch: ComponentModel,
    /// Global-switch traversal model (activity-scaled).
    pub global_switch: ComponentModel,
    /// Per-tile controller energy per cycle (pJ); zero on machines without
    /// a reconfiguration controller.
    pub local_ctrl_pj: f64,
    /// Per-array controller energy per cycle (pJ).
    pub global_ctrl_pj: f64,
    /// Wire energy per cross-tile signal per cycle (pJ).
    pub wire_pj: f64,
    /// Ring-hop energy for LNFA global routing (pJ).
    pub ring_hop_pj: f64,
    /// Input/output buffering energy per array per cycle (pJ).
    pub buffer_pj: f64,
    /// Energy per bit-vector pipeline step per active tile (pJ): BV-word
    /// read + action routing + write-back.
    pub bv_step_pj: f64,
    /// Stall cycles per bit-vector-processing phase. For RAP this is the
    /// configured BV depth (taken from the array plan); this field is the
    /// *fixed* latency of BVAP's BVM pipeline.
    pub bvap_stall_cycles: u64,
    /// Tile leakage in watts.
    pub tile_leak_w: f64,
    /// Array overhead leakage in watts.
    pub array_leak_w: f64,
}

impl CostModel {
    /// Builds the cost model for one machine.
    pub fn for_machine(machine: Machine) -> CostModel {
        let wire_pj = GLOBAL_WIRE_MM.energy_pj_max; // per ~1mm toggle
        let base = CostModel {
            machine,
            clock_hz: machine.clock_hz(),
            tile_area_um2: CAM_32X128.area_um2 + SRAM_128X128.area_um2,
            array_area_um2: SRAM_256X256.area_um2
                + GLOBAL_CONTROLLER.area_um2
                + 16.0 * GLOBAL_WIRE_MM.area_um2, // one wire bundle per tile
            bank_area_um2: SRAM_128X128.area_um2 / 4.0, // I/O buffers per bank
            match_pj: CAM_32X128.energy_pj_max,
            local_switch: SRAM_128X128,
            global_switch: SRAM_256X256,
            local_ctrl_pj: 0.0,
            global_ctrl_pj: GLOBAL_CONTROLLER.energy_pj_max,
            wire_pj,
            ring_hop_pj: wire_pj * 0.1, // short adjacent-tile hop (§3.2)
            buffer_pj: 0.2,
            // Read a BV word from the CAM, route it through the (large,
            // reused) local switch region, write it back: 2 CAM accesses
            // plus a half-active 128×128 traversal. Reusing the big switch
            // is what costs RAP ~20% more NBVA energy than BVAP's
            // dedicated MFCB (§5.5).
            bv_step_pj: 2.0 * CAM_32X128.energy_pj_max + SRAM_128X128.access_energy_pj(0.5),
            bvap_stall_cycles: 4,
            tile_leak_w: CAM_32X128.leakage_w() + SRAM_128X128.leakage_w(),
            array_leak_w: SRAM_256X256.leakage_w() + GLOBAL_CONTROLLER.leakage_w(),
        };
        match machine {
            Machine::Rap => CostModel {
                tile_area_um2: base.tile_area_um2 + LOCAL_CONTROLLER.area_um2,
                local_ctrl_pj: LOCAL_CONTROLLER.energy_pj_max,
                tile_leak_w: base.tile_leak_w + LOCAL_CONTROLLER.leakage_w(),
                ..base
            },
            Machine::Cama => base,
            Machine::Bvap => CostModel {
                // Fixed BVM add-on on every tile: 2048 bits of SRAM plus a
                // small semi-parallel routing crossbar (MFCB).
                tile_area_um2: base.tile_area_um2 + bvm_area_um2(),
                tile_leak_w: base.tile_leak_w + SRAM_128X128.leakage_w() * 0.25,
                // The dedicated, narrow MFCB pipeline is far cheaper per
                // step than RAP's reused 128×128 switch.
                bv_step_pj: 2.0,
                ..base
            },
            Machine::Ca => CostModel {
                // SRAM-based matching plus full-size crossbars: cheaper
                // per-access matching energy, much larger tile (the 5.2×
                // area of Table 2).
                tile_area_um2: SRAM_128X128.area_um2 + SRAM_256X256.area_um2 / 2.0 + 2000.0,
                match_pj: SRAM_128X128.energy_pj_min * 2.0,
                local_switch: SRAM_256X256,
                tile_leak_w: SRAM_128X128.leakage_w() + SRAM_256X256.leakage_w() / 2.0,
                ..base
            },
        }
    }

    /// Total allocated area of a mapping, in mm².
    pub fn area_mm2(&self, mapping: &Mapping) -> f64 {
        let mut um2 = 0.0;
        for plan in &mapping.arrays {
            um2 += f64::from(plan.tiles_used) * self.tile_area_um2 + self.array_area_um2;
        }
        let arrays = mapping.arrays.len() as u32;
        um2 += f64::from(arrays.div_ceil(4)) * self.bank_area_um2;
        um2 * 1e-6
    }

    /// Bank-level leakage (I/O buffers) in watts for `arrays` arrays.
    pub fn bank_overhead_leak_w(&self, arrays: u32) -> f64 {
        f64::from(arrays.div_ceil(4)) * SRAM_128X128.leakage_w() / 4.0
    }
}

/// The fixed BVM area: the bit-vector SRAM, its pipeline registers, and
/// the semi-parallel multibit routing crossbar (MFCB) — about one 128×128
/// macro's worth per tile. This is the add-on that sits idle on workloads
/// without bounded repetitions (Tables 2 and 3's BVAP area columns).
fn bvm_area_um2() -> f64 {
    SRAM_128X128.area_um2 * 0.75 + SRAM_128X128.area_um2 / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rap_tile_includes_local_controller() {
        let rap = CostModel::for_machine(Machine::Rap);
        let cama = CostModel::for_machine(Machine::Cama);
        assert!(rap.tile_area_um2 > cama.tile_area_um2);
        assert!((rap.tile_area_um2 - cama.tile_area_um2 - 2900.0).abs() < 1e-9);
        assert!(rap.local_ctrl_pj > 0.0);
        assert_eq!(cama.local_ctrl_pj, 0.0);
    }

    #[test]
    fn ca_trades_energy_for_area() {
        let ca = CostModel::for_machine(Machine::Ca);
        let cama = CostModel::for_machine(Machine::Cama);
        assert!(ca.match_pj < cama.match_pj);
        assert!(ca.tile_area_um2 > cama.tile_area_um2);
    }

    #[test]
    fn bvap_pays_fixed_bvm() {
        let bvap = CostModel::for_machine(Machine::Bvap);
        let cama = CostModel::for_machine(Machine::Cama);
        assert!(bvap.tile_area_um2 > cama.tile_area_um2);
        // ...but its dedicated BVM pipeline step is cheaper than RAP's.
        let rap = CostModel::for_machine(Machine::Rap);
        assert!(bvap.bv_step_pj < rap.bv_step_pj);
    }

    #[test]
    fn clocks_forwarded() {
        for m in Machine::all() {
            assert_eq!(CostModel::for_machine(m).clock_hz, m.clock_hz());
        }
    }
}
